//! # rsn
//!
//! Facade crate of the Reconfigurable Stream Network Architecture (RSN)
//! reproduction.  It re-exports every workspace crate under one roof so the
//! examples and integration tests can be written against a single
//! dependency:
//!
//! * [`core`] — the RSN abstraction (FUs, streams, instruction packets,
//!   three-level decoder, execution engine),
//! * [`hw`] — the simulated VCK190 / GPU hardware substrate models,
//! * [`workloads`] — reference tensor math and model configurations,
//! * [`xnn`] — the RSN-XNN datapath, program generators and timing model,
//! * [`lib`] — the RSNlib-style mapping/segmentation/host layer,
//! * [`baseline`] — the overlay, CHARM and GPU comparison points.
//!
//! ## Quickstart
//!
//! ```
//! use rsn::workloads::Matrix;
//! use rsn::xnn::config::XnnConfig;
//! use rsn::xnn::machine::XnnMachine;
//! use rsn::xnn::program::{gemm_program, GemmSpec, PostOp, RhsOperand};
//!
//! # fn main() -> Result<(), rsn::core::error::RsnError> {
//! let cfg = XnnConfig::small();
//! let mut machine = XnnMachine::new(cfg)?;
//! machine.load_ddr(1, Matrix::random(16, 16, 1));
//! machine.load_lpddr(2, Matrix::random(16, 16, 2));
//! machine.alloc_ddr(3, 16, 16);
//! let spec = GemmSpec {
//!     lhs: 1,
//!     rhs: RhsOperand::Lpddr(2),
//!     out: 3,
//!     m: 16,
//!     k: 16,
//!     n: 16,
//!     rhs_transposed: false,
//!     post: PostOp::None,
//! };
//! let program = gemm_program(&cfg, machine.handles(), &spec);
//! machine.run_program(&program)?;
//! assert!(machine.ddr_matrix(3).is_some());
//! # Ok(())
//! # }
//! ```

pub use rsn_baseline as baseline;
pub use rsn_core as core;
pub use rsn_hw as hw;
pub use rsn_lib as lib;
pub use rsn_workloads as workloads;
pub use rsn_xnn as xnn;
