//! Smoke test of the unified evaluation layer: every registered backend
//! must produce a finite, nonzero report for a small BERT encoder segment
//! (or an equivalent workload it supports), and the relationships between
//! backends must hold (the roofline bound really is a lower bound, RSN-XNN
//! really beats the baselines).

use rsn::eval::{default_backends, Evaluator, WorkloadSpec};
use rsn::workloads::bert::BertConfig;

/// A BERT segment small enough for the cycle-level simulator and meaningful
/// for every analytic backend.
fn small_segment() -> WorkloadSpec {
    WorkloadSpec::EncoderLayer {
        cfg: BertConfig::tiny(8, 2),
    }
}

#[test]
fn every_backend_reports_finite_nonzero_for_a_small_bert_segment() {
    let workload = small_segment();
    for backend in default_backends() {
        assert!(
            backend.supports(&workload),
            "{} should support {}",
            backend.name(),
            workload.name()
        );
        let report = backend
            .evaluate(&workload)
            .unwrap_or_else(|e| panic!("{} failed: {e}", backend.name()));
        assert!(
            report.is_finite_nonzero(),
            "{} produced a degenerate report: {report:?}",
            backend.name()
        );
        assert_eq!(report.backend.as_ref(), backend.name());
        assert_eq!(report.workload.as_ref(), workload.name());
    }
}

#[test]
fn unsupported_workloads_are_rejected_not_fabricated() {
    let evaluator = Evaluator::new();
    // Only the cycle engine can answer an instruction-footprint question.
    let workload = WorkloadSpec::InstructionFootprint {
        m: 64,
        k: 64,
        n: 64,
    };
    let mut supported = 0;
    for (backend, result) in evaluator
        .backends()
        .iter()
        .zip(evaluator.evaluate(&workload))
    {
        if backend.supports(&workload) {
            supported += 1;
            assert!(result.is_ok(), "{} should answer", backend.name());
        } else {
            assert!(result.is_err(), "{} should decline", backend.name());
        }
    }
    assert_eq!(supported, 1);
}

#[test]
fn roofline_is_a_lower_bound_on_every_vck190_backend() {
    let evaluator = Evaluator::new();
    let workload = WorkloadSpec::EncoderLayer {
        cfg: BertConfig::bert_large(512, 6),
    };
    let reports = evaluator.evaluate_supported(&workload);
    let roofline = reports
        .iter()
        .find(|(name, _)| name == "roofline-bound")
        .map(|(_, r)| r.latency_s.unwrap())
        .expect("roofline evaluated");
    for (name, report) in &reports {
        // GPUs are different hardware; the VCK190 bound does not apply.
        if name.starts_with("gpu ") {
            continue;
        }
        let latency = report.latency_s.expect("latency present");
        assert!(
            latency >= roofline * 0.999,
            "{name}: {latency} below roofline bound {roofline}"
        );
    }
}

#[test]
fn rsn_beats_overlay_and_charm_through_the_unified_layer() {
    let evaluator = Evaluator::new();
    let workload = WorkloadSpec::EncoderLayer {
        cfg: BertConfig::bert_large(512, 6),
    };
    let reports = evaluator.evaluate_supported(&workload);
    let latency = |name: &str| {
        reports
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r.latency_s.unwrap())
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let rsn = latency("rsn-xnn");
    // Paper: 2.47x over the overlay style, 6.1x over CHARM at batch 6.
    assert!(latency("overlay-style") / rsn > 1.8);
    assert!(latency("charm") / rsn > 3.5);
}

#[test]
fn cycle_backend_validates_against_reference_math() {
    let evaluator = Evaluator::new();
    for workload in [
        small_segment(),
        WorkloadSpec::FunctionalGemm {
            m: 16,
            k: 12,
            n: 20,
            seed: 3,
        },
        WorkloadSpec::FunctionalAttention {
            cfg: BertConfig::tiny(4, 1),
            seed: 5,
        },
    ] {
        let report = evaluator
            .backend("cycle-engine")
            .expect("cycle backend registered")
            .evaluate(&workload)
            .expect("small workloads fit the simulator");
        let stats = report.cycle.expect("cycle stats present");
        let err = stats.max_abs_error.expect("reference comparison ran");
        assert!(err < 1e-2, "{}: error {err}", workload.name());
        assert!(stats.uops_retired > 0);
        assert!(stats.fu_step_calls > 0);
    }
}
