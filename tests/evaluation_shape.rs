//! Cross-crate checks that the reproduction preserves the *shape* of the
//! paper's headline results: who wins, by roughly what factor, and where the
//! crossovers fall.

use rsn::baseline::charm::CharmModel;
use rsn::baseline::gpu::table10_estimates;
use rsn::hw::energy::EnergyModel;
use rsn::workloads::bert::BertConfig;
use rsn::workloads::models::ModelKind;
use rsn::xnn::timing::{OptimizationFlags, XnnTimingModel};

#[test]
fn rsn_beats_charm_on_every_table7_model() {
    let rsn = XnnTimingModel::new().table7_latencies_s();
    let charm = CharmModel::new().table7_latencies_s();
    for ((kind, rsn_s), (_, charm_s)) in rsn.iter().zip(charm.iter()) {
        let gain = charm_s / rsn_s;
        // Paper gains: 3.2x (BERT), 2.4x (ViT), 2.5x (NCF), 2.8x (MLP).
        assert!(gain > 1.5, "{}: gain only {gain:.2}x", kind.name());
        assert!(
            gain < 8.0,
            "{}: gain implausibly large {gain:.2}x",
            kind.name()
        );
    }
    let bert_gain = charm[0].1 / rsn[0].1;
    assert!(bert_gain > 2.0, "BERT gain {bert_gain:.2}");
}

#[test]
fn fig18_latency_advantage_at_equal_batch() {
    let rsn = XnnTimingModel::new();
    let charm = CharmModel::new();
    let cfg = BertConfig::bert_large(512, 6);
    let ratio =
        charm.encoder_latency_s(&cfg) / rsn.encoder_latency_s(&cfg, OptimizationFlags::all());
    // Paper: 6.1x at batch 6.
    assert!(ratio > 3.5 && ratio < 9.0, "ratio {ratio:.2}");
}

#[test]
fn fig18_throughput_advantage_at_saturation() {
    let rsn = XnnTimingModel::new();
    let charm = CharmModel::new();
    let rsn_peak = rsn
        .encoder_throughput_tasks_per_s(&BertConfig::bert_large(512, 6), OptimizationFlags::all());
    let charm_peak = charm.encoder_throughput_tasks_per_s(&BertConfig::bert_large(512, 24));
    let ratio = rsn_peak / charm_peak;
    // Paper: 3.25x better peak throughput.
    assert!(ratio > 2.0 && ratio < 5.0, "ratio {ratio:.2}");
}

#[test]
fn table10_energy_efficiency_beats_a100_fp32() {
    let cfg = BertConfig::bert_large(384, 8);
    let vck_latency = XnnTimingModel::new().model_latency_s(&cfg, OptimizationFlags::all());
    let energy = EnergyModel::calibrated();
    let vck_eff = energy.operating_efficiency_seq_per_j(8.0 / vck_latency);
    let a100 = &table10_estimates(&cfg)[2];
    let ratio = vck_eff / a100.operating_seq_per_j;
    // Paper: 2.1x better FP32 operating energy efficiency than the A100.
    assert!(ratio > 1.4 && ratio < 3.5, "ratio {ratio:.2}");
}

#[test]
fn table6_rsn_wins_end_to_end_gemm_at_every_size() {
    let rsn = XnnTimingModel::new();
    let charm = CharmModel::new();
    for n in [1024, 3072, 6144] {
        let gain = rsn.gemm_end_to_end_flops(n) / charm.gemm_end_to_end_flops(n);
        // Paper gains: +170% / +132% / +106% (i.e. 2.7x / 2.3x / 2.1x).
        assert!(gain > 1.5 && gain < 4.0, "n={n}: gain {gain:.2}");
    }
}

#[test]
fn matching_t4_latency_with_a_fraction_of_its_bandwidth() {
    let cfg = BertConfig::bert_large(384, 8);
    let vck = XnnTimingModel::new().model_latency_s(&cfg, OptimizationFlags::all());
    let t4 = table10_estimates(&cfg)[0]
        .published_latency_s
        .expect("published");
    // Paper: VCK190 roughly matches the T4 (444 vs 499 ms) with 18 % of its
    // memory bandwidth.
    let ratio = vck / t4;
    assert!(ratio > 0.6 && ratio < 1.3, "ratio {ratio:.2}");
}

#[test]
fn all_four_models_are_distinct_workloads() {
    let kinds = ModelKind::table7_models();
    assert_eq!(kinds.len(), 4);
}
