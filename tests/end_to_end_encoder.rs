//! Cross-crate integration test: a full (scaled-down) transformer encoder
//! layer executed on the simulated RSN-XNN stream datapath must match the
//! pure-Rust reference forward pass, including every fused non-MM operator.

use rsn::lib::api::EncoderHost;
use rsn::workloads::attention::{encoder_layer_forward, EncoderWeights};
use rsn::workloads::bert::BertConfig;
use rsn::workloads::Matrix;
use rsn::xnn::config::XnnConfig;

#[test]
fn tiny_encoder_layer_matches_reference() {
    let cfg = BertConfig::tiny(8, 2);
    let x = Matrix::random(cfg.tokens(), cfg.hidden, 1001);
    let weights = EncoderWeights::random(&cfg, 2002);
    let expected = encoder_layer_forward(&cfg, &x, &weights);
    let mut host = EncoderHost::new(XnnConfig::small(), cfg).unwrap();
    let got = host.run_encoder_layer(&x, &weights).unwrap();
    assert!(got.max_abs_diff(&expected) < 1e-2);
}

#[test]
fn two_stacked_encoder_layers_match_reference() {
    let cfg = BertConfig::tiny(4, 1);
    let x = Matrix::random(cfg.tokens(), cfg.hidden, 31);
    let w0 = EncoderWeights::random(&cfg, 41);
    let w1 = EncoderWeights::random(&cfg, 42);
    let expected = encoder_layer_forward(&cfg, &encoder_layer_forward(&cfg, &x, &w0), &w1);

    let mut host = EncoderHost::new(XnnConfig::small(), cfg).unwrap();
    let mid = host.run_encoder_layer(&x, &w0).unwrap();
    // A fresh host per layer mirrors reprogramming the same datapath; the
    // intermediate activations travel through "off-chip" DDR as on the board.
    let mut host2 = EncoderHost::new(XnnConfig::small(), cfg).unwrap();
    let got = host2.run_encoder_layer(&mid, &w1).unwrap();
    assert!(got.max_abs_diff(&expected) < 2e-2);
}

#[test]
fn single_head_single_batch_configuration_works() {
    let cfg = BertConfig {
        hidden: 16,
        heads: 1,
        ff_dim: 32,
        seq_len: 8,
        batch: 1,
        layers: 1,
    };
    let x = Matrix::random(cfg.tokens(), cfg.hidden, 5);
    let weights = EncoderWeights::random(&cfg, 6);
    let expected = encoder_layer_forward(&cfg, &x, &weights);
    let mut host = EncoderHost::new(XnnConfig::small(), cfg).unwrap();
    let got = host.run_encoder_layer(&x, &weights).unwrap();
    assert!(got.max_abs_diff(&expected) < 1e-2);
}
