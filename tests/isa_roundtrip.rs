//! Property-based tests of the RSN instruction set: packet headers and
//! packet streams must round-trip through their byte encoding, and the
//! window/reuse compression must always expand back to the original uOP
//! sequence.

use proptest::prelude::*;
use rsn::core::fus::{MapFu, MemSinkFu, MemSourceFu};
use rsn::core::isa::{decode_packets, encode_packets, OpcodeRegistry, PacketHeader};
use rsn::core::network::DatapathBuilder;
use rsn::core::program::Program;
use rsn::core::uop::Uop;

proptest! {
    #[test]
    fn header_roundtrips(opcode in 0u8..16, mask in any::<u8>(), last in any::<bool>(),
                         window in 0u8..128, reuse in 0u16..4096) {
        let header = PacketHeader { opcode, mask, last, window, reuse };
        let packed = header.pack().unwrap();
        prop_assert_eq!(PacketHeader::unpack(packed), header);
    }

    #[test]
    fn compression_expands_to_the_original_uop_count(
        reps in 1usize..40,
        count in 1usize..20,
    ) {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 4);
        let s2 = b.add_stream("s2", 4);
        let src = b.add_fu(MemSourceFu::new("src", vec![0.0; 8], vec![s1]));
        b.add_fu(MapFu::new("map", s1, s2, |x| x));
        b.add_fu(MemSinkFu::new("sink", 8, vec![s2]));
        let dp = b.build().unwrap();
        let mut p = Program::new();
        for _ in 0..reps {
            p.push(src, Uop::new("load", [0, count as i64, 0]));
            p.push(src, Uop::new("send", [1, count as i64]));
        }
        let packets = p.compress(&dp).unwrap();
        let expanded: usize = packets.iter().map(|pk| pk.expanded_uop_count()).sum();
        prop_assert_eq!(expanded, p.uop_count());
        // Packets must never be larger than the uOPs they encode by more
        // than the per-packet header overhead.
        let rsn_bytes: usize = packets.iter().map(|pk| pk.encoded_len()).sum();
        prop_assert!(rsn_bytes <= p.uop_bytes() + 4 * packets.len());

        let mut registry = OpcodeRegistry::new();
        let bytes = encode_packets(&packets, &mut registry).unwrap();
        let decoded = decode_packets(bytes, &registry).unwrap();
        prop_assert_eq!(decoded, packets);
    }
}
