//! Property-style tests of the RSN instruction set: packet headers and
//! packet streams must round-trip through their byte encoding, and the
//! window/reuse compression must always expand back to the original uOP
//! sequence.
//!
//! The inputs are swept deterministically (the build environment has no
//! crates.io access, so `proptest` is replaced by explicit seeded loops with
//! the same coverage intent).

use rsn::core::fus::{MapFu, MemSinkFu, MemSourceFu};
use rsn::core::isa::{decode_packets, encode_packets, OpcodeRegistry, PacketHeader};
use rsn::core::network::DatapathBuilder;
use rsn::core::program::Program;
use rsn::core::uop::Uop;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 32
}

#[test]
fn header_roundtrips() {
    let mut state = 0xC0FF_EE00u64;
    for _ in 0..256 {
        let header = PacketHeader {
            opcode: (lcg(&mut state) % 16) as u8,
            mask: (lcg(&mut state) & 0xFF) as u8,
            last: lcg(&mut state).is_multiple_of(2),
            window: (lcg(&mut state) % 128) as u8,
            reuse: (lcg(&mut state) % 4096) as u16,
        };
        let packed = header.pack().unwrap();
        assert_eq!(PacketHeader::unpack(packed), header);
    }
}

#[test]
fn compression_expands_to_the_original_uop_count() {
    let mut state = 0xDEC0_DE01u64;
    for _ in 0..32 {
        let reps = 1 + (lcg(&mut state) % 39) as usize;
        let count = 1 + (lcg(&mut state) % 19) as usize;

        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 4);
        let s2 = b.add_stream("s2", 4);
        let src = b.add_fu(MemSourceFu::new("src", vec![0.0; 8], vec![s1]));
        b.add_fu(MapFu::new("map", s1, s2, |x| x));
        b.add_fu(MemSinkFu::new("sink", 8, vec![s2]));
        let dp = b.build().unwrap();
        let mut p = Program::new();
        for _ in 0..reps {
            p.push(src, Uop::new("load", [0, count as i64, 0]));
            p.push(src, Uop::new("send", [1, count as i64]));
        }
        let packets = p.compress(&dp).unwrap();
        let expanded: usize = packets.iter().map(|pk| pk.expanded_uop_count()).sum();
        assert_eq!(expanded, p.uop_count(), "reps={reps} count={count}");
        // Packets must never be larger than the uOPs they encode by more
        // than the per-packet header overhead.
        let rsn_bytes: usize = packets.iter().map(|pk| pk.encoded_len()).sum();
        assert!(rsn_bytes <= p.uop_bytes() + 4 * packets.len());

        let mut registry = OpcodeRegistry::new();
        let bytes = encode_packets(&packets, &mut registry).unwrap();
        let decoded = decode_packets(bytes, &registry).unwrap();
        assert_eq!(decoded, packets, "reps={reps} count={count}");
    }
}
