//! Property-based integration tests: the RSN-XNN datapath's tiled GEMM must
//! agree with the reference dense product for arbitrary shapes, whether the
//! program is delivered through per-FU backlogs or through the packetised
//! three-level decoder path.

use proptest::prelude::*;
use rsn::workloads::Matrix;
use rsn::xnn::config::XnnConfig;
use rsn::xnn::machine::XnnMachine;
use rsn::xnn::program::{gemm_program, GemmSpec, PostOp, RhsOperand};

fn run_datapath_gemm(
    lhs: &Matrix,
    rhs: &Matrix,
    post: PostOp,
    bias: &[f32],
    as_packets: bool,
) -> Matrix {
    let cfg = XnnConfig::small();
    let mut machine = XnnMachine::new(cfg).unwrap();
    machine.load_ddr(1, lhs.clone());
    machine.load_lpddr(2, rhs.clone());
    machine.alloc_ddr(3, lhs.rows(), rhs.cols());
    machine.set_bias(bias);
    let spec = GemmSpec {
        lhs: 1,
        rhs: RhsOperand::Lpddr(2),
        out: 3,
        m: lhs.rows(),
        k: lhs.cols(),
        n: rhs.cols(),
        rhs_transposed: false,
        post,
    };
    let program = gemm_program(&cfg, machine.handles(), &spec);
    if as_packets {
        machine.run_program_as_packets(&program).unwrap();
    } else {
        machine.run_program(&program).unwrap();
    }
    machine.ddr_matrix(3).unwrap().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn datapath_gemm_matches_reference(
        m in 1usize..33,
        k in 1usize..33,
        n in 1usize..33,
        seed in 0u64..1000,
    ) {
        let lhs = Matrix::random(m, k, seed);
        let rhs = Matrix::random(k, n, seed + 1);
        let expected = lhs.matmul(&rhs);
        let got = run_datapath_gemm(&lhs, &rhs, PostOp::None, &[], false);
        prop_assert!(got.max_abs_diff(&expected) < 1e-3);
    }

    #[test]
    fn datapath_gemm_with_bias_matches_reference(
        m in 1usize..17,
        k in 1usize..17,
        n in 1usize..17,
        seed in 0u64..1000,
    ) {
        let lhs = Matrix::random(m, k, seed);
        let rhs = Matrix::random(k, n, seed + 1);
        let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.1).collect();
        let expected = lhs.matmul(&rhs).add_bias(&bias);
        let got = run_datapath_gemm(&lhs, &rhs, PostOp::Bias, &bias, false);
        prop_assert!(got.max_abs_diff(&expected) < 1e-3);
    }
}

#[test]
fn packet_and_backlog_delivery_agree() {
    let lhs = Matrix::random(24, 16, 77);
    let rhs = Matrix::random(16, 24, 78);
    let direct = run_datapath_gemm(&lhs, &rhs, PostOp::None, &[], false);
    let packets = run_datapath_gemm(&lhs, &rhs, PostOp::None, &[], true);
    assert!(direct.max_abs_diff(&packets) < 1e-6);
    assert!(direct.max_abs_diff(&lhs.matmul(&rhs)) < 1e-3);
}
