//! Property-style integration tests: the RSN-XNN datapath's tiled GEMM must
//! agree with the reference dense product for arbitrary shapes, whether the
//! program is delivered through per-FU backlogs or through the packetised
//! three-level decoder path.
//!
//! The shapes are drawn from a deterministic pseudo-random sweep (the build
//! environment has no crates.io access, so `proptest` is replaced by an
//! explicit seeded generator with the same coverage intent).

use rsn::workloads::Matrix;
use rsn::xnn::config::XnnConfig;
use rsn::xnn::machine::XnnMachine;
use rsn::xnn::program::{gemm_program, GemmSpec, PostOp, RhsOperand};

fn run_datapath_gemm(
    lhs: &Matrix,
    rhs: &Matrix,
    post: PostOp,
    bias: &[f32],
    as_packets: bool,
) -> Matrix {
    let cfg = XnnConfig::small();
    let mut machine = XnnMachine::new(cfg).unwrap();
    machine.load_ddr(1, lhs.clone());
    machine.load_lpddr(2, rhs.clone());
    machine.alloc_ddr(3, lhs.rows(), rhs.cols());
    machine.set_bias(bias);
    let spec = GemmSpec {
        lhs: 1,
        rhs: RhsOperand::Lpddr(2),
        out: 3,
        m: lhs.rows(),
        k: lhs.cols(),
        n: rhs.cols(),
        rhs_transposed: false,
        post,
    };
    let program = gemm_program(&cfg, machine.handles(), &spec);
    if as_packets {
        machine.run_program_as_packets(&program).unwrap();
    } else {
        machine.run_program(&program).unwrap();
    }
    machine.ddr_matrix(3).unwrap().clone()
}

/// Deterministic shape generator standing in for proptest's `1usize..bound`.
fn next_dim(state: &mut u64, bound: usize) -> usize {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    1 + ((*state >> 33) as usize % (bound - 1))
}

#[test]
fn datapath_gemm_matches_reference() {
    let mut state = 0xA5A5_0001u64;
    for case in 0..12u64 {
        let (m, k, n) = (
            next_dim(&mut state, 33),
            next_dim(&mut state, 33),
            next_dim(&mut state, 33),
        );
        let lhs = Matrix::random(m, k, case);
        let rhs = Matrix::random(k, n, case + 1);
        let expected = lhs.matmul(&rhs);
        let got = run_datapath_gemm(&lhs, &rhs, PostOp::None, &[], false);
        assert!(
            got.max_abs_diff(&expected) < 1e-3,
            "case {case}: {m}x{k}x{n} diverges"
        );
    }
}

#[test]
fn datapath_gemm_with_bias_matches_reference() {
    let mut state = 0xB6B6_0002u64;
    for case in 0..12u64 {
        let (m, k, n) = (
            next_dim(&mut state, 17),
            next_dim(&mut state, 17),
            next_dim(&mut state, 17),
        );
        let lhs = Matrix::random(m, k, 100 + case);
        let rhs = Matrix::random(k, n, 101 + case);
        let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.1).collect();
        let expected = lhs.matmul(&rhs).add_bias(&bias);
        let got = run_datapath_gemm(&lhs, &rhs, PostOp::Bias, &bias, false);
        assert!(
            got.max_abs_diff(&expected) < 1e-3,
            "case {case}: {m}x{k}x{n} with bias diverges"
        );
    }
}

#[test]
fn packet_and_backlog_delivery_agree() {
    let lhs = Matrix::random(24, 16, 77);
    let rhs = Matrix::random(16, 24, 78);
    let direct = run_datapath_gemm(&lhs, &rhs, PostOp::None, &[], false);
    let packets = run_datapath_gemm(&lhs, &rhs, PostOp::None, &[], true);
    assert!(direct.max_abs_diff(&packets) < 1e-6);
    assert!(direct.max_abs_diff(&lhs.matmul(&rhs)) < 1e-3);
}
