//! Scheduler-equivalence tests: the event-driven engine must retire exactly
//! the same uOP counts, busy-cycle totals and functional results as the
//! seed's round-robin scheduler — while doing strictly less scheduler work
//! on sparse datapaths (the whole point of the refactor).
//!
//! FUs charge cycles per token moved, not per service call, so the per-FU
//! busy totals (and the makespan) are schedule-independent by construction;
//! these tests pin that invariant at the GEMM, attention and full-encoder
//! level.

use rsn::core::sim::SchedulerKind;
use rsn::eval::{Backend, CycleEngineBackend, WorkloadSpec};
use rsn::lib::api::EncoderHost;
use rsn::workloads::attention::{encoder_layer_forward, EncoderWeights};
use rsn::workloads::bert::BertConfig;
use rsn::workloads::Matrix;
use rsn::xnn::config::XnnConfig;

fn both_schedulers(workload: &WorkloadSpec) -> (rsn::eval::EvalReport, rsn::eval::EvalReport) {
    let ed = CycleEngineBackend::with_scheduler(SchedulerKind::EventDriven)
        .evaluate(workload)
        .expect("event-driven run");
    let rr = CycleEngineBackend::with_scheduler(SchedulerKind::RoundRobin)
        .evaluate(workload)
        .expect("round-robin run");
    (ed, rr)
}

#[test]
fn gemm_program_is_scheduler_equivalent() {
    let workload = WorkloadSpec::FunctionalGemm {
        m: 24,
        k: 16,
        n: 24,
        seed: 42,
    };
    let (ed, rr) = both_schedulers(&workload);
    let ed = ed.cycle.expect("cycle stats");
    let rr = rr.cycle.expect("cycle stats");
    assert_eq!(ed.uops_retired, rr.uops_retired);
    assert_eq!(ed.makespan_cycles, rr.makespan_cycles);
    assert_eq!(ed.words_transferred, rr.words_transferred);
    assert!(ed.max_abs_error.unwrap() < 1e-3);
    assert!(rr.max_abs_error.unwrap() < 1e-3);
}

#[test]
fn attention_program_is_scheduler_equivalent() {
    let workload = WorkloadSpec::FunctionalAttention {
        cfg: BertConfig::tiny(8, 2),
        seed: 42,
    };
    let (ed, rr) = both_schedulers(&workload);
    let ed = ed.cycle.expect("cycle stats");
    let rr = rr.cycle.expect("cycle stats");
    assert_eq!(ed.uops_retired, rr.uops_retired);
    assert_eq!(ed.makespan_cycles, rr.makespan_cycles);
    assert_eq!(ed.words_transferred, rr.words_transferred);
    assert!(ed.max_abs_error.unwrap() < 1e-2);
}

#[test]
fn end_to_end_encoder_matches_and_event_driven_does_less_work() {
    let model_cfg = BertConfig::tiny(8, 2);
    let x = Matrix::random(model_cfg.tokens(), model_cfg.hidden, 404);
    let weights = EncoderWeights::random(&model_cfg, 505);
    let expected = encoder_layer_forward(&model_cfg, &x, &weights);

    let run = |scheduler: SchedulerKind| {
        let mut host =
            EncoderHost::with_scheduler(XnnConfig::small(), model_cfg, scheduler).unwrap();
        let got = host.run_encoder_layer(&x, &weights).unwrap();
        assert!(got.max_abs_diff(&expected) < 1e-2, "{scheduler:?} diverges");
        let uops: u64 = host
            .segment_reports()
            .iter()
            .map(|(_, r)| r.total_uops_retired())
            .sum();
        let (_, fu_step_calls) = host.total_scheduler_work();
        (uops, host.total_makespan_cycles(), fu_step_calls, got)
    };

    let (ed_uops, ed_makespan, ed_steps, ed_out) = run(SchedulerKind::EventDriven);
    let (rr_uops, rr_makespan, rr_steps, rr_out) = run(SchedulerKind::RoundRobin);

    // Identical retirement, identical cycle accounting, identical values.
    assert_eq!(ed_uops, rr_uops);
    assert_eq!(ed_makespan, rr_makespan);
    assert_eq!(ed_out.max_abs_diff(&rr_out), 0.0);
    // ... with strictly fewer scheduler steps: the encoder run leaves most
    // of the datapath idle in any one segment, which round-robin polls
    // anyway and the ready queue skips.
    assert!(
        ed_steps < rr_steps,
        "event-driven {ed_steps} vs round-robin {rr_steps}"
    );
}

#[test]
fn encoder_workload_reports_scheduler_advantage_through_eval_layer() {
    let workload = WorkloadSpec::EncoderLayer {
        cfg: BertConfig::tiny(8, 2),
    };
    let (ed, rr) = both_schedulers(&workload);
    let ed = ed.cycle.expect("cycle stats");
    let rr = rr.cycle.expect("cycle stats");
    assert_eq!(ed.uops_retired, rr.uops_retired);
    assert_eq!(ed.makespan_cycles, rr.makespan_cycles);
    assert!(
        ed.fu_step_calls < rr.fu_step_calls,
        "event-driven {} vs round-robin {}",
        ed.fu_step_calls,
        rr.fu_step_calls
    );
}
