//! The three-level instruction decoder (§3.3, Fig. 8).
//!
//! The program is stored as a single sequence of RSN instruction packets.
//! * The **top-level decoder** fetches packets in order and routes their
//!   payload to the second-level decoder responsible for the targeted FU
//!   type; it stalls when that decoder's FIFO is full.
//! * **Second-level decoders** (one per FU type) perform the window/reuse
//!   expansion: a packet's `window` mOPs are replayed `reuse` times and
//!   forwarded to the third-level decoders of every FU selected by the mask.
//! * **Third-level decoders** are the bounded uOP FIFOs attached to each FU
//!   ([`UopQueue`](crate::uop::UopQueue)).
//!
//! Because the fetch unit is in-order and FIFOs are bounded, an
//! ill-constructed program can deadlock exactly as the paper describes: the
//! fetch stalls on a full FIFO before it reaches the instruction that would
//! let the consumer drain the producer.  The engine detects this and reports
//! [`RsnError::Deadlock`](crate::error::RsnError::Deadlock); enlarging the
//! FIFO depth (the paper uses six) resolves it.

use crate::fu::StepOutcome;
use crate::isa::Packet;
use crate::network::Datapath;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Default mOP FIFO depth between the top-level and second-level decoders.
pub const DEFAULT_MOP_FIFO_DEPTH: usize = 6;

/// Maximum uOPs a second-level decoder issues per engine pass.
const ISSUE_BURST: usize = 8;

/// Statistics describing decoder activity during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecoderStats {
    /// Packets fetched by the top-level decoder.
    pub packets_fetched: u64,
    /// uOPs issued to FU queues by second-level decoders.
    pub uops_issued: u64,
    /// Fetch attempts that stalled on a full second-level FIFO.
    pub fetch_stalls: u64,
    /// Issue attempts that stalled on a full FU uOP queue.
    pub issue_stalls: u64,
}

#[derive(Debug)]
struct ExpandState {
    packet: Packet,
    lanes: Vec<usize>,
    reuse_done: u16,
    idx: usize,
}

#[derive(Debug, Default)]
struct SecondLevelDecoder {
    fifo: VecDeque<Packet>,
    active: Option<ExpandState>,
}

/// The decoding pipeline from instruction memory to per-FU uOP queues.
#[derive(Debug)]
pub struct DecoderSystem {
    packets: Vec<Packet>,
    pc: usize,
    second: BTreeMap<u8, SecondLevelDecoder>,
    type_of_opcode: Vec<String>,
    mop_fifo_depth: usize,
    stats: DecoderStats,
}

impl DecoderSystem {
    /// Creates a decoder over `packets` for the given datapath, using the
    /// default mOP FIFO depth.
    pub fn new(datapath: &Datapath, packets: Vec<Packet>) -> Self {
        Self::with_fifo_depth(datapath, packets, DEFAULT_MOP_FIFO_DEPTH)
    }

    /// Creates a decoder with an explicit mOP FIFO depth (used to reproduce
    /// the deadlock scenario of §3.3).
    ///
    /// # Panics
    ///
    /// Panics if `mop_fifo_depth == 0`.
    pub fn with_fifo_depth(
        datapath: &Datapath,
        packets: Vec<Packet>,
        mop_fifo_depth: usize,
    ) -> Self {
        assert!(mop_fifo_depth > 0, "mOP FIFO depth must be non-zero");
        let type_of_opcode: Vec<String> = datapath.fu_types().map(|t| t.to_string()).collect();
        Self {
            packets,
            pc: 0,
            second: BTreeMap::new(),
            type_of_opcode,
            mop_fifo_depth,
            stats: DecoderStats::default(),
        }
    }

    /// Decoder statistics gathered so far.
    pub fn stats(&self) -> DecoderStats {
        self.stats
    }

    /// Returns `true` once every packet has been fetched and fully expanded.
    pub fn is_drained(&self) -> bool {
        self.pc >= self.packets.len()
            && self
                .second
                .values()
                .all(|d| d.fifo.is_empty() && d.active.is_none())
    }

    /// Advances the decoder pipeline by one engine pass.
    ///
    /// Returns [`StepOutcome::Progress`] if any packet was fetched or any
    /// uOP was issued, [`StepOutcome::Blocked`] if work remains but nothing
    /// moved, and [`StepOutcome::Idle`] once drained.
    pub fn step(&mut self, datapath: &mut Datapath) -> StepOutcome {
        let mut sink = Vec::new();
        self.step_collect(datapath, &mut sink)
    }

    /// Same as [`DecoderSystem::step`], additionally appending the id of
    /// every FU that received a uOP to `touched` (possibly with duplicates).
    /// The event-driven scheduler uses this to wake exactly the FUs whose
    /// queues gained work instead of rescanning the whole datapath.
    pub fn step_collect(
        &mut self,
        datapath: &mut Datapath,
        touched: &mut Vec<crate::fu::FuId>,
    ) -> StepOutcome {
        let mut moved = 0u64;

        // Top-level fetch: in-order, stalls on a full downstream FIFO.
        while self.pc < self.packets.len() {
            let opcode = self.packets[self.pc].header.opcode;
            let dec = self.second.entry(opcode).or_default();
            if dec.fifo.len() >= self.mop_fifo_depth {
                self.stats.fetch_stalls += 1;
                break;
            }
            dec.fifo.push_back(self.packets[self.pc].clone());
            self.pc += 1;
            self.stats.packets_fetched += 1;
            moved += 1;
        }

        // Second-level expansion: window/reuse replay into FU uOP queues.
        let opcodes: Vec<u8> = self.second.keys().copied().collect();
        for opcode in opcodes {
            let fu_type = match self.type_of_opcode.get(usize::from(opcode)) {
                Some(t) => t.clone(),
                None => continue,
            };
            let mut issued_this_pass = 0usize;
            loop {
                let dec = self.second.get_mut(&opcode).expect("decoder exists");
                if dec.active.is_none() {
                    match dec.fifo.pop_front() {
                        Some(packet) => {
                            let lanes: Vec<usize> = (0..8)
                                .filter(|bit| packet.header.mask & (1 << bit) != 0)
                                .collect();
                            dec.active = Some(ExpandState {
                                packet,
                                lanes,
                                reuse_done: 0,
                                idx: 0,
                            });
                        }
                        None => break,
                    }
                }
                if issued_this_pass >= ISSUE_BURST {
                    break;
                }
                let state = dec.active.as_mut().expect("activated above");
                if state.packet.payload.is_empty() || state.packet.header.reuse == 0 {
                    dec.active = None;
                    continue;
                }
                let uop = state.packet.payload[state.idx].clone();
                // All selected lanes must have queue space; the decoder is
                // in-order and does not reorder around a full lane.
                let targets: Vec<_> = state
                    .lanes
                    .iter()
                    .filter_map(|lane| datapath.fu_by_lane(&fu_type, *lane))
                    .collect();
                let all_free = targets
                    .iter()
                    .all(|id| !datapath.fu_mut(*id).uop_queue().is_full());
                if !all_free {
                    self.stats.issue_stalls += 1;
                    break;
                }
                for id in targets {
                    datapath
                        .fu_mut(id)
                        .push_uop(uop.clone())
                        .expect("queue space checked above");
                    self.stats.uops_issued += 1;
                    touched.push(id);
                    moved += 1;
                }
                issued_this_pass += 1;
                state.idx += 1;
                if state.idx == state.packet.payload.len() {
                    state.idx = 0;
                    state.reuse_done += 1;
                    if state.reuse_done >= state.packet.header.reuse {
                        dec.active = None;
                    }
                }
            }
        }

        if moved > 0 {
            StepOutcome::Progress { cycles: moved }
        } else if self.is_drained() {
            StepOutcome::Idle
        } else {
            StepOutcome::Blocked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::FunctionalUnit;
    use crate::fus::{MapFu, MemSinkFu, MemSourceFu};
    use crate::isa::PacketHeader;
    use crate::network::DatapathBuilder;
    use crate::program::Program;
    use crate::uop::Uop;

    fn datapath() -> (Datapath, crate::fu::FuId, crate::fu::FuId, crate::fu::FuId) {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 4);
        let s2 = b.add_stream("s2", 4);
        let src = b.add_fu(MemSourceFu::new(
            "src",
            (0..32).map(|x| x as f32).collect(),
            vec![s1],
        ));
        let map = b.add_fu(MapFu::new("map", s1, s2, |x| x + 1.0));
        let sink = b.add_fu(MemSinkFu::new("sink", 32, vec![s2]));
        (b.build().unwrap(), src, map, sink)
    }

    #[test]
    fn decoder_expands_window_and_reuse() {
        let (mut dp, src, _map, _sink) = datapath();
        let mut p = Program::new();
        for _ in 0..4 {
            p.push(src, Uop::new("read", [0, 8, 0]));
        }
        let packets = p.compress(&dp).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].header.reuse, 4);
        let mut dec = DecoderSystem::new(&dp, packets);
        // One step issues up to the FU queue depth (6), so all four fit.
        let outcome = dec.step(&mut dp);
        assert!(outcome.is_progress());
        assert_eq!(dec.stats().uops_issued, 4);
        assert!(dec.is_drained());
        assert!(dec.step(&mut dp).is_idle());
    }

    #[test]
    fn decoder_stalls_on_full_uop_queue_then_resumes() {
        let (mut dp, src, _map, _sink) = datapath();
        let mut p = Program::new();
        for _ in 0..10 {
            p.push(src, Uop::new("read", [0, 1, 0]));
        }
        let packets = p.compress(&dp).unwrap();
        let mut dec = DecoderSystem::new(&dp, packets);
        let _ = dec.step(&mut dp);
        // The FU queue depth is 6, so at most 6 uOPs can be pending.
        assert!(dec.stats().uops_issued <= 6);
        assert!(!dec.is_drained());
        assert!(dec.stats().issue_stalls > 0 || dec.stats().uops_issued == 6);
    }

    #[test]
    fn masked_packet_reaches_multiple_lanes() {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 4);
        let s2 = b.add_stream("s2", 4);
        let src0 = b.add_fu(MemSourceFu::new("src0", vec![1.0; 8], vec![s1]));
        let src1 = b.add_fu(MemSourceFu::new("src1", vec![2.0; 8], vec![s2]));
        b.add_fu(MemSinkFu::new("k0", 8, vec![s1]));
        b.add_fu(MemSinkFu::new("k1", 8, vec![s2]));
        let mut dp = b.build().unwrap();
        let opcode = dp
            .fu_types()
            .position(|t| t == "MEM_SRC")
            .expect("type present") as u8;
        let packet = Packet::new(
            PacketHeader {
                opcode,
                mask: 0b11,
                last: true,
                window: 1,
                reuse: 2,
            },
            vec![Uop::new("read", [0, 4, 0])],
        )
        .unwrap();
        let mut dec = DecoderSystem::new(&dp, vec![packet]);
        let _ = dec.step(&mut dp);
        assert_eq!(dec.stats().uops_issued, 4);
        let src0_id = dp.fus_of_type("MEM_SRC")[0];
        let src1_id = dp.fus_of_type("MEM_SRC")[1];
        assert_eq!(
            dp.fu_as::<MemSourceFu>(src0_id).unwrap().uop_queue().len(),
            2
        );
        assert_eq!(
            dp.fu_as::<MemSourceFu>(src1_id).unwrap().uop_queue().len(),
            2
        );
        let _ = (src0, src1);
    }

    #[test]
    fn fifo_depth_limits_fetch() {
        let (mut dp, src, _map, _sink) = datapath();
        let mut p = Program::new();
        // Many distinct uOPs: no reuse folding, so several multi-mOP packets.
        for i in 0..20 {
            p.push(src, Uop::new("read", [0, 1, i]));
        }
        let packets = p.compress(&dp).unwrap();
        assert!(packets.len() >= 3);
        let mut dec = DecoderSystem::with_fifo_depth(&dp, packets, 1);
        let _ = dec.step(&mut dp);
        assert!(dec.stats().fetch_stalls > 0);
    }
}
