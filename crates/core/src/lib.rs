//! # rsn-core
//!
//! The Reconfigurable Stream Network (RSN) abstraction, as described in
//! *"Reconfigurable Stream Network Architecture"* (ISCA 2025).
//!
//! RSN models an accelerator datapath as a **circuit-switched network of
//! stateful functional units (FUs)** connected by **latency-insensitive
//! streams**.  Programming a computation corresponds to *triggering a path*
//! through the network: every FU on the path receives a short sequence of
//! micro-operations (uOPs) that tell it what transformation to perform, where
//! to stream data from/to and how much of it to move.  Data is never carried
//! by instructions; producers and consumers synchronise locally through the
//! streams on the network edges.
//!
//! This crate provides:
//!
//! * [`stream`] — bounded, backpressured, statistics-tracking stream channels
//!   (the network edges),
//! * [`fu`] — the [`FunctionalUnit`] trait and the
//!   resumable-kernel step model (the network nodes),
//! * [`uop`] — the neutral uOP representation shared by the decoder and FUs,
//! * [`isa`] — RSN instruction packets (32-bit header with opcode / mask /
//!   last / window size / reuse) and their byte-level encoding,
//! * [`decoder`] — the three-level instruction decoder that fuses per-FU uOP
//!   streams into a single RSN instruction stream,
//! * [`network`] — the datapath builder and validation,
//! * [`program`] — per-FU uOP programs, path triggering and packet
//!   compression,
//! * [`sim`] — the cooperative execution engine with deadlock detection and
//!   cycle accounting,
//! * [`fus`] — small generic FUs (memory source/sink, map, router) used by
//!   examples, tests and simple overlays.
//!
//! ## Quick example
//!
//! The "increment 100 elements" overlay of Fig. 6 in the paper:
//!
//! ```
//! use rsn_core::fus::{MapFu, MemSinkFu, MemSourceFu};
//! use rsn_core::network::DatapathBuilder;
//! use rsn_core::sim::Engine;
//! use rsn_core::uop::Uop;
//!
//! # fn main() -> Result<(), rsn_core::error::RsnError> {
//! let mut b = DatapathBuilder::new();
//! let s1 = b.add_stream("fu1->fu2", 4);
//! let s3 = b.add_stream("fu2->fu3", 4);
//! let input: Vec<f32> = (0..100).map(|x| x as f32).collect();
//! let fu1 = b.add_fu(MemSourceFu::new("FU1", input, vec![s1]));
//! let fu2 = b.add_fu(MapFu::new("FU2", s1, s3, |x| x + 1.0));
//! let fu3 = b.add_fu(MemSinkFu::new("FU3", 100, vec![s3]));
//! let mut engine = Engine::new(b.build()?);
//! engine.push_uop(fu1, Uop::new("read", [0, 100, 0]));
//! engine.push_uop(fu2, Uop::new("map", [100]));
//! engine.push_uop(fu3, Uop::new("write", [0, 100, 0]));
//! let report = engine.run()?;
//! assert_eq!(engine.fu::<MemSinkFu>(fu3).unwrap().memory()[0], 1.0);
//! assert!(report.steps > 0);
//! # Ok(())
//! # }
//! ```

pub mod bytes;
pub mod data;
pub mod decoder;
pub mod error;
pub mod fu;
pub mod fus;
pub mod isa;
pub mod network;
pub mod program;
pub mod sim;
pub mod stream;
pub mod uop;

pub use data::{Tile, Token};
pub use error::RsnError;
pub use fu::{FuId, FunctionalUnit, StepOutcome};
pub use isa::{Packet, PacketHeader};
pub use network::{Datapath, DatapathBuilder};
pub use program::Program;
pub use sim::{Engine, RunReport};
pub use stream::StreamId;
pub use uop::Uop;
