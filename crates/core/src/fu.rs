//! The functional-unit abstraction — the nodes of the RSN network.
//!
//! An FU comprises a uOP decoder (modelled by its [`UopQueue`]), input and
//! output stream ports, and customised modules that transform and hold state
//! (§3.1, Fig. 4).  Each FU executes one *kernel* at a time; a uOP launches
//! one kernel execution.  Kernels are written as resumable state machines:
//! every call to [`FunctionalUnit::step`] advances the active kernel as far
//! as stream availability allows and reports whether progress was made.

use crate::stream::{StreamId, StreamSet};
use crate::uop::{Uop, UopQueue};
use serde::{Deserialize, Serialize};

/// Identifier of a functional unit within a datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuId(pub(crate) usize);

impl FuId {
    /// Raw index of this FU inside its datapath.
    pub fn index(self) -> usize {
        self.0
    }

    /// Constructs an FU id from a raw index.
    pub fn from_index(index: usize) -> Self {
        FuId(index)
    }
}

/// Result of one scheduler call into an FU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepOutcome {
    /// The FU transformed or moved data; `cycles` is the estimated number of
    /// FU-local clock cycles the work would take on hardware.
    Progress {
        /// Estimated cycles of useful work performed during this step.
        cycles: u64,
    },
    /// The FU has work pending but is blocked on stream backpressure or
    /// starvation (latency-insensitive stall).
    Blocked,
    /// The FU has no pending uOPs and no in-flight kernel.
    Idle,
}

impl StepOutcome {
    /// Convenience constructor for a single-cycle progress step.
    pub fn progress() -> Self {
        StepOutcome::Progress { cycles: 1 }
    }

    /// Returns `true` for [`StepOutcome::Progress`].
    pub fn is_progress(&self) -> bool {
        matches!(self, StepOutcome::Progress { .. })
    }

    /// Returns `true` for [`StepOutcome::Blocked`].
    pub fn is_blocked(&self) -> bool {
        matches!(self, StepOutcome::Blocked)
    }

    /// Returns `true` for [`StepOutcome::Idle`].
    pub fn is_idle(&self) -> bool {
        matches!(self, StepOutcome::Idle)
    }
}

/// A stateful functional unit in an RSN datapath.
///
/// Implementations keep their own internal buffers, ping-pong flags and
/// whatever other architectural state they need; the engine only observes
/// stream traffic and step outcomes.
pub trait FunctionalUnit: std::fmt::Debug {
    /// Human-readable instance name (e.g. `"MemA0"`).
    fn name(&self) -> &str;

    /// FU type string used by the instruction set's opcode field
    /// (e.g. `"MME"`, `"DDR"`, `"MemA"`).
    fn fu_type(&self) -> &str;

    /// Streams this FU consumes from.
    fn input_streams(&self) -> Vec<StreamId>;

    /// Streams this FU produces into.
    fn output_streams(&self) -> Vec<StreamId>;

    /// Access to the FU's pending-uOP queue (the third-level decoder FIFO).
    fn uop_queue(&self) -> &UopQueue;

    /// Mutable access to the FU's pending-uOP queue.
    fn uop_queue_mut(&mut self) -> &mut UopQueue;

    /// Advances the FU by at most one unit of work.
    ///
    /// The FU may pop a uOP from its queue to launch a kernel, move data
    /// between its internal state and the bound streams, or finish a kernel.
    /// It must never busy-wait: if it cannot make progress it returns
    /// [`StepOutcome::Blocked`] (work pending) or [`StepOutcome::Idle`]
    /// (nothing to do).
    fn step(&mut self, streams: &mut StreamSet) -> StepOutcome;

    /// Returns `true` when the FU has neither pending uOPs nor an in-flight
    /// kernel.  The default implementation only consults the uOP queue;
    /// FUs with multi-step kernels must override it.
    fn is_idle(&self) -> bool {
        self.uop_queue().is_empty()
    }

    /// Enqueues a uOP, returning it back if the FIFO is full.
    fn push_uop(&mut self, uop: Uop) -> Result<(), Uop> {
        self.uop_queue_mut().try_push(uop)
    }

    /// Downcast support so callers can inspect concrete FU state after a run.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcast support so hosts can configure concrete FU state
    /// (e.g. preload an off-chip memory FU) between runs.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamSet;

    #[derive(Debug)]
    struct NopFu {
        name: String,
        queue: UopQueue,
    }

    impl NopFu {
        fn new() -> Self {
            Self {
                name: "nop".to_string(),
                queue: UopQueue::default(),
            }
        }
    }

    impl FunctionalUnit for NopFu {
        fn name(&self) -> &str {
            &self.name
        }
        fn fu_type(&self) -> &str {
            "NOP"
        }
        fn input_streams(&self) -> Vec<StreamId> {
            Vec::new()
        }
        fn output_streams(&self) -> Vec<StreamId> {
            Vec::new()
        }
        fn uop_queue(&self) -> &UopQueue {
            &self.queue
        }
        fn uop_queue_mut(&mut self) -> &mut UopQueue {
            &mut self.queue
        }
        fn step(&mut self, _streams: &mut StreamSet) -> StepOutcome {
            match self.queue.pop() {
                Some(_) => StepOutcome::progress(),
                None => StepOutcome::Idle,
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn default_is_idle_follows_queue() {
        let mut fu = NopFu::new();
        assert!(fu.is_idle());
        fu.push_uop(Uop::new("x", [])).unwrap();
        assert!(!fu.is_idle());
    }

    #[test]
    fn step_outcome_predicates() {
        assert!(StepOutcome::progress().is_progress());
        assert!(StepOutcome::Blocked.is_blocked());
        assert!(StepOutcome::Idle.is_idle());
        assert!(!StepOutcome::Idle.is_progress());
    }

    #[test]
    fn nop_fu_consumes_one_uop_per_step() {
        let mut fu = NopFu::new();
        let mut streams = StreamSet::new();
        fu.push_uop(Uop::new("a", [])).unwrap();
        fu.push_uop(Uop::new("b", [])).unwrap();
        assert!(fu.step(&mut streams).is_progress());
        assert!(fu.step(&mut streams).is_progress());
        assert!(fu.step(&mut streams).is_idle());
    }

    #[test]
    fn fu_id_roundtrip() {
        assert_eq!(FuId::from_index(3).index(), 3);
    }
}
