//! The micro-operation (uOP) representation.
//!
//! A uOP launches exactly one execution of a kernel on one FU (§3.1).  It
//! carries only *control* information — what transformation to perform, which
//! neighbouring FU to stream to/from, how long the stream is — never data.
//! Because every FU type has its own control plane (Table 2 of the paper),
//! the core crate keeps uOPs neutral: a short opcode string plus a vector of
//! signed integer fields.  Domain crates (e.g. `rsn-xnn`) define typed
//! constructors and interpreters on top.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single micro-operation destined for one functional unit.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Uop {
    opcode: String,
    fields: Vec<i64>,
}

impl Uop {
    /// Creates a uOP with the given opcode and fields.
    pub fn new(opcode: impl Into<String>, fields: impl IntoIterator<Item = i64>) -> Self {
        Self {
            opcode: opcode.into(),
            fields: fields.into_iter().collect(),
        }
    }

    /// The opcode mnemonic.
    pub fn opcode(&self) -> &str {
        &self.opcode
    }

    /// All control fields.
    pub fn fields(&self) -> &[i64] {
        &self.fields
    }

    /// Field at `idx`, or `None` if absent.
    pub fn field(&self, idx: usize) -> Option<i64> {
        self.fields.get(idx).copied()
    }

    /// Field at `idx` interpreted as a flag (non-zero = true).
    pub fn flag(&self, idx: usize) -> bool {
        self.field(idx).map(|v| v != 0).unwrap_or(false)
    }

    /// Field at `idx` as `usize`, clamped at zero.
    pub fn unsigned(&self, idx: usize) -> usize {
        self.field(idx).map(|v| v.max(0) as usize).unwrap_or(0)
    }

    /// Number of control fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Encoded size of this uOP in bytes, as counted for the paper's Fig. 9
    /// instruction-footprint comparison.
    ///
    /// The translated uOP format used on the PL side is a fixed 1-byte opcode
    /// plus 4 bytes per control field (the AIE side uses a single 4-byte
    /// control word, which domain code models separately).
    pub fn encoded_len(&self) -> usize {
        1 + 4 * self.fields.len()
    }
}

impl fmt::Display for Uop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.opcode)?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A bounded queue of uOPs pending at one FU.
///
/// The depth models the third-level decoder FIFO in front of each FU; the
/// paper reports that a depth of six between the uOP and mOP decoders is
/// deadlock-free for RSN-XNN (§3.3).
#[derive(Debug, Clone)]
pub struct UopQueue {
    depth: usize,
    queue: std::collections::VecDeque<Uop>,
    accepted: u64,
    retired: u64,
}

/// Default per-FU uOP FIFO depth (matches the paper's deadlock-free setting).
pub const DEFAULT_UOP_FIFO_DEPTH: usize = 6;

impl UopQueue {
    /// Creates an empty queue with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "uop queue depth must be non-zero");
        Self {
            depth,
            queue: std::collections::VecDeque::with_capacity(depth),
            accepted: 0,
            retired: 0,
        }
    }

    /// Maximum number of pending uOPs.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of pending uOPs.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when no uOPs are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Returns `true` when the queue cannot accept another uOP.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.depth
    }

    /// Attempts to enqueue a uOP, returning it back when the queue is full.
    pub fn try_push(&mut self, uop: Uop) -> Result<(), Uop> {
        if self.is_full() {
            return Err(uop);
        }
        self.accepted += 1;
        self.queue.push_back(uop);
        Ok(())
    }

    /// Pops the next uOP to execute.
    pub fn pop(&mut self) -> Option<Uop> {
        let u = self.queue.pop_front();
        if u.is_some() {
            self.retired += 1;
        }
        u
    }

    /// Peeks at the next uOP without consuming it.
    pub fn peek(&self) -> Option<&Uop> {
        self.queue.front()
    }

    /// Total uOPs ever accepted.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Total uOPs ever retired (popped for execution).
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

impl Default for UopQueue {
    fn default() -> Self {
        Self::new(DEFAULT_UOP_FIFO_DEPTH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uop_fields_and_flags() {
        let u = Uop::new("load", [1, 0, 42, -3]);
        assert_eq!(u.opcode(), "load");
        assert_eq!(u.field_count(), 4);
        assert_eq!(u.field(2), Some(42));
        assert_eq!(u.field(9), None);
        assert!(u.flag(0));
        assert!(!u.flag(1));
        assert!(!u.flag(10));
        assert_eq!(u.unsigned(3), 0);
        assert_eq!(u.unsigned(2), 42);
    }

    #[test]
    fn uop_encoded_len_counts_header_and_fields() {
        assert_eq!(Uop::new("x", []).encoded_len(), 1);
        assert_eq!(Uop::new("x", [1, 2, 3]).encoded_len(), 13);
    }

    #[test]
    fn uop_display_is_readable() {
        let u = Uop::new("send", [2, 100]);
        assert_eq!(u.to_string(), "send(2, 100)");
    }

    #[test]
    fn queue_respects_depth_and_order() {
        let mut q = UopQueue::new(2);
        assert!(q.try_push(Uop::new("a", [])).is_ok());
        assert!(q.try_push(Uop::new("b", [])).is_ok());
        assert!(q.is_full());
        let rejected = q.try_push(Uop::new("c", []));
        assert!(rejected.is_err());
        assert_eq!(q.pop().unwrap().opcode(), "a");
        assert_eq!(q.peek().unwrap().opcode(), "b");
        assert_eq!(q.accepted(), 2);
        assert_eq!(q.retired(), 1);
    }

    #[test]
    fn default_queue_depth_matches_paper() {
        assert_eq!(UopQueue::default().depth(), 6);
    }
}
