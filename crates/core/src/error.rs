//! Error types for the RSN core crate.

use std::fmt;

/// Errors produced while building or executing an RSN datapath.
#[derive(Debug, Clone, PartialEq)]
pub enum RsnError {
    /// A stream referenced by an FU does not exist in the datapath.
    UnknownStream {
        /// The offending stream index.
        stream: usize,
        /// The FU that referenced it.
        fu: String,
    },
    /// A functional unit id is out of range.
    UnknownFu {
        /// The offending FU index.
        fu: usize,
    },
    /// A stream has no producer, no consumer, or more than one of either.
    MalformedEdge {
        /// Stream name.
        stream: String,
        /// Number of producers attached.
        producers: usize,
        /// Number of consumers attached.
        consumers: usize,
    },
    /// The engine reached a state where no FU can make progress but work
    /// remains — the deadlock scenario discussed in §3.3 of the paper.
    Deadlock {
        /// Engine step at which the deadlock was detected.
        step: u64,
        /// Names of FUs blocked on stream backpressure or starvation.
        blocked: Vec<String>,
    },
    /// An FU received a uOP whose opcode or fields it cannot interpret.
    InvalidUop {
        /// The FU that rejected the uOP.
        fu: String,
        /// Human-readable reason.
        reason: String,
    },
    /// Instruction packet encoding or decoding failed.
    Encoding {
        /// Human-readable reason.
        reason: String,
    },
    /// A configuration value was outside its valid range.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The engine exceeded its step budget without quiescing.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for RsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsnError::UnknownStream { stream, fu } => {
                write!(
                    f,
                    "functional unit `{fu}` references unknown stream {stream}"
                )
            }
            RsnError::UnknownFu { fu } => write!(f, "unknown functional unit id {fu}"),
            RsnError::MalformedEdge {
                stream,
                producers,
                consumers,
            } => write!(
                f,
                "stream `{stream}` must have exactly one producer and one consumer \
                 (found {producers} producers, {consumers} consumers)"
            ),
            RsnError::Deadlock { step, blocked } => write!(
                f,
                "deadlock detected at step {step}: blocked functional units {blocked:?}"
            ),
            RsnError::InvalidUop { fu, reason } => {
                write!(f, "functional unit `{fu}` rejected uOP: {reason}")
            }
            RsnError::Encoding { reason } => write!(f, "instruction encoding error: {reason}"),
            RsnError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            RsnError::StepLimitExceeded { limit } => {
                write!(f, "engine exceeded step limit of {limit} without quiescing")
            }
        }
    }
}

impl std::error::Error for RsnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = vec![
            RsnError::UnknownStream {
                stream: 3,
                fu: "MemA0".to_string(),
            },
            RsnError::UnknownFu { fu: 9 },
            RsnError::MalformedEdge {
                stream: "s0".to_string(),
                producers: 0,
                consumers: 2,
            },
            RsnError::Deadlock {
                step: 12,
                blocked: vec!["FU1".to_string()],
            },
            RsnError::InvalidUop {
                fu: "MME0".to_string(),
                reason: "bad opcode".to_string(),
            },
            RsnError::Encoding {
                reason: "window too large".to_string(),
            },
            RsnError::InvalidConfig {
                reason: "zero capacity".to_string(),
            },
            RsnError::StepLimitExceeded { limit: 10 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RsnError>();
    }

    #[test]
    fn errors_compare_equal_by_value() {
        assert_eq!(RsnError::UnknownFu { fu: 1 }, RsnError::UnknownFu { fu: 1 });
        assert_ne!(RsnError::UnknownFu { fu: 1 }, RsnError::UnknownFu { fu: 2 });
    }
}
