//! Minimal byte-buffer types for the instruction-stream codec.
//!
//! The ISA codec only needs append-and-freeze on the encode side and an
//! in-order cursor on the decode side, so these two types are implemented
//! inline (mirroring the small slice of the `bytes` crate's API that
//! [`crate::isa`] uses) to keep the workspace free of external dependencies.

/// Growable byte buffer used while encoding an instruction stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32_le(&mut self, v: i32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable, readable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

/// Immutable byte stream with an in-order read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps an owned byte vector.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }

    /// Total length of the underlying stream (independent of the cursor).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the underlying stream is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` while unread bytes remain.
    pub fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the stream is exhausted (callers check `remaining` first).
    pub fn get_u8(&mut self) -> u8 {
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain.
    pub fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.data[self.pos..self.pos + 4]);
        self.pos += 4;
        u32::from_le_bytes(raw)
    }

    /// Returns a fresh stream over a sub-range of the underlying bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self {
            data: self.data[range].to_vec(),
            pos: 0,
        }
    }

    /// Reads a little-endian `i32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain.
    pub fn get_i32_le(&mut self) -> i32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.data[self.pos..self.pos + 4]);
        self.pos += 4;
        i32::from_le_bytes(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_freeze() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_i32_le(-42);
        assert_eq!(buf.len(), 9);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_i32_le(), -42);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn remaining_tracks_cursor() {
        let mut bytes = Bytes::from_vec(vec![1, 2, 3]);
        assert_eq!(bytes.remaining(), 3);
        let _ = bytes.get_u8();
        assert_eq!(bytes.remaining(), 2);
        assert_eq!(bytes.len(), 3);
    }
}
