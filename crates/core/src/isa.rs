//! RSN instruction packets and their byte-level encoding (§3.3).
//!
//! The program for a whole datapath is stored as a single sequence of RSN
//! instruction packets.  Each packet is a UDP-like unit with a **32-bit
//! header** and a payload of macro-operations (mOPs):
//!
//! * `opcode` — the targeted FU type,
//! * `mask` — which FU instances of that type are targeted,
//! * `last` — signals FU exit,
//! * `window` — number of mOPs in this packet,
//! * `reuse` — how many times the payload window is replayed.
//!
//! The `window`/`reuse` mechanism is what lets one short packet drive long,
//! repetitive uOP sequences ("send to FU1 then FU2, 128 times") and is the
//! source of the compression ratios reported in the paper's Fig. 9.

use crate::bytes::{Bytes, BytesMut};
use crate::error::RsnError;
use crate::uop::Uop;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bit widths of the packed 32-bit packet header.
pub mod header_bits {
    /// Bits for the FU-type opcode field.
    pub const OPCODE: u32 = 4;
    /// Bits for the FU-instance selection mask.
    pub const MASK: u32 = 8;
    /// Bits for the `last` flag.
    pub const LAST: u32 = 1;
    /// Bits for the window size.
    pub const WINDOW: u32 = 7;
    /// Bits for the reuse count.
    pub const REUSE: u32 = 12;
}

/// Maximum window size representable in the packed header.
pub const MAX_WINDOW: usize = (1 << header_bits::WINDOW) - 1;
/// Maximum reuse count representable in the packed header.
pub const MAX_REUSE: usize = (1 << header_bits::REUSE) - 1;
/// Maximum FU-type opcode value.
pub const MAX_OPCODE: u8 = (1 << header_bits::OPCODE) - 1;

/// The 32-bit RSN packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketHeader {
    /// FU-type opcode (index into the datapath's FU-type table).
    pub opcode: u8,
    /// Bitmask selecting FU instances of that type (bit *i* selects lane *i*).
    pub mask: u8,
    /// When set, the targeted FUs exit after draining this packet.
    pub last: bool,
    /// Number of mOPs in the payload window.
    pub window: u8,
    /// Number of times the window is replayed by the second-level decoder.
    pub reuse: u16,
}

impl PacketHeader {
    /// Packs the header into its 32-bit wire representation.
    ///
    /// # Errors
    ///
    /// Returns [`RsnError::Encoding`] when a field exceeds its bit width.
    pub fn pack(&self) -> Result<u32, RsnError> {
        if u32::from(self.opcode) > u32::from(MAX_OPCODE) {
            return Err(RsnError::Encoding {
                reason: format!(
                    "opcode {} exceeds {} bits",
                    self.opcode,
                    header_bits::OPCODE
                ),
            });
        }
        if usize::from(self.window) > MAX_WINDOW {
            return Err(RsnError::Encoding {
                reason: format!(
                    "window {} exceeds {} bits",
                    self.window,
                    header_bits::WINDOW
                ),
            });
        }
        if usize::from(self.reuse) > MAX_REUSE {
            return Err(RsnError::Encoding {
                reason: format!("reuse {} exceeds {} bits", self.reuse, header_bits::REUSE),
            });
        }
        let mut word: u32 = 0;
        let mut shift = 0;
        word |= u32::from(self.opcode) << shift;
        shift += header_bits::OPCODE;
        word |= u32::from(self.mask) << shift;
        shift += header_bits::MASK;
        word |= u32::from(self.last) << shift;
        shift += header_bits::LAST;
        word |= u32::from(self.window) << shift;
        shift += header_bits::WINDOW;
        word |= u32::from(self.reuse) << shift;
        Ok(word)
    }

    /// Unpacks a header from its 32-bit wire representation.
    pub fn unpack(word: u32) -> Self {
        let mut shift = 0;
        let opcode = ((word >> shift) & ((1 << header_bits::OPCODE) - 1)) as u8;
        shift += header_bits::OPCODE;
        let mask = ((word >> shift) & ((1 << header_bits::MASK) - 1)) as u8;
        shift += header_bits::MASK;
        let last = ((word >> shift) & 1) != 0;
        shift += header_bits::LAST;
        let window = ((word >> shift) & ((1 << header_bits::WINDOW) - 1)) as u8;
        shift += header_bits::WINDOW;
        let reuse = ((word >> shift) & ((1 << header_bits::REUSE) - 1)) as u16;
        PacketHeader {
            opcode,
            mask,
            last,
            window,
            reuse,
        }
    }
}

/// One RSN instruction packet: a header plus `window` mOPs.
///
/// In this reproduction an mOP is represented by the same neutral [`Uop`]
/// structure that third-level decoders hand to FUs; the second-level decoder
/// performs the window/reuse expansion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// The packed header fields.
    pub header: PacketHeader,
    /// Payload of `header.window` macro-operations.
    pub payload: Vec<Uop>,
}

impl Packet {
    /// Creates a packet, checking that the payload length matches the header
    /// window and that header fields are encodable.
    ///
    /// # Errors
    ///
    /// Returns [`RsnError::Encoding`] on any mismatch.
    pub fn new(header: PacketHeader, payload: Vec<Uop>) -> Result<Self, RsnError> {
        if payload.len() != usize::from(header.window) {
            return Err(RsnError::Encoding {
                reason: format!(
                    "payload length {} does not match window {}",
                    payload.len(),
                    header.window
                ),
            });
        }
        header.pack()?;
        Ok(Self { header, payload })
    }

    /// Number of uOPs this packet expands to (window × reuse) per selected FU.
    pub fn expanded_uop_count(&self) -> usize {
        self.payload.len() * usize::from(self.header.reuse)
    }

    /// Number of FU lanes selected by the mask.
    pub fn selected_lane_count(&self) -> usize {
        self.header.mask.count_ones() as usize
    }

    /// Encoded size of this packet in bytes: 4-byte header plus payload.
    pub fn encoded_len(&self) -> usize {
        4 + self.payload.iter().map(Uop::encoded_len).sum::<usize>()
    }
}

/// Maps uOP opcode mnemonics to stable numeric ids for byte-level encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpcodeRegistry {
    by_name: BTreeMap<String, u8>,
    names: Vec<String>,
}

impl OpcodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, registering it if necessary.
    ///
    /// # Errors
    ///
    /// Returns [`RsnError::Encoding`] when more than 256 distinct opcodes
    /// are registered.
    pub fn intern(&mut self, name: &str) -> Result<u8, RsnError> {
        if let Some(id) = self.by_name.get(name) {
            return Ok(*id);
        }
        if self.names.len() >= 256 {
            return Err(RsnError::Encoding {
                reason: "opcode registry overflow (more than 256 opcodes)".to_string(),
            });
        }
        let id = self.names.len() as u8;
        self.by_name.insert(name.to_string(), id);
        self.names.push(name.to_string());
        Ok(id)
    }

    /// Looks up a previously interned opcode id.
    pub fn id_of(&self, name: &str) -> Option<u8> {
        self.by_name.get(name).copied()
    }

    /// Reverse lookup from id to mnemonic.
    pub fn name_of(&self, id: u8) -> Option<&str> {
        self.names.get(usize::from(id)).map(String::as_str)
    }

    /// Number of registered opcodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when no opcodes are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Serialises a sequence of packets to the byte stream stored in instruction
/// memory, interning uOP opcodes through `registry`.
///
/// # Errors
///
/// Returns [`RsnError::Encoding`] when a header field or field count exceeds
/// its representable range.
pub fn encode_packets(
    packets: &[Packet],
    registry: &mut OpcodeRegistry,
) -> Result<Bytes, RsnError> {
    let mut buf = BytesMut::new();
    for p in packets {
        buf.put_u32_le(p.header.pack()?);
        for mop in &p.payload {
            let id = registry.intern(mop.opcode())?;
            if mop.field_count() > 255 {
                return Err(RsnError::Encoding {
                    reason: format!("uOP `{}` has more than 255 fields", mop.opcode()),
                });
            }
            buf.put_u8(id);
            buf.put_u8(mop.field_count() as u8);
            for f in mop.fields() {
                let v = i32::try_from(*f).map_err(|_| RsnError::Encoding {
                    reason: format!("uOP field {f} does not fit in 32 bits"),
                })?;
                buf.put_i32_le(v);
            }
        }
    }
    Ok(buf.freeze())
}

/// Parses a byte stream produced by [`encode_packets`] back into packets.
///
/// # Errors
///
/// Returns [`RsnError::Encoding`] on truncated input or unknown opcode ids.
pub fn decode_packets(
    mut bytes: Bytes,
    registry: &OpcodeRegistry,
) -> Result<Vec<Packet>, RsnError> {
    let mut packets = Vec::new();
    while bytes.has_remaining() {
        if bytes.remaining() < 4 {
            return Err(RsnError::Encoding {
                reason: "truncated packet header".to_string(),
            });
        }
        let header = PacketHeader::unpack(bytes.get_u32_le());
        let mut payload = Vec::with_capacity(usize::from(header.window));
        for _ in 0..header.window {
            if bytes.remaining() < 2 {
                return Err(RsnError::Encoding {
                    reason: "truncated mOP header".to_string(),
                });
            }
            let id = bytes.get_u8();
            let nfields = usize::from(bytes.get_u8());
            let name = registry.name_of(id).ok_or_else(|| RsnError::Encoding {
                reason: format!("unknown opcode id {id}"),
            })?;
            if bytes.remaining() < 4 * nfields {
                return Err(RsnError::Encoding {
                    reason: "truncated mOP fields".to_string(),
                });
            }
            let mut fields = Vec::with_capacity(nfields);
            for _ in 0..nfields {
                fields.push(i64::from(bytes.get_i32_le()));
            }
            payload.push(Uop::new(name, fields));
        }
        packets.push(Packet { header, payload });
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> PacketHeader {
        PacketHeader {
            opcode: 3,
            mask: 0b0000_0011,
            last: false,
            window: 2,
            reuse: 128,
        }
    }

    #[test]
    fn header_bits_sum_to_32() {
        assert_eq!(
            header_bits::OPCODE
                + header_bits::MASK
                + header_bits::LAST
                + header_bits::WINDOW
                + header_bits::REUSE,
            32
        );
    }

    #[test]
    fn header_pack_unpack_roundtrip() {
        let h = header();
        let packed = h.pack().unwrap();
        assert_eq!(PacketHeader::unpack(packed), h);
    }

    #[test]
    fn header_rejects_out_of_range_fields() {
        let mut h = header();
        h.reuse = (MAX_REUSE + 1) as u16;
        assert!(h.pack().is_err());
        let mut h = header();
        h.window = (MAX_WINDOW + 1) as u8;
        assert!(h.pack().is_err());
    }

    #[test]
    fn packet_rejects_window_mismatch() {
        let err = Packet::new(header(), vec![Uop::new("a", [])]);
        assert!(err.is_err());
    }

    #[test]
    fn packet_expansion_counts() {
        let p = Packet::new(header(), vec![Uop::new("a", [1]), Uop::new("b", [2])]).unwrap();
        assert_eq!(p.expanded_uop_count(), 256);
        assert_eq!(p.selected_lane_count(), 2);
        assert_eq!(p.encoded_len(), 4 + 5 + 5);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let packets = vec![
            Packet::new(
                PacketHeader {
                    opcode: 1,
                    mask: 0b1,
                    last: false,
                    window: 2,
                    reuse: 3,
                },
                vec![Uop::new("load", [0, 96]), Uop::new("send", [1, 96])],
            )
            .unwrap(),
            Packet::new(
                PacketHeader {
                    opcode: 2,
                    mask: 0b11,
                    last: true,
                    window: 1,
                    reuse: 1,
                },
                vec![Uop::new("store", [5, -1, 64])],
            )
            .unwrap(),
        ];
        let mut reg = OpcodeRegistry::new();
        let bytes = encode_packets(&packets, &mut reg).unwrap();
        let decoded = decode_packets(bytes, &reg).unwrap();
        assert_eq!(decoded, packets);
    }

    #[test]
    fn decode_rejects_truncated_stream() {
        let packets = vec![Packet::new(
            PacketHeader {
                opcode: 0,
                mask: 1,
                last: false,
                window: 1,
                reuse: 1,
            },
            vec![Uop::new("x", [1, 2, 3])],
        )
        .unwrap()];
        let mut reg = OpcodeRegistry::new();
        let bytes = encode_packets(&packets, &mut reg).unwrap();
        let truncated = bytes.slice(0..bytes.len() - 3);
        assert!(decode_packets(truncated, &reg).is_err());
    }

    #[test]
    fn registry_interning_is_stable() {
        let mut reg = OpcodeRegistry::new();
        let a = reg.intern("load").unwrap();
        let b = reg.intern("send").unwrap();
        assert_eq!(reg.intern("load").unwrap(), a);
        assert_ne!(a, b);
        assert_eq!(reg.name_of(a), Some("load"));
        assert_eq!(reg.id_of("send"), Some(b));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }
}
