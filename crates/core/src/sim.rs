//! The execution engine.
//!
//! RSN execution is decentralised: every FU works through its own uOP queue
//! and synchronises with its neighbours only through streams (§3.1).  The
//! engine models this with a cooperative round-robin scheduler: each *pass*
//! gives the decoder and every FU one chance to make progress.  A pass in
//! which nothing moves while work remains is a deadlock; a pass in which
//! everything is idle and drained terminates the run.
//!
//! Cycle accounting is per-FU: each FU reports how many of its own clock
//! cycles a step consumed, and the engine keeps per-FU busy counters.  The
//! makespan estimate (the maximum busy counter) is a coarse lower bound used
//! by tests; the calibrated latency numbers of the evaluation come from the
//! analytic timing model in `rsn-xnn`.

use crate::decoder::{DecoderStats, DecoderSystem};
use crate::error::RsnError;
use crate::fu::{FuId, StepOutcome};
use crate::isa::Packet;
use crate::network::Datapath;
use crate::program::Program;
use crate::stream::StreamStats;
use crate::uop::Uop;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Default bound on engine passes before aborting a run.
pub const DEFAULT_STEP_LIMIT: u64 = 50_000_000;

/// Summary of one engine run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of scheduler passes executed.
    pub steps: u64,
    /// Per-FU busy cycles (indexed by FU id).
    pub fu_busy_cycles: Vec<u64>,
    /// Per-FU retired uOP counts (indexed by FU id).
    pub fu_uops_retired: Vec<u64>,
    /// Decoder statistics, if the run was driven from instruction packets.
    pub decoder: Option<DecoderStats>,
    /// Aggregate statistics of every stream edge.
    pub stream_stats: Vec<(String, StreamStats)>,
    /// Tokens left in flight when the run ended (should be zero for a
    /// well-formed program).
    pub residual_tokens: usize,
}

impl RunReport {
    /// Coarse makespan estimate: the largest per-FU busy-cycle count.
    pub fn makespan_cycles(&self) -> u64 {
        self.fu_busy_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Total FP32-equivalent words moved over all streams.
    pub fn total_words_transferred(&self) -> u64 {
        self.stream_stats
            .iter()
            .map(|(_, s)| s.words_transferred)
            .sum()
    }

    /// Total uOPs retired across all FUs.
    pub fn total_uops_retired(&self) -> u64 {
        self.fu_uops_retired.iter().sum()
    }
}

/// The cooperative RSN execution engine.
#[derive(Debug)]
pub struct Engine {
    datapath: Datapath,
    decoder: Option<DecoderSystem>,
    backlog: BTreeMap<FuId, VecDeque<Uop>>,
    step_limit: u64,
}

impl Engine {
    /// Creates an engine over a validated datapath.
    pub fn new(datapath: Datapath) -> Self {
        Self {
            datapath,
            decoder: None,
            backlog: BTreeMap::new(),
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Replaces the pass budget (mainly useful to force the step-limit error
    /// in tests).
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// The underlying datapath.
    pub fn datapath(&self) -> &Datapath {
        &self.datapath
    }

    /// Consumes the engine and returns the datapath (with its post-run FU
    /// state).
    pub fn into_datapath(self) -> Datapath {
        self.datapath
    }

    /// Borrows a concrete FU for state inspection.
    pub fn fu<T: 'static>(&self, id: FuId) -> Option<&T> {
        self.datapath.fu_as(id)
    }

    /// Mutably borrows a concrete FU, e.g. to preload input data or read out
    /// and reset statistics between runs.
    pub fn fu_mut<T: 'static>(&mut self, id: FuId) -> Option<&mut T> {
        self.datapath.fu_as_mut(id)
    }

    /// Queues a uOP for delivery to `fu`.
    ///
    /// Delivery is through an unbounded per-FU backlog that tops up the FU's
    /// bounded uOP FIFO as space becomes available, which models an FU whose
    /// uOP sequence is stored locally (the paper's AIE MMEs).
    pub fn push_uop(&mut self, fu: FuId, uop: Uop) {
        self.backlog.entry(fu).or_default().push_back(uop);
    }

    /// Queues a whole per-FU program.
    pub fn load_program(&mut self, program: &Program) {
        for (fu, uops) in program.iter() {
            self.backlog
                .entry(fu)
                .or_default()
                .extend(uops.iter().cloned());
        }
    }

    /// Drives the run from an RSN instruction packet stream through the
    /// three-level decoder instead of (or in addition to) direct uOP
    /// backlogs.
    pub fn load_packets(&mut self, packets: Vec<Packet>) {
        self.decoder = Some(DecoderSystem::new(&self.datapath, packets));
    }

    /// Same as [`Engine::load_packets`] but with an explicit decoder FIFO
    /// depth (used to reproduce the §3.3 deadlock discussion).
    pub fn load_packets_with_fifo_depth(&mut self, packets: Vec<Packet>, depth: usize) {
        self.decoder = Some(DecoderSystem::with_fifo_depth(&self.datapath, packets, depth));
    }

    fn feed_backlogs(&mut self) -> u64 {
        let mut moved = 0;
        for (fu, queue) in self.backlog.iter_mut() {
            while let Some(uop) = queue.front() {
                let target = self.datapath.fu_mut(*fu);
                if target.uop_queue().is_full() {
                    break;
                }
                target
                    .push_uop(uop.clone())
                    .expect("queue space checked above");
                queue.pop_front();
                moved += 1;
            }
        }
        self.backlog.retain(|_, q| !q.is_empty());
        moved
    }

    /// Runs until every FU is idle, all streams are drained of producer
    /// work, and the decoder (if any) has issued every uOP.
    ///
    /// # Errors
    ///
    /// * [`RsnError::Deadlock`] if a pass makes no progress while work
    ///   remains (stream backpressure cycle or decoder-order deadlock).
    /// * [`RsnError::StepLimitExceeded`] if the pass budget is exhausted.
    pub fn run(&mut self) -> Result<RunReport, RsnError> {
        let fu_count = self.datapath.fu_count();
        let mut busy = vec![0u64; fu_count];
        let mut steps = 0u64;
        loop {
            if steps >= self.step_limit {
                return Err(RsnError::StepLimitExceeded {
                    limit: self.step_limit,
                });
            }
            steps += 1;
            let mut progressed = false;
            let mut any_pending = false;

            if self.feed_backlogs() > 0 {
                progressed = true;
            }
            if !self.backlog.is_empty() {
                any_pending = true;
            }

            if let Some(decoder) = self.decoder.as_mut() {
                match decoder.step(&mut self.datapath) {
                    StepOutcome::Progress { .. } => progressed = true,
                    StepOutcome::Blocked => any_pending = true,
                    StepOutcome::Idle => {}
                }
            }

            let mut blocked_names: Vec<String> = Vec::new();
            {
                let (fus, streams) = self.datapath.split_mut();
                for (i, fu) in fus.iter_mut().enumerate() {
                    match fu.step(streams) {
                        StepOutcome::Progress { cycles } => {
                            busy[i] += cycles;
                            progressed = true;
                        }
                        StepOutcome::Blocked => {
                            any_pending = true;
                            blocked_names.push(fu.name().to_string());
                        }
                        StepOutcome::Idle => {
                            if !fu.is_idle() {
                                any_pending = true;
                            }
                        }
                    }
                }
            }

            if !progressed {
                if any_pending {
                    return Err(RsnError::Deadlock {
                        step: steps,
                        blocked: blocked_names,
                    });
                }
                break;
            }
        }

        let fu_uops_retired = (0..fu_count)
            .map(|i| self.datapath.fu_mut(FuId(i)).uop_queue().retired())
            .collect();
        let stream_stats = self
            .datapath
            .streams()
            .iter()
            .map(|(_, ch)| (ch.name().to_string(), ch.stats()))
            .collect();
        Ok(RunReport {
            steps,
            fu_busy_cycles: busy,
            fu_uops_retired,
            decoder: self.decoder.as_ref().map(DecoderSystem::stats),
            stream_stats,
            residual_tokens: self.datapath.streams().total_queued(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fus::{MapFu, MemSinkFu, MemSourceFu};
    use crate::network::DatapathBuilder;

    fn pipeline(n: usize) -> (Engine, FuId, FuId, FuId) {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 4);
        let s2 = b.add_stream("s2", 4);
        let input: Vec<f32> = (0..n).map(|x| x as f32).collect();
        let src = b.add_fu(MemSourceFu::new("FU1", input, vec![s1]));
        let map = b.add_fu(MapFu::new("FU2", s1, s2, |x| x + 1.0));
        let sink = b.add_fu(MemSinkFu::new("FU3", n, vec![s2]));
        (Engine::new(b.build().unwrap()), src, map, sink)
    }

    #[test]
    fn program_and_packet_paths_give_identical_results() {
        let n = 100;
        // Direct backlog path.
        let (mut e1, src, map, sink) = pipeline(n);
        let mut program = Program::new();
        program.push(src, Uop::new("read", [0, n as i64, 0]));
        program.push(map, Uop::new("map", [n as i64]));
        program.push(sink, Uop::new("write", [0, n as i64, 0]));
        e1.load_program(&program);
        let r1 = e1.run().unwrap();
        let out1 = e1.fu::<MemSinkFu>(sink).unwrap().memory().to_vec();

        // Packet/decoder path.
        let (mut e2, src2, map2, sink2) = pipeline(n);
        let mut program2 = Program::new();
        program2.push(src2, Uop::new("read", [0, n as i64, 0]));
        program2.push(map2, Uop::new("map", [n as i64]));
        program2.push(sink2, Uop::new("write", [0, n as i64, 0]));
        let packets = program2.compress(e2.datapath()).unwrap();
        e2.load_packets(packets);
        let r2 = e2.run().unwrap();
        let out2 = e2.fu::<MemSinkFu>(sink2).unwrap().memory().to_vec();

        assert_eq!(out1, out2);
        assert_eq!(r1.total_uops_retired(), r2.total_uops_retired());
        assert!(r2.decoder.unwrap().uops_issued >= 3);
        assert_eq!(r1.residual_tokens, 0);
        assert_eq!(r2.residual_tokens, 0);
    }

    #[test]
    fn mismatched_send_receive_counts_deadlock() {
        // FU3 expects 8 tokens but FU1 only sends 4: the paper's
        // "receives exceed sends" case blocks indefinitely.
        let (mut engine, src, map, sink) = pipeline(8);
        engine.push_uop(src, Uop::new("read", [0, 4, 0]));
        engine.push_uop(map, Uop::new("map", [4]));
        engine.push_uop(sink, Uop::new("write", [0, 8, 0]));
        let err = engine.run().unwrap_err();
        assert!(matches!(err, RsnError::Deadlock { .. }));
    }

    #[test]
    fn excess_sends_leave_residual_tokens() {
        // FU1 sends 8 but FU3 only receives 4; the run completes (nothing is
        // blocked forever because channel capacity suffices) and the report
        // flags the leftover tokens.
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 16);
        let s2 = b.add_stream("s2", 16);
        let src = b.add_fu(MemSourceFu::new("FU1", vec![1.0; 8], vec![s1]));
        let map = b.add_fu(MapFu::new("FU2", s1, s2, |x| x));
        let sink = b.add_fu(MemSinkFu::new("FU3", 8, vec![s2]));
        let mut engine = Engine::new(b.build().unwrap());
        engine.push_uop(src, Uop::new("read", [0, 8, 0]));
        engine.push_uop(map, Uop::new("map", [8]));
        engine.push_uop(sink, Uop::new("write", [0, 4, 0]));
        let report = engine.run().unwrap();
        assert_eq!(report.residual_tokens, 4);
    }

    #[test]
    fn step_limit_is_enforced() {
        let (mut engine, src, map, sink) = pipeline(64);
        let mut engine = {
            engine.push_uop(src, Uop::new("read", [0, 64, 0]));
            engine.push_uop(map, Uop::new("map", [64]));
            engine.push_uop(sink, Uop::new("write", [0, 64, 0]));
            engine.with_step_limit(2)
        };
        assert_eq!(
            engine.run().unwrap_err(),
            RsnError::StepLimitExceeded { limit: 2 }
        );
    }

    #[test]
    fn report_metrics_are_consistent() {
        let (mut engine, src, map, sink) = pipeline(32);
        engine.push_uop(src, Uop::new("read", [0, 32, 0]));
        engine.push_uop(map, Uop::new("map", [32]));
        engine.push_uop(sink, Uop::new("write", [0, 32, 0]));
        let report = engine.run().unwrap();
        assert_eq!(report.total_uops_retired(), 3);
        // 32 scalars cross two edges.
        assert_eq!(report.total_words_transferred(), 64);
        assert!(report.makespan_cycles() >= 32);
        assert!(report.steps > 0);
        assert_eq!(report.fu_busy_cycles.len(), 3);
    }

    #[test]
    fn small_decoder_fifo_reproduces_ordering_deadlock() {
        // Construct a packet order in which the fetch unit must deliver a
        // long producer sequence before the consumer's first uOP.  With a
        // tiny FU uOP FIFO and a tiny decoder FIFO the fetch stalls before
        // the consumer ever learns it should drain, which deadlocks; with
        // the default depth of six the same program completes.
        fn build(depth: usize) -> Result<RunReport, RsnError> {
            let mut b = DatapathBuilder::new();
            let s1 = b.add_stream("s1", 1);
            let s2 = b.add_stream("s2", 1);
            let src = b.add_fu(MemSourceFu::new("FU1", vec![1.0; 64], vec![s1]));
            let map = b.add_fu(MapFu::new("FU2", s1, s2, |x| x));
            let sink = b.add_fu(MemSinkFu::new("FU3", 64, vec![s2]));
            let mut p = Program::new();
            // Many distinct single-element reads so nothing compresses and
            // the source's packets alone overflow a shallow FIFO chain.
            for i in 0..32 {
                p.push(src, Uop::new("read", [0, 1, i]));
            }
            for i in 0..32 {
                p.push(map, Uop::new("map", [1 + (i % 1)]));
            }
            for i in 0..32 {
                p.push(sink, Uop::new("write", [0, 1, i]));
            }
            let mut engine = Engine::new(b.build().unwrap());
            let packets = p.compress(engine.datapath()).unwrap();
            engine.load_packets_with_fifo_depth(packets, depth);
            engine.run()
        }
        assert!(build(6).is_ok());
    }
}
