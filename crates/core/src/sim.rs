//! The execution engine.
//!
//! RSN execution is decentralised: every FU works through its own uOP queue
//! and synchronises with its neighbours only through streams (§3.1).  The
//! engine supports two scheduling disciplines over the same FU step model:
//!
//! * [`SchedulerKind::EventDriven`] (the default) keeps a ready queue keyed
//!   on stream readiness.  An FU is serviced only when it might be able to
//!   move: after receiving uOPs, or after a neighbour on one of its streams
//!   made progress (freeing space downstream or producing tokens upstream).
//!   Idle FUs cost zero work per scheduler step, so large multi-segment runs
//!   touch only the active region of the datapath.
//! * [`SchedulerKind::RoundRobin`] is the original cooperative scheduler:
//!   each *pass* gives the decoder and every FU one chance to make progress.
//!   It is retained as the semantic reference — the equivalence tests assert
//!   that both disciplines retire identical uOP counts and cycle totals.
//!
//! Under either discipline, a state in which nothing can move while work
//! remains is a deadlock; a state in which everything is idle and drained
//! terminates the run.
//!
//! Cycle accounting is per-FU: each FU reports how many of its own clock
//! cycles a step consumed, and the engine keeps per-FU busy counters.  Since
//! FUs charge cycles per token moved (not per service call), the per-FU busy
//! totals — and therefore the makespan estimate — are independent of the
//! scheduling discipline.  The makespan estimate (the maximum busy counter)
//! is a coarse lower bound used by tests; the calibrated latency numbers of
//! the evaluation come from the analytic timing model in `rsn-xnn`.

use crate::decoder::{DecoderStats, DecoderSystem};
use crate::error::RsnError;
use crate::fu::{FuId, StepOutcome};
use crate::isa::Packet;
use crate::network::Datapath;
use crate::program::Program;
use crate::stream::StreamStats;
use crate::uop::Uop;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default bound on engine scheduler steps before aborting a run.
pub const DEFAULT_STEP_LIMIT: u64 = 50_000_000;

/// Which scheduling discipline drives the FUs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Ready-queue scheduler keyed on stream readiness (the default).
    #[default]
    EventDriven,
    /// The original poll-everyone-per-pass scheduler, kept as the semantic
    /// reference for equivalence tests.
    RoundRobin,
}

/// Summary of one engine run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Scheduler iterations executed: round-robin passes, or event-driven
    /// queue services.  Comparable only within one scheduler kind.
    pub steps: u64,
    /// Total `FunctionalUnit::step` invocations.  This is the
    /// scheduler-neutral work metric: round-robin charges one call per FU
    /// per pass, the event-driven scheduler only per ready FU.
    pub fu_step_calls: u64,
    /// Scheduler that produced this report.
    pub scheduler: SchedulerKind,
    /// Per-FU busy cycles (indexed by FU id).
    pub fu_busy_cycles: Vec<u64>,
    /// Per-FU retired uOP counts (indexed by FU id).
    pub fu_uops_retired: Vec<u64>,
    /// Decoder statistics, if the run was driven from instruction packets.
    pub decoder: Option<DecoderStats>,
    /// Aggregate statistics of every stream edge.
    pub stream_stats: Vec<(String, StreamStats)>,
    /// Tokens left in flight when the run ended (should be zero for a
    /// well-formed program).
    pub residual_tokens: usize,
}

impl RunReport {
    /// Coarse makespan estimate: the largest per-FU busy-cycle count.
    pub fn makespan_cycles(&self) -> u64 {
        self.fu_busy_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Total FP32-equivalent words moved over all streams.
    pub fn total_words_transferred(&self) -> u64 {
        self.stream_stats
            .iter()
            .map(|(_, s)| s.words_transferred)
            .sum()
    }

    /// Total uOPs retired across all FUs.
    pub fn total_uops_retired(&self) -> u64 {
        self.fu_uops_retired.iter().sum()
    }
}

/// Ready-queue scheduler state derived from the datapath's stream wiring
/// (fixed at construction), built lazily on the first event-driven run and
/// reused across runs.  A segmented workload (the encoder host runs one
/// engine per machine, many segment programs through it) would otherwise
/// pay one `Vec` allocation per FU per run just to rediscover the same
/// topology.
#[derive(Debug, Default)]
struct SchedState {
    /// Flattened wake lists: for FU `i`,
    /// `wake_flat[wake_offsets[i]..wake_offsets[i + 1]]` are the FUs to
    /// re-enqueue when `i` progresses (consumers of its outputs — new
    /// tokens — and producers of its inputs — freed capacity).
    wake_flat: Vec<usize>,
    wake_offsets: Vec<usize>,
    /// Per-slot "already in the ready queue" flags (last slot: decoder).
    queued: Vec<bool>,
    /// Per-FU "returned Blocked at last service" flags (deadlock report).
    blocked: Vec<bool>,
    /// The ready queue itself.
    ready: VecDeque<usize>,
}

/// The RSN execution engine.
#[derive(Debug)]
pub struct Engine {
    datapath: Datapath,
    decoder: Option<DecoderSystem>,
    /// Per-FU unbounded uOP backlogs, indexed by FU id.  A `Vec` rather
    /// than a map: the scheduler probes one FU's backlog before every
    /// step, so the probe must be an indexed load, not a tree walk.
    backlog: Vec<VecDeque<Uop>>,
    /// Total uOPs across all backlogs, so emptiness checks are one
    /// comparison on the scheduler hot path.
    backlog_pending: usize,
    step_limit: u64,
    scheduler: SchedulerKind,
    /// Cached event-driven scheduler state (see [`SchedState`]).
    sched: Option<SchedState>,
}

impl Engine {
    /// Creates an engine over a validated datapath, using the event-driven
    /// scheduler.
    pub fn new(datapath: Datapath) -> Self {
        let backlog = (0..datapath.fu_count()).map(|_| VecDeque::new()).collect();
        Self {
            datapath,
            decoder: None,
            backlog,
            backlog_pending: 0,
            step_limit: DEFAULT_STEP_LIMIT,
            scheduler: SchedulerKind::default(),
            sched: None,
        }
    }

    /// Replaces the scheduler-step budget (mainly useful to force the
    /// step-limit error in tests).
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Selects the scheduling discipline (builder form).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Selects the scheduling discipline on an existing engine.
    pub fn set_scheduler(&mut self, scheduler: SchedulerKind) {
        self.scheduler = scheduler;
    }

    /// The active scheduling discipline.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// The underlying datapath.
    pub fn datapath(&self) -> &Datapath {
        &self.datapath
    }

    /// Consumes the engine and returns the datapath (with its post-run FU
    /// state).
    pub fn into_datapath(self) -> Datapath {
        self.datapath
    }

    /// Borrows a concrete FU for state inspection.
    pub fn fu<T: 'static>(&self, id: FuId) -> Option<&T> {
        self.datapath.fu_as(id)
    }

    /// Mutably borrows a concrete FU, e.g. to preload input data or read out
    /// and reset statistics between runs.
    pub fn fu_mut<T: 'static>(&mut self, id: FuId) -> Option<&mut T> {
        self.datapath.fu_as_mut(id)
    }

    /// Queues a uOP for delivery to `fu`.
    ///
    /// Delivery is through an unbounded per-FU backlog that tops up the FU's
    /// bounded uOP FIFO as space becomes available, which models an FU whose
    /// uOP sequence is stored locally (the paper's AIE MMEs).
    pub fn push_uop(&mut self, fu: FuId, uop: Uop) {
        self.backlog[fu.index()].push_back(uop);
        self.backlog_pending += 1;
    }

    /// Queues a whole per-FU program.
    pub fn load_program(&mut self, program: &Program) {
        for (fu, uops) in program.iter() {
            self.backlog[fu.index()].extend(uops.iter().cloned());
            self.backlog_pending += uops.len();
        }
    }

    /// Drives the run from an RSN instruction packet stream through the
    /// three-level decoder instead of (or in addition to) direct uOP
    /// backlogs.
    pub fn load_packets(&mut self, packets: Vec<Packet>) {
        self.decoder = Some(DecoderSystem::new(&self.datapath, packets));
    }

    /// Same as [`Engine::load_packets`] but with an explicit decoder FIFO
    /// depth (used to reproduce the §3.3 deadlock discussion).
    pub fn load_packets_with_fifo_depth(&mut self, packets: Vec<Packet>, depth: usize) {
        self.decoder = Some(DecoderSystem::with_fifo_depth(
            &self.datapath,
            packets,
            depth,
        ));
    }

    fn feed_backlogs(&mut self) -> u64 {
        if self.backlog_pending == 0 {
            return 0;
        }
        let mut moved = 0;
        for i in 0..self.backlog.len() {
            moved += self.feed_backlog_for(FuId(i));
        }
        moved
    }

    /// Tops up one FU's uOP FIFO from its backlog; returns uOPs delivered.
    /// Called before every scheduler step of a serviced FU, so the common
    /// cases are one comparison (no backlog anywhere) or one comparison
    /// plus an indexed load (this FU's backlog is empty).
    fn feed_backlog_for(&mut self, fu: FuId) -> u64 {
        if self.backlog_pending == 0 {
            return 0;
        }
        let queue = &mut self.backlog[fu.index()];
        let mut moved = 0;
        while let Some(uop) = queue.front() {
            let target = self.datapath.fu_mut(fu);
            if target.uop_queue().is_full() {
                break;
            }
            target
                .push_uop(uop.clone())
                .expect("queue space checked above");
            queue.pop_front();
            moved += 1;
        }
        self.backlog_pending -= moved as usize;
        moved
    }

    fn finish_report(&mut self, steps: u64, fu_step_calls: u64, busy: Vec<u64>) -> RunReport {
        let fu_count = self.datapath.fu_count();
        let fu_uops_retired = (0..fu_count)
            .map(|i| self.datapath.fu_mut(FuId(i)).uop_queue().retired())
            .collect();
        let stream_stats = self
            .datapath
            .streams()
            .iter()
            .map(|(_, ch)| (ch.name().to_string(), ch.stats()))
            .collect();
        RunReport {
            steps,
            fu_step_calls,
            scheduler: self.scheduler,
            fu_busy_cycles: busy,
            fu_uops_retired,
            decoder: self.decoder.as_ref().map(DecoderSystem::stats),
            stream_stats,
            residual_tokens: self.datapath.streams().total_queued(),
        }
    }

    /// Runs until every FU is idle, all streams are drained of producer
    /// work, and the decoder (if any) has issued every uOP.
    ///
    /// # Errors
    ///
    /// * [`RsnError::Deadlock`] if no progress is possible while work
    ///   remains (stream backpressure cycle or decoder-order deadlock).
    /// * [`RsnError::StepLimitExceeded`] if the scheduler-step budget is
    ///   exhausted.
    pub fn run(&mut self) -> Result<RunReport, RsnError> {
        match self.scheduler {
            SchedulerKind::RoundRobin => self.run_round_robin(),
            SchedulerKind::EventDriven => self.run_event_driven(),
        }
    }

    /// The original poll-everyone scheduler (see [`SchedulerKind`]).
    fn run_round_robin(&mut self) -> Result<RunReport, RsnError> {
        let fu_count = self.datapath.fu_count();
        let mut busy = vec![0u64; fu_count];
        let mut steps = 0u64;
        let mut fu_step_calls = 0u64;
        loop {
            if steps >= self.step_limit {
                return Err(RsnError::StepLimitExceeded {
                    limit: self.step_limit,
                });
            }
            steps += 1;
            let mut progressed = false;
            let mut any_pending = false;

            if self.feed_backlogs() > 0 {
                progressed = true;
            }
            if self.backlog_pending > 0 {
                any_pending = true;
            }

            if let Some(decoder) = self.decoder.as_mut() {
                match decoder.step(&mut self.datapath) {
                    StepOutcome::Progress { .. } => progressed = true,
                    StepOutcome::Blocked => any_pending = true,
                    StepOutcome::Idle => {}
                }
            }

            let mut blocked_names: Vec<String> = Vec::new();
            {
                let (fus, streams) = self.datapath.split_mut();
                for (i, fu) in fus.iter_mut().enumerate() {
                    fu_step_calls += 1;
                    match fu.step(streams) {
                        StepOutcome::Progress { cycles } => {
                            busy[i] += cycles;
                            progressed = true;
                        }
                        StepOutcome::Blocked => {
                            any_pending = true;
                            blocked_names.push(fu.name().to_string());
                        }
                        StepOutcome::Idle => {
                            if !fu.is_idle() {
                                any_pending = true;
                            }
                        }
                    }
                }
            }

            if !progressed {
                if any_pending {
                    return Err(RsnError::Deadlock {
                        step: steps,
                        blocked: blocked_names,
                    });
                }
                break;
            }
        }
        Ok(self.finish_report(steps, fu_step_calls, busy))
    }

    /// The event-driven ready-queue scheduler (see [`SchedulerKind`]).
    ///
    /// Invariants:
    /// * every FU holding deliverable work is either in the ready queue or
    ///   recorded as blocked;
    /// * a blocked FU is re-enqueued whenever a neighbour on one of its
    ///   streams progresses (tokens appeared upstream or space freed
    ///   downstream) or new uOPs reach it;
    /// * the decoder is re-enqueued whenever any FU progresses (retired
    ///   uOPs free the third-level FIFOs the decoder may be stalled on).
    fn run_event_driven(&mut self) -> Result<RunReport, RsnError> {
        let fu_count = self.datapath.fu_count();

        // Take the cached scheduler state (or build it on the first run) —
        // the datapath's wiring is fixed, so the wake topology never
        // changes and the per-run cost is a few `fill(false)` passes
        // instead of one allocation per FU.
        let mut sched = match self.sched.take() {
            Some(state) if state.blocked.len() == fu_count => state,
            _ => self.build_sched_state(),
        };
        let SchedState {
            wake_flat,
            wake_offsets,
            queued,
            blocked,
            ready,
        } = &mut sched;
        queued.fill(false);
        blocked.fill(false);
        ready.clear();

        // Ready queue over FU indices; `fu_count` is the decoder's slot.
        let decoder_slot = fu_count;
        let enqueue = |ready: &mut VecDeque<usize>, queued: &mut Vec<bool>, slot: usize| {
            if !queued[slot] {
                queued[slot] = true;
                ready.push_back(slot);
            }
        };

        let mut busy = vec![0u64; fu_count];
        let mut steps = 0u64;
        let mut fu_step_calls = 0u64;

        // Seed: deliver initial backlogs, then give everything one chance.
        self.feed_backlogs();
        for i in 0..fu_count {
            enqueue(ready, queued, i);
        }
        if self.decoder.is_some() {
            enqueue(ready, queued, decoder_slot);
        }

        // Each queue service runs its FU (or the decoder) **to
        // quiescence**: step until Blocked/Idle, then wake the neighbours
        // once.  Compared with one-step-per-service this removes the
        // dominant per-service overhead on dense datapaths — the
        // self-re-enqueue after every productive step, plus a neighbour +
        // decoder wake per step instead of per burst — while preserving
        // the sparse-datapath win (idle FUs are still never serviced).
        // Liveness is unchanged: an FU stops only when it genuinely cannot
        // move, and everything that could unblock it (neighbour progress,
        // decoder delivery, backlog feed) re-enqueues it.
        let mut touched: Vec<FuId> = Vec::new();
        while let Some(slot) = ready.pop_front() {
            queued[slot] = false;

            if slot == decoder_slot {
                let mut progressed = false;
                // Drain the decoder's in-order window in one service.
                while let Some(decoder) = self.decoder.as_mut() {
                    if steps >= self.step_limit {
                        return Err(RsnError::StepLimitExceeded {
                            limit: self.step_limit,
                        });
                    }
                    steps += 1;
                    match decoder.step_collect(&mut self.datapath, &mut touched) {
                        StepOutcome::Progress { .. } => progressed = true,
                        StepOutcome::Blocked | StepOutcome::Idle => break,
                    }
                }
                if progressed {
                    // `touched` may repeat FUs across the burst; `queued`
                    // already deduplicates the enqueue.
                    for id in touched.drain(..) {
                        blocked[id.index()] = false;
                        enqueue(ready, queued, id.index());
                    }
                } else {
                    touched.clear();
                }
                continue;
            }

            let mut progressed = false;
            loop {
                if steps >= self.step_limit {
                    return Err(RsnError::StepLimitExceeded {
                        limit: self.step_limit,
                    });
                }
                steps += 1;
                // Top up the FU's uOP FIFO from its backlog before each
                // step so a retire-then-refill sequence stays inside one
                // service (an O(1) indexed probe — see `feed_backlog_for`).
                self.feed_backlog_for(FuId(slot));
                let (fus, streams) = self.datapath.split_mut();
                fu_step_calls += 1;
                match fus[slot].step(streams) {
                    StepOutcome::Progress { cycles } => {
                        busy[slot] += cycles;
                        progressed = true;
                    }
                    StepOutcome::Blocked => {
                        blocked[slot] = true;
                        break;
                    }
                    StepOutcome::Idle => {
                        blocked[slot] = false;
                        break;
                    }
                }
            }
            if progressed {
                for &neighbour in &wake_flat[wake_offsets[slot]..wake_offsets[slot + 1]] {
                    blocked[neighbour] = false;
                    enqueue(ready, queued, neighbour);
                }
                if self.decoder.is_some() {
                    enqueue(ready, queued, decoder_slot);
                }
            }
        }

        // Queue drained: either everything completed or nothing can move.
        let decoder_pending = self.decoder.as_ref().is_some_and(|d| !d.is_drained());
        let work_remains = self.backlog_pending > 0
            || decoder_pending
            || (0..fu_count).any(|i| !self.datapath.fus[i].is_idle());
        if work_remains {
            let blocked_names = (0..fu_count)
                .filter(|&i| blocked[i])
                .map(|i| self.datapath.fus[i].name().to_string())
                .collect();
            return Err(RsnError::Deadlock {
                step: steps,
                blocked: blocked_names,
            });
        }
        // Park the scheduler state for the next run (error paths rebuild).
        self.sched = Some(sched);
        Ok(self.finish_report(steps, fu_step_calls, busy))
    }

    /// Builds the event-driven scheduler's topology-derived state (see
    /// [`SchedState`]) — two flat allocations instead of one `Vec` per FU.
    fn build_sched_state(&self) -> SchedState {
        let fu_count = self.datapath.fu_count();
        // Stream topology: who produces into / consumes from each edge.
        let stream_count = self.datapath.stream_count();
        let mut producer_of: Vec<Option<usize>> = vec![None; stream_count];
        let mut consumer_of: Vec<Option<usize>> = vec![None; stream_count];
        for i in 0..fu_count {
            for s in self.datapath.fus[i].output_streams() {
                producer_of[s.index()] = Some(i);
            }
            for s in self.datapath.fus[i].input_streams() {
                consumer_of[s.index()] = Some(i);
            }
        }
        // FUs to wake when FU `i` progresses: the consumers of its outputs
        // (new tokens) and the producers of its inputs (freed capacity).
        let mut wake_flat = Vec::new();
        let mut wake_offsets = Vec::with_capacity(fu_count + 1);
        wake_offsets.push(0);
        let mut wake: Vec<usize> = Vec::new();
        for i in 0..fu_count {
            wake.clear();
            for s in self.datapath.fus[i].output_streams() {
                if let Some(c) = consumer_of[s.index()] {
                    wake.push(c);
                }
            }
            for s in self.datapath.fus[i].input_streams() {
                if let Some(p) = producer_of[s.index()] {
                    wake.push(p);
                }
            }
            wake.sort_unstable();
            wake.dedup();
            wake_flat.extend_from_slice(&wake);
            wake_offsets.push(wake_flat.len());
        }
        SchedState {
            wake_flat,
            wake_offsets,
            queued: vec![false; fu_count + 1],
            blocked: vec![false; fu_count],
            ready: VecDeque::with_capacity(fu_count + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fus::{MapFu, MemSinkFu, MemSourceFu};
    use crate::network::DatapathBuilder;

    fn pipeline(n: usize) -> (Engine, FuId, FuId, FuId) {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 4);
        let s2 = b.add_stream("s2", 4);
        let input: Vec<f32> = (0..n).map(|x| x as f32).collect();
        let src = b.add_fu(MemSourceFu::new("FU1", input, vec![s1]));
        let map = b.add_fu(MapFu::new("FU2", s1, s2, |x| x + 1.0));
        let sink = b.add_fu(MemSinkFu::new("FU3", n, vec![s2]));
        (Engine::new(b.build().unwrap()), src, map, sink)
    }

    #[test]
    fn program_and_packet_paths_give_identical_results() {
        let n = 100;
        // Direct backlog path.
        let (mut e1, src, map, sink) = pipeline(n);
        let mut program = Program::new();
        program.push(src, Uop::new("read", [0, n as i64, 0]));
        program.push(map, Uop::new("map", [n as i64]));
        program.push(sink, Uop::new("write", [0, n as i64, 0]));
        e1.load_program(&program);
        let r1 = e1.run().unwrap();
        let out1 = e1.fu::<MemSinkFu>(sink).unwrap().memory().to_vec();

        // Packet/decoder path.
        let (mut e2, src2, map2, sink2) = pipeline(n);
        let mut program2 = Program::new();
        program2.push(src2, Uop::new("read", [0, n as i64, 0]));
        program2.push(map2, Uop::new("map", [n as i64]));
        program2.push(sink2, Uop::new("write", [0, n as i64, 0]));
        let packets = program2.compress(e2.datapath()).unwrap();
        e2.load_packets(packets);
        let r2 = e2.run().unwrap();
        let out2 = e2.fu::<MemSinkFu>(sink2).unwrap().memory().to_vec();

        assert_eq!(out1, out2);
        assert_eq!(r1.total_uops_retired(), r2.total_uops_retired());
        assert!(r2.decoder.unwrap().uops_issued >= 3);
        assert_eq!(r1.residual_tokens, 0);
        assert_eq!(r2.residual_tokens, 0);
    }

    #[test]
    fn schedulers_agree_on_results_and_cycles() {
        let n = 256;
        let run = |kind: SchedulerKind| {
            let (engine, src, map, sink) = pipeline(n);
            let mut engine = engine.with_scheduler(kind);
            engine.push_uop(src, Uop::new("read", [0, n as i64, 0]));
            engine.push_uop(map, Uop::new("map", [n as i64]));
            engine.push_uop(sink, Uop::new("write", [0, n as i64, 0]));
            let report = engine.run().unwrap();
            let out = engine.fu::<MemSinkFu>(sink).unwrap().memory().to_vec();
            (report, out)
        };
        let (rr, out_rr) = run(SchedulerKind::RoundRobin);
        let (ed, out_ed) = run(SchedulerKind::EventDriven);
        assert_eq!(out_rr, out_ed);
        assert_eq!(rr.fu_uops_retired, ed.fu_uops_retired);
        // Cycle accounting is per token moved, so the busy totals (and the
        // makespan) are schedule-independent.
        assert_eq!(rr.fu_busy_cycles, ed.fu_busy_cycles);
        assert_eq!(rr.makespan_cycles(), ed.makespan_cycles());
    }

    #[test]
    fn event_driven_does_less_work_than_round_robin() {
        // Many parallel chains, only one of which has work — the typical
        // shape of a segmented encoder run, where most lanes of the datapath
        // sit idle during any one segment.  Round-robin polls every FU every
        // pass; the ready queue never services the idle chains after their
        // first (empty) visit.
        let n = 400usize;
        let chains = 8usize;
        let build = |kind: SchedulerKind| {
            let mut b = DatapathBuilder::new();
            let mut first = None;
            for c in 0..chains {
                let s1 = b.add_stream(format!("c{c}s1"), 4);
                let s2 = b.add_stream(format!("c{c}s2"), 4);
                let input: Vec<f32> = (0..n).map(|x| x as f32).collect();
                let src = b.add_fu(MemSourceFu::new(format!("src{c}"), input, vec![s1]));
                let map = b.add_fu(MapFu::new(format!("map{c}"), s1, s2, |x| x + 1.0));
                let sink = b.add_fu(MemSinkFu::new(format!("sink{c}"), n, vec![s2]));
                if c == 0 {
                    first = Some((src, map, sink));
                }
            }
            let (src, map, sink) = first.expect("chain 0 built");
            let mut engine = Engine::new(b.build().unwrap()).with_scheduler(kind);
            engine.push_uop(src, Uop::new("read", [0, n as i64, 0]));
            engine.push_uop(map, Uop::new("map", [n as i64]));
            engine.push_uop(sink, Uop::new("write", [0, n as i64, 0]));
            engine
        };
        let rr = build(SchedulerKind::RoundRobin).run().unwrap();
        let ed = build(SchedulerKind::EventDriven).run().unwrap();
        assert_eq!(rr.fu_busy_cycles, ed.fu_busy_cycles);
        assert!(
            ed.fu_step_calls * 2 < rr.fu_step_calls,
            "event-driven {} vs round-robin {}",
            ed.fu_step_calls,
            rr.fu_step_calls
        );
    }

    #[test]
    fn mismatched_send_receive_counts_deadlock() {
        // FU3 expects 8 tokens but FU1 only sends 4: the paper's
        // "receives exceed sends" case blocks indefinitely.
        for kind in [SchedulerKind::RoundRobin, SchedulerKind::EventDriven] {
            let (engine, src, map, sink) = pipeline(8);
            let mut engine = engine.with_scheduler(kind);
            engine.push_uop(src, Uop::new("read", [0, 4, 0]));
            engine.push_uop(map, Uop::new("map", [4]));
            engine.push_uop(sink, Uop::new("write", [0, 8, 0]));
            let err = engine.run().unwrap_err();
            assert!(matches!(err, RsnError::Deadlock { .. }), "{kind:?}");
        }
    }

    #[test]
    fn excess_sends_leave_residual_tokens() {
        // FU1 sends 8 but FU3 only receives 4; the run completes (nothing is
        // blocked forever because channel capacity suffices) and the report
        // flags the leftover tokens.
        for kind in [SchedulerKind::RoundRobin, SchedulerKind::EventDriven] {
            let mut b = DatapathBuilder::new();
            let s1 = b.add_stream("s1", 16);
            let s2 = b.add_stream("s2", 16);
            let src = b.add_fu(MemSourceFu::new("FU1", vec![1.0; 8], vec![s1]));
            let map = b.add_fu(MapFu::new("FU2", s1, s2, |x| x));
            let sink = b.add_fu(MemSinkFu::new("FU3", 8, vec![s2]));
            let mut engine = Engine::new(b.build().unwrap()).with_scheduler(kind);
            engine.push_uop(src, Uop::new("read", [0, 8, 0]));
            engine.push_uop(map, Uop::new("map", [8]));
            engine.push_uop(sink, Uop::new("write", [0, 4, 0]));
            let report = engine.run().unwrap();
            assert_eq!(report.residual_tokens, 4, "{kind:?}");
        }
    }

    #[test]
    fn step_limit_is_enforced() {
        for kind in [SchedulerKind::RoundRobin, SchedulerKind::EventDriven] {
            let (engine, src, map, sink) = pipeline(64);
            let mut engine = engine.with_scheduler(kind).with_step_limit(2);
            engine.push_uop(src, Uop::new("read", [0, 64, 0]));
            engine.push_uop(map, Uop::new("map", [64]));
            engine.push_uop(sink, Uop::new("write", [0, 64, 0]));
            assert_eq!(
                engine.run().unwrap_err(),
                RsnError::StepLimitExceeded { limit: 2 },
                "{kind:?}"
            );
        }
    }

    #[test]
    fn report_metrics_are_consistent() {
        let (mut engine, src, map, sink) = pipeline(32);
        engine.push_uop(src, Uop::new("read", [0, 32, 0]));
        engine.push_uop(map, Uop::new("map", [32]));
        engine.push_uop(sink, Uop::new("write", [0, 32, 0]));
        let report = engine.run().unwrap();
        assert_eq!(report.total_uops_retired(), 3);
        // 32 scalars cross two edges.
        assert_eq!(report.total_words_transferred(), 64);
        assert!(report.makespan_cycles() >= 32);
        assert!(report.steps > 0);
        assert!(report.fu_step_calls > 0);
        assert_eq!(report.scheduler, SchedulerKind::EventDriven);
        assert_eq!(report.fu_busy_cycles.len(), 3);
    }

    #[test]
    fn small_decoder_fifo_reproduces_ordering_deadlock() {
        // Construct a packet order in which the fetch unit must deliver a
        // long producer sequence before the consumer's first uOP.  With a
        // tiny FU uOP FIFO and a tiny decoder FIFO the fetch stalls before
        // the consumer ever learns it should drain, which deadlocks; with
        // the default depth of six the same program completes.
        fn build(depth: usize, kind: SchedulerKind) -> Result<RunReport, RsnError> {
            let mut b = DatapathBuilder::new();
            let s1 = b.add_stream("s1", 1);
            let s2 = b.add_stream("s2", 1);
            let src = b.add_fu(MemSourceFu::new("FU1", vec![1.0; 64], vec![s1]));
            let map = b.add_fu(MapFu::new("FU2", s1, s2, |x| x));
            let sink = b.add_fu(MemSinkFu::new("FU3", 64, vec![s2]));
            let mut p = Program::new();
            // Many distinct single-element reads so nothing compresses and
            // the source's packets alone overflow a shallow FIFO chain.
            for i in 0..32 {
                p.push(src, Uop::new("read", [0, 1, i]));
            }
            for _ in 0..32 {
                p.push(map, Uop::new("map", [1]));
            }
            for i in 0..32 {
                p.push(sink, Uop::new("write", [0, 1, i]));
            }
            let mut engine = Engine::new(b.build().unwrap()).with_scheduler(kind);
            let packets = p.compress(engine.datapath()).unwrap();
            engine.load_packets_with_fifo_depth(packets, depth);
            engine.run()
        }
        assert!(build(6, SchedulerKind::RoundRobin).is_ok());
        assert!(build(6, SchedulerKind::EventDriven).is_ok());
    }
}
