//! RSN programs: per-FU uOP sequences, path triggering and packet
//! compression.
//!
//! A program in the RSN model is nothing more than the set of uOP sequences
//! destined for each FU — triggering a path means appending uOPs to the FUs
//! along the path.  For storage and fetch the per-FU sequences are fused into
//! one RSN instruction packet stream (§3.3); [`Program::compress`] performs
//! the inverse of the decoder's expansion, discovering repeated windows and
//! FUs of the same type that share identical sequences so they can be
//! addressed with a single packet mask.

use crate::error::RsnError;
use crate::fu::FuId;
use crate::isa::{Packet, PacketHeader, MAX_REUSE, MAX_WINDOW};
use crate::network::Datapath;
use crate::uop::Uop;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A per-FU uOP program for one datapath.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    per_fu: BTreeMap<FuId, Vec<Uop>>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one uOP to the sequence of `fu`.
    pub fn push(&mut self, fu: FuId, uop: Uop) {
        self.per_fu.entry(fu).or_default().push(uop);
    }

    /// Appends several uOPs to the sequence of `fu`.
    pub fn extend(&mut self, fu: FuId, uops: impl IntoIterator<Item = Uop>) {
        self.per_fu.entry(fu).or_default().extend(uops);
    }

    /// Triggers a path: issues `uop` to every FU along `path` in order.
    ///
    /// This is the programming-model primitive of §3.1 — a computation is a
    /// triggered circuit path; FUs not on the path receive nothing.
    pub fn trigger_path(&mut self, path: &[(FuId, Uop)]) {
        for (fu, uop) in path {
            self.push(*fu, uop.clone());
        }
    }

    /// Merges another program after this one (per-FU concatenation).
    pub fn append(&mut self, other: Program) {
        for (fu, uops) in other.per_fu {
            self.per_fu.entry(fu).or_default().extend(uops);
        }
    }

    /// The uOP sequence for `fu` (empty if none).
    pub fn uops_for(&self, fu: FuId) -> &[Uop] {
        self.per_fu.get(&fu).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over `(fu, uops)` pairs in FU-id order.
    pub fn iter(&self) -> impl Iterator<Item = (FuId, &[Uop])> {
        self.per_fu.iter().map(|(id, v)| (*id, v.as_slice()))
    }

    /// FUs that receive at least one uOP.
    pub fn fu_count(&self) -> usize {
        self.per_fu.len()
    }

    /// Total uOPs across all FUs.
    pub fn uop_count(&self) -> usize {
        self.per_fu.values().map(Vec::len).sum()
    }

    /// Total encoded size of the expanded uOPs in bytes (the "translated
    /// uOP size" series of Fig. 9).
    pub fn uop_bytes(&self) -> usize {
        self.per_fu
            .values()
            .flat_map(|v| v.iter())
            .map(Uop::encoded_len)
            .sum()
    }

    /// Compresses the program into an RSN instruction packet sequence.
    ///
    /// FUs of the same type with byte-identical sequences are merged under a
    /// shared mask; within each sequence, repeated windows (up to
    /// [`MAX_WINDOW`] mOPs) are folded into `reuse` counts.
    ///
    /// # Errors
    ///
    /// Returns [`RsnError::UnknownFu`] if the program references an FU that
    /// is not part of `datapath`, or [`RsnError::Encoding`] if a packet
    /// header field overflows.
    pub fn compress(&self, datapath: &Datapath) -> Result<Vec<Packet>, RsnError> {
        // Group program FUs by type, preserving lane order.
        let mut opcode_of_type: BTreeMap<&str, u8> = BTreeMap::new();
        for (i, t) in datapath.fu_types().enumerate() {
            opcode_of_type.insert(t, i as u8);
        }
        let mut packets = Vec::new();
        let mut groups: BTreeMap<(&str, &[Uop]), u8> = BTreeMap::new();
        for (fu, uops) in self.per_fu.iter() {
            if fu.index() >= datapath.fu_count() {
                return Err(RsnError::UnknownFu { fu: fu.index() });
            }
            let fu_type = datapath.fu_type(*fu)?;
            let lanes = datapath.fus_of_type(fu_type);
            let lane = lanes
                .iter()
                .position(|id| id == fu)
                .expect("fu must appear in its own type group");
            if lane >= 8 {
                return Err(RsnError::Encoding {
                    reason: format!("FU lane {lane} does not fit in an 8-bit mask"),
                });
            }
            *groups.entry((fu_type, uops.as_slice())).or_insert(0) |= 1 << lane;
        }
        for ((fu_type, uops), mask) in groups {
            let opcode = *opcode_of_type
                .get(fu_type)
                .expect("fu type present in datapath");
            compress_sequence(opcode, mask, uops, &mut packets)?;
        }
        Ok(packets)
    }

    /// Total encoded size in bytes of the compressed packet stream.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Program::compress`].
    pub fn packet_bytes(&self, datapath: &Datapath) -> Result<usize, RsnError> {
        Ok(self
            .compress(datapath)?
            .iter()
            .map(Packet::encoded_len)
            .sum())
    }
}

/// Folds one uOP sequence into packets using greedy window/reuse detection.
fn compress_sequence(
    opcode: u8,
    mask: u8,
    uops: &[Uop],
    out: &mut Vec<Packet>,
) -> Result<(), RsnError> {
    let mut i = 0;
    while i < uops.len() {
        let remaining = uops.len() - i;
        let mut best_window = 1.min(remaining);
        let mut best_reuse = 1usize;
        let mut best_cover = best_window;
        let max_w = MAX_WINDOW.min(remaining).min(8);
        for window in 1..=max_w {
            let mut reuse = 1usize;
            while reuse < MAX_REUSE {
                let next = i + reuse * window;
                if next + window > uops.len() {
                    break;
                }
                if uops[i..i + window] != uops[next..next + window] {
                    break;
                }
                reuse += 1;
            }
            let cover = window * reuse;
            // Prefer the encoding that covers the most uOPs; break ties with
            // the smaller window (fewer payload bytes).
            if cover > best_cover || (cover == best_cover && window < best_window) {
                best_cover = cover;
                best_window = window;
                best_reuse = reuse;
            }
        }
        let header = PacketHeader {
            opcode,
            mask,
            last: false,
            window: best_window as u8,
            reuse: best_reuse as u16,
        };
        out.push(Packet::new(header, uops[i..i + best_window].to_vec())?);
        i += best_cover;
    }
    // Mark the final packet of the sequence so decoders know the FU exits.
    if let Some(last) = out.last_mut() {
        last.header.last = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fus::{MapFu, MemSinkFu, MemSourceFu};
    use crate::network::DatapathBuilder;

    fn simple_datapath() -> (Datapath, FuId, FuId, FuId) {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 4);
        let s2 = b.add_stream("s2", 4);
        let src = b.add_fu(MemSourceFu::new("src", vec![0.0; 8], vec![s1]));
        let map = b.add_fu(MapFu::new("map", s1, s2, |x| x));
        let sink = b.add_fu(MemSinkFu::new("sink", 8, vec![s2]));
        (b.build().unwrap(), src, map, sink)
    }

    #[test]
    fn trigger_path_appends_in_order() {
        let (_dp, src, map, sink) = simple_datapath();
        let mut p = Program::new();
        p.trigger_path(&[
            (src, Uop::new("read", [0, 8, 0])),
            (map, Uop::new("map", [8])),
            (sink, Uop::new("write", [0, 8, 0])),
        ]);
        assert_eq!(p.fu_count(), 3);
        assert_eq!(p.uop_count(), 3);
        assert_eq!(p.uops_for(map)[0].opcode(), "map");
        assert_eq!(p.iter().count(), 3);
    }

    #[test]
    fn repeated_windows_fold_into_reuse() {
        let (dp, src, _map, _sink) = simple_datapath();
        let mut p = Program::new();
        // load;send repeated 64 times — should compress into one packet with
        // window 2 and reuse 64.
        for _ in 0..64 {
            p.push(src, Uop::new("load", [1, 96]));
            p.push(src, Uop::new("send", [2, 96]));
        }
        let packets = p.compress(&dp).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].header.window, 2);
        assert_eq!(packets[0].header.reuse, 64);
        assert!(packets[0].header.last);
        assert!(p.packet_bytes(&dp).unwrap() < p.uop_bytes());
    }

    #[test]
    fn distinct_uops_get_individual_packets() {
        let (dp, src, _map, _sink) = simple_datapath();
        let mut p = Program::new();
        p.push(src, Uop::new("a", [1]));
        p.push(src, Uop::new("b", [2]));
        p.push(src, Uop::new("c", [3]));
        let packets = p.compress(&dp).unwrap();
        let expanded: usize = packets.iter().map(Packet::expanded_uop_count).sum();
        assert_eq!(expanded, 3);
    }

    #[test]
    fn identical_sequences_share_a_mask() {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 4);
        let s2 = b.add_stream("s2", 4);
        let s3 = b.add_stream("s3", 4);
        let s4 = b.add_stream("s4", 4);
        let src0 = b.add_fu(MemSourceFu::new("src0", vec![0.0; 8], vec![s1]));
        let src1 = b.add_fu(MemSourceFu::new("src1", vec![0.0; 8], vec![s2]));
        b.add_fu(MapFu::new("m0", s1, s3, |x| x));
        b.add_fu(MapFu::new("m1", s2, s4, |x| x));
        b.add_fu(MemSinkFu::new("k0", 8, vec![s3]));
        b.add_fu(MemSinkFu::new("k1", 8, vec![s4]));
        let dp = b.build().unwrap();
        let mut p = Program::new();
        p.push(src0, Uop::new("read", [0, 8, 0]));
        p.push(src1, Uop::new("read", [0, 8, 0]));
        let packets = p.compress(&dp).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].header.mask, 0b11);
    }

    #[test]
    fn unknown_fu_is_rejected() {
        let (dp, _src, _map, _sink) = simple_datapath();
        let mut p = Program::new();
        p.push(FuId::from_index(42), Uop::new("x", []));
        assert!(matches!(
            p.compress(&dp),
            Err(RsnError::UnknownFu { fu: 42 })
        ));
    }

    #[test]
    fn append_concatenates_per_fu() {
        let (_dp, src, _map, _sink) = simple_datapath();
        let mut a = Program::new();
        a.push(src, Uop::new("x", [1]));
        let mut b = Program::new();
        b.push(src, Uop::new("y", [2]));
        a.append(b);
        assert_eq!(a.uops_for(src).len(), 2);
        assert_eq!(a.uops_for(src)[1].opcode(), "y");
    }
}
