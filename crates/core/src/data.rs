//! Data tokens carried on RSN streams.
//!
//! In the physical design a stream edge is a wide wire bundle (the paper's
//! MeshB routes 9 Kbit per cycle).  The functional simulator abstracts one
//! transfer as a [`Token`]: either a scalar, a two-dimensional [`Tile`] of
//! FP32 values, or an opaque control flag.  Moving whole tiles keeps the
//! simulation cost proportional to the number of *transfers*, not the number
//! of scalars, mirroring how the hardware moves a full row of a tile per
//! cycle.

use serde::{Deserialize, Serialize};

/// A dense, row-major FP32 tile streamed between functional units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tile {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tile {
    /// Creates a tile filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tile dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tile from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "tile dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "tile data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of FP32 elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tile holds no elements (never true for a
    /// constructed tile, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "tile index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "tile index out of bounds");
        &mut self.data[r * self.cols + c]
    }

    /// Row-major view of the underlying data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tile and returns its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the transposed tile.
    pub fn transposed(&self) -> Tile {
        let mut out = Tile::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c);
            }
        }
        out
    }

    /// `self * rhs` dense matrix product.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Tile) -> Tile {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Tile::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    *out.at_mut(i, j) += a * rhs.at(k, j);
                }
            }
        }
        out
    }

    /// Element-wise accumulation `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, rhs: &Tile) {
        assert_eq!(self.rows, rhs.rows, "accumulate row mismatch");
        assert_eq!(self.cols, rhs.cols, "accumulate col mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// Maximum absolute difference against another tile of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, rhs: &Tile) -> f32 {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f32, f32::max)
    }
}

/// One token transferred over a stream edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Token {
    /// A single FP32 value.
    Scalar(f32),
    /// A dense FP32 tile.
    Tile(Tile),
    /// An opaque control word (used e.g. for end-of-stream markers).
    Flag(u64),
}

impl Token {
    /// Returns the scalar value, if this token is a scalar.
    pub fn as_scalar(&self) -> Option<f32> {
        match self {
            Token::Scalar(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns a reference to the tile, if this token is a tile.
    pub fn as_tile(&self) -> Option<&Tile> {
        match self {
            Token::Tile(t) => Some(t),
            _ => None,
        }
    }

    /// Consumes the token and returns the tile, if it is a tile.
    pub fn into_tile(self) -> Option<Tile> {
        match self {
            Token::Tile(t) => Some(t),
            _ => None,
        }
    }

    /// Number of FP32-equivalent words this token occupies on the wire.
    ///
    /// Used by the engine for bandwidth statistics.
    pub fn word_count(&self) -> usize {
        match self {
            Token::Scalar(_) => 1,
            Token::Tile(t) => t.len(),
            Token::Flag(_) => 1,
        }
    }
}

impl From<f32> for Token {
    fn from(v: f32) -> Self {
        Token::Scalar(v)
    }
}

impl From<Tile> for Token {
    fn from(t: Tile) -> Self {
        Token::Tile(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_roundtrip_and_indexing() {
        let t = Tile::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at(0, 0), 1.0);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn tile_transpose_involution() {
        let t = Tile::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.transposed().transposed(), t);
        assert_eq!(t.transposed().at(2, 1), 6.0);
    }

    #[test]
    fn tile_matmul_identity() {
        let a = Tile::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut eye = Tile::zeros(2, 2);
        *eye.at_mut(0, 0) = 1.0;
        *eye.at_mut(1, 1) = 1.0;
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn tile_matmul_known_values() {
        let a = Tile::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tile::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.at(0, 0), 58.0);
        assert_eq!(c.at(0, 1), 64.0);
        assert_eq!(c.at(1, 0), 139.0);
        assert_eq!(c.at(1, 1), 154.0);
    }

    #[test]
    fn tile_accumulate_adds_elementwise() {
        let mut a = Tile::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tile::from_vec(1, 2, vec![10.0, 20.0]);
        a.accumulate(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn token_word_count_matches_payload() {
        assert_eq!(Token::Scalar(1.0).word_count(), 1);
        assert_eq!(Token::Flag(7).word_count(), 1);
        assert_eq!(Token::Tile(Tile::zeros(4, 8)).word_count(), 32);
    }

    #[test]
    fn token_conversions() {
        let t: Token = 3.5_f32.into();
        assert_eq!(t.as_scalar(), Some(3.5));
        let tile: Token = Tile::zeros(2, 2).into();
        assert!(tile.as_tile().is_some());
        assert!(tile.clone().into_tile().is_some());
        assert_eq!(Token::Flag(1).as_scalar(), None);
    }

    #[test]
    fn max_abs_diff_zero_for_identical() {
        let a = Tile::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.max_abs_diff(&a.clone()), 0.0);
        let mut b = a.clone();
        *b.at_mut(1, 1) = 4.5;
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn tile_matmul_shape_mismatch_panics() {
        let a = Tile::zeros(2, 3);
        let b = Tile::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
