//! Small generic functional units.
//!
//! These are the building blocks used by the paper's introductory examples
//! (the three-FU "+1" overlay of Fig. 6), by tests, and by simple overlays
//! that do not need the full RSN-XNN datapath.  They all operate at scalar
//! granularity and demonstrate the resumable-kernel style expected from
//! [`FunctionalUnit`] implementations.

use crate::data::Token;
use crate::fu::{FunctionalUnit, StepOutcome};
use crate::stream::{StreamId, StreamSet};
use crate::uop::UopQueue;

/// Maximum scalar transfers a generic FU performs per engine step.
///
/// Bounding per-step work keeps the engine's round-robin fair and the cycle
/// accounting meaningful; it has no effect on functional results.
const BURST: usize = 16;

/// State of an in-flight streaming kernel shared by the generic FUs.
#[derive(Debug, Clone)]
struct Cursor {
    port: usize,
    remaining: usize,
    addr: usize,
}

/// Streams data out of a local memory into one of several output streams.
///
/// uOP: `read(out_port, count, addr)` — send `count` scalars starting at
/// `addr` to output port `out_port`.
#[derive(Debug)]
pub struct MemSourceFu {
    name: String,
    memory: Vec<f32>,
    outs: Vec<StreamId>,
    queue: UopQueue,
    active: Option<Cursor>,
}

impl MemSourceFu {
    /// Creates a source FU over `memory` with the given output ports.
    pub fn new(name: impl Into<String>, memory: Vec<f32>, outs: Vec<StreamId>) -> Self {
        Self {
            name: name.into(),
            memory,
            outs,
            queue: UopQueue::default(),
            active: None,
        }
    }

    /// The backing memory (source data).
    pub fn memory(&self) -> &[f32] {
        &self.memory
    }
}

impl FunctionalUnit for MemSourceFu {
    fn name(&self) -> &str {
        &self.name
    }
    fn fu_type(&self) -> &str {
        "MEM_SRC"
    }
    fn input_streams(&self) -> Vec<StreamId> {
        Vec::new()
    }
    fn output_streams(&self) -> Vec<StreamId> {
        self.outs.clone()
    }
    fn uop_queue(&self) -> &UopQueue {
        &self.queue
    }
    fn uop_queue_mut(&mut self) -> &mut UopQueue {
        &mut self.queue
    }
    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_none()
    }

    fn step(&mut self, streams: &mut StreamSet) -> StepOutcome {
        if self.active.is_none() {
            match self.queue.pop() {
                Some(uop) if uop.opcode() == "read" => {
                    self.active = Some(Cursor {
                        port: uop.unsigned(0),
                        remaining: uop.unsigned(1),
                        addr: uop.unsigned(2),
                    });
                }
                Some(_) | None => return StepOutcome::Idle,
            }
        }
        let cursor = self.active.as_mut().expect("kernel just launched");
        if cursor.port >= self.outs.len() {
            self.active = None;
            return StepOutcome::progress();
        }
        let out = self.outs[cursor.port];
        let mut moved = 0;
        while cursor.remaining > 0 && moved < BURST {
            let value = self.memory.get(cursor.addr).copied().unwrap_or(0.0);
            if streams.push(out, Token::Scalar(value)).is_err() {
                break;
            }
            cursor.addr += 1;
            cursor.remaining -= 1;
            moved += 1;
        }
        if cursor.remaining == 0 {
            self.active = None;
        }
        if moved > 0 {
            StepOutcome::Progress {
                cycles: moved as u64,
            }
        } else {
            StepOutcome::Blocked
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Sinks data from one of several input streams into a local memory.
///
/// uOP: `write(in_port, count, addr)` — receive `count` scalars from input
/// port `in_port` and store them starting at `addr`.
#[derive(Debug)]
pub struct MemSinkFu {
    name: String,
    memory: Vec<f32>,
    ins: Vec<StreamId>,
    queue: UopQueue,
    active: Option<Cursor>,
}

impl MemSinkFu {
    /// Creates a sink FU with `size` zero-initialised memory words.
    pub fn new(name: impl Into<String>, size: usize, ins: Vec<StreamId>) -> Self {
        Self {
            name: name.into(),
            memory: vec![0.0; size],
            ins,
            queue: UopQueue::default(),
            active: None,
        }
    }

    /// The backing memory (result data).
    pub fn memory(&self) -> &[f32] {
        &self.memory
    }
}

impl FunctionalUnit for MemSinkFu {
    fn name(&self) -> &str {
        &self.name
    }
    fn fu_type(&self) -> &str {
        "MEM_SINK"
    }
    fn input_streams(&self) -> Vec<StreamId> {
        self.ins.clone()
    }
    fn output_streams(&self) -> Vec<StreamId> {
        Vec::new()
    }
    fn uop_queue(&self) -> &UopQueue {
        &self.queue
    }
    fn uop_queue_mut(&mut self) -> &mut UopQueue {
        &mut self.queue
    }
    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_none()
    }

    fn step(&mut self, streams: &mut StreamSet) -> StepOutcome {
        if self.active.is_none() {
            match self.queue.pop() {
                Some(uop) if uop.opcode() == "write" => {
                    self.active = Some(Cursor {
                        port: uop.unsigned(0),
                        remaining: uop.unsigned(1),
                        addr: uop.unsigned(2),
                    });
                }
                Some(_) | None => return StepOutcome::Idle,
            }
        }
        let cursor = self.active.as_mut().expect("kernel just launched");
        if cursor.port >= self.ins.len() {
            self.active = None;
            return StepOutcome::progress();
        }
        let input = self.ins[cursor.port];
        let mut moved = 0;
        while cursor.remaining > 0 && moved < BURST {
            match streams.pop(input) {
                Some(token) => {
                    if let Some(v) = token.as_scalar() {
                        if cursor.addr < self.memory.len() {
                            self.memory[cursor.addr] = v;
                        }
                    }
                    cursor.addr += 1;
                    cursor.remaining -= 1;
                    moved += 1;
                }
                None => break,
            }
        }
        if cursor.remaining == 0 {
            self.active = None;
        }
        if moved > 0 {
            StepOutcome::Progress {
                cycles: moved as u64,
            }
        } else {
            StepOutcome::Blocked
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Applies a scalar function to every token flowing from its input to its
/// output stream (the "+1" FU2 of Fig. 6).
///
/// uOP: `map(count)` — transform `count` scalars.
pub struct MapFu {
    name: String,
    input: StreamId,
    output: StreamId,
    f: Box<dyn Fn(f32) -> f32 + Send>,
    queue: UopQueue,
    remaining: usize,
    processed: u64,
}

impl std::fmt::Debug for MapFu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapFu")
            .field("name", &self.name)
            .field("remaining", &self.remaining)
            .field("processed", &self.processed)
            .finish()
    }
}

impl MapFu {
    /// Creates a map FU applying `f` between `input` and `output`.
    pub fn new(
        name: impl Into<String>,
        input: StreamId,
        output: StreamId,
        f: impl Fn(f32) -> f32 + Send + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            input,
            output,
            f: Box::new(f),
            queue: UopQueue::default(),
            remaining: 0,
            processed: 0,
        }
    }

    /// Total scalars transformed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl FunctionalUnit for MapFu {
    fn name(&self) -> &str {
        &self.name
    }
    fn fu_type(&self) -> &str {
        "MAP"
    }
    fn input_streams(&self) -> Vec<StreamId> {
        vec![self.input]
    }
    fn output_streams(&self) -> Vec<StreamId> {
        vec![self.output]
    }
    fn uop_queue(&self) -> &UopQueue {
        &self.queue
    }
    fn uop_queue_mut(&mut self) -> &mut UopQueue {
        &mut self.queue
    }
    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.remaining == 0
    }

    fn step(&mut self, streams: &mut StreamSet) -> StepOutcome {
        if self.remaining == 0 {
            match self.queue.pop() {
                Some(uop) if uop.opcode() == "map" => self.remaining = uop.unsigned(0),
                Some(_) | None => return StepOutcome::Idle,
            }
        }
        let mut moved = 0;
        while self.remaining > 0 && moved < BURST {
            if !streams.can_push(self.output) {
                break;
            }
            match streams.pop(self.input) {
                Some(token) => {
                    let v = token.as_scalar().unwrap_or(0.0);
                    streams
                        .push(self.output, Token::Scalar((self.f)(v)))
                        .expect("push checked above");
                    self.remaining -= 1;
                    self.processed += 1;
                    moved += 1;
                }
                None => break,
            }
        }
        if moved > 0 {
            StepOutcome::Progress {
                cycles: moved as u64,
            }
        } else {
            StepOutcome::Blocked
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Routes tokens from one of several inputs to one of several outputs
/// (the Mesh FU of Fig. 7).
///
/// uOP: `route(in_port, out_port, count)` — forward `count` tokens.
#[derive(Debug)]
pub struct RouterFu {
    name: String,
    ins: Vec<StreamId>,
    outs: Vec<StreamId>,
    queue: UopQueue,
    active: Option<(usize, usize, usize)>,
    forwarded: u64,
}

impl RouterFu {
    /// Creates a router FU with the given input and output ports.
    pub fn new(name: impl Into<String>, ins: Vec<StreamId>, outs: Vec<StreamId>) -> Self {
        Self {
            name: name.into(),
            ins,
            outs,
            queue: UopQueue::default(),
            active: None,
            forwarded: 0,
        }
    }

    /// Total tokens forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl FunctionalUnit for RouterFu {
    fn name(&self) -> &str {
        &self.name
    }
    fn fu_type(&self) -> &str {
        "ROUTER"
    }
    fn input_streams(&self) -> Vec<StreamId> {
        self.ins.clone()
    }
    fn output_streams(&self) -> Vec<StreamId> {
        self.outs.clone()
    }
    fn uop_queue(&self) -> &UopQueue {
        &self.queue
    }
    fn uop_queue_mut(&mut self) -> &mut UopQueue {
        &mut self.queue
    }
    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_none()
    }

    fn step(&mut self, streams: &mut StreamSet) -> StepOutcome {
        if self.active.is_none() {
            match self.queue.pop() {
                Some(uop) if uop.opcode() == "route" => {
                    self.active = Some((uop.unsigned(0), uop.unsigned(1), uop.unsigned(2)));
                }
                Some(_) | None => return StepOutcome::Idle,
            }
        }
        let (in_port, out_port, mut remaining) = self.active.expect("kernel just launched");
        if in_port >= self.ins.len() || out_port >= self.outs.len() {
            self.active = None;
            return StepOutcome::progress();
        }
        let (input, output) = (self.ins[in_port], self.outs[out_port]);
        let mut moved = 0;
        while remaining > 0 && moved < BURST {
            if !streams.can_push(output) {
                break;
            }
            match streams.pop(input) {
                Some(token) => {
                    streams.push(output, token).expect("push checked above");
                    remaining -= 1;
                    moved += 1;
                    self.forwarded += 1;
                }
                None => break,
            }
        }
        self.active = if remaining == 0 {
            None
        } else {
            Some((in_port, out_port, remaining))
        };
        if moved > 0 {
            StepOutcome::Progress {
                cycles: moved as u64,
            }
        } else {
            StepOutcome::Blocked
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DatapathBuilder;
    use crate::sim::Engine;
    use crate::uop::Uop;

    #[test]
    fn source_map_sink_increments_data() {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 4);
        let s2 = b.add_stream("s2", 4);
        let input: Vec<f32> = (0..50).map(|x| x as f32).collect();
        let src = b.add_fu(MemSourceFu::new("src", input, vec![s1]));
        let map = b.add_fu(MapFu::new("map", s1, s2, |x| x + 1.0));
        let sink = b.add_fu(MemSinkFu::new("sink", 50, vec![s2]));
        let mut engine = Engine::new(b.build().unwrap());
        engine.push_uop(src, Uop::new("read", [0, 50, 0]));
        engine.push_uop(map, Uop::new("map", [50]));
        engine.push_uop(sink, Uop::new("write", [0, 50, 0]));
        engine.run().unwrap();
        let sink_fu = engine.fu::<MemSinkFu>(sink).unwrap();
        let expected: Vec<f32> = (0..50).map(|x| x as f32 + 1.0).collect();
        assert_eq!(sink_fu.memory(), expected.as_slice());
        let map_fu = engine.fu::<MapFu>(map).unwrap();
        assert_eq!(map_fu.processed(), 50);
    }

    #[test]
    fn router_selects_ports() {
        let mut b = DatapathBuilder::new();
        let s_in0 = b.add_stream("in0", 4);
        let s_in1 = b.add_stream("in1", 4);
        let s_out = b.add_stream("out", 4);
        let src0 = b.add_fu(MemSourceFu::new("src0", vec![1.0; 8], vec![s_in0]));
        let src1 = b.add_fu(MemSourceFu::new("src1", vec![2.0; 8], vec![s_in1]));
        let router = b.add_fu(RouterFu::new("mesh", vec![s_in0, s_in1], vec![s_out]));
        let sink = b.add_fu(MemSinkFu::new("sink", 16, vec![s_out]));
        let mut engine = Engine::new(b.build().unwrap());
        engine.push_uop(src0, Uop::new("read", [0, 8, 0]));
        engine.push_uop(src1, Uop::new("read", [0, 8, 0]));
        engine.push_uop(router, Uop::new("route", [0, 0, 8]));
        engine.push_uop(router, Uop::new("route", [1, 0, 8]));
        engine.push_uop(sink, Uop::new("write", [0, 16, 0]));
        engine.run().unwrap();
        let sink_fu = engine.fu::<MemSinkFu>(sink).unwrap();
        assert_eq!(&sink_fu.memory()[..8], &[1.0; 8]);
        assert_eq!(&sink_fu.memory()[8..], &[2.0; 8]);
        let router_fu = engine.fu::<RouterFu>(router).unwrap();
        assert_eq!(router_fu.forwarded(), 16);
    }

    #[test]
    fn out_of_range_port_terminates_kernel() {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 4);
        let src = b.add_fu(MemSourceFu::new("src", vec![1.0; 4], vec![s1]));
        let sink = b.add_fu(MemSinkFu::new("sink", 4, vec![s1]));
        let mut engine = Engine::new(b.build().unwrap());
        // Port 3 does not exist; the kernel should complete without moving data.
        engine.push_uop(src, Uop::new("read", [3, 4, 0]));
        engine.push_uop(src, Uop::new("read", [0, 4, 0]));
        engine.push_uop(sink, Uop::new("write", [0, 4, 0]));
        engine.run().unwrap();
        let sink_fu = engine.fu::<MemSinkFu>(sink).unwrap();
        assert_eq!(sink_fu.memory(), &[1.0; 4]);
    }
}
