//! Datapath construction and validation.
//!
//! An RSN datapath is a directed graph of functional units and stream edges.
//! Edges are point-to-point: exactly one producer and one consumer, matching
//! the circuit-switched network abstraction of §3.1.  The builder checks
//! this structural invariant before handing the datapath to the engine.

use crate::error::RsnError;
use crate::fu::{FuId, FunctionalUnit};
use crate::stream::{StreamChannel, StreamId, StreamSet};
use std::collections::BTreeMap;

/// Incrementally assembles a [`Datapath`].
#[derive(Debug, Default)]
pub struct DatapathBuilder {
    streams: StreamSet,
    fus: Vec<Box<dyn FunctionalUnit>>,
}

impl DatapathBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a stream edge with the given token capacity and returns its id.
    ///
    /// Stream ids must be handed to the FUs that will use them *before* the
    /// FUs are added, which is why streams are declared first.
    pub fn add_stream(&mut self, name: impl Into<String>, capacity: usize) -> StreamId {
        self.streams.add(StreamChannel::new(name, capacity))
    }

    /// Adds a functional unit and returns its id.
    pub fn add_fu<F: FunctionalUnit + 'static>(&mut self, fu: F) -> FuId {
        let id = FuId(self.fus.len());
        self.fus.push(Box::new(fu));
        id
    }

    /// Number of FUs added so far.
    pub fn fu_count(&self) -> usize {
        self.fus.len()
    }

    /// Number of streams added so far.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Validates the network structure and produces the datapath.
    ///
    /// # Errors
    ///
    /// * [`RsnError::UnknownStream`] if an FU references a stream id that was
    ///   never declared.
    /// * [`RsnError::MalformedEdge`] if any stream does not have exactly one
    ///   producer and exactly one consumer.
    pub fn build(self) -> Result<Datapath, RsnError> {
        let mut producers = vec![0usize; self.streams.len()];
        let mut consumers = vec![0usize; self.streams.len()];
        for fu in &self.fus {
            for s in fu.output_streams() {
                if !self.streams.contains(s) {
                    return Err(RsnError::UnknownStream {
                        stream: s.index(),
                        fu: fu.name().to_string(),
                    });
                }
                producers[s.index()] += 1;
            }
            for s in fu.input_streams() {
                if !self.streams.contains(s) {
                    return Err(RsnError::UnknownStream {
                        stream: s.index(),
                        fu: fu.name().to_string(),
                    });
                }
                consumers[s.index()] += 1;
            }
        }
        for (id, ch) in self.streams.iter() {
            let p = producers[id.index()];
            let c = consumers[id.index()];
            if p != 1 || c != 1 {
                return Err(RsnError::MalformedEdge {
                    stream: ch.name().to_string(),
                    producers: p,
                    consumers: c,
                });
            }
        }
        let mut by_type: BTreeMap<String, Vec<FuId>> = BTreeMap::new();
        for (i, fu) in self.fus.iter().enumerate() {
            by_type
                .entry(fu.fu_type().to_string())
                .or_default()
                .push(FuId(i));
        }
        Ok(Datapath {
            streams: self.streams,
            fus: self.fus,
            by_type,
        })
    }
}

/// A validated RSN datapath: the FU network plus its stream edges.
#[derive(Debug)]
pub struct Datapath {
    pub(crate) streams: StreamSet,
    pub(crate) fus: Vec<Box<dyn FunctionalUnit>>,
    by_type: BTreeMap<String, Vec<FuId>>,
}

impl Datapath {
    /// Number of functional units.
    pub fn fu_count(&self) -> usize {
        self.fus.len()
    }

    /// Number of stream edges.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// All FU ids, in insertion order.
    pub fn fu_ids(&self) -> impl Iterator<Item = FuId> + '_ {
        (0..self.fus.len()).map(FuId)
    }

    /// The name of an FU.
    ///
    /// # Errors
    ///
    /// Returns [`RsnError::UnknownFu`] for an out-of-range id.
    pub fn fu_name(&self, id: FuId) -> Result<&str, RsnError> {
        self.fus
            .get(id.index())
            .map(|f| f.name())
            .ok_or(RsnError::UnknownFu { fu: id.index() })
    }

    /// The FU-type string of an FU.
    ///
    /// # Errors
    ///
    /// Returns [`RsnError::UnknownFu`] for an out-of-range id.
    pub fn fu_type(&self, id: FuId) -> Result<&str, RsnError> {
        self.fus
            .get(id.index())
            .map(|f| f.fu_type())
            .ok_or(RsnError::UnknownFu { fu: id.index() })
    }

    /// Ids of all FUs of the given type, in insertion ("lane") order.
    pub fn fus_of_type(&self, fu_type: &str) -> &[FuId] {
        self.by_type.get(fu_type).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All FU types present in the datapath, ordered alphabetically.
    pub fn fu_types(&self) -> impl Iterator<Item = &str> {
        self.by_type.keys().map(String::as_str)
    }

    /// Looks up the FU id for a `(type, lane)` pair — the addressing scheme
    /// used by packet masks.
    pub fn fu_by_lane(&self, fu_type: &str, lane: usize) -> Option<FuId> {
        self.by_type.get(fu_type).and_then(|v| v.get(lane)).copied()
    }

    /// Borrow a concrete FU for inspection (post-run state checks).
    pub fn fu_as<T: 'static>(&self, id: FuId) -> Option<&T> {
        self.fus
            .get(id.index())
            .and_then(|f| f.as_any().downcast_ref())
    }

    /// Mutably borrow a concrete FU, e.g. to preload an off-chip memory FU
    /// with input matrices between runs.
    pub fn fu_as_mut<T: 'static>(&mut self, id: FuId) -> Option<&mut T> {
        self.fus
            .get_mut(id.index())
            .and_then(|f| f.as_any_mut().downcast_mut())
    }

    /// Immutable access to the stream set (for statistics).
    pub fn streams(&self) -> &StreamSet {
        &self.streams
    }

    pub(crate) fn split_mut(&mut self) -> (&mut Vec<Box<dyn FunctionalUnit>>, &mut StreamSet) {
        (&mut self.fus, &mut self.streams)
    }

    /// Mutable access to a single FU (used by the engine and the decoder to
    /// deliver uOPs).
    pub(crate) fn fu_mut(&mut self, id: FuId) -> &mut dyn FunctionalUnit {
        self.fus[id.index()].as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fus::{MapFu, MemSinkFu, MemSourceFu};

    #[test]
    fn valid_chain_builds() {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 2);
        let s2 = b.add_stream("s2", 2);
        b.add_fu(MemSourceFu::new("src", vec![0.0; 4], vec![s1]));
        b.add_fu(MapFu::new("map", s1, s2, |x| x));
        b.add_fu(MemSinkFu::new("sink", 4, vec![s2]));
        let dp = b.build().unwrap();
        assert_eq!(dp.fu_count(), 3);
        assert_eq!(dp.stream_count(), 2);
        assert_eq!(dp.fus_of_type("MAP").len(), 1);
        assert_eq!(dp.fu_by_lane("MEM_SRC", 0), Some(FuId(0)));
        assert!(dp.fu_by_lane("MEM_SRC", 1).is_none());
        assert_eq!(dp.fu_name(FuId(1)).unwrap(), "map");
        assert_eq!(dp.fu_type(FuId(2)).unwrap(), "MEM_SINK");
        assert!(dp.fu_name(FuId(9)).is_err());
        assert_eq!(dp.fu_types().count(), 3);
    }

    #[test]
    fn dangling_stream_is_rejected() {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 2);
        let s2 = b.add_stream("s2", 2);
        b.add_fu(MemSourceFu::new("src", vec![0.0; 4], vec![s1]));
        // s2 has no producer and no consumer; s1 has no consumer.
        b.add_fu(MemSinkFu::new("sink", 4, vec![s2]));
        let err = b.build().unwrap_err();
        assert!(matches!(err, RsnError::MalformedEdge { .. }));
    }

    #[test]
    fn unknown_stream_reference_is_rejected() {
        let mut b = DatapathBuilder::new();
        let bogus = StreamId::from_index(17);
        b.add_fu(MemSourceFu::new("src", vec![0.0; 4], vec![bogus]));
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            RsnError::UnknownStream {
                stream: 17,
                fu: "src".to_string()
            }
        );
    }

    #[test]
    fn double_consumer_is_rejected() {
        let mut b = DatapathBuilder::new();
        let s1 = b.add_stream("s1", 2);
        b.add_fu(MemSourceFu::new("src", vec![0.0; 4], vec![s1]));
        b.add_fu(MemSinkFu::new("sink0", 4, vec![s1]));
        b.add_fu(MemSinkFu::new("sink1", 4, vec![s1]));
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            RsnError::MalformedEdge {
                producers: 1,
                consumers: 2,
                ..
            }
        ));
    }
}
