//! Latency-insensitive stream channels — the edges of the RSN network.
//!
//! A stream is a bounded FIFO between exactly one producer FU and one
//! consumer FU.  Correctness of an RSN program does not depend on timing:
//! producers stall when the channel is full, consumers stall when it is
//! empty (§3.1, "latency-insensitive ... the FUs are stallable").  The
//! simulator exposes the non-blocking `try_push` / `try_pop` pair; blocked
//! FUs simply report [`StepOutcome::Blocked`](crate::fu::StepOutcome) and are
//! retried on the next engine pass.

use crate::data::Token;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifier of a stream edge within a [`Datapath`](crate::network::Datapath).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId(pub(crate) usize);

impl StreamId {
    /// Raw index of this stream inside its datapath.
    pub fn index(self) -> usize {
        self.0
    }

    /// Constructs a stream id from a raw index.
    ///
    /// Intended for tests and for code that rebuilds a datapath from a
    /// serialized description; ids only make sense relative to one datapath.
    pub fn from_index(index: usize) -> Self {
        StreamId(index)
    }
}

/// Aggregate statistics of one stream, gathered during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Total tokens pushed over the lifetime of the run.
    pub tokens_pushed: u64,
    /// Total tokens popped over the lifetime of the run.
    pub tokens_popped: u64,
    /// Total FP32-equivalent words transferred.
    pub words_transferred: u64,
    /// Maximum queue occupancy observed.
    pub max_occupancy: usize,
    /// Number of failed pushes (producer backpressure events).
    pub push_stalls: u64,
    /// Number of failed pops (consumer starvation events).
    pub pop_stalls: u64,
}

/// A bounded FIFO carrying [`Token`]s between two functional units.
#[derive(Debug, Clone)]
pub struct StreamChannel {
    name: String,
    capacity: usize,
    queue: VecDeque<Token>,
    stats: StreamStats,
}

impl StreamChannel {
    /// Creates an empty channel with the given token capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`; a zero-capacity channel can never move data.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "stream capacity must be non-zero");
        Self {
            name: name.into(),
            capacity,
            queue: VecDeque::with_capacity(capacity),
            stats: StreamStats::default(),
        }
    }

    /// The stream's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum number of in-flight tokens.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tokens currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when no tokens are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Returns `true` when the channel cannot accept another token.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Attempts to enqueue a token; returns it back if the channel is full.
    pub fn try_push(&mut self, token: Token) -> Result<(), Token> {
        if self.is_full() {
            self.stats.push_stalls += 1;
            return Err(token);
        }
        self.stats.tokens_pushed += 1;
        self.stats.words_transferred += token.word_count() as u64;
        self.queue.push_back(token);
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.queue.len());
        Ok(())
    }

    /// Attempts to dequeue a token; returns `None` if the channel is empty.
    pub fn try_pop(&mut self) -> Option<Token> {
        match self.queue.pop_front() {
            Some(token) => {
                self.stats.tokens_popped += 1;
                Some(token)
            }
            None => {
                self.stats.pop_stalls += 1;
                None
            }
        }
    }

    /// Peeks at the next token without consuming it.
    pub fn peek(&self) -> Option<&Token> {
        self.queue.front()
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

/// The collection of stream channels owned by the execution engine.
///
/// Functional units access their bound streams through this set during a
/// [`step`](crate::fu::FunctionalUnit::step) call.
#[derive(Debug, Default)]
pub struct StreamSet {
    channels: Vec<StreamChannel>,
}

impl StreamSet {
    /// Creates an empty stream set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a channel and returns its id.
    pub fn add(&mut self, channel: StreamChannel) -> StreamId {
        let id = StreamId(self.channels.len());
        self.channels.push(channel);
        id
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Returns `true` if the set holds no channels.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Immutable access to a channel.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    pub fn channel(&self, id: StreamId) -> &StreamChannel {
        &self.channels[id.0]
    }

    /// Mutable access to a channel.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    pub fn channel_mut(&mut self, id: StreamId) -> &mut StreamChannel {
        &mut self.channels[id.0]
    }

    /// Returns whether `id` refers to a channel of this set.
    pub fn contains(&self, id: StreamId) -> bool {
        id.0 < self.channels.len()
    }

    /// Convenience: can a token be pushed to `id` right now?
    pub fn can_push(&self, id: StreamId) -> bool {
        !self.channels[id.0].is_full()
    }

    /// Convenience: can a token be popped from `id` right now?
    pub fn can_pop(&self, id: StreamId) -> bool {
        !self.channels[id.0].is_empty()
    }

    /// Convenience wrapper over [`StreamChannel::try_push`].
    pub fn push(&mut self, id: StreamId, token: Token) -> Result<(), Token> {
        self.channels[id.0].try_push(token)
    }

    /// Convenience wrapper over [`StreamChannel::try_pop`].
    pub fn pop(&mut self, id: StreamId) -> Option<Token> {
        self.channels[id.0].try_pop()
    }

    /// Iterates over `(id, channel)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StreamId, &StreamChannel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (StreamId(i), c))
    }

    /// Total tokens still queued across all channels (used for quiescence
    /// and leftover-data detection).
    pub fn total_queued(&self) -> usize {
        self.channels.iter().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut ch = StreamChannel::new("s", 8);
        for i in 0..5 {
            ch.try_push(Token::Scalar(i as f32)).unwrap();
        }
        for i in 0..5 {
            assert_eq!(ch.try_pop().unwrap().as_scalar(), Some(i as f32));
        }
        assert!(ch.is_empty());
    }

    #[test]
    fn backpressure_when_full() {
        let mut ch = StreamChannel::new("s", 2);
        assert!(ch.try_push(Token::Flag(1)).is_ok());
        assert!(ch.try_push(Token::Flag(2)).is_ok());
        assert!(ch.is_full());
        let rejected = ch.try_push(Token::Flag(3));
        assert_eq!(rejected, Err(Token::Flag(3)));
        assert_eq!(ch.stats().push_stalls, 1);
    }

    #[test]
    fn starvation_counts_pop_stalls() {
        let mut ch = StreamChannel::new("s", 2);
        assert!(ch.try_pop().is_none());
        assert!(ch.try_pop().is_none());
        assert_eq!(ch.stats().pop_stalls, 2);
    }

    #[test]
    fn stats_track_words_and_occupancy() {
        let mut ch = StreamChannel::new("s", 4);
        ch.try_push(Token::Tile(crate::data::Tile::zeros(2, 4)))
            .unwrap();
        ch.try_push(Token::Scalar(1.0)).unwrap();
        assert_eq!(ch.stats().words_transferred, 9);
        assert_eq!(ch.stats().max_occupancy, 2);
        ch.try_pop().unwrap();
        assert_eq!(ch.stats().tokens_popped, 1);
        assert_eq!(ch.stats().max_occupancy, 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut ch = StreamChannel::new("s", 2);
        ch.try_push(Token::Scalar(7.0)).unwrap();
        assert_eq!(ch.peek().unwrap().as_scalar(), Some(7.0));
        assert_eq!(ch.len(), 1);
    }

    #[test]
    fn stream_set_push_pop_roundtrip() {
        let mut set = StreamSet::new();
        let a = set.add(StreamChannel::new("a", 2));
        let b = set.add(StreamChannel::new("b", 2));
        assert_eq!(set.len(), 2);
        assert!(set.contains(a));
        assert!(set.contains(b));
        set.push(a, Token::Scalar(1.0)).unwrap();
        assert!(set.can_pop(a));
        assert!(!set.can_pop(b));
        assert_eq!(set.pop(a).unwrap().as_scalar(), Some(1.0));
        assert_eq!(set.total_queued(), 0);
    }

    #[test]
    #[should_panic(expected = "stream capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = StreamChannel::new("s", 0);
    }

    #[test]
    fn stream_id_index_roundtrip() {
        let id = StreamId::from_index(5);
        assert_eq!(id.index(), 5);
    }
}
