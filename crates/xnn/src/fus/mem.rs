//! The MemA / MemB scratchpad functional units.
//!
//! MemA buffers LHS tiles between the DDR FU and MeshA; MemB buffers RHS
//! tiles (weights from LPDDR or activations from DDR) between the off-chip
//! FUs and MeshB, optionally transposing them on the way out (Table 2 lists
//! "transpose input" in MemB's control plane).  They are double buffered in
//! hardware so loading the next tile overlaps with sending the current one;
//! the simulator models the buffer as a small tile queue and lets one uOP
//! request both a load count and a send count, which gives the same overlap
//! behaviour observable from outside.

use rsn_core::data::Token;
use rsn_core::fu::{FunctionalUnit, StepOutcome};
use rsn_core::stream::{StreamId, StreamSet};
use rsn_core::uop::UopQueue;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct Xfer {
    load_remaining: usize,
    send_remaining: usize,
    in_port: usize,
    transpose: bool,
}

/// A double-buffered tile scratchpad (MemA or MemB).
#[derive(Debug)]
pub struct MemFu {
    name: String,
    fu_type: String,
    ins: Vec<StreamId>,
    out: StreamId,
    queue: UopQueue,
    buffer: VecDeque<rsn_core::data::Tile>,
    active: Option<Xfer>,
    tiles_loaded: u64,
    tiles_sent: u64,
}

impl MemFu {
    /// Creates a scratchpad FU.
    ///
    /// `fu_type` should be `"MemA"` or `"MemB"`; `ins` are streams from the
    /// off-chip FUs, `out` feeds the mesh.
    pub fn new(
        name: impl Into<String>,
        fu_type: impl Into<String>,
        ins: Vec<StreamId>,
        out: StreamId,
    ) -> Self {
        Self {
            name: name.into(),
            fu_type: fu_type.into(),
            ins,
            out,
            queue: UopQueue::default(),
            buffer: VecDeque::new(),
            active: None,
            tiles_loaded: 0,
            tiles_sent: 0,
        }
    }

    /// Tiles loaded from off-chip so far.
    pub fn tiles_loaded(&self) -> u64 {
        self.tiles_loaded
    }

    /// Tiles sent to the mesh so far.
    pub fn tiles_sent(&self) -> u64 {
        self.tiles_sent
    }

    /// Tiles currently held in the scratchpad.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

impl FunctionalUnit for MemFu {
    fn name(&self) -> &str {
        &self.name
    }
    fn fu_type(&self) -> &str {
        &self.fu_type
    }
    fn input_streams(&self) -> Vec<StreamId> {
        self.ins.clone()
    }
    fn output_streams(&self) -> Vec<StreamId> {
        vec![self.out]
    }
    fn uop_queue(&self) -> &UopQueue {
        &self.queue
    }
    fn uop_queue_mut(&mut self) -> &mut UopQueue {
        &mut self.queue
    }
    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_none()
    }

    fn step(&mut self, streams: &mut StreamSet) -> StepOutcome {
        if self.active.is_none() {
            match self.queue.pop() {
                Some(uop) if uop.opcode() == "xfer" => {
                    self.active = Some(Xfer {
                        load_remaining: uop.unsigned(0),
                        send_remaining: uop.unsigned(1),
                        in_port: uop.unsigned(2),
                        transpose: uop.flag(3),
                    });
                }
                Some(_) | None => return StepOutcome::Idle,
            }
        }
        let mut xfer = self.active.expect("kernel just launched");
        let mut moved = 0u64;
        for _ in 0..super::TILE_BURST {
            let mut advanced = false;
            // Load half of the ping-pong buffer.
            if xfer.load_remaining > 0 {
                if let Some(input) = self.ins.get(xfer.in_port).copied() {
                    if let Some(token) = streams.pop(input) {
                        if let Some(tile) = token.into_tile() {
                            self.buffer.push_back(tile);
                            self.tiles_loaded += 1;
                        }
                        xfer.load_remaining -= 1;
                        moved += 1;
                        advanced = true;
                    }
                } else {
                    // Invalid port: drop the load half.
                    xfer.load_remaining = 0;
                    advanced = true;
                }
            }
            // Send half of the ping-pong buffer.
            if xfer.send_remaining > 0 && !self.buffer.is_empty() && streams.can_push(self.out) {
                let tile = self.buffer.pop_front().expect("buffer non-empty");
                let tile = if xfer.transpose {
                    tile.transposed()
                } else {
                    tile
                };
                streams
                    .push(self.out, Token::Tile(tile))
                    .expect("capacity checked");
                xfer.send_remaining -= 1;
                self.tiles_sent += 1;
                moved += 1;
                advanced = true;
            }
            if !advanced {
                break;
            }
        }
        self.active = if xfer.load_remaining == 0 && xfer.send_remaining == 0 {
            None
        } else {
            Some(xfer)
        };
        if moved > 0 {
            StepOutcome::Progress { cycles: moved }
        } else {
            StepOutcome::Blocked
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fus::OffchipFu;
    use rsn_core::data::Tile;
    use rsn_core::network::DatapathBuilder;
    use rsn_core::sim::Engine;
    use rsn_core::uop::Uop;
    use rsn_workloads::Matrix;

    /// DDR → MemB(transpose) → DDR store; checks the transposed tile lands
    /// in the output matrix.
    #[test]
    fn mem_fu_passes_and_transposes_tiles() {
        let mut b = DatapathBuilder::new();
        let s_load = b.add_stream("ddr->memb", 2);
        let s_out = b.add_stream("memb->ddr", 2);
        let mut ddr = OffchipFu::new("DDR", "DDR", vec![s_out], vec![s_load]);
        let src = Matrix::random(4, 4, 11);
        ddr.insert_matrix(1, src.clone());
        ddr.allocate_matrix(2, 4, 4);
        let ddr_id = b.add_fu(ddr);
        let mem_id = b.add_fu(MemFu::new("MemB0", "MemB", vec![s_load], s_out));
        let mut engine = Engine::new(b.build().unwrap());
        engine.push_uop(ddr_id, Uop::new("load", [1, 0, 0, 4, 4, 0]));
        engine.push_uop(mem_id, Uop::new("xfer", [1, 1, 0, 1]));
        engine.push_uop(ddr_id, Uop::new("store", [2, 0, 0, 0]));
        engine.run().unwrap();
        let ddr = engine.fu::<OffchipFu>(ddr_id).unwrap();
        assert!(ddr.matrix(2).unwrap().max_abs_diff(&src.transposed()) < 1e-7);
        let mem = engine.fu::<MemFu>(mem_id).unwrap();
        assert_eq!(mem.tiles_loaded(), 1);
        assert_eq!(mem.tiles_sent(), 1);
        assert_eq!(mem.buffered(), 0);
    }

    #[test]
    fn load_only_uop_buffers_without_sending() {
        let mut b = DatapathBuilder::new();
        let s_in = b.add_stream("in", 4);
        let s_out = b.add_stream("out", 4);
        // Source feeds two tiles; sink consumes whatever arrives.
        let src = rsn_core::fus::RouterFu::new("src_router", vec![], vec![]);
        drop(src);
        let mut ddr = OffchipFu::new("DDR", "DDR", vec![s_out], vec![s_in]);
        ddr.insert_matrix(1, Matrix::random(2, 2, 1));
        let ddr_id = b.add_fu(ddr);
        let mem_id = b.add_fu(MemFu::new("MemA0", "MemA", vec![s_in], s_out));
        let mut engine = Engine::new(b.build().unwrap());
        engine.push_uop(ddr_id, Uop::new("load", [1, 0, 0, 2, 2, 0]));
        // Prolog-style uOP: load only, no send (paper's first MemA uOP).
        engine.push_uop(mem_id, Uop::new("xfer", [1, 0, 0, 0]));
        let report = engine.run().unwrap();
        assert_eq!(report.residual_tokens, 0);
        let mem = engine.fu::<MemFu>(mem_id).unwrap();
        assert_eq!(mem.buffered(), 1);
        assert_eq!(mem.tiles_sent(), 0);
        let _ = Tile::zeros(1, 1);
    }
}
