//! The MemC output-scratchpad functional unit.
//!
//! MemC FUs receive finished tiles from their MME, apply the fused non-MM
//! operators (bias, GELU, scale + softmax, residual add + LayerNorm — the
//! operations Table 2 lists in MemC's control plane), and then either drain
//! the result towards the DDR FU for off-chip storage or forward it over the
//! feedback path into MeshA so a dependent layer can consume it without ever
//! leaving the chip (the dynamic pipelining of Fig. 7).
//!
//! Bias vectors and LayerNorm parameters are configured on the FU by the
//! host before the run, standing in for the paper's "load bias from LPDDR"
//! path; this keeps the uOP control plane identical while avoiding a second
//! bias-streaming protocol in the simulator.

use rsn_core::data::{Tile, Token};
use rsn_core::fu::{FunctionalUnit, StepOutcome};
use rsn_core::stream::{StreamId, StreamSet};
use rsn_core::uop::UopQueue;
use rsn_workloads::Matrix;

/// The non-MM transform a `post` uOP applies to each tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostTransform {
    /// Pass tiles through unchanged.
    None,
    /// Add the configured bias (sliced by the tile's column offset).
    Bias,
    /// Add bias, then apply GELU (feed-forward layer 1).
    BiasGelu,
    /// Multiply by the configured softmax scale, then row-wise softmax
    /// (attention scores).
    ScaledSoftmax,
    /// Add bias, add the residual tile from the auxiliary input, then apply
    /// LayerNorm with the configured gamma/beta (Dense and feed-forward
    /// layer 2 epilogues).
    BiasResidualNorm,
}

impl PostTransform {
    /// Decodes the uOP field encoding.
    pub fn from_code(code: i64) -> Self {
        match code {
            1 => PostTransform::Bias,
            2 => PostTransform::BiasGelu,
            3 => PostTransform::ScaledSoftmax,
            4 => PostTransform::BiasResidualNorm,
            _ => PostTransform::None,
        }
    }

    /// Encodes the transform for a uOP field.
    pub fn code(self) -> i64 {
        match self {
            PostTransform::None => 0,
            PostTransform::Bias => 1,
            PostTransform::BiasGelu => 2,
            PostTransform::ScaledSoftmax => 3,
            PostTransform::BiasResidualNorm => 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PostKernel {
    remaining: usize,
    processed: usize,
    transform: PostTransform,
    dest_port: usize,
    use_residual: bool,
    col_tile_offset: usize,
    col_tiles: usize,
}

/// The MemC output scratchpad with fused non-MM operators.
#[derive(Debug)]
pub struct MemCFu {
    name: String,
    from_mme: StreamId,
    residual_in: StreamId,
    outs: Vec<StreamId>,
    queue: UopQueue,
    active: Option<PostKernel>,
    bias: Vec<f32>,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    softmax_scale: f32,
    nonmm_ops: u64,
}

impl MemCFu {
    /// Creates a MemC FU.
    ///
    /// `from_mme` carries finished MME tiles, `residual_in` carries residual
    /// tiles loaded by the DDR FU, and `outs` are `[to DDR store, to MeshA
    /// feedback]`.
    pub fn new(
        name: impl Into<String>,
        from_mme: StreamId,
        residual_in: StreamId,
        outs: Vec<StreamId>,
    ) -> Self {
        Self {
            name: name.into(),
            from_mme,
            residual_in,
            outs,
            queue: UopQueue::default(),
            active: None,
            bias: Vec::new(),
            gamma: Vec::new(),
            beta: Vec::new(),
            softmax_scale: 1.0,
            nonmm_ops: 0,
        }
    }

    /// Configures the bias vector (indexed by absolute output column).
    pub fn set_bias(&mut self, bias: Vec<f32>) {
        self.bias = bias;
    }

    /// Configures the LayerNorm scale and shift vectors.
    pub fn set_norm_params(&mut self, gamma: Vec<f32>, beta: Vec<f32>) {
        self.gamma = gamma;
        self.beta = beta;
    }

    /// Configures the pre-softmax scale (1/√d for attention).
    pub fn set_softmax_scale(&mut self, scale: f32) {
        self.softmax_scale = scale;
    }

    /// Number of non-MM tile transformations applied so far.
    pub fn nonmm_ops(&self) -> u64 {
        self.nonmm_ops
    }

    fn bias_slice(&self, col_offset: usize, cols: usize) -> Vec<f32> {
        (0..cols)
            .map(|c| self.bias.get(col_offset + c).copied().unwrap_or(0.0))
            .collect()
    }

    fn apply(&self, kernel: &PostKernel, tile: Tile, residual: Option<Tile>) -> Tile {
        let rows = tile.rows();
        let cols = tile.cols();
        let col_offset =
            (kernel.col_tile_offset + (kernel.processed % kernel.col_tiles.max(1))) * cols;
        let m = Matrix::from_vec(rows, cols, tile.into_vec());
        let result = match kernel.transform {
            PostTransform::None => m,
            PostTransform::Bias => m.add_bias(&self.bias_slice(col_offset, cols)),
            PostTransform::BiasGelu => m.add_bias(&self.bias_slice(col_offset, cols)).gelu(),
            PostTransform::ScaledSoftmax => m.scale(self.softmax_scale).softmax_rows(),
            PostTransform::BiasResidualNorm => {
                let mut x = m.add_bias(&self.bias_slice(col_offset, cols));
                if let Some(res) = residual {
                    let r = Matrix::from_vec(res.rows(), res.cols(), res.into_vec());
                    x = x.add(&r);
                }
                let gamma = if self.gamma.len() == cols {
                    self.gamma.clone()
                } else {
                    vec![1.0; cols]
                };
                let beta = if self.beta.len() == cols {
                    self.beta.clone()
                } else {
                    vec![0.0; cols]
                };
                x.layer_norm(&gamma, &beta, 1e-5)
            }
        };
        Tile::from_vec(rows, cols, result.into_vec())
    }
}

impl FunctionalUnit for MemCFu {
    fn name(&self) -> &str {
        &self.name
    }
    fn fu_type(&self) -> &str {
        "MemC"
    }
    fn input_streams(&self) -> Vec<StreamId> {
        vec![self.from_mme, self.residual_in]
    }
    fn output_streams(&self) -> Vec<StreamId> {
        self.outs.clone()
    }
    fn uop_queue(&self) -> &UopQueue {
        &self.queue
    }
    fn uop_queue_mut(&mut self) -> &mut UopQueue {
        &mut self.queue
    }
    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_none()
    }

    fn step(&mut self, streams: &mut StreamSet) -> StepOutcome {
        let mut moved = 0u64;
        for _ in 0..super::TILE_BURST {
            if self.active.is_none() {
                match self.queue.pop() {
                    Some(uop) if uop.opcode() == "post" => {
                        self.active = Some(PostKernel {
                            remaining: uop.unsigned(0),
                            processed: 0,
                            transform: PostTransform::from_code(uop.field(1).unwrap_or(0)),
                            dest_port: uop.unsigned(2),
                            use_residual: uop.flag(3),
                            col_tile_offset: uop.unsigned(4),
                            col_tiles: uop.unsigned(5).max(1),
                        });
                    }
                    Some(_) | None => {
                        return if moved > 0 {
                            StepOutcome::Progress { cycles: moved }
                        } else {
                            StepOutcome::Idle
                        };
                    }
                }
            }
            let kernel = *self.active.as_ref().expect("kernel just launched");
            if kernel.remaining == 0 {
                self.active = None;
                continue;
            }
            if kernel.dest_port >= self.outs.len() {
                self.active = None;
                continue;
            }
            let out = self.outs[kernel.dest_port];
            let inputs_ready = streams.can_pop(self.from_mme)
                && (!kernel.use_residual || streams.can_pop(self.residual_in))
                && streams.can_push(out);
            if !inputs_ready {
                return if moved > 0 {
                    StepOutcome::Progress { cycles: moved }
                } else {
                    StepOutcome::Blocked
                };
            }
            let tile = streams
                .pop(self.from_mme)
                .and_then(Token::into_tile)
                .unwrap_or_else(|| Tile::zeros(1, 1));
            let residual = if kernel.use_residual {
                streams.pop(self.residual_in).and_then(Token::into_tile)
            } else {
                None
            };
            let result = self.apply(&kernel, tile, residual);
            streams
                .push(out, Token::Tile(result))
                .expect("capacity checked");
            if kernel.transform != PostTransform::None {
                self.nonmm_ops += 1;
            }
            moved += 1;
            let k = self.active.as_mut().expect("kernel active");
            k.remaining -= 1;
            k.processed += 1;
            if k.remaining == 0 {
                self.active = None;
            }
        }
        StepOutcome::Progress {
            cycles: moved.max(1),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_codes_roundtrip() {
        for t in [
            PostTransform::None,
            PostTransform::Bias,
            PostTransform::BiasGelu,
            PostTransform::ScaledSoftmax,
            PostTransform::BiasResidualNorm,
        ] {
            assert_eq!(PostTransform::from_code(t.code()), t);
        }
        assert_eq!(PostTransform::from_code(99), PostTransform::None);
    }

    #[test]
    fn bias_slice_pads_with_zeros() {
        let mut fu = MemCFu::new(
            "MemC0",
            rsn_core::stream::StreamId::from_index(0),
            rsn_core::stream::StreamId::from_index(1),
            vec![],
        );
        fu.set_bias(vec![1.0, 2.0, 3.0]);
        assert_eq!(fu.bias_slice(1, 4), vec![2.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn apply_scaled_softmax_normalises_rows() {
        let mut fu = MemCFu::new(
            "MemC0",
            rsn_core::stream::StreamId::from_index(0),
            rsn_core::stream::StreamId::from_index(1),
            vec![],
        );
        fu.set_softmax_scale(0.5);
        let kernel = PostKernel {
            remaining: 1,
            processed: 0,
            transform: PostTransform::ScaledSoftmax,
            dest_port: 0,
            use_residual: false,
            col_tile_offset: 0,
            col_tiles: 1,
        };
        let tile = Tile::from_vec(2, 3, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let out = fu.apply(&kernel, tile, None);
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| out.at(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn apply_bias_residual_norm_matches_reference() {
        let mut fu = MemCFu::new(
            "MemC0",
            rsn_core::stream::StreamId::from_index(0),
            rsn_core::stream::StreamId::from_index(1),
            vec![],
        );
        let cols = 8;
        fu.set_bias(vec![0.5; cols]);
        fu.set_norm_params(vec![1.0; cols], vec![0.0; cols]);
        let kernel = PostKernel {
            remaining: 1,
            processed: 0,
            transform: PostTransform::BiasResidualNorm,
            dest_port: 0,
            use_residual: true,
            col_tile_offset: 0,
            col_tiles: 1,
        };
        let x = Matrix::random(2, cols, 1);
        let res = Matrix::random(2, cols, 2);
        let tile = Tile::from_vec(2, cols, x.clone().into_vec());
        let res_tile = Tile::from_vec(2, cols, res.clone().into_vec());
        let out = fu.apply(&kernel, tile, Some(res_tile));
        let expected = x.add_bias(&vec![0.5; cols]).add(&res).layer_norm(
            &vec![1.0; cols],
            &vec![0.0; cols],
            1e-5,
        );
        let got = Matrix::from_vec(2, cols, out.into_vec());
        assert!(got.max_abs_diff(&expected) < 1e-5);
    }
}
