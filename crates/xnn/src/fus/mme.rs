//! The matrix-multiply-engine (MME) functional unit.
//!
//! Each MME virtualises a 64-tile AIE group behind a streaming interface:
//! LHS tiles arrive from MeshA, RHS tiles from MeshB, and finished output
//! tiles leave towards the MME's MemC FU.  One `matmul` uOP launches the
//! computation of `num_outputs` output tiles, each accumulated over
//! `accum_k` LHS/RHS tile pairs — the "Num iterations of accumK pairs"
//! kernel of Fig. 7b.

use rsn_core::data::{Tile, Token};
use rsn_core::fu::{FunctionalUnit, StepOutcome};
use rsn_core::stream::{StreamId, StreamSet};
use rsn_core::uop::UopQueue;

#[derive(Debug)]
struct MatmulKernel {
    outputs_remaining: usize,
    accum_k: usize,
    k_remaining: usize,
    acc: Option<Tile>,
    finished: Option<Tile>,
}

/// A streaming tiled matrix-multiplication engine.
#[derive(Debug)]
pub struct MmeFu {
    name: String,
    lhs_in: StreamId,
    rhs_in: StreamId,
    out: StreamId,
    queue: UopQueue,
    active: Option<MatmulKernel>,
    flops: u64,
    tiles_produced: u64,
}

impl MmeFu {
    /// Creates an MME reading LHS tiles from `lhs_in`, RHS tiles from
    /// `rhs_in` and writing results to `out`.
    pub fn new(name: impl Into<String>, lhs_in: StreamId, rhs_in: StreamId, out: StreamId) -> Self {
        Self {
            name: name.into(),
            lhs_in,
            rhs_in,
            out,
            queue: UopQueue::default(),
            active: None,
            flops: 0,
            tiles_produced: 0,
        }
    }

    /// Floating-point operations performed so far.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Output tiles produced so far.
    pub fn tiles_produced(&self) -> u64 {
        self.tiles_produced
    }
}

impl FunctionalUnit for MmeFu {
    fn name(&self) -> &str {
        &self.name
    }
    fn fu_type(&self) -> &str {
        "MME"
    }
    fn input_streams(&self) -> Vec<StreamId> {
        vec![self.lhs_in, self.rhs_in]
    }
    fn output_streams(&self) -> Vec<StreamId> {
        vec![self.out]
    }
    fn uop_queue(&self) -> &UopQueue {
        &self.queue
    }
    fn uop_queue_mut(&mut self) -> &mut UopQueue {
        &mut self.queue
    }
    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_none()
    }

    fn step(&mut self, streams: &mut StreamSet) -> StepOutcome {
        let mut moved = 0u64;
        for _ in 0..super::TILE_BURST {
            if self.active.is_none() {
                match self.queue.pop() {
                    Some(uop) if uop.opcode() == "matmul" => {
                        let accum_k = uop.unsigned(1).max(1);
                        self.active = Some(MatmulKernel {
                            outputs_remaining: uop.unsigned(0),
                            accum_k,
                            k_remaining: accum_k,
                            acc: None,
                            finished: None,
                        });
                    }
                    Some(_) | None => {
                        return if moved > 0 {
                            StepOutcome::Progress { cycles: moved }
                        } else {
                            StepOutcome::Idle
                        };
                    }
                }
            }
            let kernel = self.active.as_mut().expect("kernel just launched");
            if kernel.outputs_remaining == 0 {
                self.active = None;
                continue;
            }
            // Drain a finished accumulator first.
            if let Some(done) = kernel.finished.take() {
                if streams.can_push(self.out) {
                    streams
                        .push(self.out, Token::Tile(done))
                        .expect("capacity checked");
                    self.tiles_produced += 1;
                    kernel.outputs_remaining -= 1;
                    kernel.k_remaining = kernel.accum_k;
                    moved += 1;
                    continue;
                }
                kernel.finished = Some(done);
                return if moved > 0 {
                    StepOutcome::Progress { cycles: moved }
                } else {
                    StepOutcome::Blocked
                };
            }
            // Consume the next LHS/RHS tile pair.
            if streams.can_pop(self.lhs_in) && streams.can_pop(self.rhs_in) {
                let lhs = streams
                    .pop(self.lhs_in)
                    .and_then(Token::into_tile)
                    .unwrap_or_else(|| Tile::zeros(1, 1));
                let rhs = streams
                    .pop(self.rhs_in)
                    .and_then(Token::into_tile)
                    .unwrap_or_else(|| Tile::zeros(1, 1));
                self.flops += 2 * (lhs.rows() * lhs.cols() * rhs.cols()) as u64;
                let product = lhs.matmul(&rhs);
                match kernel.acc.as_mut() {
                    Some(acc) => acc.accumulate(&product),
                    None => kernel.acc = Some(product),
                }
                kernel.k_remaining -= 1;
                moved += 1;
                if kernel.k_remaining == 0 {
                    kernel.finished = kernel.acc.take();
                }
            } else {
                return if moved > 0 {
                    StepOutcome::Progress { cycles: moved }
                } else {
                    StepOutcome::Blocked
                };
            }
        }
        StepOutcome::Progress {
            cycles: moved.max(1),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fus::OffchipFu;
    use rsn_core::network::DatapathBuilder;
    use rsn_core::sim::Engine;
    use rsn_core::uop::Uop;
    use rsn_workloads::Matrix;

    /// DDR feeds LHS and RHS tiles directly into one MME (no mesh); the MME
    /// accumulates over K and the result is stored back to DDR.
    #[test]
    fn single_mme_accumulates_over_k() {
        let mut b = DatapathBuilder::new();
        let s_lhs = b.add_stream("ddr->lhs", 4);
        let s_rhs = b.add_stream("lpddr->rhs", 4);
        let s_out = b.add_stream("mme->ddr", 4);
        let lhs = Matrix::random(4, 8, 21);
        let rhs = Matrix::random(8, 4, 22);
        let expected = lhs.matmul(&rhs);
        let mut ddr = OffchipFu::new("DDR", "DDR", vec![s_out], vec![s_lhs]);
        ddr.insert_matrix(1, lhs);
        ddr.allocate_matrix(3, 4, 4);
        let mut lpddr = OffchipFu::new("LPDDR", "LPDDR", vec![], vec![s_rhs]);
        lpddr.insert_matrix(2, rhs);
        let ddr_id = b.add_fu(ddr);
        let lpddr_id = b.add_fu(lpddr);
        let mme_id = b.add_fu(MmeFu::new("MME0", s_lhs, s_rhs, s_out));
        let mut engine = Engine::new(b.build().unwrap());
        // Two K-tiles of 4 columns each.
        for k in 0..2 {
            engine.push_uop(ddr_id, Uop::new("load", [1, 0, 4 * k, 4, 4, 0]));
            engine.push_uop(lpddr_id, Uop::new("load", [2, 4 * k, 0, 4, 4, 0]));
        }
        engine.push_uop(mme_id, Uop::new("matmul", [1, 2]));
        engine.push_uop(ddr_id, Uop::new("store", [3, 0, 0, 0]));
        engine.run().unwrap();
        let ddr = engine.fu::<OffchipFu>(ddr_id).unwrap();
        assert!(ddr.matrix(3).unwrap().max_abs_diff(&expected) < 1e-4);
        let mme = engine.fu::<MmeFu>(mme_id).unwrap();
        assert_eq!(mme.tiles_produced(), 1);
        assert_eq!(mme.flops(), 2 * 2 * 4 * 4 * 4);
    }

    #[test]
    fn mme_with_no_uops_is_idle() {
        let mut b = DatapathBuilder::new();
        let s_lhs = b.add_stream("l", 2);
        let s_rhs = b.add_stream("r", 2);
        let s_out = b.add_stream("o", 2);
        let mut ddr = OffchipFu::new("DDR", "DDR", vec![s_out], vec![s_lhs, s_rhs]);
        ddr.insert_matrix(0, Matrix::zeros(1, 1));
        let ddr_id = b.add_fu(ddr);
        let mme_id = b.add_fu(MmeFu::new("MME0", s_lhs, s_rhs, s_out));
        let mut engine = Engine::new(b.build().unwrap());
        let report = engine.run().unwrap();
        assert_eq!(report.total_uops_retired(), 0);
        assert!(engine.fu::<MmeFu>(mme_id).unwrap().is_idle());
        let _ = ddr_id;
    }
}
