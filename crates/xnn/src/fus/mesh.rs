//! The MeshA / MeshB router functional units.
//!
//! MeshA fans LHS tiles out from the MemA scratchpads (and, for pipelined
//! second layers, from the MemC feedback paths) to the MME FUs; MeshB does
//! the same for RHS tiles from the MemB scratchpads.  Changing the `srcFU`
//! routing in a Mesh uOP is how RSN-XNN regroups its MMEs at runtime —
//! e.g. switching between "all MMEs on one large MM" and "pipeline two
//! dependent MMs" without touching the MME programs (§4.1).

use rsn_core::fu::{FunctionalUnit, StepOutcome};
use rsn_core::stream::{StreamId, StreamSet};
use rsn_core::uop::UopQueue;

#[derive(Debug, Clone, Copy)]
enum Kernel {
    Route {
        in_port: usize,
        out_port: usize,
        remaining: usize,
    },
    Broadcast {
        in_port: usize,
        remaining: usize,
        out_count: usize,
    },
}

/// A fan-in / fan-out tile router (MeshA or MeshB).
#[derive(Debug)]
pub struct MeshFu {
    name: String,
    fu_type: String,
    ins: Vec<StreamId>,
    outs: Vec<StreamId>,
    queue: UopQueue,
    active: Option<Kernel>,
    tiles_routed: u64,
}

impl MeshFu {
    /// Creates a mesh router with the given input and output ports.
    pub fn new(
        name: impl Into<String>,
        fu_type: impl Into<String>,
        ins: Vec<StreamId>,
        outs: Vec<StreamId>,
    ) -> Self {
        Self {
            name: name.into(),
            fu_type: fu_type.into(),
            ins,
            outs,
            queue: UopQueue::default(),
            active: None,
            tiles_routed: 0,
        }
    }

    /// Tiles forwarded (broadcast copies count once per destination).
    pub fn tiles_routed(&self) -> u64 {
        self.tiles_routed
    }
}

impl FunctionalUnit for MeshFu {
    fn name(&self) -> &str {
        &self.name
    }
    fn fu_type(&self) -> &str {
        &self.fu_type
    }
    fn input_streams(&self) -> Vec<StreamId> {
        self.ins.clone()
    }
    fn output_streams(&self) -> Vec<StreamId> {
        self.outs.clone()
    }
    fn uop_queue(&self) -> &UopQueue {
        &self.queue
    }
    fn uop_queue_mut(&mut self) -> &mut UopQueue {
        &mut self.queue
    }
    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_none()
    }

    fn step(&mut self, streams: &mut StreamSet) -> StepOutcome {
        let mut moved = 0u64;
        for _ in 0..super::TILE_BURST {
            if self.active.is_none() {
                match self.queue.pop() {
                    Some(uop) if uop.opcode() == "route" => {
                        self.active = Some(Kernel::Route {
                            in_port: uop.unsigned(0),
                            out_port: uop.unsigned(1),
                            remaining: uop.unsigned(2),
                        });
                    }
                    Some(uop) if uop.opcode() == "broadcast" => {
                        let requested = uop.unsigned(2);
                        let out_count = if requested == 0 || requested > self.outs.len() {
                            self.outs.len()
                        } else {
                            requested
                        };
                        self.active = Some(Kernel::Broadcast {
                            in_port: uop.unsigned(0),
                            remaining: uop.unsigned(1),
                            out_count,
                        });
                    }
                    Some(_) | None => {
                        return if moved > 0 {
                            StepOutcome::Progress { cycles: moved }
                        } else {
                            StepOutcome::Idle
                        };
                    }
                }
            }
            let advanced = match self.active.expect("kernel just launched") {
                Kernel::Route {
                    in_port,
                    out_port,
                    remaining,
                } => {
                    if in_port >= self.ins.len() || out_port >= self.outs.len() || remaining == 0 {
                        self.active = None;
                        true
                    } else if streams.can_push(self.outs[out_port])
                        && streams.can_pop(self.ins[in_port])
                    {
                        let token = streams.pop(self.ins[in_port]).expect("checked");
                        streams
                            .push(self.outs[out_port], token)
                            .expect("capacity checked");
                        self.tiles_routed += 1;
                        moved += 1;
                        self.active = if remaining == 1 {
                            None
                        } else {
                            Some(Kernel::Route {
                                in_port,
                                out_port,
                                remaining: remaining - 1,
                            })
                        };
                        true
                    } else {
                        false
                    }
                }
                Kernel::Broadcast {
                    in_port,
                    remaining,
                    out_count,
                } => {
                    let targets = &self.outs[..out_count.min(self.outs.len())];
                    if in_port >= self.ins.len() || remaining == 0 || targets.is_empty() {
                        self.active = None;
                        true
                    } else if streams.can_pop(self.ins[in_port])
                        && targets.iter().all(|&o| streams.can_push(o))
                    {
                        let token = streams.pop(self.ins[in_port]).expect("checked");
                        for &o in targets {
                            streams.push(o, token.clone()).expect("capacity checked");
                            self.tiles_routed += 1;
                        }
                        moved += 1;
                        self.active = if remaining == 1 {
                            None
                        } else {
                            Some(Kernel::Broadcast {
                                in_port,
                                remaining: remaining - 1,
                                out_count,
                            })
                        };
                        true
                    } else {
                        false
                    }
                }
            };
            if !advanced {
                return if moved > 0 {
                    StepOutcome::Progress { cycles: moved }
                } else {
                    StepOutcome::Blocked
                };
            }
        }
        StepOutcome::Progress {
            cycles: moved.max(1),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::data::{Tile, Token};
    use rsn_core::network::DatapathBuilder;
    use rsn_core::sim::Engine;
    use rsn_core::uop::Uop;

    /// A tiny helper FU that injects pre-made tiles into a stream.
    #[derive(Debug)]
    struct TileSourceFu {
        name: String,
        out: StreamId,
        tiles: Vec<Tile>,
        queue: UopQueue,
        cursor: usize,
        remaining: usize,
    }

    impl TileSourceFu {
        fn new(name: &str, out: StreamId, tiles: Vec<Tile>) -> Self {
            Self {
                name: name.to_string(),
                out,
                tiles,
                queue: UopQueue::default(),
                cursor: 0,
                remaining: 0,
            }
        }
    }

    impl FunctionalUnit for TileSourceFu {
        fn name(&self) -> &str {
            &self.name
        }
        fn fu_type(&self) -> &str {
            "TILE_SRC"
        }
        fn input_streams(&self) -> Vec<StreamId> {
            vec![]
        }
        fn output_streams(&self) -> Vec<StreamId> {
            vec![self.out]
        }
        fn uop_queue(&self) -> &UopQueue {
            &self.queue
        }
        fn uop_queue_mut(&mut self) -> &mut UopQueue {
            &mut self.queue
        }
        fn is_idle(&self) -> bool {
            self.queue.is_empty() && self.remaining == 0
        }
        fn step(&mut self, streams: &mut StreamSet) -> StepOutcome {
            if self.remaining == 0 {
                match self.queue.pop() {
                    Some(uop) if uop.opcode() == "emit" => self.remaining = uop.unsigned(0),
                    _ => return StepOutcome::Idle,
                }
            }
            if self.cursor >= self.tiles.len() {
                self.remaining = 0;
                return StepOutcome::progress();
            }
            if streams.can_push(self.out) {
                let tile = self.tiles[self.cursor].clone();
                streams.push(self.out, Token::Tile(tile)).unwrap();
                self.cursor += 1;
                self.remaining -= 1;
                StepOutcome::progress()
            } else {
                StepOutcome::Blocked
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// A tiny helper FU that collects tiles from a stream.
    #[derive(Debug)]
    struct TileSinkFu {
        name: String,
        input: StreamId,
        collected: Vec<Tile>,
        queue: UopQueue,
        remaining: usize,
    }

    impl TileSinkFu {
        fn new(name: &str, input: StreamId) -> Self {
            Self {
                name: name.to_string(),
                input,
                collected: Vec::new(),
                queue: UopQueue::default(),
                remaining: 0,
            }
        }
    }

    impl FunctionalUnit for TileSinkFu {
        fn name(&self) -> &str {
            &self.name
        }
        fn fu_type(&self) -> &str {
            "TILE_SINK"
        }
        fn input_streams(&self) -> Vec<StreamId> {
            vec![self.input]
        }
        fn output_streams(&self) -> Vec<StreamId> {
            vec![]
        }
        fn uop_queue(&self) -> &UopQueue {
            &self.queue
        }
        fn uop_queue_mut(&mut self) -> &mut UopQueue {
            &mut self.queue
        }
        fn is_idle(&self) -> bool {
            self.queue.is_empty() && self.remaining == 0
        }
        fn step(&mut self, streams: &mut StreamSet) -> StepOutcome {
            if self.remaining == 0 {
                match self.queue.pop() {
                    Some(uop) if uop.opcode() == "collect" => self.remaining = uop.unsigned(0),
                    _ => return StepOutcome::Idle,
                }
            }
            match streams.pop(self.input) {
                Some(token) => {
                    if let Some(t) = token.into_tile() {
                        self.collected.push(t);
                    }
                    self.remaining -= 1;
                    StepOutcome::progress()
                }
                None => StepOutcome::Blocked,
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn broadcast_copies_to_every_output() {
        let mut b = DatapathBuilder::new();
        let s_in = b.add_stream("src->mesh", 4);
        let s_out0 = b.add_stream("mesh->mme0", 4);
        let s_out1 = b.add_stream("mesh->mme1", 4);
        let tile = Tile::from_vec(1, 2, vec![1.0, 2.0]);
        let src = b.add_fu(TileSourceFu::new(
            "src",
            s_in,
            vec![tile.clone(), tile.clone()],
        ));
        let mesh = b.add_fu(MeshFu::new(
            "MeshA",
            "MeshA",
            vec![s_in],
            vec![s_out0, s_out1],
        ));
        let sink0 = b.add_fu(TileSinkFu::new("sink0", s_out0));
        let sink1 = b.add_fu(TileSinkFu::new("sink1", s_out1));
        let mut engine = Engine::new(b.build().unwrap());
        engine.push_uop(src, Uop::new("emit", [2]));
        engine.push_uop(mesh, Uop::new("broadcast", [0, 2]));
        engine.push_uop(sink0, Uop::new("collect", [2]));
        engine.push_uop(sink1, Uop::new("collect", [2]));
        engine.run().unwrap();
        assert_eq!(engine.fu::<TileSinkFu>(sink0).unwrap().collected.len(), 2);
        assert_eq!(engine.fu::<TileSinkFu>(sink1).unwrap().collected.len(), 2);
        assert_eq!(engine.fu::<MeshFu>(mesh).unwrap().tiles_routed(), 4);
    }

    #[test]
    fn route_uops_select_ports_in_sequence() {
        let mut b = DatapathBuilder::new();
        let s_in = b.add_stream("src->mesh", 4);
        let s_out0 = b.add_stream("mesh->a", 4);
        let s_out1 = b.add_stream("mesh->b", 4);
        let tiles: Vec<Tile> = (0..4)
            .map(|i| Tile::from_vec(1, 1, vec![i as f32]))
            .collect();
        let src = b.add_fu(TileSourceFu::new("src", s_in, tiles));
        let mesh = b.add_fu(MeshFu::new(
            "MeshB",
            "MeshB",
            vec![s_in],
            vec![s_out0, s_out1],
        ));
        let sink0 = b.add_fu(TileSinkFu::new("sink0", s_out0));
        let sink1 = b.add_fu(TileSinkFu::new("sink1", s_out1));
        let mut engine = Engine::new(b.build().unwrap());
        engine.push_uop(src, Uop::new("emit", [4]));
        // Alternate destinations tile by tile, the idiom the second-level
        // decoder's window/reuse mechanism is built for.
        for _ in 0..2 {
            engine.push_uop(mesh, Uop::new("route", [0, 0, 1]));
            engine.push_uop(mesh, Uop::new("route", [0, 1, 1]));
        }
        engine.push_uop(sink0, Uop::new("collect", [2]));
        engine.push_uop(sink1, Uop::new("collect", [2]));
        engine.run().unwrap();
        let c0 = &engine.fu::<TileSinkFu>(sink0).unwrap().collected;
        let c1 = &engine.fu::<TileSinkFu>(sink1).unwrap().collected;
        assert_eq!(c0[0].at(0, 0), 0.0);
        assert_eq!(c1[0].at(0, 0), 1.0);
        assert_eq!(c0[1].at(0, 0), 2.0);
        assert_eq!(c1[1].at(0, 0), 3.0);
    }
}
