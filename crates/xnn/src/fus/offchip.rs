//! The off-chip memory functional units (DDR and LPDDR).
//!
//! In RSN-XNN the DDR FU manages loading and storing of feature maps while
//! the LPDDR FU loads read-only weights and biases (§4.1).  The simulator
//! models each channel as a functional unit that owns a set of named FP32
//! matrices; `load` uOPs carve a tile out of a matrix and stream it to an
//! on-chip FU, `store` uOPs write an arriving tile back into a matrix.
//! Because every tile movement is an explicit uOP, the per-FU instruction
//! counts of the paper's Fig. 9 (DDR needing far more control than the
//! on-chip streaming FUs) fall out of the generated programs naturally.

use rsn_core::data::{Tile, Token};
use rsn_core::fu::{FunctionalUnit, StepOutcome};
use rsn_core::stream::{StreamId, StreamSet};
use rsn_core::uop::UopQueue;
use rsn_workloads::Matrix;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Pending {
    Load {
        matrix: i64,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
        out_port: usize,
    },
    Store {
        matrix: i64,
        row0: usize,
        col0: usize,
        in_port: usize,
    },
}

/// An off-chip memory channel exposed as an RSN functional unit.
#[derive(Debug)]
pub struct OffchipFu {
    name: String,
    fu_type: String,
    matrices: BTreeMap<i64, Matrix>,
    ins: Vec<StreamId>,
    outs: Vec<StreamId>,
    queue: UopQueue,
    pending: Option<Pending>,
    bytes_loaded: u64,
    bytes_stored: u64,
}

impl OffchipFu {
    /// Creates an off-chip FU.
    ///
    /// `fu_type` should be `"DDR"` or `"LPDDR"`; `ins` are store streams
    /// (from MemC FUs), `outs` are load streams (to MemA/MemB/MemC FUs).
    pub fn new(
        name: impl Into<String>,
        fu_type: impl Into<String>,
        ins: Vec<StreamId>,
        outs: Vec<StreamId>,
    ) -> Self {
        Self {
            name: name.into(),
            fu_type: fu_type.into(),
            matrices: BTreeMap::new(),
            ins,
            outs,
            queue: UopQueue::default(),
            pending: None,
            bytes_loaded: 0,
            bytes_stored: 0,
        }
    }

    /// Places a matrix into this off-chip memory under `id`, replacing any
    /// previous contents.
    pub fn insert_matrix(&mut self, id: i64, matrix: Matrix) {
        self.matrices.insert(id, matrix);
    }

    /// Allocates a zero-initialised output matrix under `id`.
    pub fn allocate_matrix(&mut self, id: i64, rows: usize, cols: usize) {
        self.matrices.insert(id, Matrix::zeros(rows, cols));
    }

    /// Reads back a matrix (e.g. a stored result) by id.
    pub fn matrix(&self, id: i64) -> Option<&Matrix> {
        self.matrices.get(&id)
    }

    /// Removes a matrix, returning it if present.
    pub fn take_matrix(&mut self, id: i64) -> Option<Matrix> {
        self.matrices.remove(&id)
    }

    /// Total bytes streamed out of this channel so far.
    pub fn bytes_loaded(&self) -> u64 {
        self.bytes_loaded
    }

    /// Total bytes streamed into this channel so far.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    fn try_load(&mut self, streams: &mut StreamSet, p: &Pending) -> StepOutcome {
        let Pending::Load {
            matrix,
            row0,
            col0,
            rows,
            cols,
            out_port,
        } = *p
        else {
            unreachable!("try_load called with a store op");
        };
        if out_port >= self.outs.len() {
            self.pending = None;
            return StepOutcome::progress();
        }
        let out = self.outs[out_port];
        if !streams.can_push(out) {
            return StepOutcome::Blocked;
        }
        let Some(m) = self.matrices.get(&matrix) else {
            // Loading an unknown matrix streams zeros so a malformed program
            // fails validation numerically instead of wedging the engine.
            let tile = Tile::zeros(rows, cols);
            streams
                .push(out, Token::Tile(tile))
                .expect("capacity checked");
            self.pending = None;
            return StepOutcome::progress();
        };
        let block = m.block(row0, col0, rows, cols);
        let tile = Tile::from_vec(rows, cols, block.into_vec());
        self.bytes_loaded += (rows * cols * 4) as u64;
        streams
            .push(out, Token::Tile(tile))
            .expect("capacity checked");
        self.pending = None;
        StepOutcome::Progress {
            cycles: (rows * cols) as u64,
        }
    }

    fn try_store(&mut self, streams: &mut StreamSet, p: &Pending) -> StepOutcome {
        let Pending::Store {
            matrix,
            row0,
            col0,
            in_port,
        } = *p
        else {
            unreachable!("try_store called with a load op");
        };
        if in_port >= self.ins.len() {
            self.pending = None;
            return StepOutcome::progress();
        }
        let input = self.ins[in_port];
        let Some(token) = streams.pop(input) else {
            return StepOutcome::Blocked;
        };
        let Some(tile) = token.into_tile() else {
            self.pending = None;
            return StepOutcome::progress();
        };
        let (rows, cols) = (tile.rows(), tile.cols());
        let block = Matrix::from_vec(rows, cols, tile.into_vec());
        let entry = self
            .matrices
            .entry(matrix)
            .or_insert_with(|| Matrix::zeros(row0 + rows, col0 + cols));
        entry.set_block(row0, col0, &block);
        self.bytes_stored += (rows * cols * 4) as u64;
        self.pending = None;
        StepOutcome::Progress {
            cycles: (rows * cols) as u64,
        }
    }
}

impl FunctionalUnit for OffchipFu {
    fn name(&self) -> &str {
        &self.name
    }
    fn fu_type(&self) -> &str {
        &self.fu_type
    }
    fn input_streams(&self) -> Vec<StreamId> {
        self.ins.clone()
    }
    fn output_streams(&self) -> Vec<StreamId> {
        self.outs.clone()
    }
    fn uop_queue(&self) -> &UopQueue {
        &self.queue
    }
    fn uop_queue_mut(&mut self) -> &mut UopQueue {
        &mut self.queue
    }
    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.pending.is_none()
    }

    fn step(&mut self, streams: &mut StreamSet) -> StepOutcome {
        let mut total_cycles = 0u64;
        for _ in 0..super::TILE_BURST {
            if self.pending.is_none() {
                match self.queue.pop() {
                    Some(uop) if uop.opcode() == "load" => {
                        self.pending = Some(Pending::Load {
                            matrix: uop.field(0).unwrap_or(0),
                            row0: uop.unsigned(1),
                            col0: uop.unsigned(2),
                            rows: uop.unsigned(3).max(1),
                            cols: uop.unsigned(4).max(1),
                            out_port: uop.unsigned(5),
                        });
                    }
                    Some(uop) if uop.opcode() == "store" => {
                        self.pending = Some(Pending::Store {
                            matrix: uop.field(0).unwrap_or(0),
                            row0: uop.unsigned(1),
                            col0: uop.unsigned(2),
                            in_port: uop.unsigned(3),
                        });
                    }
                    Some(_) | None => {
                        return if total_cycles > 0 {
                            StepOutcome::Progress {
                                cycles: total_cycles,
                            }
                        } else {
                            StepOutcome::Idle
                        };
                    }
                }
            }
            let pending = self.pending.clone().expect("kernel just launched");
            let outcome = match pending {
                Pending::Load { .. } => self.try_load(streams, &pending),
                Pending::Store { .. } => self.try_store(streams, &pending),
            };
            match outcome {
                StepOutcome::Progress { cycles } => total_cycles += cycles,
                StepOutcome::Blocked => {
                    return if total_cycles > 0 {
                        StepOutcome::Progress {
                            cycles: total_cycles,
                        }
                    } else {
                        StepOutcome::Blocked
                    };
                }
                StepOutcome::Idle => unreachable!("pending op never returns Idle"),
            }
        }
        StepOutcome::Progress {
            cycles: total_cycles.max(1),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::network::DatapathBuilder;
    use rsn_core::sim::Engine;
    use rsn_core::uop::Uop;

    #[test]
    fn load_then_store_roundtrips_a_tile() {
        let mut b = DatapathBuilder::new();
        let out_s = b.add_stream("ddr->x", 2);
        let in_s = b.add_stream("x->ddr", 2);
        let mut ddr = OffchipFu::new("DDR", "DDR", vec![in_s], vec![out_s]);
        ddr.insert_matrix(1, Matrix::random(8, 8, 3));
        ddr.allocate_matrix(2, 8, 8);
        let ddr_id = b.add_fu(ddr);
        // A router loops the tile straight back.
        let router = rsn_core::fus::RouterFu::new("loop", vec![out_s], vec![in_s]);
        let router_id = b.add_fu(router);
        let mut engine = Engine::new(b.build().unwrap());
        engine.push_uop(ddr_id, Uop::new("load", [1, 0, 0, 8, 8, 0]));
        engine.push_uop(router_id, Uop::new("route", [0, 0, 1]));
        engine.push_uop(ddr_id, Uop::new("store", [2, 0, 0, 0]));
        engine.run().unwrap();
        let ddr = engine.fu::<OffchipFu>(ddr_id).unwrap();
        let original = ddr.matrix(1).unwrap();
        let copy = ddr.matrix(2).unwrap();
        assert!(original.max_abs_diff(copy) < 1e-7);
        assert_eq!(ddr.bytes_loaded(), 8 * 8 * 4);
        assert_eq!(ddr.bytes_stored(), 8 * 8 * 4);
    }

    #[test]
    fn loading_unknown_matrix_streams_zeros() {
        let mut b = DatapathBuilder::new();
        let out_s = b.add_stream("ddr->x", 2);
        let in_s = b.add_stream("x->ddr", 2);
        let mut ddr = OffchipFu::new("DDR", "DDR", vec![in_s], vec![out_s]);
        ddr.allocate_matrix(7, 4, 4);
        let ddr_id = b.add_fu(ddr);
        let router = rsn_core::fus::RouterFu::new("loop", vec![out_s], vec![in_s]);
        let router_id = b.add_fu(router);
        let mut engine = Engine::new(b.build().unwrap());
        engine.push_uop(ddr_id, Uop::new("load", [999, 0, 0, 4, 4, 0]));
        engine.push_uop(router_id, Uop::new("route", [0, 0, 1]));
        engine.push_uop(ddr_id, Uop::new("store", [7, 0, 0, 0]));
        engine.run().unwrap();
        let ddr = engine.fu::<OffchipFu>(ddr_id).unwrap();
        assert!(ddr.matrix(7).unwrap().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn take_matrix_removes_entry() {
        let mut fu = OffchipFu::new("LPDDR", "LPDDR", vec![], vec![]);
        fu.insert_matrix(5, Matrix::zeros(2, 2));
        assert!(fu.take_matrix(5).is_some());
        assert!(fu.matrix(5).is_none());
        assert!(fu.take_matrix(5).is_none());
    }
}
