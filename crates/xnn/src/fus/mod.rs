//! Concrete functional-unit implementations of the RSN-XNN datapath
//! (Fig. 10 of the paper, control planes from Table 2).
//!
//! | FU | role | uOP control plane (fields) |
//! |----|------|----------------------------|
//! | [`OffchipFu`] (DDR / LPDDR) | route tiles between off-chip matrices and on-chip FUs | `load(matrix, row0, col0, rows, cols, out_port)`, `store(matrix, row0, col0, in_port)` |
//! | [`MemFu`] (MemA / MemB) | double-buffered scratchpad between off-chip FUs and the mesh | `xfer(load_cnt, send_cnt, in_port, transpose)` |
//! | [`MeshFu`] (MeshA / MeshB) | fan-in / fan-out router between scratchpads and MMEs | `route(in, out, count)`, `broadcast(in, count, out_count)` |
//! | [`MmeFu`] | tiled matrix multiplication with K accumulation on the AIE array | `matmul(num_outputs, accum_k)` |
//! | [`MemCFu`] | output scratchpad + non-MM operators (bias, softmax, GELU, residual + LayerNorm) | `post(count, transform, dest_port, use_residual, col_tile_offset, col_tiles)` |
//!
//! Every FU follows the resumable-kernel protocol of
//! [`FunctionalUnit::step`](rsn_core::fu::FunctionalUnit::step): a uOP
//! launches a kernel, a step advances it as far as stream availability
//! allows, and backpressure simply yields `Blocked`.

mod mem;
mod memc;
mod mesh;
mod mme;
mod offchip;

pub use mem::MemFu;
pub use memc::{MemCFu, PostTransform};
pub use mesh::MeshFu;
pub use mme::MmeFu;
pub use offchip::OffchipFu;

/// Maximum tile operations an RSN-XNN FU performs per engine step.
pub(crate) const TILE_BURST: usize = 4;
