//! Configuration of the RSN-XNN datapath instance.

use serde::{Deserialize, Serialize};

/// Structural parameters of an RSN-XNN datapath.
///
/// The paper's prototype uses six MME FUs (each virtualising 64 AIE tiles),
/// three MemA, three MemB and six MemC FUs.  The functional simulator merges
/// the Mem banks one-per-MME (a banking detail that does not change the
/// computed values) and lets the MME count and tile sizes be scaled down so
/// the full-datapath functional tests stay fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct XnnConfig {
    /// Number of matrix-multiply-engine FUs.
    pub n_mme: usize,
    /// Output-tile rows processed per MME kernel invocation.
    pub tile_m: usize,
    /// Reduction-dimension elements per accumulation step.
    pub tile_k: usize,
    /// Output-tile columns processed per MME kernel invocation.
    pub tile_n: usize,
    /// Capacity (in tiles) of every stream edge.
    pub stream_capacity: usize,
}

impl XnnConfig {
    /// The full-scale RSN-XNN configuration (6 MMEs, 32-element tiles).
    pub fn rsn_xnn() -> Self {
        Self {
            n_mme: 6,
            tile_m: 32,
            tile_k: 32,
            tile_n: 32,
            stream_capacity: 8,
        }
    }

    /// A two-MME configuration matching the worked example of Fig. 10, used
    /// by tests and the quickstart example.
    pub fn small() -> Self {
        Self {
            n_mme: 2,
            tile_m: 8,
            tile_k: 8,
            tile_n: 8,
            stream_capacity: 8,
        }
    }

    /// Returns a copy with different tile dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any tile dimension is zero.
    pub fn with_tiles(&self, tile_m: usize, tile_k: usize, tile_n: usize) -> Self {
        assert!(
            tile_m > 0 && tile_k > 0 && tile_n > 0,
            "tile dimensions must be non-zero"
        );
        Self {
            tile_m,
            tile_k,
            tile_n,
            ..*self
        }
    }

    /// Returns a copy with a different MME count.
    ///
    /// # Panics
    ///
    /// Panics if `n_mme` is zero or exceeds 8 (the packet-mask width).
    pub fn with_mmes(&self, n_mme: usize) -> Self {
        assert!(n_mme > 0 && n_mme <= 8, "MME count must be in 1..=8");
        Self { n_mme, ..*self }
    }
}

impl Default for XnnConfig {
    fn default() -> Self {
        Self::rsn_xnn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_prototype() {
        let cfg = XnnConfig::default();
        assert_eq!(cfg.n_mme, 6);
        assert_eq!((cfg.tile_m, cfg.tile_k, cfg.tile_n), (32, 32, 32));
    }

    #[test]
    fn builders_adjust_fields() {
        let cfg = XnnConfig::small().with_tiles(4, 8, 16).with_mmes(3);
        assert_eq!(cfg.n_mme, 3);
        assert_eq!((cfg.tile_m, cfg.tile_k, cfg.tile_n), (4, 8, 16));
    }

    #[test]
    #[should_panic(expected = "MME count must be in 1..=8")]
    fn mme_count_is_bounded() {
        let _ = XnnConfig::small().with_mmes(9);
    }
}
