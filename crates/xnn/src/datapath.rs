//! Construction of the RSN-XNN stream network (Fig. 10).
//!
//! The datapath connects two off-chip FUs (DDR for feature maps, LPDDR for
//! weights), the MemA/MemB input scratchpads, the MeshA/MeshB routers, the
//! MME matrix engines and the MemC output scratchpads.  A feedback edge from
//! every MemC back into MeshA is what allows the output of one triggered
//! path to become the input of another without leaving the chip — the
//! dynamic layer pipelining of Fig. 7.
//!
//! Port conventions (used by the program generators in [`crate::program`]):
//!
//! * DDR output ports: `0` → MemA, `1 + g` → MemB*g*, `1 + G + g` → MemC*g*
//!   residual input.
//! * DDR input ports: `g` ← MemC*g* store path.
//! * LPDDR output ports: `g` → MemB*g*.
//! * MemB input ports: `0` = LPDDR (weights), `1` = DDR (activations).
//! * MeshA input ports: `0` = MemA, `1 + g` = MemC*g* feedback;
//!   output port `g` = MME*g*.
//! * MeshB input port `g` = MemB*g*; output port `g` = MME*g*.
//! * MemC output ports: `0` = DDR store, `1` = MeshA feedback.

use crate::config::XnnConfig;
use crate::fus::{MemCFu, MemFu, MeshFu, MmeFu, OffchipFu};
use rsn_core::error::RsnError;
use rsn_core::fu::FuId;
use rsn_core::network::{Datapath, DatapathBuilder};
use serde::{Deserialize, Serialize};

/// FU ids of every functional unit in an RSN-XNN datapath.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XnnHandles {
    /// The DDR feature-map FU.
    pub ddr: FuId,
    /// The LPDDR weight FU.
    pub lpddr: FuId,
    /// The MemA LHS scratchpad.
    pub mem_a: FuId,
    /// The MemB RHS scratchpads, one per MME.
    pub mem_b: Vec<FuId>,
    /// The MemC output scratchpads, one per MME.
    pub mem_c: Vec<FuId>,
    /// The MeshA LHS router.
    pub mesh_a: FuId,
    /// The MeshB RHS router.
    pub mesh_b: FuId,
    /// The matrix-multiply engines.
    pub mme: Vec<FuId>,
}

/// The per-FU physical properties visualised in the paper's Fig. 16.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuProperties {
    /// FU type name.
    pub fu_type: String,
    /// Number of instances in the full-scale design.
    pub instances: usize,
    /// Peak FP32 compute throughput per instance, TFLOPS.
    pub tflops: f64,
    /// On-chip memory per instance, MB.
    pub memory_mb: f64,
    /// Aggregate stream bandwidth per instance (in + out), GB/s.
    pub bandwidth_gb_s: f64,
}

/// Builder for the RSN-XNN datapath.
#[derive(Debug, Clone, Copy, Default)]
pub struct XnnDatapath;

impl XnnDatapath {
    /// Builds the datapath described by `cfg`, returning the validated
    /// stream network and the FU handles.
    ///
    /// # Errors
    ///
    /// Returns [`RsnError`] if the constructed network fails validation
    /// (which would indicate a bug in the builder itself).
    pub fn build(cfg: &XnnConfig) -> Result<(Datapath, XnnHandles), RsnError> {
        let g = cfg.n_mme;
        let cap = cfg.stream_capacity;
        let mut b = DatapathBuilder::new();

        // Streams.
        let s_ddr_to_mema = b.add_stream("DDR->MemA", cap);
        let s_ddr_to_memb: Vec<_> = (0..g)
            .map(|i| b.add_stream(format!("DDR->MemB{i}"), cap))
            .collect();
        let s_ddr_to_memc: Vec<_> = (0..g)
            .map(|i| b.add_stream(format!("DDR->MemC{i}(residual)"), cap))
            .collect();
        let s_lpddr_to_memb: Vec<_> = (0..g)
            .map(|i| b.add_stream(format!("LPDDR->MemB{i}"), cap))
            .collect();
        let s_mema_to_mesha = b.add_stream("MemA->MeshA", cap);
        let s_memc_to_mesha: Vec<_> = (0..g)
            .map(|i| b.add_stream(format!("MemC{i}->MeshA(feedback)"), cap))
            .collect();
        let s_mesha_to_mme: Vec<_> = (0..g)
            .map(|i| b.add_stream(format!("MeshA->MME{i}"), cap))
            .collect();
        let s_memb_to_meshb: Vec<_> = (0..g)
            .map(|i| b.add_stream(format!("MemB{i}->MeshB"), cap))
            .collect();
        let s_meshb_to_mme: Vec<_> = (0..g)
            .map(|i| b.add_stream(format!("MeshB->MME{i}"), cap))
            .collect();
        let s_mme_to_memc: Vec<_> = (0..g)
            .map(|i| b.add_stream(format!("MME{i}->MemC{i}"), cap))
            .collect();
        let s_memc_to_ddr: Vec<_> = (0..g)
            .map(|i| b.add_stream(format!("MemC{i}->DDR"), cap))
            .collect();

        // Off-chip FUs.
        let mut ddr_outs = vec![s_ddr_to_mema];
        ddr_outs.extend(s_ddr_to_memb.iter().copied());
        ddr_outs.extend(s_ddr_to_memc.iter().copied());
        let ddr = b.add_fu(OffchipFu::new(
            "DDR",
            "DDR",
            s_memc_to_ddr.clone(),
            ddr_outs,
        ));
        let lpddr = b.add_fu(OffchipFu::new(
            "LPDDR",
            "LPDDR",
            Vec::new(),
            s_lpddr_to_memb.clone(),
        ));

        // Scratchpads.
        let mem_a = b.add_fu(MemFu::new(
            "MemA0",
            "MemA",
            vec![s_ddr_to_mema],
            s_mema_to_mesha,
        ));
        let mem_b: Vec<_> = (0..g)
            .map(|i| {
                b.add_fu(MemFu::new(
                    format!("MemB{i}"),
                    "MemB",
                    vec![s_lpddr_to_memb[i], s_ddr_to_memb[i]],
                    s_memb_to_meshb[i],
                ))
            })
            .collect();

        // Routers.
        let mut mesh_a_ins = vec![s_mema_to_mesha];
        mesh_a_ins.extend(s_memc_to_mesha.iter().copied());
        let mesh_a = b.add_fu(MeshFu::new(
            "MeshA",
            "MeshA",
            mesh_a_ins,
            s_mesha_to_mme.clone(),
        ));
        let mesh_b = b.add_fu(MeshFu::new(
            "MeshB",
            "MeshB",
            s_memb_to_meshb.clone(),
            s_meshb_to_mme.clone(),
        ));

        // Matrix engines and output scratchpads.
        let mme: Vec<_> = (0..g)
            .map(|i| {
                b.add_fu(MmeFu::new(
                    format!("MME{i}"),
                    s_mesha_to_mme[i],
                    s_meshb_to_mme[i],
                    s_mme_to_memc[i],
                ))
            })
            .collect();
        let mem_c: Vec<_> = (0..g)
            .map(|i| {
                b.add_fu(MemCFu::new(
                    format!("MemC{i}"),
                    s_mme_to_memc[i],
                    s_ddr_to_memc[i],
                    vec![s_memc_to_ddr[i], s_memc_to_mesha[i]],
                ))
            })
            .collect();

        let datapath = b.build()?;
        Ok((
            datapath,
            XnnHandles {
                ddr,
                lpddr,
                mem_a,
                mem_b,
                mem_c,
                mesh_a,
                mesh_b,
                mme,
            },
        ))
    }

    /// The per-FU properties of the full-scale RSN-XNN design, as visualised
    /// in Fig. 16 of the paper.
    pub fn fu_properties() -> Vec<FuProperties> {
        vec![
            FuProperties {
                fu_type: "MME".to_string(),
                instances: 6,
                tflops: 1.1,
                memory_mb: 0.59,
                bandwidth_gb_s: 437.0,
            },
            FuProperties {
                fu_type: "MeshA".to_string(),
                instances: 1,
                tflops: 0.0,
                memory_mb: 0.0,
                bandwidth_gb_s: 302.0,
            },
            FuProperties {
                fu_type: "MeshB".to_string(),
                instances: 1,
                tflops: 0.0,
                memory_mb: 0.0,
                bandwidth_gb_s: 599.0,
            },
            FuProperties {
                fu_type: "MemA".to_string(),
                instances: 3,
                tflops: 0.0,
                memory_mb: 0.25,
                bandwidth_gb_s: 100.0,
            },
            FuProperties {
                fu_type: "MemB".to_string(),
                instances: 3,
                tflops: 0.0,
                memory_mb: 0.42,
                bandwidth_gb_s: 111.0,
            },
            FuProperties {
                fu_type: "MemC".to_string(),
                instances: 6,
                tflops: 0.063,
                memory_mb: 1.0,
                bandwidth_gb_s: 133.0,
            },
            FuProperties {
                fu_type: "DDR".to_string(),
                instances: 1,
                tflops: 0.0,
                memory_mb: 0.0,
                bandwidth_gb_s: 33.0,
            },
            FuProperties {
                fu_type: "LPDDR".to_string(),
                instances: 1,
                tflops: 0.0,
                memory_mb: 0.0,
                bandwidth_gb_s: 33.0,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_datapath_builds_and_validates() {
        let cfg = XnnConfig::small();
        let (dp, handles) = XnnDatapath::build(&cfg).unwrap();
        // 2 off-chip + 1 MemA + G MemB + 2 mesh + G MME + G MemC.
        assert_eq!(dp.fu_count(), 5 + 3 * cfg.n_mme);
        assert_eq!(handles.mme.len(), cfg.n_mme);
        assert_eq!(handles.mem_c.len(), cfg.n_mme);
        assert_eq!(dp.fus_of_type("MME").len(), cfg.n_mme);
        assert_eq!(dp.fus_of_type("DDR").len(), 1);
    }

    #[test]
    fn full_scale_datapath_builds() {
        let cfg = XnnConfig::rsn_xnn();
        let (dp, handles) = XnnDatapath::build(&cfg).unwrap();
        assert_eq!(handles.mme.len(), 6);
        // Two single streams (DDR→MemA, MemA→MeshA) plus nine per-MME groups.
        assert_eq!(dp.stream_count(), 2 + 9 * cfg.n_mme);
    }

    #[test]
    fn fu_properties_cover_every_type_and_show_heterogeneity() {
        let props = XnnDatapath::fu_properties();
        assert_eq!(props.len(), 8);
        let mme = props.iter().find(|p| p.fu_type == "MME").unwrap();
        let mesh_b = props.iter().find(|p| p.fu_type == "MeshB").unwrap();
        // MMEs compute but meshes only route — the coarse-grained
        // heterogeneity argument of §5.2.
        assert!(mme.tflops > 1.0);
        assert_eq!(mesh_b.tflops, 0.0);
        assert!(mesh_b.bandwidth_gb_s > 500.0);
        let total_tflops: f64 = props.iter().map(|p| p.tflops * p.instances as f64).sum();
        assert!(total_tflops > 6.0 && total_tflops < 8.0);
    }
}
