//! A host-side wrapper around the RSN-XNN datapath and the RSN engine.
//!
//! The machine plays the role of the PS-side host in the paper's prototype:
//! it places inputs and weights into the off-chip memory FUs, configures the
//! MemC constants (bias, LayerNorm parameters, softmax scale), loads an RSN
//! program (either directly into the per-FU instruction backlogs or as a
//! packet stream through the three-level decoder) and runs the engine.
//! Results are read back out of the DDR FU and compared against reference
//! math by the tests.

use crate::config::XnnConfig;
use crate::datapath::{XnnDatapath, XnnHandles};
use crate::fus::{MemCFu, MmeFu, OffchipFu};
use rsn_core::error::RsnError;
use rsn_core::program::Program;
use rsn_core::sim::{Engine, RunReport, SchedulerKind};
use rsn_workloads::Matrix;

/// The RSN-XNN machine: datapath, engine and host-side configuration.
#[derive(Debug)]
pub struct XnnMachine {
    cfg: XnnConfig,
    engine: Engine,
    handles: XnnHandles,
}

impl XnnMachine {
    /// Builds a machine for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RsnError`] if the datapath fails validation (a builder bug).
    pub fn new(cfg: XnnConfig) -> Result<Self, RsnError> {
        let (datapath, handles) = XnnDatapath::build(&cfg)?;
        Ok(Self {
            cfg,
            engine: Engine::new(datapath),
            handles,
        })
    }

    /// The structural configuration.
    pub fn config(&self) -> &XnnConfig {
        &self.cfg
    }

    /// Selects the engine scheduling discipline (builder form).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.engine.set_scheduler(scheduler);
        self
    }

    /// Selects the engine scheduling discipline.
    pub fn set_scheduler(&mut self, scheduler: SchedulerKind) {
        self.engine.set_scheduler(scheduler);
    }

    /// FU handles for program generation.
    pub fn handles(&self) -> &XnnHandles {
        &self.handles
    }

    /// Places a feature-map matrix into the DDR FU.
    pub fn load_ddr(&mut self, id: i64, matrix: Matrix) {
        self.ddr_mut().insert_matrix(id, matrix);
    }

    /// Places a weight matrix into the LPDDR FU.
    pub fn load_lpddr(&mut self, id: i64, matrix: Matrix) {
        self.engine
            .fu_mut::<OffchipFu>(self.handles.lpddr)
            .expect("LPDDR FU exists")
            .insert_matrix(id, matrix);
    }

    /// Allocates a zero-initialised output matrix in DDR.
    pub fn alloc_ddr(&mut self, id: i64, rows: usize, cols: usize) {
        self.ddr_mut().allocate_matrix(id, rows, cols);
    }

    /// Reads a matrix back from DDR (inputs, residuals or stored results).
    pub fn ddr_matrix(&self, id: i64) -> Option<&Matrix> {
        self.engine
            .fu::<OffchipFu>(self.handles.ddr)
            .expect("DDR FU exists")
            .matrix(id)
    }

    /// Configures the bias vector on every MemC FU (indexed by absolute
    /// output column).
    pub fn set_bias(&mut self, bias: &[f32]) {
        for &id in &self.handles.mem_c.clone() {
            self.engine
                .fu_mut::<MemCFu>(id)
                .expect("MemC FU exists")
                .set_bias(bias.to_vec());
        }
    }

    /// Configures the LayerNorm parameters on every MemC FU.
    pub fn set_norm_params(&mut self, gamma: &[f32], beta: &[f32]) {
        for &id in &self.handles.mem_c.clone() {
            self.engine
                .fu_mut::<MemCFu>(id)
                .expect("MemC FU exists")
                .set_norm_params(gamma.to_vec(), beta.to_vec());
        }
    }

    /// Configures the pre-softmax scale (1/√d) on every MemC FU.
    pub fn set_softmax_scale(&mut self, scale: f32) {
        for &id in &self.handles.mem_c.clone() {
            self.engine
                .fu_mut::<MemCFu>(id)
                .expect("MemC FU exists")
                .set_softmax_scale(scale);
        }
    }

    /// Loads a program into the per-FU instruction backlogs and runs the
    /// engine until the datapath quiesces.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (deadlock, step-limit).
    pub fn run_program(&mut self, program: &Program) -> Result<RunReport, RsnError> {
        self.engine.load_program(program);
        self.engine.run()
    }

    /// Compresses a program into RSN instruction packets and runs it through
    /// the three-level decoder instead of the per-FU backlogs.
    ///
    /// # Errors
    ///
    /// Propagates packet-encoding and engine errors.
    pub fn run_program_as_packets(&mut self, program: &Program) -> Result<RunReport, RsnError> {
        let packets = program.compress(self.engine.datapath())?;
        self.engine.load_packets(packets);
        self.engine.run()
    }

    /// Total floating-point operations performed by the MMEs so far.
    pub fn total_mme_flops(&self) -> u64 {
        self.handles
            .mme
            .iter()
            .map(|&id| self.engine.fu::<MmeFu>(id).expect("MME FU exists").flops())
            .sum()
    }

    /// Total bytes the DDR FU has loaded and stored so far.
    pub fn ddr_traffic_bytes(&self) -> u64 {
        let ddr = self
            .engine
            .fu::<OffchipFu>(self.handles.ddr)
            .expect("DDR FU exists");
        ddr.bytes_loaded() + ddr.bytes_stored()
    }

    /// The underlying engine (for report-level statistics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    fn ddr_mut(&mut self) -> &mut OffchipFu {
        self.engine
            .fu_mut::<OffchipFu>(self.handles.ddr)
            .expect("DDR FU exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{gemm_program, GemmSpec, PostOp, RhsOperand};

    #[test]
    fn machine_runs_a_small_gemm_correctly() {
        let cfg = XnnConfig::small();
        let mut machine = XnnMachine::new(cfg).unwrap();
        let lhs = Matrix::random(16, 16, 1);
        let rhs = Matrix::random(16, 16, 2);
        let expected = lhs.matmul(&rhs);
        machine.load_ddr(1, lhs);
        machine.load_lpddr(2, rhs);
        machine.alloc_ddr(3, 16, 16);
        let spec = GemmSpec {
            lhs: 1,
            rhs: RhsOperand::Lpddr(2),
            out: 3,
            m: 16,
            k: 16,
            n: 16,
            rhs_transposed: false,
            post: PostOp::None,
        };
        let program = gemm_program(&cfg, machine.handles(), &spec);
        let report = machine.run_program(&program).unwrap();
        assert_eq!(report.residual_tokens, 0);
        let got = machine.ddr_matrix(3).unwrap();
        assert!(
            got.max_abs_diff(&expected) < 1e-3,
            "diff {}",
            got.max_abs_diff(&expected)
        );
        assert!(machine.total_mme_flops() > 0);
        assert!(machine.ddr_traffic_bytes() > 0);
    }

    #[test]
    fn backlog_and_packet_execution_agree() {
        let cfg = XnnConfig::small();
        let lhs = Matrix::random(8, 8, 5);
        let rhs = Matrix::random(8, 8, 6);
        let spec = GemmSpec {
            lhs: 1,
            rhs: RhsOperand::Lpddr(2),
            out: 3,
            m: 8,
            k: 8,
            n: 8,
            rhs_transposed: false,
            post: PostOp::None,
        };
        let run = |as_packets: bool| {
            let mut machine = XnnMachine::new(cfg).unwrap();
            machine.load_ddr(1, lhs.clone());
            machine.load_lpddr(2, rhs.clone());
            machine.alloc_ddr(3, 8, 8);
            let program = gemm_program(&cfg, machine.handles(), &spec);
            if as_packets {
                machine.run_program_as_packets(&program).unwrap();
            } else {
                machine.run_program(&program).unwrap();
            }
            machine.ddr_matrix(3).unwrap().clone()
        };
        let direct = run(false);
        let via_decoder = run(true);
        assert!(direct.max_abs_diff(&via_decoder) < 1e-6);
        assert!(direct.max_abs_diff(&lhs.matmul(&rhs)) < 1e-4);
    }
}
