//! RSN program generation for the RSN-XNN datapath.
//!
//! Programming a computation in RSN means triggering paths: every FU on the
//! path receives a short uOP sequence.  This module generates those
//! sequences for the two execution patterns the paper builds its evaluation
//! on:
//!
//! * [`gemm_program`] — a tiled, output-stationary GEMM that spreads output
//!   columns over the MMEs, broadcasts LHS tiles to all of them, streams RHS
//!   tiles from LPDDR (weights) or DDR (activations), fuses a non-MM
//!   epilogue in MemC, and interleaves the DDR stores of one output round
//!   with the loads of the next (the §4.4 bandwidth orchestration).
//! * [`attention_program`] — the dynamically pipelined attention pattern of
//!   Fig. 7 / §4.3: per head, MM1 (Q·Kᵀ) flows through scaled softmax in
//!   MemC and feeds MM2 (scores·V) back through the MeshA feedback path
//!   without ever leaving the chip.

use crate::config::XnnConfig;
use crate::datapath::XnnHandles;
use crate::fus::PostTransform;
use rsn_core::program::Program;
use rsn_core::uop::Uop;
use serde::{Deserialize, Serialize};

/// Where the RHS operand of a GEMM comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RhsOperand {
    /// Weights resident in the LPDDR FU under this matrix id.
    Lpddr(i64),
    /// Activations resident in the DDR FU under this matrix id.
    Ddr(i64),
}

/// The fused epilogue applied by MemC to every output tile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PostOp {
    /// Store raw MME results.
    None,
    /// Add the configured bias.
    Bias,
    /// Add bias then GELU.
    BiasGelu,
    /// Scale then row-wise softmax (requires the tile to span all N columns).
    ScaledSoftmax,
    /// Add bias, add a residual matrix loaded from DDR, then LayerNorm
    /// (requires the tile to span all N columns).
    BiasResidualNorm {
        /// DDR matrix id of the residual operand.
        residual: i64,
    },
}

impl PostOp {
    fn transform(&self) -> PostTransform {
        match self {
            PostOp::None => PostTransform::None,
            PostOp::Bias => PostTransform::Bias,
            PostOp::BiasGelu => PostTransform::BiasGelu,
            PostOp::ScaledSoftmax => PostTransform::ScaledSoftmax,
            PostOp::BiasResidualNorm { .. } => PostTransform::BiasResidualNorm,
        }
    }

    fn residual(&self) -> Option<i64> {
        match self {
            PostOp::BiasResidualNorm { residual } => Some(*residual),
            _ => None,
        }
    }

    fn needs_full_row_tile(&self) -> bool {
        matches!(
            self,
            PostOp::ScaledSoftmax | PostOp::BiasResidualNorm { .. }
        )
    }
}

/// A single tiled GEMM to execute on the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmSpec {
    /// DDR matrix id of the `m × k` LHS.
    pub lhs: i64,
    /// Source and matrix id of the `k × n` RHS.
    pub rhs: RhsOperand,
    /// DDR matrix id that receives the `m × n` output.
    pub out: i64,
    /// Rows of LHS / output.
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Columns of RHS / output.
    pub n: usize,
    /// When `true`, the RHS matrix is stored as `n × k` and transposed by
    /// MemB on the way in.
    pub rhs_transposed: bool,
    /// Fused epilogue.
    pub post: PostOp,
}

/// One attention head group to execute with the pipelined mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttentionSpec {
    /// DDR matrix id of the query activations (`tokens × hidden`).
    pub q: i64,
    /// DDR matrix id of the key activations (`tokens × hidden`).
    pub k: i64,
    /// DDR matrix id of the value activations (`tokens × hidden`).
    pub v: i64,
    /// DDR matrix id receiving the context output (`tokens × hidden`).
    pub out: i64,
    /// Sequence length per batch element.
    pub seq_len: usize,
    /// Number of batch elements.
    pub batch: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
}

/// Generates the uOP program for a tiled GEMM.
///
/// # Panics
///
/// Panics if a softmax/LayerNorm epilogue is requested with a tile width
/// smaller than `n` (those operators need the whole row in one tile), or if
/// any dimension is zero.
pub fn gemm_program(cfg: &XnnConfig, handles: &XnnHandles, spec: &GemmSpec) -> Program {
    assert!(
        spec.m > 0 && spec.k > 0 && spec.n > 0,
        "GEMM dims must be non-zero"
    );
    let tile_m = cfg.tile_m.min(spec.m);
    let tile_k = cfg.tile_k.min(spec.k);
    let tile_n = if spec.post.needs_full_row_tile() {
        spec.n
    } else {
        cfg.tile_n.min(spec.n)
    };
    assert!(
        !spec.post.needs_full_row_tile() || tile_n == spec.n,
        "softmax / LayerNorm epilogues need tile_n == n"
    );
    let mt = spec.m.div_ceil(tile_m);
    let kt = spec.k.div_ceil(tile_k);
    let nt = spec.n.div_ceil(tile_n);
    // Use the largest MME count that divides the column-tile count so every
    // active MME consumes the broadcast LHS at the same rate.
    let active = (1..=cfg.n_mme.min(nt))
        .rev()
        .find(|g| nt % g == 0)
        .unwrap_or(1);
    let cols_per = nt / active;
    let g_count = cfg.n_mme;

    let mut p = Program::new();
    let total_lhs_tiles = (mt * cols_per * kt) as i64;

    // MemA: one uOP moves every LHS tile of the layer.
    p.push(
        handles.mem_a,
        Uop::new("xfer", [total_lhs_tiles, total_lhs_tiles, 0, 0]),
    );
    // MeshA: broadcast each LHS tile to every *active* MME (inactive MMEs
    // never consume, so copying to them would fill their streams).
    p.push(
        handles.mesh_a,
        Uop::new("broadcast", [0, total_lhs_tiles, active as i64]),
    );

    // Per-MME steady-state uOPs.
    let outputs_per_mme = (mt * cols_per) as i64;
    let rhs_in_port: i64 = match spec.rhs {
        RhsOperand::Lpddr(_) => 0,
        RhsOperand::Ddr(_) => 1,
    };
    for g in 0..active {
        p.push(
            handles.mem_b[g],
            Uop::new(
                "xfer",
                [
                    total_lhs_tiles,
                    total_lhs_tiles,
                    rhs_in_port,
                    i64::from(spec.rhs_transposed),
                ],
            ),
        );
        p.push(
            handles.mme[g],
            Uop::new("matmul", [outputs_per_mme, kt as i64]),
        );
        p.push(
            handles.mem_c[g],
            Uop::new(
                "post",
                [
                    outputs_per_mme,
                    spec.post.transform().code(),
                    0,
                    i64::from(spec.post.residual().is_some()),
                    (g * cols_per) as i64,
                    cols_per as i64,
                ],
            ),
        );
    }
    // MeshB: deliver one RHS tile to each active MME per accumulation step.
    for _ in 0..(mt * cols_per * kt) {
        for g in 0..active {
            p.push(handles.mesh_b, Uop::new("route", [g as i64, g as i64, 1]));
        }
    }

    // Off-chip uOPs, round by round, with the previous round's stores
    // interleaved into the next round's loads (Fig. 12, "Way 1").
    let mut pending_stores: Vec<Uop> = Vec::new();
    for i in 0..mt {
        for cb in 0..cols_per {
            // LHS loads for this output round.
            for k in 0..kt {
                p.push(
                    handles.ddr,
                    Uop::new(
                        "load",
                        [
                            spec.lhs,
                            (i * tile_m) as i64,
                            (k * tile_k) as i64,
                            tile_m as i64,
                            tile_k as i64,
                            0,
                        ],
                    ),
                );
            }
            // RHS loads for every active MME.
            for g in 0..active {
                let col = g * cols_per + cb;
                for k in 0..kt {
                    let (fu, matrix, out_port) = match spec.rhs {
                        RhsOperand::Lpddr(id) => (handles.lpddr, id, g as i64),
                        RhsOperand::Ddr(id) => (handles.ddr, id, (1 + g) as i64),
                    };
                    let (row0, col0, rows, cols) = if spec.rhs_transposed {
                        // Stored as n × k; MemB transposes on the way out.
                        (col * tile_n, k * tile_k, tile_n, tile_k)
                    } else {
                        (k * tile_k, col * tile_n, tile_k, tile_n)
                    };
                    p.push(
                        fu,
                        Uop::new(
                            "load",
                            [
                                matrix,
                                row0 as i64,
                                col0 as i64,
                                rows as i64,
                                cols as i64,
                                out_port,
                            ],
                        ),
                    );
                }
                // Residual tile for LayerNorm epilogues.
                if let Some(res) = spec.post.residual() {
                    p.push(
                        handles.ddr,
                        Uop::new(
                            "load",
                            [
                                res,
                                (i * tile_m) as i64,
                                (col * tile_n) as i64,
                                tile_m as i64,
                                tile_n as i64,
                                (1 + g_count + g) as i64,
                            ],
                        ),
                    );
                }
            }
            // Drain the previous round's outputs while this round computes.
            for store in pending_stores.drain(..) {
                p.push(handles.ddr, store);
            }
            // Queue this round's stores for the next round.
            for g in 0..active {
                let col = g * cols_per + cb;
                pending_stores.push(Uop::new(
                    "store",
                    [
                        spec.out,
                        (i * tile_m) as i64,
                        (col * tile_n) as i64,
                        g as i64,
                    ],
                ));
            }
        }
    }
    for store in pending_stores {
        p.push(handles.ddr, store);
    }
    p
}

/// Generates the dynamically pipelined attention program: for every head,
/// MM1 → scaled softmax → MM2 without intermediate off-chip traffic.
///
/// # Panics
///
/// Panics if `head_dim`, `seq_len`, `batch` or `heads` is zero.
pub fn attention_program(cfg: &XnnConfig, handles: &XnnHandles, spec: &AttentionSpec) -> Program {
    assert!(
        spec.seq_len > 0 && spec.batch > 0 && spec.heads > 0 && spec.head_dim > 0,
        "attention dimensions must be non-zero"
    );
    let g_count = cfg.n_mme;
    let mut p = Program::new();
    // Enumerate (batch, head) pairs and assign them round-robin to MMEs.
    let head_units: Vec<(usize, usize)> = (0..spec.batch)
        .flat_map(|b| (0..spec.heads).map(move |h| (b, h)))
        .collect();
    let total_heads = head_units.len();
    let heads_per_mme = total_heads.div_ceil(g_count);

    // Steady-state uOPs for the on-chip FUs.
    let total_q_tiles = total_heads as i64;
    p.push(
        handles.mem_a,
        Uop::new("xfer", [total_q_tiles, total_q_tiles, 0, 0]),
    );
    for g in 0..g_count {
        let my_heads = head_units
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx % g_count == g)
            .count() as i64;
        if my_heads == 0 {
            continue;
        }
        // K (transposed) then V for every head, alternating.
        for _ in 0..my_heads {
            p.push(handles.mem_b[g], Uop::new("xfer", [1, 1, 1, 1]));
            p.push(handles.mem_b[g], Uop::new("xfer", [1, 1, 1, 0]));
        }
        // MM1 and MM2 for every head: two single-accumulation outputs each.
        p.push(handles.mme[g], Uop::new("matmul", [2 * my_heads, 1]));
        // Softmax feeds back on-chip; the context tile goes to DDR.
        for _ in 0..my_heads {
            p.push(
                handles.mem_c[g],
                Uop::new("post", [1, PostTransform::ScaledSoftmax.code(), 1, 0, 0, 1]),
            );
            p.push(
                handles.mem_c[g],
                Uop::new("post", [1, PostTransform::None.code(), 0, 0, 0, 1]),
            );
        }
    }

    // MeshA and MeshB routing plus DDR traffic, wave by wave (one head per
    // active MME per wave).
    let mut pending_stores: Vec<Uop> = Vec::new();
    for wave in 0..heads_per_mme {
        let wave_members: Vec<(usize, (usize, usize))> = (0..g_count)
            .filter_map(|g| {
                let idx = wave * g_count + g;
                head_units.get(idx).map(|hu| (g, *hu))
            })
            .collect();
        // Queries for this wave.
        for &(g, (b, h)) in &wave_members {
            let row0 = (b * spec.seq_len) as i64;
            let col0 = (h * spec.head_dim) as i64;
            p.push(
                handles.ddr,
                Uop::new(
                    "load",
                    [
                        spec.q,
                        row0,
                        col0,
                        spec.seq_len as i64,
                        spec.head_dim as i64,
                        0,
                    ],
                ),
            );
            p.push(handles.mesh_a, Uop::new("route", [0, g as i64, 1]));
        }
        // Keys and values for this wave.
        for &(g, (b, h)) in &wave_members {
            let row0 = (b * spec.seq_len) as i64;
            let col0 = (h * spec.head_dim) as i64;
            let to_memb = (1 + g) as i64;
            p.push(
                handles.ddr,
                Uop::new(
                    "load",
                    [
                        spec.k,
                        row0,
                        col0,
                        spec.seq_len as i64,
                        spec.head_dim as i64,
                        to_memb,
                    ],
                ),
            );
            p.push(
                handles.ddr,
                Uop::new(
                    "load",
                    [
                        spec.v,
                        row0,
                        col0,
                        spec.seq_len as i64,
                        spec.head_dim as i64,
                        to_memb,
                    ],
                ),
            );
            p.push(handles.mesh_b, Uop::new("route", [g as i64, g as i64, 2]));
            // Softmax output re-enters MeshA through the feedback port.
            p.push(
                handles.mesh_a,
                Uop::new("route", [(1 + g) as i64, g as i64, 1]),
            );
        }
        // Previous wave's context tiles drain while this wave computes.
        for store in pending_stores.drain(..) {
            p.push(handles.ddr, store);
        }
        for &(g, (b, h)) in &wave_members {
            pending_stores.push(Uop::new(
                "store",
                [
                    spec.out,
                    (b * spec.seq_len) as i64,
                    (h * spec.head_dim) as i64,
                    g as i64,
                ],
            ));
        }
    }
    for store in pending_stores {
        p.push(handles.ddr, store);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::XnnDatapath;

    #[test]
    fn gemm_program_touches_every_fu_class() {
        let cfg = XnnConfig::small();
        let (_dp, handles) = XnnDatapath::build(&cfg).unwrap();
        let spec = GemmSpec {
            lhs: 1,
            rhs: RhsOperand::Lpddr(2),
            out: 3,
            m: 16,
            k: 16,
            n: 16,
            rhs_transposed: false,
            post: PostOp::Bias,
        };
        let p = gemm_program(&cfg, &handles, &spec);
        assert!(!p.uops_for(handles.ddr).is_empty());
        assert!(!p.uops_for(handles.lpddr).is_empty());
        assert!(!p.uops_for(handles.mem_a).is_empty());
        assert!(!p.uops_for(handles.mesh_a).is_empty());
        assert!(!p.uops_for(handles.mesh_b).is_empty());
        assert!(!p.uops_for(handles.mme[0]).is_empty());
        assert!(!p.uops_for(handles.mem_c[0]).is_empty());
    }

    #[test]
    fn gemm_program_interleaves_stores_with_loads() {
        let cfg = XnnConfig::small();
        let (_dp, handles) = XnnDatapath::build(&cfg).unwrap();
        let spec = GemmSpec {
            lhs: 1,
            rhs: RhsOperand::Lpddr(2),
            out: 3,
            m: 32,
            k: 16,
            n: 16,
            rhs_transposed: false,
            post: PostOp::None,
        };
        let p = gemm_program(&cfg, &handles, &spec);
        let ddr_ops: Vec<&str> = p.uops_for(handles.ddr).iter().map(|u| u.opcode()).collect();
        // Stores must appear before the final load (fine-grained
        // interleaving), not all bunched at the end.
        let first_store = ddr_ops.iter().position(|o| *o == "store").unwrap();
        let last_load = ddr_ops.iter().rposition(|o| *o == "load").unwrap();
        assert!(first_store < last_load, "stores are not interleaved");
    }

    #[test]
    fn attention_program_uses_feedback_path() {
        let cfg = XnnConfig::small();
        let (_dp, handles) = XnnDatapath::build(&cfg).unwrap();
        let spec = AttentionSpec {
            q: 1,
            k: 2,
            v: 3,
            out: 4,
            seq_len: 8,
            batch: 2,
            heads: 2,
            head_dim: 16,
        };
        let p = attention_program(&cfg, &handles, &spec);
        // MeshA must route from a feedback port (port index ≥ 1).
        let uses_feedback = p
            .uops_for(handles.mesh_a)
            .iter()
            .any(|u| u.opcode() == "route" && u.field(0).unwrap_or(0) >= 1);
        assert!(uses_feedback);
        // No DDR store of an intermediate score matrix: only `out` is stored.
        assert!(p
            .uops_for(handles.ddr)
            .iter()
            .filter(|u| u.opcode() == "store")
            .all(|u| u.field(0) == Some(4)));
    }

    #[test]
    #[should_panic(expected = "GEMM dims must be non-zero")]
    fn gemm_program_rejects_zero_dims() {
        let cfg = XnnConfig::small();
        let (_dp, handles) = XnnDatapath::build(&cfg).unwrap();
        let spec = GemmSpec {
            lhs: 1,
            rhs: RhsOperand::Lpddr(2),
            out: 3,
            m: 0,
            k: 16,
            n: 16,
            rhs_transposed: false,
            post: PostOp::None,
        };
        let _ = gemm_program(&cfg, &handles, &spec);
    }
}
