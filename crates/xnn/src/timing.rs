//! The calibrated analytic timing model of RSN-XNN.
//!
//! The paper measures latency on the VCK190 board; this reproduction
//! replaces the board with a first-order model of the same machine.  A model
//! segment (one row of Table 9) is costed as:
//!
//! ```text
//! latency = max(t_compute, t_ddr, t_lpddr)
//!         + OVERLAP_LOSS · second_largest(t_compute, t_ddr, t_lpddr)
//!         + PHASE_FACTOR · instances · (first-load + last-drain time)
//! ```
//!
//! * `t_compute` uses the calibrated AIE GEMM throughput
//!   ([`rsn_hw::aie`]) at 96 % MME utilization for large layers and 64 % for
//!   small attention MMs executed stand-alone (the utilizations of Table 3);
//! * `t_ddr` is the DDR channel busy time for feature-map loads and stores
//!   under the selected interleaving policy ([`rsn_hw::memory`]), where the
//!   loads account for the paper's 768×128×1024 PL tiling (the LHS is
//!   re-read once per output column block, the weights once per output row
//!   block);
//! * `t_lpddr` is the weight-streaming time;
//! * the `OVERLAP_LOSS` term models the imperfect overlap of compute and
//!   communication observed on the board, and the `PHASE_FACTOR` term the
//!   part of each instance's prolog/epilog that double buffering cannot
//!   hide.
//!
//! Optimisation flags correspond to the paper's ablation columns: with
//! everything off the model reproduces the "No Optimize" column of Table 9,
//! adding bandwidth interleaving reproduces the "BW Optimized" column,
//! adding attention pipelining and prolog/epilog overlap reproduces the
//! final 17.98 ms figure (§5.5).

use rsn_hw::aie::AieArrayModel;
use rsn_hw::memory::{InterleavePolicy, MemoryChannelModel};
use rsn_hw::versal::Vck190Spec;
use rsn_workloads::bert::{BertConfig, EncoderSegment, NonMmOp, RhsSource};
use rsn_workloads::gemm::GemmShape;
use rsn_workloads::models::{ModelConfig, ModelKind};
use serde::{Deserialize, Serialize};

/// Fraction of the second-largest latency component that is not hidden by
/// compute/communication overlap (calibration constant).
pub const OVERLAP_LOSS: f64 = 0.10;
/// Fraction of each instance's prolog + epilog time that double buffering
/// cannot hide (calibration constant).
pub const PHASE_FACTOR: f64 = 0.5;
/// PL-side output-stationary tiling: rows per output tile (§5.3).
pub const PL_TILE_M: usize = 768;
/// PL-side output-stationary tiling: reduction chunk (§5.3).
pub const PL_TILE_K: usize = 128;
/// PL-side output-stationary tiling: columns per output tile (§5.3).
pub const PL_TILE_N: usize = 1024;
/// MME utilization when all six engines work on one large layer (Table 3).
pub const UTIL_LARGE: f64 = 0.96;
/// MME utilization for small attention MMs executed one at a time (Table 3).
pub const UTIL_SMALL_STANDALONE: f64 = 0.64;

/// Which of the paper's optimisations are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizationFlags {
    /// Fine-grained DDR load/store interleaving (§4.4).
    pub bandwidth_interleaving: bool,
    /// Pipeline the two attention MMs and fuse softmax on-chip (§4.3).
    pub pipeline_attention: bool,
    /// Overlap the prolog/epilog phases of adjacent layers (§4.4).
    pub overlap_prolog_epilog: bool,
}

impl OptimizationFlags {
    /// Every optimisation enabled (the shipped RSN-XNN configuration).
    pub fn all() -> Self {
        Self {
            bandwidth_interleaving: true,
            pipeline_attention: true,
            overlap_prolog_epilog: true,
        }
    }

    /// Every optimisation disabled (the "typical overlay style" baseline of
    /// §5.5: sequential layers, no fine-grained bandwidth mapping).
    pub fn none() -> Self {
        Self {
            bandwidth_interleaving: false,
            pipeline_attention: false,
            overlap_prolog_epilog: false,
        }
    }

    /// Only bandwidth interleaving (the "BW Optimized" column of Table 9).
    pub fn bandwidth_only() -> Self {
        Self {
            bandwidth_interleaving: true,
            pipeline_attention: false,
            overlap_prolog_epilog: false,
        }
    }
}

/// Latency decomposition of one model segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentTiming {
    /// Segment name (Table 9 row).
    pub name: String,
    /// Compute-bound time, seconds.
    pub compute_s: f64,
    /// DDR channel busy time, seconds.
    pub ddr_s: f64,
    /// LPDDR channel busy time, seconds.
    pub lpddr_s: f64,
    /// Non-hidden prolog/epilog time, seconds.
    pub phase_s: f64,
    /// Total modelled latency, seconds.
    pub latency_s: f64,
}

/// The RSN-XNN timing model.
#[derive(Debug, Clone)]
pub struct XnnTimingModel {
    aie: AieArrayModel,
    ddr: MemoryChannelModel,
    lpddr: MemoryChannelModel,
    bandwidth_scale: f64,
    infinite_compute: bool,
    infinite_bandwidth: bool,
}

impl XnnTimingModel {
    /// The calibrated model of the real VCK190 board.
    pub fn new() -> Self {
        let spec = Vck190Spec::new();
        Self {
            aie: AieArrayModel::rsn_xnn(),
            ddr: MemoryChannelModel::ddr(&spec),
            lpddr: MemoryChannelModel::lpddr(&spec),
            bandwidth_scale: 1.0,
            infinite_compute: false,
            infinite_bandwidth: false,
        }
    }

    /// Returns a copy with both off-chip channels scaled by `factor`
    /// (Table 11 sweeps 0.5×–3×).
    pub fn with_bandwidth_scale(&self, factor: f64) -> Self {
        Self {
            ddr: self.ddr.scaled(factor),
            lpddr: self.lpddr.scaled(factor),
            bandwidth_scale: factor,
            ..self.clone()
        }
    }

    /// Returns a copy that ignores off-chip bandwidth entirely
    /// (Table 11's "infinite BW & no setup" column).
    pub fn with_infinite_bandwidth(&self) -> Self {
        Self {
            infinite_bandwidth: true,
            ..self.clone()
        }
    }

    /// Returns a copy that ignores compute time entirely
    /// (Table 11's "infinite compute" column).
    pub fn with_infinite_compute(&self) -> Self {
        Self {
            infinite_compute: true,
            ..self.clone()
        }
    }

    /// The bandwidth scale this model applies.
    pub fn bandwidth_scale(&self) -> f64 {
        self.bandwidth_scale
    }

    /// Achieved compute throughput (FLOP/s) at the given MME utilization.
    pub fn achieved_flops(&self, utilization: f64) -> f64 {
        self.aie.achieved_flops_at_utilization(utilization)
    }

    fn policy(&self, opts: OptimizationFlags) -> InterleavePolicy {
        if opts.bandwidth_interleaving {
            InterleavePolicy::SoftwareInterleaved
        } else {
            InterleavePolicy::Serialized
        }
    }

    fn combine(
        &self,
        name: &str,
        compute_s: f64,
        ddr_s: f64,
        lpddr_s: f64,
        phase_s: f64,
    ) -> SegmentTiming {
        let compute_s = if self.infinite_compute {
            0.0
        } else {
            compute_s
        };
        let (ddr_s, lpddr_s, phase_s) = if self.infinite_bandwidth {
            (0.0, 0.0, 0.0)
        } else {
            (ddr_s, lpddr_s, phase_s)
        };
        let mut parts = [compute_s, ddr_s, lpddr_s];
        parts.sort_by(|a, b| b.partial_cmp(a).expect("finite latencies"));
        let latency_s = parts[0] + OVERLAP_LOSS * parts[1] + phase_s;
        SegmentTiming {
            name: name.to_string(),
            compute_s,
            ddr_s,
            lpddr_s,
            phase_s,
            latency_s,
        }
    }

    /// Prolog + epilog time of one instance of a GEMM (first operand tile
    /// load plus last output tile drain), in seconds.
    fn instance_phase_s(&self, gemm: &GemmShape) -> f64 {
        let out_tile = (gemm.m.min(PL_TILE_M) * gemm.n.min(PL_TILE_N)) as f64 * 4.0;
        let in_tile = (gemm.m.min(PL_TILE_M) * gemm.k.min(PL_TILE_K)
            + gemm.k.min(PL_TILE_K) * gemm.n.min(PL_TILE_N)) as f64
            * 4.0;
        in_tile / self.ddr.read_bw() + out_tile / self.ddr.write_bw()
    }

    /// Latency of one stand-alone model segment (a row of Table 9 before any
    /// cross-segment grouping).
    pub fn segment_latency(&self, seg: &EncoderSegment, opts: OptimizationFlags) -> SegmentTiming {
        let gemm = seg.gemm;
        let col_blocks = gemm.n.div_ceil(PL_TILE_N) as f64;
        let row_blocks = gemm.m.div_ceil(PL_TILE_M) as f64;
        let utilization = if seg.attention_small_mm {
            UTIL_SMALL_STANDALONE
        } else {
            UTIL_LARGE
        };
        let compute_s = gemm.flops() / self.achieved_flops(utilization);

        // Off-chip traffic.  LHS always streams from DDR (re-read once per
        // output column block); the output streams back to DDR; residual
        // inputs for LayerNorm segments add another full read.
        let mut ddr_load = gemm.lhs_bytes() * col_blocks;
        let mut lpddr_load = 0.0;
        match seg.rhs_source {
            RhsSource::WeightsLpddr => lpddr_load += gemm.rhs_bytes() * row_blocks,
            RhsSource::Activations => ddr_load += gemm.rhs_bytes() * row_blocks,
        }
        if seg.non_mm.contains(&NonMmOp::LayerAdd) {
            ddr_load += gemm.out_bytes();
        }
        let ddr_store = gemm.out_bytes();
        let ddr_s = self
            .ddr
            .channel_busy_time_s(ddr_load, ddr_store, self.policy(opts));
        let lpddr_s = self.lpddr.read_time_s(lpddr_load);
        let phase_s = PHASE_FACTOR * gemm.num as f64 * self.instance_phase_s(&gemm);
        self.combine(&seg.name, compute_s, ddr_s, lpddr_s, phase_s)
    }

    /// Latency of the fused attention pair (MM1 → softmax → MM2 pipelined
    /// on-chip, §4.3): the score matrix never leaves the chip and all MMEs
    /// stay busy.
    pub fn pipelined_attention_latency(
        &self,
        mm1: &EncoderSegment,
        mm2: &EncoderSegment,
        opts: OptimizationFlags,
    ) -> SegmentTiming {
        let flops = mm1.gemm.flops() + mm2.gemm.flops();
        let compute_s = flops / self.achieved_flops(UTIL_LARGE);
        // Q and K stream in for MM1, V streams in for MM2; only the context
        // output goes back out — the intermediate scores stay on-chip.
        let ddr_load = mm1.gemm.lhs_bytes() + mm1.gemm.rhs_bytes() + mm2.gemm.rhs_bytes();
        let ddr_store = mm2.gemm.out_bytes();
        let ddr_s = self
            .ddr
            .channel_busy_time_s(ddr_load, ddr_store, self.policy(opts));
        // Heads overlap each other's prolog/epilog, so only one instance's
        // phase remains visible.
        let phase_s = PHASE_FACTOR * self.instance_phase_s(&mm2.gemm);
        self.combine(
            "Attention MM1+MM2 (pipelined)",
            compute_s,
            ddr_s,
            0.0,
            phase_s,
        )
    }

    /// Per-segment latencies of one encoder layer under the given
    /// optimisations (the rows of Table 9).
    pub fn encoder_segment_timings(
        &self,
        cfg: &BertConfig,
        opts: OptimizationFlags,
    ) -> Vec<SegmentTiming> {
        let segments = cfg.encoder_segments();
        let mut out = Vec::new();
        let mut i = 0;
        while i < segments.len() {
            let seg = &segments[i];
            if opts.pipeline_attention
                && seg.attention_small_mm
                && i + 1 < segments.len()
                && segments[i + 1].attention_small_mm
            {
                out.push(self.pipelined_attention_latency(seg, &segments[i + 1], opts));
                i += 2;
            } else {
                out.push(self.segment_latency(seg, opts));
                i += 1;
            }
        }
        out
    }

    /// Latency of one encoder layer in seconds.
    ///
    /// With `overlap_prolog_epilog` enabled, the phase time of every
    /// interior segment boundary is hidden (the §4.4 cross-layer overlap).
    pub fn encoder_latency_s(&self, cfg: &BertConfig, opts: OptimizationFlags) -> f64 {
        let timings = self.encoder_segment_timings(cfg, opts);
        let total: f64 = timings.iter().map(|t| t.latency_s).sum();
        if opts.overlap_prolog_epilog && timings.len() > 1 {
            let hidden: f64 = timings
                .iter()
                .skip(1)
                .map(|t| t.phase_s.min(t.latency_s))
                .sum();
            total - hidden
        } else {
            total
        }
    }

    /// Latency of the full model (all encoder layers) in seconds.
    pub fn model_latency_s(&self, cfg: &BertConfig, opts: OptimizationFlags) -> f64 {
        self.encoder_latency_s(cfg, opts) * cfg.layers as f64
    }

    /// Throughput in tasks per second when processing batches of
    /// `cfg.batch` sequences through one encoder layer (Fig. 18's
    /// throughput axis uses the first encoder as the unit of work).
    pub fn encoder_throughput_tasks_per_s(&self, cfg: &BertConfig, opts: OptimizationFlags) -> f64 {
        cfg.batch as f64 / self.encoder_latency_s(cfg, opts)
    }

    /// End-to-end square-GEMM throughput in FLOP/s with operands resident in
    /// DRAM (Table 6b).
    pub fn gemm_end_to_end_flops(&self, n: usize) -> f64 {
        let shape = GemmShape::square(n);
        let seg = EncoderSegment {
            name: format!("square GEMM {n}"),
            gemm: shape,
            non_mm: vec![],
            rhs_source: RhsSource::WeightsLpddr,
            attention_small_mm: false,
        };
        let t = self.segment_latency(&seg, OptimizationFlags::all());
        shape.flops() / t.latency_s
    }

    /// Latency per task at maximum throughput for one of the Table 7 models.
    pub fn model_config_latency_s(&self, cfg: &ModelConfig, opts: OptimizationFlags) -> f64 {
        if let Some(bert_like) = cfg.bert_like {
            return self.model_latency_s(&bert_like, opts) / cfg.tasks_per_pass as f64;
        }
        let mut total = 0.0;
        for layer in &cfg.layers {
            let seg = EncoderSegment {
                name: layer.name.clone(),
                gemm: layer.gemm,
                non_mm: vec![],
                rhs_source: RhsSource::WeightsLpddr,
                attention_small_mm: layer.small_activation_mm,
            };
            total += self.segment_latency(&seg, opts).latency_s;
        }
        if opts.overlap_prolog_epilog {
            let hidden: f64 = cfg
                .layers
                .iter()
                .skip(1)
                .map(|l| PHASE_FACTOR * self.instance_phase_s(&l.gemm))
                .sum();
            total -= hidden.min(total * 0.5);
        }
        total / cfg.tasks_per_pass as f64
    }

    /// Effective achieved throughput (FLOP/s) for a full BERT-Large forward
    /// pass — the "Achieved Perf." entry of Table 5b / Table 8.
    pub fn achieved_bert_flops(&self, cfg: &BertConfig, opts: OptimizationFlags) -> f64 {
        cfg.model_flops() / self.model_latency_s(cfg, opts)
    }

    /// Latency per task of every Table 7 model under the fully optimised
    /// configuration.
    pub fn table7_latencies_s(&self) -> Vec<(ModelKind, f64)> {
        ModelKind::table7_models()
            .iter()
            .map(|&kind| {
                let cfg = ModelConfig::table7(kind);
                (
                    kind,
                    self.model_config_latency_s(&cfg, OptimizationFlags::all()),
                )
            })
            .collect()
    }
}

impl Default for XnnTimingModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table9_config() -> BertConfig {
        BertConfig::bert_large(512, 6)
    }

    #[test]
    fn qkv_segment_matches_table9_within_tolerance() {
        let model = XnnTimingModel::new();
        let cfg = table9_config();
        let segs = cfg.encoder_segments();
        let key = &segs[0];
        let no_opt = model.segment_latency(key, OptimizationFlags::none());
        let bw_opt = model.segment_latency(key, OptimizationFlags::bandwidth_only());
        // Paper: 1.667 ms → 1.276 ms (1.31×).
        assert!(
            (no_opt.latency_s * 1e3 - 1.667).abs() / 1.667 < 0.15,
            "no-opt {}",
            no_opt.latency_s * 1e3
        );
        assert!(
            (bw_opt.latency_s * 1e3 - 1.276).abs() / 1.276 < 0.15,
            "bw {}",
            bw_opt.latency_s * 1e3
        );
        let speedup = no_opt.latency_s / bw_opt.latency_s;
        assert!(speedup > 1.15 && speedup < 1.45, "speedup {speedup}");
    }

    #[test]
    fn attention_pipelining_gives_large_speedup() {
        let model = XnnTimingModel::new();
        let cfg = table9_config();
        let segs = cfg.encoder_segments();
        let mm1 = model.segment_latency(&segs[3], OptimizationFlags::none());
        let mm2 = model.segment_latency(&segs[4], OptimizationFlags::none());
        let pipelined =
            model.pipelined_attention_latency(&segs[3], &segs[4], OptimizationFlags::all());
        // Paper: 22.3 ms sequential vs 2.618 ms pipelined (8.5×).
        let speedup = (mm1.latency_s + mm2.latency_s) / pipelined.latency_s;
        assert!(speedup > 5.0, "speedup {speedup}");
        assert!(
            (pipelined.latency_s * 1e3 - 2.618).abs() / 2.618 < 0.2,
            "pipelined {}",
            pipelined.latency_s * 1e3
        );
    }

    #[test]
    fn full_encoder_latency_close_to_17_98_ms() {
        let model = XnnTimingModel::new();
        let cfg = table9_config();
        let optimised = model.encoder_latency_s(&cfg, OptimizationFlags::all()) * 1e3;
        let baseline = model.encoder_latency_s(&cfg, OptimizationFlags::none()) * 1e3;
        assert!(
            (optimised - 17.98).abs() / 17.98 < 0.12,
            "optimised {optimised}"
        );
        // Paper: 2.47× over the sequential overlay style.
        let speedup = baseline / optimised;
        assert!(speedup > 2.0 && speedup < 3.0, "speedup {speedup}");
    }

    #[test]
    fn throughput_saturates_with_batch() {
        let model = XnnTimingModel::new();
        let t1 = model.encoder_throughput_tasks_per_s(
            &BertConfig::bert_large(512, 1),
            OptimizationFlags::all(),
        );
        let t6 = model.encoder_throughput_tasks_per_s(
            &BertConfig::bert_large(512, 6),
            OptimizationFlags::all(),
        );
        let t24 = model.encoder_throughput_tasks_per_s(
            &BertConfig::bert_large(512, 24),
            OptimizationFlags::all(),
        );
        assert!(t6 > t1);
        // Paper: throughput nearly saturates by B=3-6 (97 % of peak).
        assert!((t24 - t6).abs() / t6 < 0.25, "t6 {t6} t24 {t24}");
        // Peak throughput around 334 tasks/s in the paper.
        assert!(t6 > 250.0 && t6 < 450.0, "t6 {t6}");
    }

    #[test]
    fn bandwidth_sweep_matches_table11_shape() {
        let model = XnnTimingModel::new();
        let cfg = BertConfig::bert_large(384, 8);
        let opts = OptimizationFlags::all();
        let base = model.model_latency_s(&cfg, opts);
        let half = model.with_bandwidth_scale(0.5).model_latency_s(&cfg, opts);
        let double = model.with_bandwidth_scale(2.0).model_latency_s(&cfg, opts);
        let triple = model.with_bandwidth_scale(3.0).model_latency_s(&cfg, opts);
        let inf_bw = model.with_infinite_bandwidth().model_latency_s(&cfg, opts);
        let inf_compute = model.with_infinite_compute().model_latency_s(&cfg, opts);
        // Halving bandwidth hurts a lot; doubling helps only modestly
        // (Table 11: 0.63× / 1.15× / 1.19× speedups, 1.43× for infinite BW).
        assert!(half > 1.3 * base, "half {half} base {base}");
        assert!(
            double < base && double > 0.72 * base,
            "double {double} base {base}"
        );
        assert!(triple <= double);
        assert!(inf_bw < double);
        assert!(inf_compute < base);
        // Around 444 ms at 1× in the paper; keep the same order of magnitude.
        assert!(base > 0.25 && base < 0.75, "base {base}");
    }

    #[test]
    fn gemm_end_to_end_throughput_grows_with_size() {
        let model = XnnTimingModel::new();
        let g1k = model.gemm_end_to_end_flops(1024) / 1e9;
        let g3k = model.gemm_end_to_end_flops(3072) / 1e9;
        let g6k = model.gemm_end_to_end_flops(6144) / 1e9;
        // Paper Table 6b: 2983 / 6600 / 6751 GFLOPS.
        assert!(g1k < g3k && g3k < g6k);
        assert!(g1k > 1200.0 && g1k < 4500.0, "1k {g1k}");
        assert!(g6k > 5000.0 && g6k < 7200.0, "6k {g6k}");
    }

    #[test]
    fn achieved_bert_flops_is_about_4_7_tflops() {
        let model = XnnTimingModel::new();
        let cfg = BertConfig::bert_large(512, 6);
        let achieved = model.achieved_bert_flops(&cfg, OptimizationFlags::all()) / 1e12;
        // Paper Table 5b/8: 4.7 TFLOPS achieved (59 % of 8 TFLOPS peak).
        assert!(achieved > 4.0 && achieved < 5.6, "achieved {achieved}");
    }

    #[test]
    fn table7_latencies_cover_all_models() {
        let model = XnnTimingModel::new();
        let rows = model.table7_latencies_s();
        assert_eq!(rows.len(), 4);
        for (kind, latency) in rows {
            assert!(latency > 0.0, "{} latency", kind.name());
            assert!(latency < 1.0, "{} latency too large", kind.name());
        }
    }

    #[test]
    fn optimisation_flags_presets_are_distinct() {
        assert_ne!(OptimizationFlags::all(), OptimizationFlags::none());
        assert!(OptimizationFlags::bandwidth_only().bandwidth_interleaving);
        assert!(!OptimizationFlags::bandwidth_only().pipeline_attention);
    }
}
