//! Instruction-footprint statistics (Fig. 9 and the §5.1 instruction
//! overhead analysis).
//!
//! The paper compares, per FU type, the size of the RSN instruction stream
//! against the size of the uOP stream it expands to, for one BERT-Large
//! encoder.  Here the same comparison is computed from an actual generated
//! [`Program`]: the uOP bytes are the encoded size of every per-FU uOP, the
//! RSN bytes are the encoded size of the compressed packet stream, and the
//! compression ratio is their quotient.

use crate::datapath::XnnHandles;
use rsn_core::error::RsnError;
use rsn_core::isa::Packet;
use rsn_core::network::Datapath;
use rsn_core::program::Program;
use rsn_core::uop::Uop;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-FU-type instruction footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuTypeInstrStats {
    /// FU type name.
    pub fu_type: String,
    /// Number of RSN instruction packets targeting this type.
    pub rsn_packets: usize,
    /// Encoded bytes of those packets.
    pub rsn_bytes: usize,
    /// Number of uOPs after window/reuse expansion (per selected lane).
    pub expanded_uops: usize,
    /// Encoded bytes of the expanded uOPs.
    pub uop_bytes: usize,
}

impl FuTypeInstrStats {
    /// uOP-to-RSN compression ratio (>1 means the packet stream is smaller).
    pub fn compression_ratio(&self) -> f64 {
        if self.rsn_bytes == 0 {
            0.0
        } else {
            self.uop_bytes as f64 / self.rsn_bytes as f64
        }
    }
}

/// Instruction statistics of a whole program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramInstrStats {
    /// Per-FU-type rows, ordered by type name.
    pub per_type: Vec<FuTypeInstrStats>,
}

impl ProgramInstrStats {
    /// Total RSN instruction bytes.
    pub fn total_rsn_bytes(&self) -> usize {
        self.per_type.iter().map(|r| r.rsn_bytes).sum()
    }

    /// Total expanded uOP bytes.
    pub fn total_uop_bytes(&self) -> usize {
        self.per_type.iter().map(|r| r.uop_bytes).sum()
    }

    /// Overall compression ratio.
    pub fn overall_compression(&self) -> f64 {
        let rsn = self.total_rsn_bytes();
        if rsn == 0 {
            0.0
        } else {
            self.total_uop_bytes() as f64 / rsn as f64
        }
    }

    /// Compute-to-instruction ratio in FLOP per RSN instruction byte — the
    /// paper quotes 1.6 GFLOP/byte for BERT-Large.
    pub fn flops_per_instruction_byte(&self, total_flops: f64) -> f64 {
        let bytes = self.total_rsn_bytes();
        if bytes == 0 {
            0.0
        } else {
            total_flops / bytes as f64
        }
    }
}

/// Computes per-FU-type instruction statistics for `program` running on
/// `datapath`.
///
/// # Errors
///
/// Propagates packet-compression errors (unknown FU or header overflow).
pub fn program_instr_stats(
    datapath: &Datapath,
    program: &Program,
) -> Result<ProgramInstrStats, RsnError> {
    let packets = program.compress(datapath)?;
    let type_names: Vec<String> = datapath.fu_types().map(|t| t.to_string()).collect();

    let mut rsn_bytes: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for p in &packets {
        let name = type_names
            .get(usize::from(p.header.opcode))
            .cloned()
            .unwrap_or_else(|| format!("opcode{}", p.header.opcode));
        let entry = rsn_bytes.entry(name).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += Packet::encoded_len(p);
    }

    let mut uop_bytes: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for (fu, uops) in program.iter() {
        let fu_type = datapath.fu_type(fu)?.to_string();
        let entry = uop_bytes.entry(fu_type).or_insert((0, 0));
        entry.0 += uops.len();
        entry.1 += uops.iter().map(Uop::encoded_len).sum::<usize>();
    }

    let mut types: Vec<String> = rsn_bytes.keys().chain(uop_bytes.keys()).cloned().collect();
    types.sort();
    types.dedup();
    let per_type = types
        .into_iter()
        .map(|t| {
            let (rsn_packets, rsn_b) = rsn_bytes.get(&t).copied().unwrap_or((0, 0));
            let (uops, uop_b) = uop_bytes.get(&t).copied().unwrap_or((0, 0));
            FuTypeInstrStats {
                fu_type: t,
                rsn_packets,
                rsn_bytes: rsn_b,
                expanded_uops: uops,
                uop_bytes: uop_b,
            }
        })
        .collect();
    Ok(ProgramInstrStats { per_type })
}

/// Convenience: statistics for a program generated against an RSN-XNN
/// datapath, reported with the handles' type layout.
///
/// # Errors
///
/// Propagates packet-compression errors.
pub fn xnn_instr_stats(
    datapath: &Datapath,
    _handles: &XnnHandles,
    program: &Program,
) -> Result<ProgramInstrStats, RsnError> {
    program_instr_stats(datapath, program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XnnConfig;
    use crate::datapath::XnnDatapath;
    use crate::program::{gemm_program, GemmSpec, PostOp, RhsOperand};

    fn stats_for(m: usize, k: usize, n: usize) -> ProgramInstrStats {
        let cfg = XnnConfig::small();
        let (dp, handles) = XnnDatapath::build(&cfg).unwrap();
        let spec = GemmSpec {
            lhs: 1,
            rhs: RhsOperand::Lpddr(2),
            out: 3,
            m,
            k,
            n,
            rhs_transposed: false,
            post: PostOp::Bias,
        };
        let program = gemm_program(&cfg, &handles, &spec);
        program_instr_stats(&dp, &program).unwrap()
    }

    #[test]
    fn offchip_fus_need_more_instructions_than_streaming_fus() {
        let stats = stats_for(64, 64, 64);
        let ddr = stats
            .per_type
            .iter()
            .find(|r| r.fu_type == "DDR")
            .expect("DDR row");
        let mesh_b = stats
            .per_type
            .iter()
            .find(|r| r.fu_type == "MeshB")
            .expect("MeshB row");
        let mme = stats
            .per_type
            .iter()
            .find(|r| r.fu_type == "MME")
            .expect("MME row");
        // The paper's Fig. 9 observation: off-chip FUs carry most of the
        // control, on-chip streaming FUs need almost none.
        assert!(ddr.uop_bytes > mme.uop_bytes);
        assert!(ddr.rsn_bytes > mme.rsn_bytes);
        // MeshB's highly repetitive routing compresses far better than DDR's
        // address-bearing loads/stores.
        assert!(mesh_b.compression_ratio() > ddr.compression_ratio());
    }

    #[test]
    fn compression_never_expands_catastrophically_and_usually_helps() {
        let stats = stats_for(64, 64, 64);
        assert!(stats.overall_compression() > 1.0);
        assert!(stats.total_rsn_bytes() > 0);
        assert!(stats.total_uop_bytes() >= stats.total_rsn_bytes());
    }

    #[test]
    fn flops_per_byte_scales_with_problem_size() {
        let small = stats_for(32, 32, 32);
        let large = stats_for(128, 128, 128);
        let small_ratio = small.flops_per_instruction_byte(2.0 * 32.0_f64.powi(3));
        let large_ratio = large.flops_per_instruction_byte(2.0 * 128.0_f64.powi(3));
        // Bigger layers amortise instructions better — the low-entropy
        // argument of §1.
        assert!(large_ratio > small_ratio);
    }
}
