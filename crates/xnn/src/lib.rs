//! # rsn-xnn
//!
//! RSN-XNN — the paper's proof-of-concept RSN design for transformer
//! encoders — reproduced on top of a simulated VCK190.
//!
//! The crate has two halves that correspond to the two ways the paper
//! evaluates the design:
//!
//! **Functional datapath** ([`config`], [`fus`], [`datapath`], [`machine`],
//! [`program`]): concrete [`FunctionalUnit`](rsn_core::fu::FunctionalUnit)
//! implementations for the MME, MemA/B/C, MeshA/B, DDR and LPDDR FUs of
//! Fig. 10, a builder that wires them into the RSN-XNN stream network, and
//! program generators that trigger paths for tiled GEMM, dynamically
//! pipelined GEMM pairs, fused attention (MM → softmax → MM) and whole
//! encoder segments.  Running these programs on the [`rsn_core`] engine
//! produces real FP32 results that the tests validate against the
//! `rsn-workloads` reference math — the reproduction's equivalent of the
//! artifact's on-board correctness check.
//!
//! **Analytic timing model** ([`timing`], [`instr_stats`]): a calibrated
//! latency model of the same datapath used to regenerate the paper's
//! evaluation tables (Table 3, 6–11, Fig. 9, 16, 18).  The model reasons in
//! terms of compute time at a given MME utilization, off-chip channel busy
//! time under a load/store interleaving policy, and the pipelining /
//! prolog-epilog-overlap optimisations of §4.3–4.4.

pub mod config;
pub mod datapath;
pub mod fus;
pub mod instr_stats;
pub mod machine;
pub mod program;
pub mod timing;

pub use config::XnnConfig;
pub use datapath::{FuProperties, XnnDatapath};
pub use machine::XnnMachine;
pub use program::PostOp;
pub use timing::{OptimizationFlags, SegmentTiming, XnnTimingModel};
