//! Component-level power and energy models.
//!
//! The paper reports two kinds of power numbers:
//!
//! * a Vivado-estimated per-component breakdown (Table 4 / Fig. 15) showing
//!   that the AIE array dominates (≈62 %), MemC FUs are the biggest PL
//!   consumer (≈23 %) and the decoder is negligible (<0.1 %), and
//! * on-board measurements used for the energy-efficiency comparison of
//!   Table 10 (45.5 W operating / 18.2 W dynamic for the VCK190).
//!
//! [`EnergyModel`] derives the per-component breakdown from each FU's
//! physical properties (arithmetic throughput, on-chip memory, routed
//! bandwidth) with coefficients calibrated against Table 4, so changing the
//! datapath (e.g. in an ablation) changes the predicted breakdown in a
//! plausible way instead of returning hard-coded rows.

use serde::{Deserialize, Serialize};

/// Power attributed to one component of the design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentPower {
    /// Component name (FU type or "Decoder").
    pub name: String,
    /// Estimated power in watts.
    pub watts: f64,
}

/// Physical properties of one FU type used by the power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentProfile {
    /// Peak arithmetic throughput in FLOP/s contributed by this component.
    pub flops: f64,
    /// On-chip memory in bytes held by this component.
    pub memory_bytes: f64,
    /// Aggregate stream bandwidth routed through this component in bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Number of instances of this component.
    pub instances: usize,
}

/// Calibrated coefficients of the linear power model.
///
/// `P = instances · (static) + flops·c_flop + memory·c_mem + bandwidth·c_bw`
///
/// The coefficients are fitted to the Table 4 breakdown (AIE 60.8 W,
/// MemC 22.9 W, decoder 0.08 W, …); they are calibration values, not
/// datasheet figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Watts per FLOP/s of arithmetic.
    pub watts_per_flops: f64,
    /// Watts per byte of on-chip memory.
    pub watts_per_mem_byte: f64,
    /// Watts per byte/s of routed stream bandwidth.
    pub watts_per_bw: f64,
    /// Static watts per component instance (clocking, control).
    pub static_watts_per_instance: f64,
    /// Board-level operating power measured on the VCK190 while running
    /// BERT-Large (Table 10), watts.
    pub board_operating_power_w: f64,
    /// Board-level dynamic power (operating − idle), watts.
    pub board_dynamic_power_w: f64,
}

impl EnergyModel {
    /// The calibration used throughout the reproduction.
    pub fn calibrated() -> Self {
        Self {
            // 6 MME × 1.1 TFLOPS = 6.6 TFLOPS of AIE arithmetic → ~60.8 W.
            watts_per_flops: 60.8 / 6.6e12,
            // MemC holds 6 MB and burns ~22.9 W minus its arithmetic share;
            // memory-heavy FUs (MemA/B) are far cheaper, so most of MemC's
            // power is attributed to its non-MM arithmetic and wide routing.
            watts_per_mem_byte: 0.25 / (0.75e6),
            watts_per_bw: 22.0 / 1.4e12,
            static_watts_per_instance: 0.04,
            board_operating_power_w: 45.5,
            board_dynamic_power_w: 18.2,
        }
    }

    /// Estimated power of one component class.
    pub fn component_power(&self, name: &str, profile: ComponentProfile) -> ComponentPower {
        let watts = profile.instances as f64 * self.static_watts_per_instance
            + profile.flops * self.watts_per_flops
            + profile.memory_bytes * self.watts_per_mem_byte
            + profile.bandwidth_bytes_per_s * self.watts_per_bw;
        ComponentPower {
            name: name.to_string(),
            watts,
        }
    }

    /// Sums a breakdown into total estimated power.
    pub fn total_watts(breakdown: &[ComponentPower]) -> f64 {
        breakdown.iter().map(|c| c.watts).sum()
    }

    /// Sequences per joule given a throughput in tasks/s, using board
    /// operating power.
    pub fn operating_efficiency_seq_per_j(&self, tasks_per_s: f64) -> f64 {
        tasks_per_s / self.board_operating_power_w
    }

    /// Sequences per joule given a throughput in tasks/s, using board
    /// dynamic power.
    pub fn dynamic_efficiency_seq_per_j(&self, tasks_per_s: f64) -> f64 {
        tasks_per_s / self.board_dynamic_power_w
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aie_profile() -> ComponentProfile {
        ComponentProfile {
            flops: 6.6e12,
            memory_bytes: 6.0 * 590.0e3,
            bandwidth_bytes_per_s: 0.0,
            instances: 6,
        }
    }

    fn memc_profile() -> ComponentProfile {
        ComponentProfile {
            // 4 × 0.072 + 2 × 0.046 TFLOPS of non-MM arithmetic, 6 MB of
            // memory, ~1.2 TB/s of aggregate routing (Fig. 16).
            flops: 0.38e12,
            memory_bytes: 6.0e6,
            bandwidth_bytes_per_s: 1.2e12,
            instances: 6,
        }
    }

    #[test]
    fn aie_dominates_breakdown() {
        let m = EnergyModel::calibrated();
        let aie = m.component_power("AIE", aie_profile());
        let memc = m.component_power("MemC", memc_profile());
        // Table 4: AIE ≈ 60.8 W (~62 %), MemC ≈ 22.9 W (~23 %).
        assert!((aie.watts - 60.8).abs() / 60.8 < 0.1, "aie {}", aie.watts);
        assert!(
            (memc.watts - 22.9).abs() / 22.9 < 0.2,
            "memc {}",
            memc.watts
        );
        assert!(aie.watts > 2.0 * memc.watts);
    }

    #[test]
    fn decoder_power_is_negligible() {
        let m = EnergyModel::calibrated();
        let decoder = m.component_power(
            "Decoder",
            ComponentProfile {
                flops: 0.0,
                memory_bytes: 8.0e3,
                bandwidth_bytes_per_s: 1.4e6,
                instances: 1,
            },
        );
        assert!(decoder.watts < 0.2, "decoder {}", decoder.watts);
    }

    #[test]
    fn board_efficiency_matches_table10() {
        let m = EnergyModel::calibrated();
        // 8 sequences in 444 ms at 45.5 W operating → ~0.40 seq/J.
        let op = m.operating_efficiency_seq_per_j(8.0 / 0.444);
        assert!((op - 0.40).abs() < 0.03, "op {op}");
        let dynamic = m.dynamic_efficiency_seq_per_j(8.0 / 0.444);
        assert!((dynamic - 0.99).abs() < 0.05, "dyn {dynamic}");
    }

    #[test]
    fn total_watts_sums_components() {
        let parts = vec![
            ComponentPower {
                name: "a".to_string(),
                watts: 1.5,
            },
            ComponentPower {
                name: "b".to_string(),
                watts: 2.5,
            },
        ];
        assert!((EnergyModel::total_watts(&parts) - 4.0).abs() < 1e-12);
    }
}
