//! The first-order roofline latency estimator.
//!
//! The paper's mapping analysis (§4.3, Table 3) and bandwidth sensitivity
//! study (§5.7, Table 11) reason about latency as the maximum of the
//! compute-bound time and the bandwidth-bound time.  This module provides
//! that estimator plus a small result type that keeps the two components
//! visible so benchmark output can show *why* a configuration is slow.

use serde::{Deserialize, Serialize};

/// Latency estimate decomposed into its compute and memory components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflineEstimate {
    /// Time if the computation were only compute-bound, seconds.
    pub compute_time_s: f64,
    /// Time if the computation were only bandwidth-bound, seconds.
    pub memory_time_s: f64,
}

impl RooflineEstimate {
    /// Builds an estimate from workload and machine characteristics.
    ///
    /// # Panics
    ///
    /// Panics if `peak_flops` or `bandwidth` is not strictly positive.
    pub fn new(flops: f64, bytes: f64, peak_flops: f64, bandwidth: f64) -> Self {
        assert!(peak_flops > 0.0, "peak_flops must be positive");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Self {
            compute_time_s: flops / peak_flops,
            memory_time_s: bytes / bandwidth,
        }
    }

    /// The roofline latency: the slower of the two components.
    pub fn latency_s(&self) -> f64 {
        self.compute_time_s.max(self.memory_time_s)
    }

    /// Whether the workload is limited by compute rather than bandwidth.
    pub fn is_compute_bound(&self) -> bool {
        self.compute_time_s >= self.memory_time_s
    }
}

/// Convenience wrapper returning only the latency.
///
/// # Panics
///
/// Panics if `peak_flops` or `bandwidth` is not strictly positive.
pub fn roofline_latency_s(flops: f64, bytes: f64, peak_flops: f64, bandwidth: f64) -> f64 {
    RooflineEstimate::new(flops, bytes, peak_flops, bandwidth).latency_s()
}

/// Arithmetic intensity (FLOP per byte) at which a machine transitions from
/// bandwidth-bound to compute-bound.
///
/// # Panics
///
/// Panics if `bandwidth` is not strictly positive.
pub fn ridge_point(peak_flops: f64, bandwidth: f64) -> f64 {
    assert!(bandwidth > 0.0, "bandwidth must be positive");
    peak_flops / bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_max_of_components() {
        let e = RooflineEstimate::new(1.0e12, 1.0e9, 1.0e12, 10.0e9);
        assert!((e.compute_time_s - 1.0).abs() < 1e-12);
        assert!((e.memory_time_s - 0.1).abs() < 1e-12);
        assert!((e.latency_s() - 1.0).abs() < 1e-12);
        assert!(e.is_compute_bound());
    }

    #[test]
    fn memory_bound_case() {
        let e = RooflineEstimate::new(1.0e9, 1.0e12, 1.0e12, 10.0e9);
        assert!(!e.is_compute_bound());
        assert!((e.latency_s() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let peak = 8.0e12;
        let bw = 57.6e9;
        let ridge = ridge_point(peak, bw);
        // VCK190 needs ~139 FLOP/byte to be compute-bound.
        assert!(ridge > 100.0 && ridge < 200.0);
        let below = RooflineEstimate::new(ridge * 0.5 * 1e9, 1e9, peak, bw);
        let above = RooflineEstimate::new(ridge * 2.0 * 1e9, 1e9, peak, bw);
        assert!(!below.is_compute_bound());
        assert!(above.is_compute_bound());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = roofline_latency_s(1.0, 1.0, 1.0, 0.0);
    }
}
