//! The AMD Versal ACAP VCK190 platform description (§2.1 of the paper).
//!
//! The VCK190 combines a processing system (ARM CPUs), programmable logic
//! (traditional FPGA fabric) and an array of 400 AI-engine tiles.  The
//! numbers below come straight from the paper's background section and
//! evaluation setup and are the single source of truth used by the other
//! hardware models.

use serde::{Deserialize, Serialize};

/// Static description of the VCK190 evaluation kit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vck190Spec {
    /// AIE array rows.
    pub aie_rows: usize,
    /// AIE array columns.
    pub aie_cols: usize,
    /// AIE clock frequency in Hz (1.25 GHz).
    pub aie_clock_hz: f64,
    /// FP32 multiply-accumulate lanes per AIE tile per cycle.
    ///
    /// 400 tiles × 1.25 GHz × 8 MAC/cycle × 2 FLOP/MAC = 8 TFLOPS peak FP32,
    /// the figure quoted in §2.1.
    pub aie_fp32_macs_per_cycle: usize,
    /// Local scratchpad per AIE tile in bytes (32 KB).
    pub aie_tile_scratchpad_bytes: usize,
    /// PL (overlay) clock frequency in Hz (260 MHz for RSN-XNN).
    pub pl_clock_hz: f64,
    /// On-chip BRAM capacity in bytes (4 MB).
    pub bram_bytes: usize,
    /// On-chip URAM capacity in bytes (16 MB).
    pub uram_bytes: usize,
    /// DDR4 capacity in bytes (8 GB).
    pub ddr_bytes: u64,
    /// LPDDR4 capacity in bytes (8 GB).
    pub lpddr_bytes: u64,
    /// Peak DDR4 bandwidth in bytes/s (25.6 GB/s).
    pub ddr_peak_bw: f64,
    /// Peak LPDDR4 bandwidth in bytes/s (32 GB/s).
    pub lpddr_peak_bw: f64,
    /// Measured DDR read bandwidth in bytes/s (21 GB/s, §5.3).
    pub ddr_read_bw: f64,
    /// Measured DDR write bandwidth in bytes/s (23.5 GB/s, §5.3).
    pub ddr_write_bw: f64,
    /// Measured LPDDR read bandwidth in bytes/s (20.5 GB/s, §5.3).
    pub lpddr_read_bw: f64,
    /// Number of 64-bit PL→AIE input streams available (234).
    pub aie_input_streams: usize,
    /// Number of 64-bit AIE→PL output streams available (156).
    pub aie_output_streams: usize,
    /// Die area in mm² (≤ 458, Table 10).
    pub die_area_mm2: f64,
    /// Process node in nm.
    pub process_nm: u32,
}

impl Vck190Spec {
    /// The VCK190 configuration used throughout the paper.
    pub fn new() -> Self {
        Self {
            aie_rows: 8,
            aie_cols: 50,
            aie_clock_hz: 1.25e9,
            aie_fp32_macs_per_cycle: 8,
            aie_tile_scratchpad_bytes: 32 * 1024,
            pl_clock_hz: 260.0e6,
            bram_bytes: 4 * 1024 * 1024,
            uram_bytes: 16 * 1024 * 1024,
            ddr_bytes: 8 * 1024 * 1024 * 1024,
            lpddr_bytes: 8 * 1024 * 1024 * 1024,
            ddr_peak_bw: 25.6e9,
            lpddr_peak_bw: 32.0e9,
            ddr_read_bw: 21.0e9,
            ddr_write_bw: 23.5e9,
            lpddr_read_bw: 20.5e9,
            aie_input_streams: 234,
            aie_output_streams: 156,
            die_area_mm2: 458.0,
            process_nm: 7,
        }
    }

    /// Total number of AIE tiles (400).
    pub fn aie_tile_count(&self) -> usize {
        self.aie_rows * self.aie_cols
    }

    /// Peak FP32 throughput of a single AIE tile in FLOP/s.
    pub fn aie_tile_peak_flops(&self) -> f64 {
        self.aie_clock_hz * self.aie_fp32_macs_per_cycle as f64 * 2.0
    }

    /// Peak FP32 throughput of the whole AIE array in FLOP/s (8 TFLOPS).
    pub fn aie_peak_flops(&self) -> f64 {
        self.aie_tile_peak_flops() * self.aie_tile_count() as f64
    }

    /// Combined peak off-chip bandwidth in bytes/s (57.6 GB/s, Table 10).
    pub fn total_offchip_peak_bw(&self) -> f64 {
        self.ddr_peak_bw + self.lpddr_peak_bw
    }

    /// Combined *achieved* off-chip read bandwidth in bytes/s.
    pub fn total_offchip_read_bw(&self) -> f64 {
        self.ddr_read_bw + self.lpddr_read_bw
    }

    /// Total on-chip PL memory (BRAM + URAM) in bytes.
    pub fn onchip_bytes(&self) -> usize {
        self.bram_bytes + self.uram_bytes
    }
}

impl Default for Vck190Spec {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aie_array_matches_paper() {
        let spec = Vck190Spec::new();
        assert_eq!(spec.aie_tile_count(), 400);
        // 8 TFLOPS peak FP32 as stated in §2.1.
        let tflops = spec.aie_peak_flops() / 1e12;
        assert!((tflops - 8.0).abs() < 0.01, "got {tflops} TFLOPS");
    }

    #[test]
    fn offchip_bandwidth_matches_paper() {
        let spec = Vck190Spec::new();
        assert!((spec.total_offchip_peak_bw() / 1e9 - 57.6).abs() < 0.01);
        assert!(spec.ddr_read_bw < spec.ddr_peak_bw);
        assert!(spec.lpddr_read_bw < spec.lpddr_peak_bw);
    }

    #[test]
    fn onchip_memory_is_20mb() {
        let spec = Vck190Spec::new();
        assert_eq!(spec.onchip_bytes(), 20 * 1024 * 1024);
    }

    #[test]
    fn stream_budget_matches_paper() {
        let spec = Vck190Spec::new();
        assert_eq!(spec.aie_input_streams, 234);
        assert_eq!(spec.aie_output_streams, 156);
    }
}
