//! # rsn-hw
//!
//! Hardware substrate models for the RSN reproduction.
//!
//! The paper prototypes RSN-XNN on an AMD Versal VCK190 board and compares
//! against NVIDIA GPUs.  That hardware is not available to a pure-software
//! reproduction, so this crate provides calibrated analytic models of the
//! relevant substrates:
//!
//! * [`versal`] — the VCK190 platform description (AIE array, PL fabric,
//!   on-chip memory, AIE↔PL stream budgets, clock rates),
//! * [`memory`] — off-chip DDR / LPDDR bandwidth models with the measured
//!   peak-vs-achieved gap and the cost of strided or poorly interleaved
//!   access,
//! * [`aie`] — the AI-engine array model: tile grouping into matrix-multiply
//!   engines, stream-budget allocation, and GEMM kernel efficiency,
//! * [`gpu`] — published GPU datasheet models (T4, V100, A100, L4) used by
//!   the Table 10 comparison,
//! * [`roofline`] — the first-order latency estimator used throughout the
//!   paper's mapping analysis (Table 3) and bandwidth sweep (Table 11),
//! * [`energy`] — the component power model behind Table 4 / Fig. 15 and the
//!   energy-efficiency comparison of Table 10,
//! * [`area`] — FPGA resource utilization and the decoder-overhead
//!   comparison of Table 5.
//!
//! All constants trace back to the paper or to the public datasheets it
//! cites; where a number is a calibration (for example the per-kernel AIE
//! overhead cycles), the doc comment on the constant says so.

pub mod aie;
pub mod area;
pub mod energy;
pub mod gpu;
pub mod memory;
pub mod roofline;
pub mod versal;

pub use aie::{AieArrayModel, GemmKernelModel, MmeGroupPlan};
pub use area::{AreaModel, ResourceUtilization};
pub use energy::{ComponentPower, EnergyModel};
pub use gpu::{GpuModel, GpuSpec};
pub use memory::{MemoryChannelModel, MemoryKind};
pub use roofline::{roofline_latency_s, RooflineEstimate};
pub use versal::Vck190Spec;
