//! The AI-engine array model.
//!
//! RSN-XNN virtualises the 400-tile AIE array as six matrix-multiply-engine
//! (MME) functional units.  Each MME groups 64 tiles in a 4×4×4 arrangement
//! and shares PL↔AIE streams four ways so the whole design fits inside the
//! board's 234-input / 156-output stream budget (§5.3, Fig. 17).
//!
//! Two models live here:
//!
//! * [`MmeGroupPlan`] — the stream-allocation arithmetic (how many tiles and
//!   streams a grouping consumes and whether it fits the budget),
//! * [`GemmKernelModel`] / [`AieArrayModel`] — a calibrated throughput model
//!   for the AIE GEMM kernels behind Table 6a and the end-to-end compute
//!   times used by the timing model.

use crate::versal::Vck190Spec;
use serde::{Deserialize, Serialize};

/// How AIE tiles are grouped into MME functional units and how the PL↔AIE
/// streams are shared within a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmeGroupPlan {
    /// Number of MME groups (6 in RSN-XNN).
    pub groups: usize,
    /// Tiles per group along the M dimension of the 3-D arrangement.
    pub tiles_m: usize,
    /// Tiles per group along the K dimension (cascade-chained).
    pub tiles_k: usize,
    /// Tiles per group along the N dimension.
    pub tiles_n: usize,
    /// How many tiles share one LHS/RHS input stream.
    pub input_stream_reuse: usize,
    /// How many tiles share one output stream (cascade length).
    pub output_stream_reuse: usize,
}

impl MmeGroupPlan {
    /// The 6-group, 4×4×4 plan used by RSN-XNN (§5.3).
    pub fn rsn_xnn() -> Self {
        Self {
            groups: 6,
            tiles_m: 4,
            tiles_k: 4,
            tiles_n: 4,
            input_stream_reuse: 4,
            output_stream_reuse: 4,
        }
    }

    /// Tiles per MME group.
    pub fn tiles_per_group(&self) -> usize {
        self.tiles_m * self.tiles_k * self.tiles_n
    }

    /// Total AIE tiles used by all groups.
    pub fn tiles_used(&self) -> usize {
        self.groups * self.tiles_per_group()
    }

    /// Total PL→AIE input streams required.
    ///
    /// Without sharing each tile needs two input streams (LHS and RHS);
    /// sharing divides that by the reuse factor.
    pub fn input_streams_required(&self) -> usize {
        self.tiles_used() * 2 / self.input_stream_reuse
    }

    /// Total AIE→PL output streams required.
    ///
    /// Cascading `output_stream_reuse` tiles lets them share one stream.
    pub fn output_streams_required(&self) -> usize {
        self.tiles_used() / self.output_stream_reuse
    }

    /// Whether the plan fits within the board's stream budget.
    pub fn fits(&self, spec: &Vck190Spec) -> bool {
        self.tiles_used() <= spec.aie_tile_count()
            && self.input_streams_required() <= spec.aie_input_streams
            && self.output_streams_required() <= spec.aie_output_streams
    }
}

/// Calibrated per-kernel overhead model for a tiled AIE GEMM implementation.
///
/// A kernel invocation multiplies an `m×k` tile by a `k×n` tile.  The MAC
/// array needs `m·k·n / 8` cycles of pure compute; everything else (VLIW
/// pipeline fill, lock synchronisation, stream start-up) is folded into a
/// per-invocation `overhead_cycles` constant.  The constants below were
/// calibrated so the achieved-throughput column of Table 6a is reproduced
/// to within a few percent; they are documented as calibration values, not
/// datasheet numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmKernelModel {
    /// Human-readable name of the kernel/framework.
    pub name: &'static str,
    /// AIE tiles the implementation keeps busy.
    pub tiles_used: usize,
    /// Fixed overhead cycles per kernel invocation (calibrated).
    pub overhead_cycles: f64,
}

impl GemmKernelModel {
    /// The RSN-XNN kernel (384 tiles, ~530 cycles of per-invocation
    /// overhead).
    pub fn rsn_xnn() -> Self {
        Self {
            name: "RSN-XNN",
            tiles_used: 384,
            overhead_cycles: 530.0,
        }
    }

    /// The CHARM kernel as published (384 tiles at a markedly lower
    /// efficiency).
    pub fn charm() -> Self {
        Self {
            name: "CHARM",
            tiles_used: 384,
            overhead_cycles: 2890.0,
        }
    }

    /// The MaxEVA kernel as published (390 tiles).
    pub fn maxeva() -> Self {
        Self {
            name: "MaxEVA",
            tiles_used: 390,
            overhead_cycles: 1690.0,
        }
    }

    /// The AMA kernel as published (342 tiles).
    pub fn ama() -> Self {
        Self {
            name: "AMA",
            tiles_used: 342,
            overhead_cycles: 500.0,
        }
    }

    /// Efficiency (0..1) of one kernel invocation for an `m×k×n` tile.
    pub fn kernel_efficiency(&self, m: usize, k: usize, n: usize) -> f64 {
        let compute_cycles = (m * k * n) as f64 / 8.0;
        compute_cycles / (compute_cycles + self.overhead_cycles)
    }

    /// Achieved array throughput in FLOP/s for a steady stream of `m×k×n`
    /// tile kernels, assuming data is generated on the PL side (no DRAM
    /// limit) — the setting of Table 6a.
    pub fn achieved_flops(&self, spec: &Vck190Spec, m: usize, k: usize, n: usize) -> f64 {
        spec.aie_tile_peak_flops() * self.tiles_used as f64 * self.kernel_efficiency(m, k, n)
    }
}

/// The array-level compute model used by the timing code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AieArrayModel {
    spec: Vck190Spec,
    kernel: GemmKernelModel,
    plan: MmeGroupPlan,
}

impl AieArrayModel {
    /// The RSN-XNN array configuration.
    pub fn rsn_xnn() -> Self {
        Self {
            spec: Vck190Spec::new(),
            kernel: GemmKernelModel::rsn_xnn(),
            plan: MmeGroupPlan::rsn_xnn(),
        }
    }

    /// Builds a model with an explicit kernel (used for the baselines in
    /// Table 6).
    pub fn with_kernel(kernel: GemmKernelModel) -> Self {
        Self {
            spec: Vck190Spec::new(),
            kernel,
            plan: MmeGroupPlan::rsn_xnn(),
        }
    }

    /// The board spec behind this model.
    pub fn spec(&self) -> &Vck190Spec {
        &self.spec
    }

    /// The kernel model behind this model.
    pub fn kernel(&self) -> &GemmKernelModel {
        &self.kernel
    }

    /// The MME grouping plan.
    pub fn plan(&self) -> &MmeGroupPlan {
        &self.plan
    }

    /// Achieved FLOP/s when a fraction `utilization` (0..=1) of the MME
    /// groups is assigned to the computation.
    ///
    /// The paper's Table 3 uses 64 % (4/6 groups usable when a layer is too
    /// small to split further) and 96 % (all six groups busy).
    pub fn achieved_flops_at_utilization(&self, utilization: f64) -> f64 {
        let eff = self.kernel.kernel_efficiency(32, 32, 32);
        self.spec.aie_tile_peak_flops() * self.kernel.tiles_used as f64 * eff * utilization
    }

    /// Time in seconds to execute `flops` floating-point operations at the
    /// given MME utilization, ignoring off-chip bandwidth.
    pub fn compute_time_s(&self, flops: f64, utilization: f64) -> f64 {
        flops / self.achieved_flops_at_utilization(utilization)
    }

    /// Peak achieved GEMM throughput with all groups busy (the 6.78 TFLOPS
    /// figure of §5.3).
    pub fn peak_achieved_flops(&self) -> f64 {
        self.achieved_flops_at_utilization(1.0)
    }

    /// Minimum number of times each loaded weight must be reused for the
    /// computation to stay compute-bound instead of LPDDR-bound (§5.3
    /// reports 661× for RSN-XNN).
    pub fn required_weight_reuse(&self) -> f64 {
        // Each FP32 weight is 4 bytes and participates in 2 FLOP per use.
        self.peak_achieved_flops() / (self.spec.lpddr_read_bw / 4.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsn_plan_fits_stream_budget() {
        let spec = Vck190Spec::new();
        let plan = MmeGroupPlan::rsn_xnn();
        assert_eq!(plan.tiles_used(), 384);
        assert_eq!(plan.input_streams_required(), 192);
        assert_eq!(plan.output_streams_required(), 96);
        assert!(plan.fits(&spec));
    }

    #[test]
    fn naive_plan_exceeds_stream_budget() {
        // One stream per tile port (no sharing) needs 800 in / 400 out,
        // which the paper points out does not fit.
        let plan = MmeGroupPlan {
            groups: 6,
            tiles_m: 4,
            tiles_k: 4,
            tiles_n: 4,
            input_stream_reuse: 1,
            output_stream_reuse: 1,
        };
        assert!(!plan.fits(&Vck190Spec::new()));
    }

    #[test]
    fn table6a_throughputs_are_reproduced_in_shape() {
        let spec = Vck190Spec::new();
        let rsn = GemmKernelModel::rsn_xnn();
        let charm = GemmKernelModel::charm();
        let maxeva = GemmKernelModel::maxeva();
        let ama = GemmKernelModel::ama();
        let g = |k: &GemmKernelModel| k.achieved_flops(&spec, 32, 32, 32) / 1e9;
        // Paper: CHARM 4504, MaxEVA 5442, AMA 5867, RSN 6785 GFLOPS.
        assert!((g(&rsn) - 6785.0).abs() / 6785.0 < 0.05, "rsn {}", g(&rsn));
        assert!(
            (g(&charm) - 4504.0).abs() / 4504.0 < 0.05,
            "charm {}",
            g(&charm)
        );
        assert!(
            (g(&maxeva) - 5442.0).abs() / 5442.0 < 0.05,
            "maxeva {}",
            g(&maxeva)
        );
        assert!((g(&ama) - 5867.0).abs() / 5867.0 < 0.05, "ama {}", g(&ama));
        // Ordering (who wins) must hold.
        assert!(g(&rsn) > g(&ama) && g(&ama) > g(&maxeva) && g(&maxeva) > g(&charm));
    }

    #[test]
    fn smaller_tiles_reduce_efficiency() {
        let spec = Vck190Spec::new();
        let rsn = GemmKernelModel::rsn_xnn();
        let full = rsn.achieved_flops(&spec, 32, 32, 32);
        let half_k = rsn.achieved_flops(&spec, 32, 16, 32);
        let half_n = rsn.achieved_flops(&spec, 32, 32, 16);
        assert!(half_k < full);
        assert!(half_n < full);
        // Paper ordering: 32x16x32 (6096) < 32x32x16 (6306) < 32x32x32 (6785).
        // Our first-order model treats both halvings identically, so we only
        // require that they land in the right neighbourhood.
        assert!(half_k / 1e9 > 5800.0 && half_k / 1e9 < 6500.0);
        assert!(half_n / 1e9 > 5800.0 && half_n / 1e9 < 6500.0);
    }

    #[test]
    fn utilization_scales_compute_time() {
        let m = AieArrayModel::rsn_xnn();
        let flops = 1.0e12;
        let t_full = m.compute_time_s(flops, 0.96);
        let t_part = m.compute_time_s(flops, 0.64);
        assert!(t_part > t_full);
        assert!((t_part / t_full - 0.96 / 0.64).abs() < 1e-9);
    }

    #[test]
    fn weight_reuse_requirement_matches_paper_order() {
        let m = AieArrayModel::rsn_xnn();
        let reuse = m.required_weight_reuse();
        // Paper reports each weight must be reused over 661 times.
        assert!(reuse > 500.0 && reuse < 800.0, "reuse {reuse}");
    }

    #[test]
    fn peak_achieved_is_below_peak_theoretical() {
        let m = AieArrayModel::rsn_xnn();
        assert!(m.peak_achieved_flops() < m.spec().aie_peak_flops());
        assert!(m.peak_achieved_flops() > 0.8 * 8.0e12 * 384.0 / 400.0);
    }
}
