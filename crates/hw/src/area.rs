//! FPGA resource-utilization and area-overhead models (Table 5).
//!
//! The paper's argument is that the RSN instruction decoder costs almost
//! nothing: ~3 % of the design's LUTs, 2.5 % of its FFs, a handful of DSPs
//! and BRAMs, comparable to existing overlays (DFX, DLA) while providing
//! far more execution flexibility.  This module records the routed-design
//! utilization and the decoder overhead for RSN-XNN and the two published
//! comparison points, plus the peak-vs-achieved compute-utilization metric
//! of Table 5b.

use serde::{Deserialize, Serialize};

/// One design's FPGA resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceUtilization {
    /// Look-up tables used.
    pub lut: u64,
    /// Flip-flops used.
    pub ff: u64,
    /// DSP blocks used.
    pub dsp: u64,
    /// Block RAMs used.
    pub bram: u64,
    /// UltraRAMs used (zero for devices without URAM).
    pub uram: u64,
}

impl ResourceUtilization {
    /// The RSN-XNN routed design on the VCK190 (§5, "Total area").
    pub fn rsn_xnn_total() -> Self {
        Self {
            lut: 494_855,
            ff: 598_144,
            dsp: 1_073,
            bram: 967,
            uram: 463,
        }
    }

    /// The RSN-XNN instruction-decoder share of the design (Table 5a).
    pub fn rsn_xnn_decoder() -> Self {
        Self {
            lut: 11_700,
            ff: 8_600,
            dsp: 5,
            bram: 4,
            uram: 0,
        }
    }

    /// Percentage of `total` this utilization represents, per resource kind,
    /// returned as `(lut %, ff %, dsp %, bram %)`.
    pub fn percent_of(&self, total: &ResourceUtilization) -> (f64, f64, f64, f64) {
        let pct = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                100.0 * part as f64 / whole as f64
            }
        };
        (
            pct(self.lut, total.lut),
            pct(self.ff, total.ff),
            pct(self.dsp, total.dsp),
            pct(self.bram, total.bram),
        )
    }
}

/// A row of the Table 5b compute-utilization comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeUtilizationRow {
    /// Design name.
    pub design: String,
    /// Numeric precision.
    pub precision: String,
    /// Peak achievable throughput, FLOP/s (or OP/s).
    pub peak_flops: f64,
    /// Off-chip bandwidth, bytes/s.
    pub offchip_bw: f64,
    /// Achieved throughput, FLOP/s.
    pub achieved_flops: f64,
}

impl ComputeUtilizationRow {
    /// Fraction of peak actually achieved.
    pub fn utilization(&self) -> f64 {
        if self.peak_flops == 0.0 {
            0.0
        } else {
            self.achieved_flops / self.peak_flops
        }
    }
}

/// The area / utilization model for Table 5.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AreaModel;

impl AreaModel {
    /// Decoder overhead rows: `(design, device, decoder, total)` where the
    /// published comparisons (DFX on U280, DLA on Arria10) use the numbers
    /// reported in their papers.  `None` totals mean the design's full area
    /// was not reported.
    pub fn decoder_overhead_rows() -> Vec<(
        String,
        String,
        ResourceUtilization,
        Option<ResourceUtilization>,
    )> {
        vec![
            (
                "RSN-XNN".to_string(),
                "VCK190".to_string(),
                ResourceUtilization::rsn_xnn_decoder(),
                Some(ResourceUtilization::rsn_xnn_total()),
            ),
            (
                "DFX".to_string(),
                "U280".to_string(),
                ResourceUtilization {
                    lut: 3_000,
                    ff: 13_000,
                    dsp: 0,
                    bram: 24,
                    uram: 0,
                },
                Some(ResourceUtilization {
                    lut: 500_000,
                    ff: 1_083_000,
                    dsp: 1_000,
                    bram: 1_200,
                    uram: 0,
                }),
            ),
            (
                "DLA".to_string(),
                "Arria10".to_string(),
                ResourceUtilization {
                    // 2046 ALMs ≈ 2046 LUT-equivalents; total design
                    // unreported.
                    lut: 2_046,
                    ff: 0,
                    dsp: 0,
                    bram: 0,
                    uram: 0,
                },
                None,
            ),
        ]
    }

    /// Compute-utilization rows of Table 5b (RSN-XNN computed from the
    /// timing model by the benchmark harness; DFX from its paper).
    pub fn utilization_rows(rsn_achieved_flops: f64) -> Vec<ComputeUtilizationRow> {
        vec![
            ComputeUtilizationRow {
                design: "RSN-XNN".to_string(),
                precision: "FP32".to_string(),
                peak_flops: 8.0e12,
                offchip_bw: 57.6e9,
                achieved_flops: rsn_achieved_flops,
            },
            ComputeUtilizationRow {
                design: "DFX".to_string(),
                precision: "FP16".to_string(),
                peak_flops: 1.2e12,
                offchip_bw: 460.0e9,
                achieved_flops: 0.19e12,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_overhead_is_about_three_percent() {
        let decoder = ResourceUtilization::rsn_xnn_decoder();
        let total = ResourceUtilization::rsn_xnn_total();
        let (lut, ff, dsp, bram) = decoder.percent_of(&total);
        assert!((lut - 2.4).abs() < 1.0, "lut% {lut}");
        assert!((ff - 1.4).abs() < 1.5, "ff% {ff}");
        assert!(dsp < 1.0);
        assert!(bram < 1.0);
    }

    #[test]
    fn table5_rows_present() {
        let rows = AreaModel::decoder_overhead_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, "RSN-XNN");
        assert!(rows[2].3.is_none(), "DLA total area is unreported");
    }

    #[test]
    fn utilization_comparison_favours_rsn() {
        let rows = AreaModel::utilization_rows(4.7e12);
        let rsn = rows[0].utilization();
        let dfx = rows[1].utilization();
        // Paper: 59 % vs 16 %.
        assert!((rsn - 0.59).abs() < 0.02);
        assert!((dfx - 0.16).abs() < 0.02);
        assert!(rsn > 3.0 * dfx);
    }

    #[test]
    fn percent_of_handles_zero_total() {
        let zero = ResourceUtilization {
            lut: 0,
            ff: 0,
            dsp: 0,
            bram: 0,
            uram: 0,
        };
        let part = ResourceUtilization::rsn_xnn_decoder();
        let (l, f, d, b) = part.percent_of(&zero);
        assert_eq!((l, f, d, b), (0.0, 0.0, 0.0, 0.0));
    }
}
