//! GPU datasheet models used by the Table 10 comparison.
//!
//! The paper compares RSN-XNN against the NVIDIA T4, V100, A100 and L4 using
//! published datasheet numbers (peak FLOPS, memory bandwidth, die area) plus
//! measured latency and power.  This module captures the datasheet side and
//! a roofline-style latency estimator; the measured reference latencies the
//! paper quotes from NVIDIA's reports are kept alongside so the benchmark
//! harness can print both "estimated" and "published" columns.

use crate::roofline::roofline_latency_s;
use serde::{Deserialize, Serialize};

/// Which GPU (or the VCK190, for uniform table generation) a spec describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA T4 (Turing, 12 nm, 2018).
    T4,
    /// NVIDIA V100 (Volta, 12 nm, 2017).
    V100,
    /// NVIDIA A100 (Ampere, 7 nm, 2020) running FP32.
    A100Fp32,
    /// NVIDIA A100 running FP16 tensor cores.
    A100Fp16,
    /// NVIDIA L4 (Ada, 5 nm, 2023).
    L4,
}

/// Datasheet-level description of one device, as used in Table 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Which device this is.
    pub model: GpuModel,
    /// Human-readable name.
    pub name: &'static str,
    /// Numeric precision the peak refers to.
    pub precision: &'static str,
    /// Release year.
    pub release_year: u32,
    /// Process node in nm.
    pub process_nm: u32,
    /// Peak throughput in FLOP/s for the listed precision.
    pub peak_flops: f64,
    /// Off-chip memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Die area in mm².
    pub die_area_mm2: f64,
    /// Board operating power while running BERT-Large, W (paper measurement).
    pub operating_power_w: f64,
    /// Dynamic power (operating minus idle), W (paper measurement).
    pub dynamic_power_w: f64,
    /// Measured BERT-Large latency in ms for batch sizes 1, 2, 4 and 8
    /// (sequence length 384), as quoted by the paper from NVIDIA's reports.
    pub published_latency_ms: [f64; 4],
    /// Measured total DRAM traffic in GB at batch size 8 (None where the
    /// paper does not report it).
    pub dram_traffic_gb: Option<f64>,
}

impl GpuSpec {
    /// Returns the spec of the requested device.
    pub fn of(model: GpuModel) -> Self {
        match model {
            GpuModel::T4 => Self {
                model,
                name: "T4",
                precision: "FP32",
                release_year: 2018,
                process_nm: 12,
                peak_flops: 8.1e12,
                mem_bw: 320.0e9,
                die_area_mm2: 545.0,
                operating_power_w: 72.0,
                dynamic_power_w: 42.0,
                published_latency_ms: [67.0, 127.0, 258.0, 499.0],
                dram_traffic_gb: Some(31.0),
            },
            GpuModel::V100 => Self {
                model,
                name: "V100",
                precision: "FP32",
                release_year: 2017,
                process_nm: 12,
                peak_flops: 15.7e12,
                mem_bw: 900.0e9,
                die_area_mm2: 815.0,
                operating_power_w: 292.0,
                dynamic_power_w: 256.0,
                published_latency_ms: [29.0, 49.0, 93.0, 182.0],
                dram_traffic_gb: None,
            },
            GpuModel::A100Fp32 => Self {
                model,
                name: "A100",
                precision: "FP32",
                release_year: 2020,
                process_nm: 7,
                peak_flops: 19.5e12,
                mem_bw: 1555.0e9,
                die_area_mm2: 826.0,
                operating_power_w: 308.0,
                dynamic_power_w: 268.0,
                published_latency_ms: [23.0, 40.0, 72.0, 137.0],
                dram_traffic_gb: Some(34.0),
            },
            GpuModel::A100Fp16 => Self {
                model,
                name: "A100 (FP16)",
                precision: "FP16",
                release_year: 2020,
                process_nm: 7,
                peak_flops: 312.0e12,
                mem_bw: 1555.0e9,
                die_area_mm2: 826.0,
                operating_power_w: 392.0,
                dynamic_power_w: 352.0,
                published_latency_ms: [8.0, 10.0, 15.0, 23.0],
                dram_traffic_gb: Some(25.0),
            },
            GpuModel::L4 => Self {
                model,
                name: "L4",
                precision: "FP32",
                release_year: 2023,
                process_nm: 5,
                peak_flops: 30.3e12,
                mem_bw: 300.0e9,
                die_area_mm2: 294.0,
                operating_power_w: 72.0,
                dynamic_power_w: 41.0,
                published_latency_ms: [41.0, 83.0, 156.0, 307.0],
                dram_traffic_gb: Some(12.0),
            },
        }
    }

    /// All devices compared in Table 10, in the paper's column order.
    pub fn table10_devices() -> Vec<GpuSpec> {
        vec![
            Self::of(GpuModel::T4),
            Self::of(GpuModel::V100),
            Self::of(GpuModel::A100Fp32),
            Self::of(GpuModel::A100Fp16),
            Self::of(GpuModel::L4),
        ]
    }

    /// Published latency for a batch size in {1, 2, 4, 8}, if available.
    pub fn published_latency_ms_for_batch(&self, batch: usize) -> Option<f64> {
        match batch {
            1 => Some(self.published_latency_ms[0]),
            2 => Some(self.published_latency_ms[1]),
            4 => Some(self.published_latency_ms[2]),
            8 => Some(self.published_latency_ms[3]),
            _ => None,
        }
    }

    /// Roofline latency estimate for a workload of `flops` floating-point
    /// operations moving `bytes` to/from DRAM, with an efficiency factor
    /// describing how much of the datasheet peak the kernel achieves.
    pub fn roofline_latency_s(&self, flops: f64, bytes: f64, efficiency: f64) -> f64 {
        roofline_latency_s(flops, bytes, self.peak_flops * efficiency, self.mem_bw)
    }

    /// Sequences per joule at the given throughput (tasks/s), using
    /// operating power.
    pub fn operating_efficiency_seq_per_j(&self, tasks_per_s: f64) -> f64 {
        tasks_per_s / self.operating_power_w
    }

    /// Sequences per joule at the given throughput (tasks/s), using dynamic
    /// power only.
    pub fn dynamic_efficiency_seq_per_j(&self, tasks_per_s: f64) -> f64 {
        tasks_per_s / self.dynamic_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4_matches_vck190_fp32_peak_class() {
        let t4 = GpuSpec::of(GpuModel::T4);
        // The paper stresses the T4 has "the same 8 TFLOPS FP32 performance".
        assert!((t4.peak_flops / 1e12 - 8.1).abs() < 0.2);
        assert!((t4.mem_bw / 1e9 - 320.0).abs() < 1.0);
    }

    #[test]
    fn table10_has_five_device_columns() {
        let devices = GpuSpec::table10_devices();
        assert_eq!(devices.len(), 5);
        assert_eq!(devices[0].name, "T4");
        assert_eq!(devices[3].precision, "FP16");
    }

    #[test]
    fn published_latencies_scale_with_batch() {
        for d in GpuSpec::table10_devices() {
            let l1 = d.published_latency_ms_for_batch(1).unwrap();
            let l8 = d.published_latency_ms_for_batch(8).unwrap();
            assert!(l8 > l1);
            assert!(d.published_latency_ms_for_batch(3).is_none());
        }
    }

    #[test]
    fn roofline_estimate_is_compute_or_bandwidth_bound() {
        let a100 = GpuSpec::of(GpuModel::A100Fp32);
        // Huge arithmetic intensity: compute-bound.
        let t_compute = a100.roofline_latency_s(1.0e15, 1.0e6, 1.0);
        assert!((t_compute - 1.0e15 / 19.5e12).abs() / t_compute < 1e-9);
        // Tiny arithmetic intensity: bandwidth-bound.
        let t_mem = a100.roofline_latency_s(1.0e6, 1.0e12, 1.0);
        assert!((t_mem - 1.0e12 / 1555.0e9).abs() / t_mem < 1e-9);
    }

    #[test]
    fn efficiency_metrics_use_power() {
        let t4 = GpuSpec::of(GpuModel::T4);
        // 16 tasks/s at 72 W operating = 0.22 seq/J as in Table 10.
        let seq_j = t4.operating_efficiency_seq_per_j(8.0 / 0.499);
        assert!((seq_j - 0.22).abs() < 0.02, "seq/J {seq_j}");
        let dyn_j = t4.dynamic_efficiency_seq_per_j(8.0 / 0.499);
        assert!((dyn_j - 0.38).abs() < 0.03, "dyn seq/J {dyn_j}");
    }
}
