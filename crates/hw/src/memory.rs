//! Off-chip memory channel models.
//!
//! RSN-XNN uses the board's single DDR4 channel for feature maps (loads and
//! stores) and the LPDDR4 channel for read-only weights and biases (§4.1).
//! Two effects dominate off-chip behaviour in the paper's evaluation:
//!
//! 1. the gap between the datasheet peak and the achieved bandwidth
//!    (21 / 23.5 / 20.5 GB/s instead of 25.6 / 32 GB/s, §5.3), and
//! 2. the cost of *ordering*: when loads of the next tile and stores of the
//!    previous tile are not interleaved under software control, the channel
//!    serialises them and the compute stalls (§2.4, §4.4, Fig. 12).
//!
//! [`MemoryChannelModel`] captures both with a small analytic model that the
//! timing code in `rsn-xnn` and the baselines share.

use crate::versal::Vck190Spec;
use serde::{Deserialize, Serialize};

/// Which physical channel a transfer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// The DDR4 channel (feature-map loads and stores).
    Ddr,
    /// The LPDDR4 channel (weight and bias loads).
    Lpddr,
}

/// How loads and stores that share one channel are scheduled relative to
/// each other.  The variants mirror the three ways of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterleavePolicy {
    /// Strict load → compute → store order: stores fully serialise with the
    /// next tile's loads ("Way 0", the behaviour of a conventional overlay).
    Serialized,
    /// Loads and stores are pushed to the AXI read/write queues and the
    /// hardware controller arbitrates ("Way 1"): partial overlap, but the
    /// controller lacks application knowledge so some interference remains.
    HardwareArbitrated,
    /// Software explicitly interleaves stores into the load gaps using RSN
    /// instructions ("Way 2"): the channel streams continuously.
    SoftwareInterleaved,
}

/// Analytic model of one off-chip channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryChannelModel {
    kind: MemoryKind,
    read_bw: f64,
    write_bw: f64,
    /// Fraction of peak retained when accesses are strided instead of the
    /// blocked layout RSN-XNN stores off-chip (§5.3 uses a 128×64 blocked
    /// layout precisely to avoid this penalty).
    strided_efficiency: f64,
}

impl MemoryChannelModel {
    /// Builds the DDR channel model from the board spec.
    pub fn ddr(spec: &Vck190Spec) -> Self {
        Self {
            kind: MemoryKind::Ddr,
            read_bw: spec.ddr_read_bw,
            write_bw: spec.ddr_write_bw,
            strided_efficiency: 0.6,
        }
    }

    /// Builds the LPDDR channel model from the board spec.
    pub fn lpddr(spec: &Vck190Spec) -> Self {
        Self {
            kind: MemoryKind::Lpddr,
            read_bw: spec.lpddr_read_bw,
            // LPDDR is only read in RSN-XNN; writes assume symmetric speed.
            write_bw: spec.lpddr_read_bw,
            strided_efficiency: 0.6,
        }
    }

    /// Builds a model with explicitly scaled bandwidth (used by the Table 11
    /// bandwidth sweep, where the paper emulates 0.5×–3× bandwidth).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            kind: self.kind,
            read_bw: self.read_bw * factor,
            write_bw: self.write_bw * factor,
            strided_efficiency: self.strided_efficiency,
        }
    }

    /// The channel this model describes.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Achieved read bandwidth in bytes/s.
    pub fn read_bw(&self) -> f64 {
        self.read_bw
    }

    /// Achieved write bandwidth in bytes/s.
    pub fn write_bw(&self) -> f64 {
        self.write_bw
    }

    /// Time to read `bytes` with a contiguous / blocked layout.
    pub fn read_time_s(&self, bytes: f64) -> f64 {
        bytes / self.read_bw
    }

    /// Time to write `bytes` with a contiguous / blocked layout.
    pub fn write_time_s(&self, bytes: f64) -> f64 {
        bytes / self.write_bw
    }

    /// Time to read `bytes` with a strided (row-major, non-blocked) layout.
    pub fn strided_read_time_s(&self, bytes: f64) -> f64 {
        self.read_time_s(bytes) / self.strided_efficiency
    }

    /// Busy time of the channel for a phase that loads `load_bytes` and
    /// stores `store_bytes` under the given interleave policy.
    ///
    /// * `Serialized` — loads and stores strictly alternate at tile
    ///   granularity, so the effective time is the sum of both plus a
    ///   turnaround penalty per direction switch.
    /// * `HardwareArbitrated` — the controller overlaps read and write
    ///   queues, recovering part of the turnaround cost but still paying
    ///   interference because it cannot see the application's load gaps.
    /// * `SoftwareInterleaved` — RSN instructions place the stores exactly
    ///   in the load gaps; the channel time is the sum of pure transfer
    ///   times with no turnaround loss (the channel is one physical
    ///   resource, so read and write times still add).
    pub fn channel_busy_time_s(
        &self,
        load_bytes: f64,
        store_bytes: f64,
        policy: InterleavePolicy,
    ) -> f64 {
        let read = self.read_time_s(load_bytes);
        let write = self.write_time_s(store_bytes);
        let base = read + write;
        match policy {
            // Turnaround / poor scheduling inflate the busy time.  The
            // factors are calibrated so that the fine-grained interleaving
            // speedups of Table 9 (1.2×–1.55× on the large MMs) emerge from
            // the model rather than being hard-coded per row.
            InterleavePolicy::Serialized => base * 1.30,
            InterleavePolicy::HardwareArbitrated => base * 1.12,
            InterleavePolicy::SoftwareInterleaved => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ddr() -> MemoryChannelModel {
        MemoryChannelModel::ddr(&Vck190Spec::new())
    }

    #[test]
    fn read_write_times_follow_bandwidth() {
        let m = ddr();
        assert!((m.read_time_s(21.0e9) - 1.0).abs() < 1e-9);
        assert!((m.write_time_s(23.5e9) - 1.0).abs() < 1e-9);
        assert_eq!(m.kind(), MemoryKind::Ddr);
    }

    #[test]
    fn strided_access_is_slower() {
        let m = ddr();
        assert!(m.strided_read_time_s(1e9) > m.read_time_s(1e9));
    }

    #[test]
    fn interleaving_orders_are_monotonic() {
        let m = ddr();
        let load = 3.0e9;
        let store = 1.0e9;
        let serial = m.channel_busy_time_s(load, store, InterleavePolicy::Serialized);
        let hw = m.channel_busy_time_s(load, store, InterleavePolicy::HardwareArbitrated);
        let sw = m.channel_busy_time_s(load, store, InterleavePolicy::SoftwareInterleaved);
        assert!(serial > hw);
        assert!(hw > sw);
        // Fine-grained interleaving buys roughly the 1.2×–1.55× observed in
        // Table 9 for bandwidth-sensitive segments.
        let gain = serial / sw;
        assert!(gain > 1.1 && gain < 1.6, "gain {gain}");
    }

    #[test]
    fn scaled_bandwidth_scales_times() {
        let m = ddr();
        let double = m.scaled(2.0);
        assert!((double.read_time_s(1e9) - m.read_time_s(1e9) / 2.0).abs() < 1e-12);
        assert!((double.write_bw() - 2.0 * m.write_bw()).abs() < 1.0);
    }

    #[test]
    fn lpddr_uses_measured_read_bandwidth() {
        let spec = Vck190Spec::new();
        let m = MemoryChannelModel::lpddr(&spec);
        assert_eq!(m.kind(), MemoryKind::Lpddr);
        assert!((m.read_bw() - 20.5e9).abs() < 1.0);
    }
}
