//! Inter-layer mapping-type analysis (Fig. 3 and Table 3 of the paper).
//!
//! For two dependent small matrix multiplications (the attention MMs of a
//! transformer), the choice of mapping type decides how much intermediate
//! data goes off-chip and how many MMEs can be kept busy:
//!
//! * **A — layer-by-layer**: one task's MM1 then its MM2; the intermediate
//!   stays on-chip but only part of the array is busy.
//! * **B — task-by-task**: all MM1s then all MM2s; the intermediate must be
//!   spilled off-chip.
//! * **C — task-parallel**: independent tasks run spatially in parallel,
//!   improving utilization, but the intermediate still spills.
//! * **D — pipeline**: MM1 feeds MM2 through on-chip streams; both high
//!   utilization and no spill, at the cost of a small pipeline-setup time.
//!
//! RSN-XNN's ability to *switch* between these at runtime (the "dynamic
//! chain of pipelined FUs" row of Table 1) is what the paper credits for its
//! attention-layer speedups.

use rsn_hw::aie::AieArrayModel;
use rsn_hw::versal::Vck190Spec;
use rsn_workloads::bert::BertConfig;
use serde::{Deserialize, Serialize};

/// The four inter-layer mapping types of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingType {
    /// Type A: execute the two dependent layers of one task back to back.
    LayerByLayer,
    /// Type B: execute layer 1 for every task, then layer 2 for every task.
    TaskByTask,
    /// Type C: spatially execute independent tasks in parallel.
    TaskParallel,
    /// Type D: spatially pipeline the two dependent layers.
    Pipeline,
}

impl MappingType {
    /// All four types in the paper's A–D order.
    pub fn all() -> [MappingType; 4] {
        [
            MappingType::LayerByLayer,
            MappingType::TaskByTask,
            MappingType::TaskParallel,
            MappingType::Pipeline,
        ]
    }

    /// The single-letter label used in the paper's figures.
    pub fn letter(&self) -> char {
        match self {
            MappingType::LayerByLayer => 'A',
            MappingType::TaskByTask => 'B',
            MappingType::TaskParallel => 'C',
            MappingType::Pipeline => 'D',
        }
    }

    /// Whether the intermediate feature map between the two layers must be
    /// written to off-chip memory under this mapping.
    pub fn spills_intermediate(&self) -> bool {
        matches!(self, MappingType::TaskByTask | MappingType::TaskParallel)
    }

    /// Fraction of the AIE array this mapping can keep busy on the
    /// attention MMs (the "Used AIE" column of Table 3).
    pub fn aie_utilization(&self) -> f64 {
        match self {
            MappingType::LayerByLayer | MappingType::TaskByTask => 0.64,
            MappingType::TaskParallel | MappingType::Pipeline => 0.96,
        }
    }
}

/// One row of the Table 3 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingRow {
    /// The mapping type.
    pub mapping: MappingType,
    /// Latency if compute were infinite (pure data movement), seconds.
    pub memory_time_s: f64,
    /// Latency if bandwidth were infinite (pure compute), seconds.
    pub compute_time_s: f64,
    /// AIE utilization fraction.
    pub aie_utilization: f64,
    /// Final (roofline) latency estimate, seconds.
    pub final_latency_s: f64,
}

/// Pipeline-setup penalty applied to the pipeline mapping, as a fraction of
/// its compute time (the paper calls this "negligible").
const PIPELINE_SETUP_FRACTION: f64 = 0.02;
/// Per-task datapath-switch overhead of the layer-by-layer mapping, seconds
/// (each task reprograms the path twice; calibration constant).
const TASK_SWITCH_OVERHEAD_S: f64 = 1.0e-6;

/// Analyses the four mapping types for the attention layer of `cfg`
/// (Table 3 uses BERT-Large, batch 6, sequence length 512).
pub fn analyze_attention_mappings(cfg: &BertConfig) -> Vec<MappingRow> {
    let spec = Vck190Spec::new();
    let aie = AieArrayModel::rsn_xnn();
    let segments = cfg.encoder_segments();
    let mm1 = &segments[3].gemm;
    let mm2 = &segments[4].gemm;
    let total_flops = mm1.flops() + mm2.flops();
    // Q, K stream in for MM1; V streams in for MM2; context streams out.
    let base_traffic = mm1.lhs_bytes() + mm1.rhs_bytes() + mm2.rhs_bytes() + mm2.out_bytes();
    // The intermediate score matrix written and read back when spilled.
    let spill_traffic = 2.0 * mm1.out_bytes();
    // Feature maps move over the DDR channel; use its achieved read rate as
    // the effective streaming bandwidth for this first-order analysis.
    let bandwidth = spec.ddr_read_bw;

    MappingType::all()
        .iter()
        .map(|&mapping| {
            let traffic = if mapping.spills_intermediate() {
                base_traffic + spill_traffic
            } else {
                base_traffic
            };
            let memory_time_s = traffic / bandwidth;
            let utilization = mapping.aie_utilization();
            let mut compute_time_s = total_flops / aie.achieved_flops_at_utilization(utilization);
            if mapping == MappingType::Pipeline {
                compute_time_s *= 1.0 + PIPELINE_SETUP_FRACTION;
            }
            let mut final_latency_s = memory_time_s.max(compute_time_s);
            if mapping == MappingType::LayerByLayer {
                final_latency_s += 2.0 * mm1.num as f64 * TASK_SWITCH_OVERHEAD_S;
            }
            MappingRow {
                mapping,
                memory_time_s,
                compute_time_s,
                aie_utilization: utilization,
                final_latency_s,
            }
        })
        .collect()
}

/// Returns the mapping with the lowest final latency.
///
/// Ties are broken in favour of the pipeline mapping, matching the paper's
/// choice for the attention layers (it additionally avoids the per-task
/// datapath reconfiguration that layer-by-layer execution needs).
pub fn best_mapping(rows: &[MappingRow]) -> Option<&MappingRow> {
    rows.iter().min_by(|a, b| {
        let key = |r: &MappingRow| {
            (
                r.final_latency_s,
                if r.mapping == MappingType::Pipeline {
                    0
                } else {
                    1
                },
            )
        };
        key(a).partial_cmp(&key(b)).expect("finite latencies")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<MappingRow> {
        analyze_attention_mappings(&BertConfig::bert_large(512, 6))
    }

    #[test]
    fn pipeline_wins_and_spilling_types_lose() {
        let rows = rows();
        assert_eq!(rows.len(), 4);
        let best = best_mapping(&rows).unwrap();
        assert_eq!(best.mapping, MappingType::Pipeline);
        let b = &rows[1];
        let c = &rows[2];
        // Table 3: B and C are ~10.9 ms, dominated by the spilled
        // intermediate; A and D are ~2.2–2.4 ms.
        assert!(b.final_latency_s > 4.0 * best.final_latency_s);
        assert!((b.final_latency_s - c.final_latency_s).abs() < 1e-6);
        assert!(
            (b.final_latency_s * 1e3 - 10.9).abs() / 10.9 < 0.25,
            "B {}",
            b.final_latency_s * 1e3
        );
    }

    #[test]
    fn type_a_is_memory_bound_and_close_to_paper() {
        let rows = rows();
        let a = &rows[0];
        assert_eq!(a.mapping.letter(), 'A');
        // Paper: 2.43 ms final for A (memory-bound at 64 % utilization).
        assert!(
            (a.final_latency_s * 1e3 - 2.43).abs() / 2.43 < 0.25,
            "A {}",
            a.final_latency_s * 1e3
        );
        assert!(a.memory_time_s > a.compute_time_s * 0.9);
    }

    #[test]
    fn utilization_and_spill_flags_match_the_paper() {
        assert_eq!(MappingType::LayerByLayer.aie_utilization(), 0.64);
        assert_eq!(MappingType::Pipeline.aie_utilization(), 0.96);
        assert!(MappingType::TaskByTask.spills_intermediate());
        assert!(!MappingType::Pipeline.spills_intermediate());
        let letters: String = MappingType::all().iter().map(MappingType::letter).collect();
        assert_eq!(letters, "ABCD");
    }

    #[test]
    fn pipeline_beats_layer_by_layer_but_only_modestly() {
        let rows = rows();
        let a = rows[0].final_latency_s;
        let d = rows[3].final_latency_s;
        // D wins (or ties within noise), and A is competitive because both
        // avoid the spill; this mirrors the paper's 2.43 vs 2.24 ms, where
        // the two differ by less than 10 %.
        assert!(d <= a * 1.01);
        assert!(a / d < 1.5);
    }
}
