//! # rsn-lib
//!
//! The RSNlib-equivalent high-level layer of the reproduction (§4.5 of the
//! paper): it takes model-level descriptions and turns them into decisions
//! (how to segment the model, which mapping type to use, how to schedule
//! off-chip bandwidth) and into executable RSN programs for the RSN-XNN
//! datapath.
//!
//! * [`mapping`] — the Table 3 analysis of the four inter-layer mapping
//!   types (layer-by-layer, task-by-task, task-parallel, pipeline),
//! * [`segment`] — model segmentation: which layers run alone with every
//!   MME, and which dependent small layers are grouped into an on-chip
//!   pipeline (§4.2),
//! * [`bandwidth`] — the Fig. 12 load/store orderings for a single DDR
//!   channel and their cost,
//! * [`api`] — the host-level "compiler": drives an [`XnnMachine`]
//!   (`rsn-xnn`) through a whole transformer encoder layer, segment by
//!   segment, using the generated RSN programs.
//!
//! [`XnnMachine`]: rsn_xnn::XnnMachine

pub mod api;
pub mod bandwidth;
pub mod mapping;
pub mod segment;

pub use api::EncoderHost;
pub use bandwidth::{BandwidthWay, LoadStoreOp};
pub use mapping::{analyze_attention_mappings, MappingRow, MappingType};
pub use segment::{segment_encoder, SegmentGroup};
