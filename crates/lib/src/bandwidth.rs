//! Off-chip bandwidth mapping (§4.4, Fig. 12).
//!
//! A single DDR channel has to serve both the loads of the next output tile
//! and the stores of the previous one.  The paper contrasts three ways of
//! ordering those requests:
//!
//! * **Way 0 — strict order**: load, compute, store; the store of each
//!   output tile stalls the next tile's loads.
//! * **Way 1 — hardware arbitration**: loads and stores are pushed into the
//!   AXI read/write queues and the memory controller interleaves them, but
//!   without application knowledge the ordering is non-deterministic and
//!   suboptimal.
//! * **Way 2 — RSN instructions**: software splits the output into blocks
//!   and drains each block inside a known load gap, keeping the channel
//!   continuously busy (the paper's example splits a 768 K-element tile into
//!   12 blocks drained between 96 K-element loads).
//!
//! [`schedule`] builds the explicit request ordering for each way so tests
//! and examples can inspect it, and [`stall_fraction`] summarises the cost
//! using the calibrated channel model.

use rsn_hw::memory::{InterleavePolicy, MemoryChannelModel};
use serde::{Deserialize, Serialize};

/// One request issued to the DDR channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadStoreOp {
    /// Load `bytes` of input tile `tile` for the next output.
    Load {
        /// Output-tile index this load belongs to.
        tile: usize,
        /// Transfer size in bytes.
        bytes: usize,
    },
    /// Store `bytes` of finished output tile `tile`.
    Store {
        /// Output-tile index being drained.
        tile: usize,
        /// Transfer size in bytes.
        bytes: usize,
    },
}

/// The three orderings of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BandwidthWay {
    /// Strict load → compute → store order.
    StrictOrder,
    /// Hardware-arbitrated AXI queues.
    HardwareArbitrated,
    /// Software-interleaved via RSN instructions.
    RsnInterleaved,
}

impl BandwidthWay {
    /// The channel-model policy corresponding to this way.
    pub fn policy(&self) -> InterleavePolicy {
        match self {
            BandwidthWay::StrictOrder => InterleavePolicy::Serialized,
            BandwidthWay::HardwareArbitrated => InterleavePolicy::HardwareArbitrated,
            BandwidthWay::RsnInterleaved => InterleavePolicy::SoftwareInterleaved,
        }
    }
}

/// Builds the request ordering for `tiles` output tiles, each needing
/// `loads_per_tile` input loads of `load_bytes` and one store of
/// `store_bytes`.
pub fn schedule(
    way: BandwidthWay,
    tiles: usize,
    loads_per_tile: usize,
    load_bytes: usize,
    store_bytes: usize,
) -> Vec<LoadStoreOp> {
    let mut ops = Vec::new();
    match way {
        BandwidthWay::StrictOrder | BandwidthWay::HardwareArbitrated => {
            // The request order is the program order; for hardware
            // arbitration the reordering happens inside the controller, not
            // in the schedule.
            for t in 0..tiles {
                for _ in 0..loads_per_tile {
                    ops.push(LoadStoreOp::Load {
                        tile: t,
                        bytes: load_bytes,
                    });
                }
                ops.push(LoadStoreOp::Store {
                    tile: t,
                    bytes: store_bytes,
                });
            }
        }
        BandwidthWay::RsnInterleaved => {
            // Drain the previous tile's output in blocks placed inside the
            // next tile's load gaps.
            let blocks = loads_per_tile.max(1);
            let block_bytes = store_bytes.div_ceil(blocks);
            let mut pending_store: Option<usize> = None;
            for t in 0..tiles {
                for l in 0..loads_per_tile {
                    ops.push(LoadStoreOp::Load {
                        tile: t,
                        bytes: load_bytes,
                    });
                    if let Some(prev) = pending_store {
                        let done = l * block_bytes;
                        if done < store_bytes {
                            ops.push(LoadStoreOp::Store {
                                tile: prev,
                                bytes: block_bytes.min(store_bytes - done),
                            });
                        }
                    }
                }
                pending_store = Some(t);
            }
            if let Some(prev) = pending_store {
                ops.push(LoadStoreOp::Store {
                    tile: prev,
                    bytes: store_bytes,
                });
            }
        }
    }
    ops
}

/// Fraction of the channel-busy time lost to ordering overhead for a phase
/// with the given load/store volume, relative to the ideal interleaved
/// schedule.
pub fn stall_fraction(
    channel: &MemoryChannelModel,
    way: BandwidthWay,
    load_bytes: f64,
    store_bytes: f64,
) -> f64 {
    let ideal = channel.channel_busy_time_s(
        load_bytes,
        store_bytes,
        InterleavePolicy::SoftwareInterleaved,
    );
    let actual = channel.channel_busy_time_s(load_bytes, store_bytes, way.policy());
    (actual - ideal) / actual
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_hw::versal::Vck190Spec;

    #[test]
    fn rsn_schedule_interleaves_stores_into_load_gaps() {
        let ops = schedule(BandwidthWay::RsnInterleaved, 3, 4, 96_000, 768_000 / 4);
        // After the first tile, stores appear between loads rather than as
        // one block at the tile boundary.
        let first_store = ops
            .iter()
            .position(|o| matches!(o, LoadStoreOp::Store { .. }))
            .unwrap();
        let last_load = ops
            .iter()
            .rposition(|o| matches!(o, LoadStoreOp::Load { .. }))
            .unwrap();
        assert!(first_store < last_load);
        // Strict order never issues a store before all of a tile's loads.
        let strict = schedule(BandwidthWay::StrictOrder, 3, 4, 96_000, 768_000 / 4);
        let mut seen_store_for_tile0 = false;
        for op in &strict {
            match op {
                LoadStoreOp::Store { tile: 0, .. } => seen_store_for_tile0 = true,
                LoadStoreOp::Load { tile: 1, .. } => {
                    assert!(seen_store_for_tile0, "tile 1 loads before tile 0 store")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn stall_fraction_orders_the_three_ways() {
        let ddr = MemoryChannelModel::ddr(&Vck190Spec::new());
        let strict = stall_fraction(&ddr, BandwidthWay::StrictOrder, 3.0e9, 1.0e9);
        let hw = stall_fraction(&ddr, BandwidthWay::HardwareArbitrated, 3.0e9, 1.0e9);
        let rsn = stall_fraction(&ddr, BandwidthWay::RsnInterleaved, 3.0e9, 1.0e9);
        assert!(strict > hw);
        assert!(hw > rsn);
        assert!(rsn.abs() < 1e-12);
        assert!(strict > 0.15 && strict < 0.35);
    }

    #[test]
    fn schedule_volume_is_conserved() {
        for way in [
            BandwidthWay::StrictOrder,
            BandwidthWay::HardwareArbitrated,
            BandwidthWay::RsnInterleaved,
        ] {
            let ops = schedule(way, 4, 8, 96_000, 768_000);
            let loads: usize = ops
                .iter()
                .filter_map(|o| match o {
                    LoadStoreOp::Load { bytes, .. } => Some(*bytes),
                    _ => None,
                })
                .sum();
            assert_eq!(loads, 4 * 8 * 96_000, "{way:?} load volume");
            let store_tiles: std::collections::BTreeSet<usize> = ops
                .iter()
                .filter_map(|o| match o {
                    LoadStoreOp::Store { tile, .. } => Some(*tile),
                    _ => None,
                })
                .collect();
            assert_eq!(store_tiles.len(), 4, "{way:?} every tile stored");
        }
    }
}
