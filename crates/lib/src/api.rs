//! The host-level "RSNlib" flow: compile a transformer encoder layer into
//! per-segment RSN programs and drive the RSN-XNN machine through them.
//!
//! This mirrors the paper's §4.5 usage model (Fig. 13): the user describes
//! the model at the operator level, and the library lowers it onto a
//! pre-defined execution schedule — large projection / feed-forward layers
//! as tiled GEMMs with fused epilogues, the attention pair as the
//! dynamically pipelined on-chip path — and issues the RSN instructions.
//! Intermediate feature maps live in the DDR FU between segments, exactly
//! like the board flow.

use rsn_core::error::RsnError;
use rsn_core::sim::{RunReport, SchedulerKind};
use rsn_workloads::attention::EncoderWeights;
use rsn_workloads::bert::BertConfig;
use rsn_workloads::Matrix;
use rsn_xnn::config::XnnConfig;
use rsn_xnn::machine::XnnMachine;
use rsn_xnn::program::{
    attention_program, gemm_program, AttentionSpec, GemmSpec, PostOp, RhsOperand,
};

/// DDR matrix ids used by the encoder flow.
mod ids {
    pub const INPUT: i64 = 1;
    pub const Q: i64 = 10;
    pub const K: i64 = 11;
    pub const V: i64 = 12;
    pub const CONTEXT: i64 = 13;
    pub const NORM1: i64 = 14;
    pub const FF1: i64 = 15;
    pub const OUTPUT: i64 = 16;
    pub const WQ: i64 = 20;
    pub const WK: i64 = 21;
    pub const WV: i64 = 22;
    pub const WO: i64 = 23;
    pub const W1: i64 = 24;
    pub const W2: i64 = 25;
}

/// Drives one encoder layer through the RSN-XNN datapath, segment by
/// segment.
#[derive(Debug)]
pub struct EncoderHost {
    machine: XnnMachine,
    xnn_cfg: XnnConfig,
    model_cfg: BertConfig,
    segment_reports: Vec<(String, RunReport)>,
}

impl EncoderHost {
    /// Creates a host for the given datapath and model configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RsnError`] if the datapath fails to build.
    pub fn new(xnn_cfg: XnnConfig, model_cfg: BertConfig) -> Result<Self, RsnError> {
        Self::with_scheduler(xnn_cfg, model_cfg, SchedulerKind::default())
    }

    /// Creates a host with an explicit engine scheduling discipline (used by
    /// the evaluation layer's scheduler-equivalence checks).
    ///
    /// # Errors
    ///
    /// Returns [`RsnError`] if the datapath fails to build.
    pub fn with_scheduler(
        xnn_cfg: XnnConfig,
        model_cfg: BertConfig,
        scheduler: SchedulerKind,
    ) -> Result<Self, RsnError> {
        Ok(Self {
            machine: XnnMachine::new(xnn_cfg)?.with_scheduler(scheduler),
            xnn_cfg,
            model_cfg,
            segment_reports: Vec::new(),
        })
    }

    /// The underlying machine (for statistics inspection after a run).
    pub fn machine(&self) -> &XnnMachine {
        &self.machine
    }

    /// Engine run reports of every segment executed so far, in program
    /// order, labelled with the segment name.  The evaluation layer's cycle
    /// backend aggregates these into its [`RunReport`]-level metrics.
    pub fn segment_reports(&self) -> &[(String, RunReport)] {
        &self.segment_reports
    }

    /// Total scheduler work across all segments: `(steps, fu_step_calls)`.
    pub fn total_scheduler_work(&self) -> (u64, u64) {
        self.segment_reports
            .iter()
            .fold((0, 0), |(s, c), (_, r)| (s + r.steps, c + r.fu_step_calls))
    }

    /// Sum of the per-segment makespan estimates
    /// ([`RunReport::makespan_cycles`] of each run) — a coarse whole-layer
    /// makespan bound, since segments execute back to back.
    pub fn total_makespan_cycles(&self) -> u64 {
        self.segment_reports
            .iter()
            .map(|(_, r)| r.makespan_cycles())
            .sum()
    }

    /// Runs one full encoder layer on the datapath and returns the output
    /// activations read back from DDR.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (deadlock, step-limit) from any segment.
    pub fn run_encoder_layer(
        &mut self,
        x: &Matrix,
        weights: &EncoderWeights,
    ) -> Result<Matrix, RsnError> {
        let cfg = self.model_cfg;
        let tokens = cfg.tokens();
        let hidden = cfg.hidden;
        self.segment_reports.clear();

        // Stage the input, weights and output buffers.
        self.machine.load_ddr(ids::INPUT, x.clone());
        self.machine.load_lpddr(ids::WQ, weights.wq.clone());
        self.machine.load_lpddr(ids::WK, weights.wk.clone());
        self.machine.load_lpddr(ids::WV, weights.wv.clone());
        self.machine.load_lpddr(ids::WO, weights.wo.clone());
        self.machine.load_lpddr(ids::W1, weights.w1.clone());
        self.machine.load_lpddr(ids::W2, weights.w2.clone());
        for (id, cols) in [
            (ids::Q, hidden),
            (ids::K, hidden),
            (ids::V, hidden),
            (ids::CONTEXT, hidden),
            (ids::NORM1, hidden),
            (ids::FF1, cfg.ff_dim),
            (ids::OUTPUT, hidden),
        ] {
            self.machine.alloc_ddr(id, tokens, cols);
        }

        // Q, K, V projections: large GEMMs with a fused bias epilogue.
        for (name, weight, bias, out) in [
            ("Q projection", ids::WQ, &weights.biases[0], ids::Q),
            ("K projection", ids::WK, &weights.biases[1], ids::K),
            ("V projection", ids::WV, &weights.biases[2], ids::V),
        ] {
            self.machine.set_bias(bias);
            self.run_gemm(
                name,
                ids::INPUT,
                RhsOperand::Lpddr(weight),
                out,
                tokens,
                hidden,
                hidden,
                PostOp::Bias,
            )?;
        }

        // Attention: the dynamically pipelined MM1 → softmax → MM2 path.
        self.machine
            .set_softmax_scale(1.0 / (cfg.head_dim() as f32).sqrt());
        let attn = AttentionSpec {
            q: ids::Q,
            k: ids::K,
            v: ids::V,
            out: ids::CONTEXT,
            seq_len: cfg.seq_len,
            batch: cfg.batch,
            heads: cfg.heads,
            head_dim: cfg.head_dim(),
        };
        let program = attention_program(&self.xnn_cfg, self.machine.handles(), &attn);
        let report = self.machine.run_program(&program)?;
        self.segment_reports
            .push(("Attention MM1+MM2 (pipelined)".to_string(), report));

        // Dense projection with residual + LayerNorm epilogue.
        self.machine.set_bias(&weights.biases[3]);
        self.machine
            .set_norm_params(&weights.gamma[0], &weights.beta[0]);
        self.run_gemm(
            "Dense projection",
            ids::CONTEXT,
            RhsOperand::Lpddr(ids::WO),
            ids::NORM1,
            tokens,
            hidden,
            hidden,
            PostOp::BiasResidualNorm {
                residual: ids::INPUT,
            },
        )?;

        // Feed-forward 1 with bias + GELU.
        self.machine.set_bias(&weights.biases[4]);
        self.run_gemm(
            "Feed-forward 1",
            ids::NORM1,
            RhsOperand::Lpddr(ids::W1),
            ids::FF1,
            tokens,
            hidden,
            cfg.ff_dim,
            PostOp::BiasGelu,
        )?;

        // Feed-forward 2 with residual + LayerNorm.
        self.machine.set_bias(&weights.biases[5]);
        self.machine
            .set_norm_params(&weights.gamma[1], &weights.beta[1]);
        self.run_gemm(
            "Feed-forward 2",
            ids::FF1,
            RhsOperand::Lpddr(ids::W2),
            ids::OUTPUT,
            tokens,
            cfg.ff_dim,
            hidden,
            PostOp::BiasResidualNorm {
                residual: ids::NORM1,
            },
        )?;

        Ok(self
            .machine
            .ddr_matrix(ids::OUTPUT)
            .expect("output allocated above")
            .clone())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_gemm(
        &mut self,
        name: &str,
        lhs: i64,
        rhs: RhsOperand,
        out: i64,
        m: usize,
        k: usize,
        n: usize,
        post: PostOp,
    ) -> Result<(), RsnError> {
        let spec = GemmSpec {
            lhs,
            rhs,
            out,
            m,
            k,
            n,
            rhs_transposed: false,
            post,
        };
        let program = gemm_program(&self.xnn_cfg, self.machine.handles(), &spec);
        let report = self.machine.run_program(&program)?;
        self.segment_reports.push((name.to_string(), report));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_workloads::attention::encoder_layer_forward;

    #[test]
    fn datapath_encoder_matches_reference_forward_pass() {
        let model_cfg = BertConfig::tiny(8, 2);
        let x = Matrix::random(model_cfg.tokens(), model_cfg.hidden, 404);
        let weights = EncoderWeights::random(&model_cfg, 505);
        let expected = encoder_layer_forward(&model_cfg, &x, &weights);

        let xnn_cfg = XnnConfig::small();
        let mut host = EncoderHost::new(xnn_cfg, model_cfg).unwrap();
        let got = host.run_encoder_layer(&x, &weights).unwrap();

        assert_eq!(got.rows(), expected.rows());
        assert_eq!(got.cols(), expected.cols());
        let diff = got.max_abs_diff(&expected);
        assert!(diff < 1e-2, "datapath diverges from reference: {diff}");
        assert!(host.machine().total_mme_flops() > 0);
    }
}
