//! Model segmentation (§4.2, "Decision Process of Datapath Generation").
//!
//! The first stage of the paper's datapath-generation flow is a first-order,
//! formula-based segmentation of the target model: compute-bound layers are
//! executed one at a time with every MME, while groups of dependent
//! memory-bound layers (the attention MMs) are pipelined so their
//! intermediate never leaves the chip.  The decision also checks that the
//! pipelined group's intermediate actually fits in on-chip memory — which is
//! why BERT-Large's feed-forward pair is *not* pipelined (its intermediate
//! exceeds 25 MB) while the attention pair is.

use rsn_hw::roofline::ridge_point;
use rsn_hw::versal::Vck190Spec;
use rsn_workloads::bert::{BertConfig, EncoderSegment};
use serde::{Deserialize, Serialize};

/// A group of consecutive segments executed under one mapping decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentGroup {
    /// The segments in execution order.
    pub segments: Vec<EncoderSegment>,
    /// `true` when the group is executed as an on-chip pipeline (type D),
    /// `false` when each segment runs alone with all MMEs (type A/B).
    pub pipelined: bool,
    /// Bytes of intermediate data the pipeline keeps on-chip (zero for
    /// non-pipelined groups).
    pub onchip_intermediate_bytes: f64,
}

impl SegmentGroup {
    /// Total floating-point operations of the group.
    pub fn flops(&self) -> f64 {
        self.segments.iter().map(|s| s.gemm.flops()).sum()
    }
}

/// Classifies one segment as memory-bound on the VCK190 (arithmetic
/// intensity below the board's ridge point when its intermediate spills).
pub fn is_memory_bound(seg: &EncoderSegment, spec: &Vck190Spec) -> bool {
    let ridge = ridge_point(spec.aie_peak_flops(), spec.total_offchip_read_bw());
    seg.gemm.arithmetic_intensity() < ridge
}

/// Segments one encoder layer of `cfg` into mapping groups.
///
/// Consecutive small attention MMs whose shared intermediate fits on-chip
/// (per pipelined instance) are grouped into a pipeline; everything else
/// runs one segment at a time.
pub fn segment_encoder(cfg: &BertConfig) -> Vec<SegmentGroup> {
    let spec = Vck190Spec::new();
    let onchip = spec.onchip_bytes() as f64;
    let segments = cfg.encoder_segments();
    let mut groups = Vec::new();
    let mut i = 0;
    while i < segments.len() {
        let seg = &segments[i];
        let next_is_pair =
            i + 1 < segments.len() && seg.attention_small_mm && segments[i + 1].attention_small_mm;
        if next_is_pair {
            // Per-instance intermediate: one head's score matrix must fit in
            // the on-chip buffers for the pipelined mapping to be legal.
            let per_head = (seg.gemm.m * seg.gemm.n) as f64 * 4.0;
            if per_head < onchip {
                groups.push(SegmentGroup {
                    segments: vec![seg.clone(), segments[i + 1].clone()],
                    pipelined: true,
                    onchip_intermediate_bytes: per_head,
                });
                i += 2;
                continue;
            }
        }
        groups.push(SegmentGroup {
            segments: vec![seg.clone()],
            pipelined: false,
            onchip_intermediate_bytes: 0.0,
        });
        i += 1;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_large_groups_attention_but_not_feedforward() {
        let cfg = BertConfig::bert_large(512, 6);
        let groups = segment_encoder(&cfg);
        // 3 QKV + 1 pipelined attention pair + Dense + FF1 + FF2 = 7 groups.
        assert_eq!(groups.len(), 7);
        let pipelined: Vec<_> = groups.iter().filter(|g| g.pipelined).collect();
        assert_eq!(pipelined.len(), 1);
        assert_eq!(pipelined[0].segments.len(), 2);
        assert!(pipelined[0].segments[0].name.contains("Attention"));
        // The feed-forward layers stay un-pipelined (their intermediate is
        // too large, >25 MB).
        assert!(groups
            .iter()
            .filter(|g| g.segments[0].name.contains("Feedforward"))
            .all(|g| !g.pipelined));
        assert!(cfg.feedforward_intermediate_bytes() > Vck190Spec::new().onchip_bytes() as f64);
    }

    #[test]
    fn attention_mms_are_memory_bound_and_ff_is_compute_bound() {
        let cfg = BertConfig::bert_large(512, 6);
        let spec = Vck190Spec::new();
        let segs = cfg.encoder_segments();
        assert!(is_memory_bound(&segs[3], &spec), "attention MM1");
        assert!(!is_memory_bound(&segs[6], &spec), "feed-forward MM1");
    }

    #[test]
    fn group_flops_sum_to_encoder_flops() {
        let cfg = BertConfig::bert_large(384, 2);
        let groups = segment_encoder(&cfg);
        let total: f64 = groups.iter().map(SegmentGroup::flops).sum();
        assert!((total - cfg.encoder_flops()).abs() / cfg.encoder_flops() < 1e-9);
    }
}
