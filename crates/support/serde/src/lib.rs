//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the smallest possible surface that keeps the source
//! tree compatible with real serde: the two marker traits and the
//! `#[derive(Serialize, Deserialize)]` attribute.  The traits are blanket
//! implemented for every type and the derives expand to nothing, so swapping
//! this crate for the real one (by pointing the workspace dependency back at
//! crates.io) requires no source changes in the rest of the workspace.
//!
//! Nothing in the reproduction currently serialises data at runtime; the
//! derives exist so report types stay ready for a future wire format.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.  The real trait has a lifetime parameter; code in this workspace
/// only ever names the trait inside `#[derive(...)]`, so the simplified form
/// suffices.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
