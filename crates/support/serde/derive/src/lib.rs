//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The stand-in's `Serialize` / `Deserialize` traits are blanket-implemented
//! for every type, so the derives have nothing to generate: they only need
//! to exist so `#[derive(Serialize, Deserialize)]` attributes parse.

use proc_macro::TokenStream;

/// Expands to nothing; the stand-in trait is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the stand-in trait is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
