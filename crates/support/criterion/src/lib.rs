//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of criterion's API the workspace benches use — [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — backed
//! by a plain wall-clock measurement loop: a fixed warm-up, then timed
//! batches until the sample budget is spent.  Results print as
//! `name  median  (min .. max)` per-iteration times and are retained on the
//! [`Criterion`] value so harness `main`s can post-process them (for example
//! to emit a JSON trajectory file).
//!
//! Swapping back to real criterion later requires no changes in the bench
//! sources themselves, only in the workspace dependency.

use std::time::{Duration, Instant};

/// One finished benchmark: name plus per-iteration timing statistics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Fastest observed batch mean, nanoseconds.
    pub min_ns: f64,
    /// Slowest observed batch mean, nanoseconds.
    pub max_ns: f64,
    /// Total iterations executed across all timed batches.
    pub iterations: u64,
}

/// Minimal stand-in for `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1200),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Replaces the warm-up budget (API parity with criterion).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Replaces the measurement budget (API parity with criterion).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark closure under the measurement loop.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            batch_means_ns: Vec::new(),
            iterations: 0,
        };
        f(&mut bencher);
        let mut means = bencher.batch_means_ns;
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let result = BenchResult {
            name: name.to_string(),
            median_ns: means.get(means.len() / 2).copied().unwrap_or(f64::NAN),
            min_ns: means.first().copied().unwrap_or(f64::NAN),
            max_ns: means.last().copied().unwrap_or(f64::NAN),
            iterations: bencher.iterations,
        };
        println!(
            "{:<44} {:>12}   ({} .. {})  [{} iters]",
            result.name,
            format_ns(result.median_ns),
            format_ns(result.min_ns),
            format_ns(result.max_ns),
            result.iterations
        );
        self.results.push(result);
        self
    }

    /// All results measured by this harness so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Minimal stand-in for `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    batch_means_ns: Vec<f64>,
    iterations: u64,
}

impl Bencher {
    /// Measures `f` repeatedly: warm-up until the warm-up budget is spent,
    /// then timed batches until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also used to size a batch at roughly one millisecond.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((1e-3 / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        let total_start = Instant::now();
        while total_start.elapsed() < self.measurement || self.batch_means_ns.is_empty() {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.batch_means_ns.push(elapsed * 1e9 / batch as f64);
            self.iterations += batch;
        }
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.name, "noop");
        assert!(r.median_ns.is_finite() && r.median_ns >= 0.0);
        assert!(r.iterations > 0);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2.0e9).ends_with(" s"));
    }
}
