//! GPU latency and energy estimates for the Table 10 comparison.
//!
//! The paper quotes measured GPU latencies from NVIDIA's published BERT
//! results and measures power with `nvidia-smi`.  The reproduction keeps
//! those published numbers (in [`rsn_hw::gpu::GpuSpec`]) and adds a roofline
//! estimate computed from the datasheet peak and a per-device kernel
//! efficiency calibrated against the published batch-8 latency, so the
//! benchmark can show both the "estimated" and "published" columns and the
//! derived energy-efficiency metrics.

use rsn_hw::gpu::{GpuModel, GpuSpec};
use rsn_workloads::bert::BertConfig;
use serde::{Deserialize, Serialize};

/// Latency / efficiency estimate of one GPU on BERT-Large.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuEstimate {
    /// Device name.
    pub name: String,
    /// Batch size of the estimate.
    pub batch: usize,
    /// Roofline-estimated latency, seconds.
    pub estimated_latency_s: f64,
    /// Published measured latency, seconds (when the paper reports it).
    pub published_latency_s: Option<f64>,
    /// Sequences per joule at operating power, using the published latency
    /// when available and the estimate otherwise.
    pub operating_seq_per_j: f64,
    /// Sequences per joule at dynamic power.
    pub dynamic_seq_per_j: f64,
}

/// Fraction of datasheet peak a BERT-Large FP32 kernel achieves on each
/// device (calibrated against the published batch-8 latencies).
pub fn kernel_efficiency(model: GpuModel) -> f64 {
    match model {
        GpuModel::T4 => 0.50,
        GpuModel::V100 => 0.70,
        GpuModel::A100Fp32 => 0.75,
        GpuModel::A100Fp16 => 0.28,
        GpuModel::L4 => 0.22,
    }
}

/// Builds the Table 10 estimate for one device and batch size.
pub fn estimate(model: GpuModel, cfg: &BertConfig) -> GpuEstimate {
    let spec = GpuSpec::of(model);
    let flops = cfg.model_flops();
    // DRAM traffic: use the measured batch-8 figure scaled by batch when the
    // paper reports it, otherwise weights + activations touched once.
    let bytes = spec
        .dram_traffic_gb
        .map(|gb| gb * 1e9 * cfg.batch as f64 / 8.0)
        .unwrap_or_else(|| cfg.encoder_weight_bytes() * cfg.layers as f64 * 2.0);
    let estimated_latency_s = spec.roofline_latency_s(flops, bytes, kernel_efficiency(model));
    let published_latency_s = spec
        .published_latency_ms_for_batch(cfg.batch)
        .map(|ms| ms / 1e3);
    let reference = published_latency_s.unwrap_or(estimated_latency_s);
    let tasks_per_s = cfg.batch as f64 / reference;
    GpuEstimate {
        name: spec.name.to_string(),
        batch: cfg.batch,
        estimated_latency_s,
        published_latency_s,
        operating_seq_per_j: spec.operating_efficiency_seq_per_j(tasks_per_s),
        dynamic_seq_per_j: spec.dynamic_efficiency_seq_per_j(tasks_per_s),
    }
}

/// Estimates for every Table 10 device at the given configuration.
pub fn table10_estimates(cfg: &BertConfig) -> Vec<GpuEstimate> {
    [
        GpuModel::T4,
        GpuModel::V100,
        GpuModel::A100Fp32,
        GpuModel::A100Fp16,
        GpuModel::L4,
    ]
    .iter()
    .map(|&m| estimate(m, cfg))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BertConfig {
        BertConfig::bert_large(384, 8)
    }

    #[test]
    fn estimates_track_published_latencies() {
        for e in table10_estimates(&cfg()) {
            let published = e.published_latency_s.expect("batch 8 is published");
            let ratio = e.estimated_latency_s / published;
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "{}: estimate {:.3}s vs published {:.3}s",
                e.name,
                e.estimated_latency_s,
                published
            );
        }
    }

    #[test]
    fn t4_efficiency_matches_table10() {
        let t4 = estimate(GpuModel::T4, &cfg());
        // Paper: 0.22 seq/J operating, 0.38 seq/J dynamic.
        assert!(
            (t4.operating_seq_per_j - 0.22).abs() < 0.03,
            "{}",
            t4.operating_seq_per_j
        );
        assert!(
            (t4.dynamic_seq_per_j - 0.38).abs() < 0.05,
            "{}",
            t4.dynamic_seq_per_j
        );
    }

    #[test]
    fn a100_fp16_is_fastest() {
        let rows = table10_estimates(&cfg());
        let fp16 = rows.iter().find(|r| r.name.contains("FP16")).unwrap();
        for other in rows.iter().filter(|r| !r.name.contains("FP16")) {
            assert!(fp16.published_latency_s.unwrap() < other.published_latency_s.unwrap());
        }
    }

    #[test]
    fn unknown_batch_has_no_published_latency() {
        let e = estimate(GpuModel::T4, &BertConfig::bert_large(384, 3));
        assert!(e.published_latency_s.is_none());
        assert!(e.estimated_latency_s > 0.0);
    }
}
