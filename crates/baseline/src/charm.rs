//! Analytic model of CHARM, the prior state-of-the-art Versal accelerator
//! the paper compares against (Fig. 18, Tables 6b and 7).
//!
//! Structural differences captured by the model, all taken from the paper's
//! discussion of CHARM:
//!
//! * a lower-efficiency AIE GEMM kernel (Table 6a: 4.5 TFLOPS vs 6.78),
//! * layer-serialised execution — the attention intermediates must travel
//!   off-chip, and loads/stores are not software-interleaved,
//! * only the DDR channel is used for data (Table 6b note), so weights and
//!   feature maps share one ~21 GB/s channel,
//! * two fixed MM engines sized for large and small layers that only balance
//!   when four 6-sequence batches are interleaved, so the design schedules
//!   at a 6-batch granularity and under-utilises below ~24 sequences.
//!
//! Two constants are explicit calibrations: the small-MM utilization and the
//! dual-engine imbalance factor, chosen so the modelled BERT encoder latency
//! at batch 6 lands near the published 110 ms.

use rsn_hw::aie::{AieArrayModel, GemmKernelModel};
use rsn_hw::memory::{InterleavePolicy, MemoryChannelModel};
use rsn_hw::versal::Vck190Spec;
use rsn_workloads::bert::{BertConfig, NonMmOp, RhsSource};
use rsn_workloads::gemm::GemmShape;
use rsn_workloads::models::{ModelConfig, ModelKind};

/// MME utilization CHARM reaches on the small attention MMs.
const CHARM_UTIL_SMALL: f64 = 0.40;
/// MME utilization CHARM reaches on large layers.
const CHARM_UTIL_LARGE: f64 = 0.96;
/// Fraction of each instance's prolog/epilog CHARM cannot hide.
const CHARM_PHASE_FACTOR: f64 = 1.0;
/// Extra latency factor from the fixed large/small dual-engine split when
/// fewer than four 6-sequence batches are in flight (calibration constant).
const ENGINE_IMBALANCE_MAX: f64 = 2.0;
/// Batch size at which CHARM's dual engines are fully balanced.
const BALANCED_BATCH: f64 = 24.0;
/// CHARM schedules whole 6-sequence batches.
const BATCH_GRANULARITY: usize = 6;

/// The CHARM latency/throughput model.
#[derive(Debug, Clone)]
pub struct CharmModel {
    aie: AieArrayModel,
    ddr: MemoryChannelModel,
}

impl CharmModel {
    /// Builds the calibrated CHARM model.
    pub fn new() -> Self {
        Self {
            aie: AieArrayModel::with_kernel(GemmKernelModel::charm()),
            ddr: MemoryChannelModel::ddr(&Vck190Spec::new()),
        }
    }

    fn engine_imbalance(&self, batch: usize) -> f64 {
        let b = (batch.max(1) as f64).min(BALANCED_BATCH);
        // Linearly improves from the maximum at one 6-batch to 1.0 at four.
        let span = BALANCED_BATCH - BATCH_GRANULARITY as f64;
        let progress = ((b - BATCH_GRANULARITY as f64).max(0.0) / span).clamp(0.0, 1.0);
        ENGINE_IMBALANCE_MAX - (ENGINE_IMBALANCE_MAX - 1.0) * progress
    }

    fn gemm_phase_s(&self, gemm: &GemmShape) -> f64 {
        let out_tile = (gemm.m.min(768) * gemm.n.min(1024)) as f64 * 4.0;
        let in_tile =
            (gemm.m.min(768) * gemm.k.min(128) + gemm.k.min(128) * gemm.n.min(1024)) as f64 * 4.0;
        in_tile / self.ddr.read_bw() + out_tile / self.ddr.write_bw()
    }

    fn segment_latency_s(
        &self,
        gemm: &GemmShape,
        small: bool,
        weights_bytes: f64,
        spilled_intermediate: f64,
    ) -> f64 {
        let util = if small {
            CHARM_UTIL_SMALL
        } else {
            CHARM_UTIL_LARGE
        };
        let compute = gemm.flops() / self.aie.achieved_flops_at_utilization(util);
        let col_blocks = gemm.n.div_ceil(1024) as f64;
        let row_blocks = gemm.m.div_ceil(768) as f64;
        // Everything — activations, weights and spilled intermediates — goes
        // over the single DDR channel without software interleaving.
        let load =
            gemm.lhs_bytes() * col_blocks + weights_bytes * row_blocks + spilled_intermediate;
        let store = gemm.out_bytes() + spilled_intermediate;
        let ddr = self
            .ddr
            .channel_busy_time_s(load, store, InterleavePolicy::Serialized);
        let phase = CHARM_PHASE_FACTOR * gemm.num as f64 * self.gemm_phase_s(gemm);
        let mut parts = [compute, ddr];
        parts.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        parts[0] + 0.1 * parts[1] + phase
    }

    /// Latency of one BERT encoder layer for the given configuration,
    /// seconds.  Batches are rounded up to CHARM's 6-sequence granularity.
    pub fn encoder_latency_s(&self, cfg: &BertConfig) -> f64 {
        let rounded_batch = cfg.batch.div_ceil(BATCH_GRANULARITY) * BATCH_GRANULARITY;
        let cfg = cfg.with_batch(rounded_batch);
        let mut total = 0.0;
        for seg in cfg.encoder_segments() {
            let weights = match seg.rhs_source {
                RhsSource::WeightsLpddr => seg.gemm.rhs_bytes(),
                RhsSource::Activations => 0.0,
            };
            let mut extra_load = if seg.rhs_source == RhsSource::Activations {
                // Attention operands are activations read back from DDR.
                seg.gemm.rhs_bytes()
            } else {
                0.0
            };
            if seg.non_mm.contains(&NonMmOp::LayerAdd) {
                extra_load += seg.gemm.out_bytes();
            }
            total += self.segment_latency_s(&seg.gemm, seg.attention_small_mm, weights, extra_load);
        }
        total * self.engine_imbalance(rounded_batch)
    }

    /// Throughput in sequences per second for the first-encoder workload of
    /// Fig. 18.
    pub fn encoder_throughput_tasks_per_s(&self, cfg: &BertConfig) -> f64 {
        let rounded_batch = cfg.batch.div_ceil(BATCH_GRANULARITY) * BATCH_GRANULARITY;
        rounded_batch as f64 / self.encoder_latency_s(&cfg.with_batch(rounded_batch))
    }

    /// End-to-end square GEMM throughput with operands in DRAM (Table 6b).
    ///
    /// CHARM's published end-to-end numbers are bandwidth-starved at small
    /// sizes (it only uses the DDR channel) and kernel-bound at large sizes;
    /// this saturation model reproduces that shape.
    pub fn gemm_end_to_end_flops(&self, n: usize) -> f64 {
        let peak = self.aie.achieved_flops_at_utilization(1.0);
        let saturation = n as f64 / (n as f64 + 2600.0);
        peak * saturation
    }

    /// Latency per task at maximum throughput for a Table 7 model.
    pub fn model_config_latency_s(&self, cfg: &ModelConfig) -> f64 {
        if let Some(bert_like) = cfg.bert_like {
            return self.encoder_latency_s(&bert_like) * bert_like.layers as f64
                / cfg.tasks_per_pass as f64;
        }
        let mut total = 0.0;
        for layer in &cfg.layers {
            total += self.segment_latency_s(
                &layer.gemm,
                layer.small_activation_mm,
                layer.gemm.rhs_bytes(),
                0.0,
            );
        }
        total * self.engine_imbalance(cfg.tasks_per_pass) / cfg.tasks_per_pass as f64
    }

    /// Latency per task of every Table 7 model.
    pub fn table7_latencies_s(&self) -> Vec<(ModelKind, f64)> {
        ModelKind::table7_models()
            .iter()
            .map(|&kind| {
                let cfg = ModelConfig::table7(kind);
                (kind, self.model_config_latency_s(&cfg))
            })
            .collect()
    }
}

impl Default for CharmModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_encoder_latency_near_published_110ms() {
        let charm = CharmModel::new();
        let latency = charm.encoder_latency_s(&BertConfig::bert_large(512, 6)) * 1e3;
        // Paper: CHARM's best latency is 110 ms at batch 6.
        assert!(latency > 80.0 && latency < 140.0, "latency {latency}");
    }

    #[test]
    fn small_batches_pay_the_6_batch_granularity() {
        let charm = CharmModel::new();
        let b1 = charm.encoder_latency_s(&BertConfig::bert_large(512, 1));
        let b6 = charm.encoder_latency_s(&BertConfig::bert_large(512, 6));
        // Batch 1 is rounded up to 6, so it costs the same.
        assert!((b1 - b6).abs() / b6 < 1e-9);
    }

    #[test]
    fn throughput_improves_towards_batch_24() {
        let charm = CharmModel::new();
        let t6 = charm.encoder_throughput_tasks_per_s(&BertConfig::bert_large(512, 6));
        let t24 = charm.encoder_throughput_tasks_per_s(&BertConfig::bert_large(512, 24));
        assert!(t24 > 1.5 * t6, "t6 {t6} t24 {t24}");
        // Paper: CHARM peaks around 100 tasks/s (333.76 / 3.25).
        assert!(t24 > 60.0 && t24 < 160.0, "t24 {t24}");
    }

    #[test]
    fn gemm_throughput_saturates_with_size() {
        let charm = CharmModel::new();
        let g1k = charm.gemm_end_to_end_flops(1024) / 1e9;
        let g3k = charm.gemm_end_to_end_flops(3072) / 1e9;
        let g6k = charm.gemm_end_to_end_flops(6144) / 1e9;
        // Paper Table 6b: 1103 / 2850 / 3278 GFLOPS.
        assert!(g1k < g3k && g3k < g6k);
        assert!(g1k > 700.0 && g1k < 1700.0, "1k {g1k}");
        assert!(g6k > 2500.0 && g6k < 4000.0, "6k {g6k}");
    }

    #[test]
    fn table7_latencies_exist_for_every_model() {
        let charm = CharmModel::new();
        let rows = charm.table7_latencies_s();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|(_, l)| *l > 0.0));
    }
}
