//! # rsn-baseline
//!
//! The comparison points of the RSN evaluation:
//!
//! * [`overlay`] — a von-Neumann-style, RISC-like vector-ISA overlay (the
//!   baseline of Fig. 6): in-order instructions over shared vector
//!   registers, which serialise on WAR hazards exactly where the RSN stream
//!   datapath keeps flowing,
//! * [`charm`] — an analytic model of CHARM, the prior state-of-the-art
//!   Versal accelerator the paper compares against (fixed dual MM engines,
//!   layer-serialised execution, DDR-only traffic, coarse 6-batch
//!   scheduling),
//! * [`gpu`] — latency and energy estimates for the T4 / V100 / A100 / L4
//!   GPUs of Table 10, built on the datasheet models in `rsn-hw`.

pub mod charm;
pub mod gpu;
pub mod overlay;

pub use charm::CharmModel;
pub use gpu::GpuEstimate;
pub use overlay::{OverlayInstruction, VectorOverlay};
