//! The RISC-like vector-ISA overlay baseline of Fig. 6.
//!
//! Conventional DNN overlays keep program state in registers / on-chip
//! buffers and execute coarse instructions in order.  Because instructions
//! are architecturally atomic, a write-after-read hazard on a vector
//! register serialises execution: the second `LD v1` must wait for the
//! previous `ADD` that reads `v1`.  The RSN datapath avoids the hazard by
//! construction — data flows through streams, never through a shared
//! register — which is the point Fig. 6 makes.  This module provides a small
//! functional + timing simulator of that baseline so the comparison can be
//! executed rather than asserted.

use serde::{Deserialize, Serialize};

/// One instruction of the baseline overlay's vector ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlayInstruction {
    /// Load `len` elements from memory address `addr` into register `reg`.
    Load {
        /// Destination vector register.
        reg: usize,
        /// Source memory address.
        addr: usize,
        /// Element count.
        len: usize,
    },
    /// Element-wise `dst = a + b` over full registers.
    Add {
        /// Destination register.
        dst: usize,
        /// First operand register.
        a: usize,
        /// Second operand register.
        b: usize,
    },
    /// Store register `reg` to memory address `addr`.
    Store {
        /// Source register.
        reg: usize,
        /// Destination memory address.
        addr: usize,
        /// Element count.
        len: usize,
    },
}

/// A single-issue, in-order vector overlay with a fixed register file.
#[derive(Debug, Clone)]
pub struct VectorOverlay {
    registers: Vec<Vec<f32>>,
    memory: Vec<f32>,
    vector_len: usize,
    cycles: u64,
    stall_cycles: u64,
}

impl VectorOverlay {
    /// Creates an overlay with `num_regs` vector registers of `vector_len`
    /// elements over `memory`.
    pub fn new(num_regs: usize, vector_len: usize, memory: Vec<f32>) -> Self {
        Self {
            registers: vec![vec![0.0; vector_len]; num_regs],
            memory,
            vector_len,
            cycles: 0,
            stall_cycles: 0,
        }
    }

    /// The backing memory after execution.
    pub fn memory(&self) -> &[f32] {
        &self.memory
    }

    /// Pre-loads a vector register (e.g. the all-ones increment operand of
    /// Fig. 6); values beyond the vector length are ignored.
    pub fn set_register(&mut self, reg: usize, values: &[f32]) {
        let len = self.vector_len.min(values.len());
        self.registers[reg][..len].copy_from_slice(&values[..len]);
    }

    /// Total cycles consumed (including hazard stalls).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles lost to register hazards between dependent instructions.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    fn reads(instr: &OverlayInstruction) -> Vec<usize> {
        match instr {
            OverlayInstruction::Load { .. } => vec![],
            OverlayInstruction::Add { a, b, .. } => vec![*a, *b],
            OverlayInstruction::Store { reg, .. } => vec![*reg],
        }
    }

    fn writes(instr: &OverlayInstruction) -> Option<usize> {
        match instr {
            OverlayInstruction::Load { reg, .. } => Some(*reg),
            OverlayInstruction::Add { dst, .. } => Some(*dst),
            OverlayInstruction::Store { .. } => None,
        }
    }

    /// Executes a program in order, modelling each instruction as taking
    /// `vector_len` cycles of useful work and charging a full-instruction
    /// stall whenever it must wait for the previous instruction because of a
    /// register dependency (true, anti or output).
    pub fn execute(&mut self, program: &[OverlayInstruction]) {
        let mut prev: Option<OverlayInstruction> = None;
        for instr in program {
            if let Some(p) = prev {
                let conflict = {
                    let p_writes = Self::writes(&p);
                    let p_reads = Self::reads(&p);
                    let i_writes = Self::writes(instr);
                    let i_reads = Self::reads(instr);
                    let raw = p_writes.is_some_and(|w| i_reads.contains(&w));
                    let war = i_writes.is_some_and(|w| p_reads.contains(&w));
                    let waw = p_writes.is_some() && p_writes == i_writes;
                    raw || war || waw
                };
                if conflict {
                    // The dependent instruction cannot overlap with its
                    // predecessor at all: a full vector length of stall.
                    self.stall_cycles += self.vector_len as u64;
                    self.cycles += self.vector_len as u64;
                }
            }
            self.cycles += self.vector_len as u64;
            match *instr {
                OverlayInstruction::Load { reg, addr, len } => {
                    for i in 0..len.min(self.vector_len) {
                        self.registers[reg][i] = self.memory.get(addr + i).copied().unwrap_or(0.0);
                    }
                }
                OverlayInstruction::Add { dst, a, b } => {
                    for i in 0..self.vector_len {
                        self.registers[dst][i] = self.registers[a][i] + self.registers[b][i];
                    }
                }
                OverlayInstruction::Store { reg, addr, len } => {
                    for i in 0..len.min(self.vector_len) {
                        if addr + i < self.memory.len() {
                            self.memory[addr + i] = self.registers[reg][i];
                        }
                    }
                }
            }
            prev = Some(*instr);
        }
    }

    /// The Fig. 6 "Application 2" program for this overlay: increment
    /// elements 0–99 and 200–299, copy 100–199 unchanged, using three
    /// 100-element vector registers (v2 pre-loaded with ones).
    pub fn fig6_application2_program() -> Vec<OverlayInstruction> {
        vec![
            OverlayInstruction::Load {
                reg: 0,
                addr: 0,
                len: 100,
            },
            OverlayInstruction::Add { dst: 2, a: 0, b: 1 },
            OverlayInstruction::Store {
                reg: 2,
                addr: 300,
                len: 100,
            },
            OverlayInstruction::Load {
                reg: 0,
                addr: 100,
                len: 100,
            },
            OverlayInstruction::Store {
                reg: 0,
                addr: 400,
                len: 100,
            },
            OverlayInstruction::Load {
                reg: 0,
                addr: 200,
                len: 100,
            },
            OverlayInstruction::Add { dst: 2, a: 0, b: 1 },
            OverlayInstruction::Store {
                reg: 2,
                addr: 500,
                len: 100,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepared_overlay() -> VectorOverlay {
        // Memory: 300 input elements 0..300, then 300 output slots.
        let mut memory: Vec<f32> = (0..300).map(|x| x as f32).collect();
        memory.extend(vec![0.0; 300]);
        let mut ov = VectorOverlay::new(3, 100, memory);
        // v1 holds the all-ones increment vector, as in the figure.
        ov.registers[1] = vec![1.0; 100];
        ov
    }

    #[test]
    fn application2_produces_correct_results() {
        let mut ov = prepared_overlay();
        let program = VectorOverlay::fig6_application2_program();
        ov.execute(&program);
        assert_eq!(ov.memory()[300], 1.0);
        assert_eq!(ov.memory()[399], 100.0);
        assert_eq!(ov.memory()[400], 100.0);
        assert_eq!(ov.memory()[499], 199.0);
        assert_eq!(ov.memory()[500], 201.0);
        assert_eq!(ov.memory()[599], 300.0);
    }

    #[test]
    fn war_hazards_cause_stalls() {
        let mut ov = prepared_overlay();
        let program = VectorOverlay::fig6_application2_program();
        ov.execute(&program);
        // Six of the seven adjacent pairs carry a register dependency (only
        // the store → unrelated-load pairs are free), so the overlay pays
        // six full-vector stalls on top of the eight instructions.
        assert_eq!(ov.cycles(), 8 * 100 + ov.stall_cycles());
        assert_eq!(ov.stall_cycles(), 6 * 100);
        // An ideally pipelined stream datapath (the RSN version of Fig. 6)
        // would finish in roughly the 300 cycles it takes to stream the
        // data once plus pipeline fill; the overlay takes 5× longer.
        assert!(ov.cycles() > 3 * 300);
    }

    #[test]
    fn independent_instructions_do_not_stall() {
        let mut ov = VectorOverlay::new(4, 10, vec![0.0; 100]);
        let program = vec![
            OverlayInstruction::Load {
                reg: 0,
                addr: 0,
                len: 10,
            },
            OverlayInstruction::Load {
                reg: 1,
                addr: 10,
                len: 10,
            },
            OverlayInstruction::Load {
                reg: 2,
                addr: 20,
                len: 10,
            },
        ];
        ov.execute(&program);
        assert_eq!(ov.stall_cycles(), 0);
        assert_eq!(ov.cycles(), 30);
    }
}
