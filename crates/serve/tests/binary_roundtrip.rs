//! Property-style round-trip sweep of the binary wire codec (seeded, per
//! the PR 1 convention: a deterministic LCG drives randomised documents, so
//! a failure reproduces from the printed seed).
//!
//! Two invariants per document type, both over hundreds of randomised
//! documents spanning every variant:
//!
//! * **binary identity** — `binary::decode(binary::encode(x)) == x`,
//!   exactly (the binary codec preserves every value bit);
//! * **binary ≡ JSON** — decoding the same document through the binary
//!   codec and through the JSON emit→parse→decode pipeline yields equal
//!   typed values, so the two encodings are semantically interchangeable
//!   on the wire (frames may mix freely within one connection).

use rsn_eval::{BreakdownRow, CycleStats, EvalError, EvalReport, SchedulerKind, WorkloadSpec};
use rsn_lib::mapping::MappingType;
use rsn_serve::json;
use rsn_serve::wire::{ShardRequest, ShardResponse, SharedResult};
use rsn_serve::{
    binary, ClassStats, LatencyHistogram, PoolStats, Priority, ServiceStats, ShardStats,
};
use rsn_workloads::bert::BertConfig;
use rsn_workloads::models::ModelKind;
use std::sync::Arc;

/// Deterministic 64-bit LCG (same constants as the concurrency stress
/// tests), so every generated document reproduces from the seed.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// A finite f64 in a spread of magnitudes (JSON cannot represent
/// non-finite values — they emit as `null` — so the cross-codec sweep
/// sticks to finite ones; non-finite binary fidelity has its own test).
fn finite_f64(rng: &mut u64) -> f64 {
    let mantissa = (lcg(rng) % 2_000_001) as f64 / 1000.0 - 1000.0;
    let exponent = (lcg(rng) % 25) as i32 - 12;
    mantissa * 10f64.powi(exponent)
}

fn opt_f64(rng: &mut u64) -> Option<f64> {
    if lcg(rng).is_multiple_of(3) {
        None
    } else {
        Some(finite_f64(rng))
    }
}

/// Labels with escape-heavy candidates mixed in, so string encoding is
/// stressed on both codecs.
fn label(rng: &mut u64) -> String {
    const POOL: [&str; 8] = [
        "rsn-xnn",
        "charm",
        "encoder-layer L=512 B=6",
        "quote \" backslash \\",
        "newline\nand tab\t",
        "unicode × é 😀 ßµ",
        "",
        "control \u{1} \u{1f}",
    ];
    POOL[(lcg(rng) % POOL.len() as u64) as usize].to_string()
}

fn random_cfg(rng: &mut u64) -> BertConfig {
    BertConfig {
        hidden: (lcg(rng) % 4096 + 1) as usize,
        heads: (lcg(rng) % 64 + 1) as usize,
        ff_dim: (lcg(rng) % 16384 + 1) as usize,
        seq_len: (lcg(rng) % 2048 + 1) as usize,
        batch: (lcg(rng) % 64 + 1) as usize,
        layers: (lcg(rng) % 48 + 1) as usize,
    }
}

fn random_spec(rng: &mut u64) -> WorkloadSpec {
    match lcg(rng) % 11 {
        0 => WorkloadSpec::EncoderLayer {
            cfg: random_cfg(rng),
        },
        1 => WorkloadSpec::FullModel {
            cfg: random_cfg(rng),
        },
        2 => WorkloadSpec::SquareGemm {
            n: (lcg(rng) % 65536 + 1) as usize,
        },
        3 => {
            let models = ModelKind::table7_models();
            WorkloadSpec::ZooModel {
                kind: models[(lcg(rng) % models.len() as u64) as usize],
            }
        }
        4 => {
            let mappings = MappingType::all();
            WorkloadSpec::AttentionMapping {
                cfg: random_cfg(rng),
                mapping: mappings[(lcg(rng) % mappings.len() as u64) as usize],
            }
        }
        5 => WorkloadSpec::PowerBreakdown,
        6 => WorkloadSpec::DatapathProperties,
        7 => WorkloadSpec::InstructionFootprint {
            m: (lcg(rng) % 1024 + 1) as usize,
            k: (lcg(rng) % 1024 + 1) as usize,
            n: (lcg(rng) % 1024 + 1) as usize,
        },
        8 => WorkloadSpec::FunctionalGemm {
            m: (lcg(rng) % 64 + 1) as usize,
            k: (lcg(rng) % 64 + 1) as usize,
            n: (lcg(rng) % 64 + 1) as usize,
            seed: lcg(rng),
        },
        9 => WorkloadSpec::FunctionalAttention {
            cfg: random_cfg(rng),
            seed: lcg(rng),
        },
        _ => WorkloadSpec::ScalarPipeline {
            elements: (lcg(rng) % 10000 + 1) as usize,
        },
    }
}

fn random_report(rng: &mut u64) -> EvalReport {
    let mut report = EvalReport::new(label(rng), label(rng));
    report.latency_s = opt_f64(rng);
    report.throughput_tasks_per_s = opt_f64(rng);
    report.achieved_flops = opt_f64(rng);
    for i in 0..lcg(rng) % 4 {
        report.segments.push(rsn_eval::SegmentMetric {
            name: format!("segment-{i}").into(),
            latency_s: finite_f64(rng),
            compute_s: finite_f64(rng),
            ddr_s: finite_f64(rng),
            lpddr_s: finite_f64(rng),
            phase_s: finite_f64(rng),
        });
    }
    for i in 0..lcg(rng) % 3 {
        let values = (0..lcg(rng) % 4)
            .map(|j| (format!("metric-{j}").into(), finite_f64(rng)))
            .collect();
        report.breakdown.push(BreakdownRow {
            name: format!("row {i} {}", label(rng)).into(),
            values,
        });
    }
    if lcg(rng).is_multiple_of(2) {
        report.cycle = Some(CycleStats {
            scheduler: if lcg(rng).is_multiple_of(2) {
                SchedulerKind::EventDriven
            } else {
                SchedulerKind::RoundRobin
            },
            steps: lcg(rng) % 1_000_000,
            fu_step_calls: lcg(rng),
            makespan_cycles: lcg(rng) % 1_000_000_000,
            uops_retired: lcg(rng) % 100_000,
            words_transferred: lcg(rng) % 10_000_000,
            max_abs_error: opt_f64(rng),
        });
    }
    for i in 0..lcg(rng) % 5 {
        report.metrics.insert(format!("m{i}"), finite_f64(rng));
    }
    report
}

fn random_error(rng: &mut u64) -> EvalError {
    match lcg(rng) % 5 {
        0 => EvalError::Unsupported {
            backend: label(rng),
            workload: label(rng),
        },
        1 => EvalError::TooLarge {
            backend: label(rng),
            workload: label(rng),
            limit: label(rng),
        },
        2 => EvalError::Remote {
            message: label(rng),
        },
        3 => EvalError::Panicked {
            backend: label(rng),
            workload: label(rng),
            reason: label(rng),
        },
        _ => EvalError::Transport {
            backend: label(rng),
            detail: label(rng),
        },
    }
}

fn random_result(rng: &mut u64) -> Result<EvalReport, EvalError> {
    if lcg(rng).is_multiple_of(3) {
        Err(random_error(rng))
    } else {
        Ok(random_report(rng))
    }
}

/// A histogram built the way the service builds one: by recording, so its
/// trimmed bucket vector, count, sum, and max are all mutually consistent.
fn random_histogram(rng: &mut u64) -> LatencyHistogram {
    let mut histogram = LatencyHistogram::new();
    for _ in 0..lcg(rng) % 200 {
        let us = lcg(rng) % 10_000_000;
        histogram.record(std::time::Duration::from_micros(us));
    }
    histogram
}

fn random_stats(rng: &mut u64) -> ServiceStats {
    ServiceStats {
        submitted: lcg(rng) % 100_000,
        completed: lcg(rng) % 100_000,
        batches: lcg(rng) % 10_000,
        batched_requests: lcg(rng) % 100_000,
        cache_hits: lcg(rng) % 100_000,
        cache_misses: lcg(rng) % 100_000,
        inflight_merged: lcg(rng) % 10_000,
        evaluations: lcg(rng) % 100_000,
        eval_errors: lcg(rng) % 1_000,
        evictions: lcg(rng) % 1_000,
        per_shard: (0..lcg(rng) % 4)
            .map(|_| ShardStats {
                backend: label(rng),
                evaluations: lcg(rng) % 100_000,
                errors: lcg(rng) % 100,
            })
            .collect(),
        remote_pools: (0..lcg(rng) % 3)
            .map(|i| PoolStats {
                addr: format!("10.0.0.{i}:7070"),
                checkouts: lcg(rng) % 100_000,
                reused: lcg(rng) % 100_000,
                dials: lcg(rng) % 1_000,
                redials: lcg(rng) % 100,
                discarded: lcg(rng) % 100,
                pipelined_batches: lcg(rng) % 10_000,
                pipelined_specs: lcg(rng) % 100_000,
                bytes_sent: lcg(rng),
                bytes_received: lcg(rng),
                frames_coalesced: lcg(rng) % 100_000,
                ring_exchanges: lcg(rng) % 100_000,
                reactor_wakeups: lcg(rng) % 100_000,
                inflight_per_conn: lcg(rng) % 64,
                hedges_launched: lcg(rng) % 10_000,
                hedges_won: lcg(rng) % 10_000,
                failovers: lcg(rng) % 1_000,
                breaker_trips: lcg(rng) % 100,
                breaker_fast_fails: lcg(rng) % 1_000,
                dict_defines: lcg(rng) % 10_000,
                dict_hits: lcg(rng) % 1_000_000,
            })
            .collect(),
        // Roughly half the sweep has a populated per-class section (the
        // v6 trailing-optional addition), the rest the empty v5 shape.
        classes: if lcg(rng).is_multiple_of(2) {
            Priority::ALL
                .iter()
                .map(|&priority| ClassStats {
                    priority,
                    latency: random_histogram(rng),
                    shed_deadline: lcg(rng) % 1_000,
                    shed_queue: lcg(rng) % 1_000,
                })
                .collect()
        } else {
            Vec::new()
        },
    }
}

fn shared(result: Result<EvalReport, EvalError>) -> SharedResult {
    Arc::new(result)
}

fn random_request(rng: &mut u64) -> ShardRequest {
    match lcg(rng) % 6 {
        0 => ShardRequest::Hello {
            protocol: lcg(rng) % 8,
        },
        5 => ShardRequest::Cancel {
            target: lcg(rng) % 1_000_000,
        },
        1 => ShardRequest::Supports {
            backend: label(rng),
            spec: random_spec(rng),
        },
        2 => ShardRequest::Evaluate {
            backend: label(rng),
            spec: random_spec(rng),
        },
        3 => ShardRequest::EvaluateBatch {
            backend: label(rng),
            specs: (0..lcg(rng) % 8).map(|_| random_spec(rng)).collect(),
        },
        _ => ShardRequest::Stats,
    }
}

fn random_response(rng: &mut u64) -> ShardResponse {
    match lcg(rng) % 6 {
        0 => ShardResponse::Backends {
            names: (0..lcg(rng) % 5).map(|_| label(rng)).collect(),
            protocol: lcg(rng) % 8,
            ring: if lcg(rng).is_multiple_of(2) {
                None
            } else {
                Some(format!("/dev/shm/rsn-ring-{}.ring", lcg(rng) % 100_000))
            },
            window: if lcg(rng).is_multiple_of(2) {
                None
            } else {
                Some(lcg(rng) % 128 + 1)
            },
        },
        1 => ShardResponse::Supported(lcg(rng).is_multiple_of(2)),
        2 => ShardResponse::Evaluated(shared(random_result(rng))),
        3 => ShardResponse::EvaluatedBatch(
            (0..lcg(rng) % 6)
                .map(|_| shared(random_result(rng)))
                .collect(),
        ),
        4 => ShardResponse::Stats(random_stats(rng)),
        _ => ShardResponse::Rejected(label(rng)),
    }
}

const SEED: u64 = 0xB1_AB1E_5EED;
const SWEEP: u64 = 400;

#[test]
fn specs_round_trip_identically_and_match_json() {
    let mut rng = SEED;
    let mut scratch = Vec::new();
    for i in 0..SWEEP {
        let spec = random_spec(&mut rng);
        scratch.clear();
        binary::encode_spec(&mut scratch, &spec);
        let decoded =
            binary::decode_spec(&scratch).unwrap_or_else(|e| panic!("seed {SEED:#x} doc {i}: {e}"));
        assert_eq!(decoded, spec, "seed {SEED:#x} doc {i}");
        // JSON pipeline agrees.
        let via_json = json::workload_spec_from_json(
            &json::parse(&json::workload_spec_json(&spec).to_pretty()).expect("parses"),
        )
        .expect("json decodes");
        assert_eq!(via_json, decoded, "seed {SEED:#x} doc {i}");
    }
}

#[test]
fn reports_round_trip_identically_and_match_json() {
    let mut rng = SEED ^ 1;
    let mut scratch = Vec::new();
    for i in 0..SWEEP {
        let report = random_report(&mut rng);
        scratch.clear();
        binary::encode_report(&mut scratch, &report);
        let decoded = binary::decode_report(&scratch)
            .unwrap_or_else(|e| panic!("seed {SEED:#x} doc {i}: {e}"));
        assert_eq!(decoded, report, "seed {SEED:#x} doc {i}");
        let via_json = json::report_from_json(
            &json::parse(&json::report_json(&report).to_pretty()).expect("parses"),
        )
        .expect("json decodes");
        assert_eq!(via_json, decoded, "seed {SEED:#x} doc {i}");
    }
}

#[test]
fn errors_and_results_round_trip_identically_and_match_json() {
    let mut rng = SEED ^ 2;
    let mut scratch = Vec::new();
    for i in 0..SWEEP {
        let error = random_error(&mut rng);
        scratch.clear();
        binary::encode_error(&mut scratch, &error);
        let decoded = binary::decode_error(&scratch)
            .unwrap_or_else(|e| panic!("seed {SEED:#x} doc {i}: {e}"));
        assert_eq!(decoded, error, "seed {SEED:#x} doc {i}");
        let via_json =
            json::error_from_json(&json::parse(&json::error_json(&error).to_pretty()).unwrap())
                .expect("json decodes");
        assert_eq!(via_json, decoded, "seed {SEED:#x} doc {i}");

        let result = random_result(&mut rng);
        scratch.clear();
        binary::encode_result(&mut scratch, &result);
        assert_eq!(
            binary::decode_result(&scratch).expect("result decodes"),
            result,
            "seed {SEED:#x} doc {i}"
        );
    }
}

#[test]
fn stats_round_trip_identically_and_match_json() {
    let mut rng = SEED ^ 3;
    let mut scratch = Vec::new();
    for i in 0..SWEEP / 4 {
        let stats = random_stats(&mut rng);
        scratch.clear();
        binary::encode_stats(&mut scratch, &stats);
        let decoded = binary::decode_stats(&scratch)
            .unwrap_or_else(|e| panic!("seed {SEED:#x} doc {i}: {e}"));
        assert_eq!(decoded, stats, "seed {SEED:#x} doc {i}");
        let via_json =
            json::stats_from_json(&json::parse(&json::stats_json(&stats).to_pretty()).unwrap())
                .expect("json decodes");
        assert_eq!(via_json, decoded, "seed {SEED:#x} doc {i}");
    }
}

#[test]
fn whole_messages_round_trip_identically_and_match_json() {
    let mut rng = SEED ^ 4;
    let mut scratch = Vec::new();
    for i in 0..SWEEP {
        let id = lcg(&mut rng) % 1_000_000;
        let request = random_request(&mut rng);
        scratch.clear();
        binary::encode_request(&mut scratch, id, &request);
        assert_eq!(
            binary::decode_request(&scratch).expect("request decodes"),
            (id, request.clone()),
            "seed {SEED:#x} doc {i}"
        );
        let via_json =
            ShardRequest::from_json(&json::parse(&request.to_json(id).to_pretty()).unwrap())
                .expect("json decodes");
        assert_eq!(via_json, (id, request), "seed {SEED:#x} doc {i}");

        let response = random_response(&mut rng);
        scratch.clear();
        binary::encode_response(&mut scratch, id, &response);
        let (bin_id, bin_response) = binary::decode_response(&scratch).expect("response decodes");
        assert_eq!(
            (bin_id, &bin_response),
            (id, &response),
            "seed {SEED:#x} doc {i}"
        );
        let via_json =
            ShardResponse::from_json(&json::parse(&response.to_json(id).to_pretty()).unwrap())
                .expect("json decodes");
        assert_eq!(via_json, (id, bin_response), "seed {SEED:#x} doc {i}");
    }
}

// ---------------------------------------------------------------------------
// Shared-memory ring transport: wraparound fidelity and hostile-input fuzz
// ---------------------------------------------------------------------------

use rsn_serve::shm::{Direction, RingConn, Segment};
use rsn_serve::wire::{
    decode_request_payload, write_request_frame, FrameBuffer, WireEncoding, WireError,
};
use std::io::Read as _;
use std::time::{Duration, Instant};

fn ring_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rsn-ring-fuzz-{}-{name}.ring", std::process::id()))
}

#[test]
fn ring_frames_survive_wraparound_byte_identically() {
    let path = ring_path("wrap");
    let _ = std::fs::remove_file(&path);
    let segment = Segment::create(&path, 4096).expect("create segment");
    let mut producer = segment.producer(Direction::ClientToServer);
    let consumer_segment = Segment::open(&path).expect("peer mapping");
    let mut consumer = consumer_segment.consumer(Direction::ClientToServer);

    let mut rng = SEED ^ 7;
    let mut scratch = Vec::new();
    let mut wire = Vec::new();
    let mut requests = Vec::new();
    for _ in 0..64 {
        let id = lcg(&mut rng) % 1_000_000;
        let request = random_request(&mut rng);
        write_request_frame(&mut wire, id, &request, WireEncoding::Binary, &mut scratch)
            .expect("encode");
        requests.push((id, request));
    }
    // Push the burst through the tiny ring in ragged chunks, draining only
    // when the producer stalls: every frame crosses the wraparound boundary
    // many times over.
    let mut acc = Vec::new();
    let mut buf = [0u8; 1024];
    let mut offset = 0;
    while offset < wire.len() {
        let end = (offset + (lcg(&mut rng) % 900 + 1) as usize).min(wire.len());
        while offset < end {
            let n = producer.write_some(&wire[offset..end]).expect("ring write");
            offset += n;
            if n == 0 {
                let got = consumer.read_some(&mut buf).expect("ring read");
                acc.extend_from_slice(&buf[..got]);
            }
        }
    }
    loop {
        let got = consumer.read_some(&mut buf).expect("ring read");
        if got == 0 {
            break;
        }
        acc.extend_from_slice(&buf[..got]);
    }
    assert_eq!(acc, wire, "bytes through the ring are identical");

    let mut frames = FrameBuffer::new();
    let mut src: &[u8] = &acc;
    while frames.fill(&mut src).expect("fill") > 0 {}
    let mut decoded = Vec::new();
    while frames.take_frame(&mut scratch).expect("frame") {
        let (id, request, encoding) = decode_request_payload(&scratch).expect("decode");
        assert_eq!(encoding, WireEncoding::Binary);
        decoded.push((id, request));
    }
    assert_eq!(decoded, requests, "every frame decodes back identically");
}

#[test]
fn torn_length_prefixes_and_hostile_lengths_never_hang_or_panic() {
    let mut scratch = Vec::new();
    let mut wire = Vec::new();
    write_request_frame(
        &mut wire,
        7,
        &ShardRequest::Hello { protocol: 5 },
        WireEncoding::Binary,
        &mut scratch,
    )
    .expect("encode");
    // A frame torn at every possible byte boundary — mid-prefix or
    // mid-payload — yields no frame until the missing tail arrives.
    for split in 1..wire.len() {
        let mut frames = FrameBuffer::new();
        let mut head: &[u8] = &wire[..split];
        frames.fill(&mut head).expect("fill head");
        assert!(
            !frames
                .take_frame(&mut scratch)
                .expect("no error on torn frame"),
            "split {split}: torn frame must stay incomplete"
        );
        let mut tail: &[u8] = &wire[split..];
        frames.fill(&mut tail).expect("fill tail");
        assert!(frames.take_frame(&mut scratch).expect("frame completes"));
        let (id, request, _) = decode_request_payload(&scratch).expect("decodes");
        assert_eq!((id, request), (7, ShardRequest::Hello { protocol: 5 }));
    }
    // An absurd length prefix is rejected outright — no allocation sized
    // by the attacker, no waiting for 4 GiB that never comes.
    let mut frames = FrameBuffer::new();
    let mut src: &[u8] = &u32::MAX.to_be_bytes();
    frames.fill(&mut src).expect("fill");
    assert!(matches!(
        frames.take_frame(&mut scratch),
        Err(WireError::FrameTooLarge(_))
    ));
}

#[test]
fn garbage_payloads_decode_to_errors_never_panics() {
    let mut rng = SEED ^ 8;
    for _ in 0..SWEEP {
        let len = (lcg(&mut rng) % 64) as usize;
        let mut payload: Vec<u8> = (0..len).map(|_| (lcg(&mut rng) & 0xFF) as u8).collect();
        // Whatever the leading byte selects (JSON or binary), hostile
        // bytes must decode to an error, never a panic.
        let _ = decode_request_payload(&payload);
        if !payload.is_empty() {
            payload[0] = binary::MAGIC;
            let _ = decode_request_payload(&payload);
        }
    }
}

#[test]
fn dead_or_silent_ring_peers_fail_promptly_instead_of_hanging() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = std::net::TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    let path = ring_path("dead");
    let _ = std::fs::remove_file(&path);
    let segment = Segment::create(&path, 4096).expect("create segment");
    let mut conn = RingConn::new(client, &segment, Duration::from_millis(300)).expect("ring conn");
    let mut buf = [0u8; 8];
    // Silent but alive peer: the read budget bounds the wait.
    let started = Instant::now();
    let err = conn.read(&mut buf).expect_err("nothing was sent");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
    assert!(started.elapsed() < Duration::from_secs(10));
    // Dead peer: the liveness socket reports the EOF and the read aborts
    // without waiting out the whole budget pointlessly.
    drop(server);
    let started = Instant::now();
    let err = conn.read(&mut buf).expect_err("peer is gone");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::ConnectionAborted | std::io::ErrorKind::TimedOut
        ),
        "{err}"
    );
    assert!(started.elapsed() < Duration::from_secs(10));
}

#[test]
fn non_finite_floats_survive_binary_exactly() {
    // JSON flattens non-finite floats to null; the binary codec must not.
    let mut report = EvalReport::new("b", "w");
    report.latency_s = Some(f64::INFINITY);
    report.metrics.insert("nan", f64::NAN);
    let mut scratch = Vec::new();
    binary::encode_report(&mut scratch, &report);
    let decoded = binary::decode_report(&scratch).expect("decodes");
    assert_eq!(decoded.latency_s, Some(f64::INFINITY));
    assert!(decoded.metrics["nan"].is_nan());
}

/// LEB128, matching the codec's internal `put_varint` (the writer is
/// private; strings on the wire are varint-length-prefixed UTF-8).
fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[test]
fn borrowed_string_reads_match_owned_over_a_seeded_sweep() {
    let mut rng = SEED ^ 6;
    for i in 0..SWEEP {
        let labels: Vec<String> = (0..lcg(&mut rng) % 16 + 1)
            .map(|_| label(&mut rng))
            .collect();
        let mut buf = Vec::new();
        for l in &labels {
            put_varint(&mut buf, l.len() as u64);
            buf.extend_from_slice(l.as_bytes());
        }
        let mut borrowed = binary::Reader::new(&buf);
        let mut owned = binary::Reader::new(&buf);
        let range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
        for (j, l) in labels.iter().enumerate() {
            let b = borrowed
                .str_ref()
                .unwrap_or_else(|e| panic!("seed {SEED:#x} doc {i} str {j}: {e}"));
            let o = owned
                .str()
                .unwrap_or_else(|e| panic!("seed {SEED:#x} doc {i} str {j}: {e}"));
            assert_eq!(b, l.as_str(), "seed {SEED:#x} doc {i} str {j}");
            assert_eq!(o, *l, "seed {SEED:#x} doc {i} str {j}");
            // The borrowed read is genuinely zero-copy: the returned slice
            // points into the frame buffer itself.
            assert!(
                l.is_empty() || range.contains(&(b.as_ptr() as usize)),
                "seed {SEED:#x} doc {i} str {j}: borrowed slice escaped the frame"
            );
        }
        borrowed.finish().expect("borrowed reader consumed all");
        owned.finish().expect("owned reader consumed all");
    }
}

#[test]
fn interner_deduplicates_repeated_names_into_shared_arcs() {
    let mut interner = binary::Interner::new();
    let a = interner.intern("rsn-xnn");
    let b = interner.intern("rsn-xnn");
    assert!(Arc::ptr_eq(&a, &b), "repeat interning must share storage");
    let c = interner.intern("charm");
    assert!(!Arc::ptr_eq(&a, &c));
    assert_eq!(&*c, "charm");
}

#[test]
fn binary_images_are_deterministic_and_compact() {
    let mut rng = SEED ^ 5;
    for _ in 0..32 {
        let response = ShardResponse::Evaluated(shared(Ok(random_report(&mut rng))));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        binary::encode_response(&mut a, 3, &response);
        binary::encode_response(&mut b, 3, &response);
        assert_eq!(a, b, "same document, same bytes");
        let json_len = response.to_json(3).to_pretty().len();
        assert!(
            a.len() < json_len,
            "binary ({}) must undercut JSON ({})",
            a.len(),
            json_len
        );
    }
}

// ---------------------------------------------------------------------------
// Protocol-7 symbol dictionaries: round-trip, compaction, hostile inputs
// ---------------------------------------------------------------------------

use rsn_serve::binary::{ConnCodec, RxSymbols};

#[test]
fn dict_messages_round_trip_identically() {
    let mut rng = SEED ^ 9;
    let mut client = ConnCodec::new();
    let mut server = ConnCodec::new();
    let mut payload = Vec::new();
    for i in 0..SWEEP {
        let id = lcg(&mut rng) % 1_000_000;
        let request = random_request(&mut rng);
        payload.clear();
        binary::encode_request_dict(&mut payload, id, &request, &mut client.tx);
        let decoded = if payload.first() == Some(&binary::DICT_MAGIC) {
            binary::decode_request_dict(&payload, &mut server.rx).expect("dict request decodes")
        } else {
            // Label-free requests keep their plain image byte for byte.
            let mut plain = Vec::new();
            binary::encode_request(&mut plain, id, &request);
            assert_eq!(payload, plain, "seed {SEED:#x} doc {i}");
            binary::decode_request(&payload).expect("plain request decodes")
        };
        assert_eq!(decoded, (id, request), "seed {SEED:#x} doc {i}");

        let response = random_response(&mut rng);
        payload.clear();
        binary::encode_response_dict(&mut payload, id, &response, &mut server.tx);
        let (got_id, got) = if payload.first() == Some(&binary::DICT_MAGIC) {
            binary::decode_response_dict(&payload, &mut client.rx).expect("dict response decodes")
        } else {
            let mut plain = Vec::new();
            binary::encode_response(&mut plain, id, &response);
            assert_eq!(payload, plain, "seed {SEED:#x} doc {i}");
            binary::decode_response(&payload).expect("plain response decodes")
        };
        assert_eq!((got_id, got), (id, response), "seed {SEED:#x} doc {i}");
    }
}

#[test]
fn dict_reports_shrink_on_reuse_and_count_defines_and_hits() {
    let mut rng = SEED ^ 10;
    let report = random_report(&mut rng);
    let response = ShardResponse::Evaluated(shared(Ok(report)));
    let mut codec = ConnCodec::new();
    let mut rx = RxSymbols::new();
    let (mut first, mut second) = (Vec::new(), Vec::new());
    binary::encode_response_dict(&mut first, 1, &response, &mut codec.tx);
    binary::encode_response_dict(&mut second, 1, &response, &mut codec.tx);
    assert!(
        second.len() < first.len(),
        "repeat frame ({}) must undercut the defining frame ({})",
        second.len(),
        first.len()
    );
    // And undercut the plain binary image too — that is the whole point.
    let mut plain = Vec::new();
    binary::encode_response(&mut plain, 1, &response);
    assert!(
        second.len() < plain.len(),
        "repeat dict frame ({}) must undercut plain binary ({})",
        second.len(),
        plain.len()
    );
    assert_eq!(
        binary::decode_response_dict(&first, &mut rx).expect("first decodes"),
        binary::decode_response_dict(&second, &mut rx).expect("second decodes"),
    );
    let (tx_defines, tx_hits) = codec.tx.take_counts();
    let (rx_defines, rx_hits) = rx.take_counts();
    assert_eq!((tx_defines, tx_hits), (rx_defines, rx_hits));
    // The report names a backend and a workload at minimum: at least two
    // defines in the first frame, each re-referenced by the second.
    assert!(tx_defines >= 2, "defines: {tx_defines}");
    assert!(
        tx_hits >= tx_defines,
        "hits {tx_hits} vs defines {tx_defines}"
    );
}

/// Hand-builds the head of a dict `supports` frame: magic, tag, id.
fn dict_supports_head(id: u64) -> Vec<u8> {
    let mut out = vec![binary::DICT_MAGIC, 0x02];
    put_varint(&mut out, id);
    out
}

#[test]
fn dict_reference_outside_the_table_is_an_error() {
    let mut payload = dict_supports_head(7);
    put_varint(&mut payload, 2 + 5); // reference id 5 against an empty table
    let mut rx = RxSymbols::new();
    let err = binary::decode_request_dict(&payload, &mut rx).expect_err("out-of-range reference");
    assert!(err.to_string().contains("dictionary reference"), "{err}");
}

#[test]
fn dict_duplicate_define_is_an_error_and_never_reinterns() {
    let spec = WorkloadSpec::SquareGemm { n: 64 };
    let request = ShardRequest::Supports {
        backend: "shard".to_string(),
        spec: spec.clone(),
    };
    let mut codec = ConnCodec::new();
    let mut rx = RxSymbols::new();
    let mut first = Vec::new();
    binary::encode_request_dict(&mut first, 1, &request, &mut codec.tx);
    binary::decode_request_dict(&first, &mut rx).expect("defining frame decodes");

    // A second define for id 0 (or any id not equal to the table length)
    // must be rejected, not silently rebind the slot.
    for bogus_id in [0u64, 2, 4096] {
        let mut dup = dict_supports_head(2);
        put_varint(&mut dup, 1); // DSTR_DEFINE
        put_varint(&mut dup, bogus_id);
        put_varint(&mut dup, 6);
        dup.extend_from_slice(b"poison");
        let err =
            binary::decode_request_dict(&dup, &mut rx).expect_err("duplicate/out-of-order define");
        assert!(err.to_string().contains("out of order"), "{err}");
    }

    // The original binding survives: a reference frame still resolves to
    // the first definition.
    let mut reference = Vec::new();
    binary::encode_request_dict(&mut reference, 3, &request, &mut codec.tx);
    assert!(
        reference.windows(5).all(|w| w != b"shard"),
        "second frame must reference, not define"
    );
    let (_, decoded) = binary::decode_request_dict(&reference, &mut rx).expect("reference decodes");
    assert_eq!(
        decoded,
        ShardRequest::Supports {
            backend: "shard".to_string(),
            spec,
        }
    );
}

#[test]
fn dict_define_past_the_table_bound_is_an_error() {
    let mut codec = ConnCodec::new();
    let mut rx = RxSymbols::new();
    let mut payload = Vec::new();
    // Fill the table to the bound through the real encoder.
    for i in 0..binary::DICT_CAP {
        let request = ShardRequest::Supports {
            backend: format!("backend-{i:04}"),
            spec: WorkloadSpec::SquareGemm { n: 1 },
        };
        payload.clear();
        binary::encode_request_dict(&mut payload, i as u64, &request, &mut codec.tx);
        binary::decode_request_dict(&payload, &mut rx).expect("in-bound define decodes");
    }
    // The encoder itself now falls back to inline strings (no table slot).
    let overflow = ShardRequest::Supports {
        backend: "one-too-many".to_string(),
        spec: WorkloadSpec::SquareGemm { n: 1 },
    };
    payload.clear();
    binary::encode_request_dict(&mut payload, 9_999, &overflow, &mut codec.tx);
    binary::decode_request_dict(&payload, &mut rx).expect("inline fallback decodes");
    // A peer that defines past the bound anyway is rejected.
    let mut hostile = dict_supports_head(10_000);
    put_varint(&mut hostile, 1); // DSTR_DEFINE
    put_varint(&mut hostile, binary::DICT_CAP as u64);
    put_varint(&mut hostile, 4);
    hostile.extend_from_slice(b"evil");
    let err = binary::decode_request_dict(&hostile, &mut rx).expect_err("define past the bound");
    assert!(err.to_string().contains("table bound"), "{err}");
}

#[test]
fn truncated_and_garbage_dict_payloads_error_never_panic() {
    let mut codec = ConnCodec::new();
    let request = ShardRequest::Evaluate {
        backend: "shard".to_string(),
        spec: WorkloadSpec::SquareGemm { n: 64 },
    };
    let mut whole = Vec::new();
    binary::encode_request_dict(&mut whole, 42, &request, &mut codec.tx);
    // Every strict prefix — including ones torn mid-define — must decode
    // to an error against a fresh table, never panic or hang.
    for split in 0..whole.len() {
        let mut rx = RxSymbols::new();
        assert!(
            binary::decode_request_dict(&whole[..split], &mut rx).is_err(),
            "prefix of {split} bytes must not decode"
        );
    }
    // Random garbage behind the dict magic errors too (both directions).
    let mut rng = SEED ^ 11;
    for _ in 0..SWEEP {
        let len = (lcg(&mut rng) % 64) as usize;
        let mut payload: Vec<u8> = (0..len).map(|_| (lcg(&mut rng) & 0xFF) as u8).collect();
        if payload.is_empty() {
            continue;
        }
        payload[0] = binary::DICT_MAGIC;
        let mut rx = RxSymbols::new();
        let _ = binary::decode_request_dict(&payload, &mut rx);
        let mut rx = RxSymbols::new();
        let _ = binary::decode_response_dict(&payload, &mut rx);
    }
}
