//! Concurrency guarantees of the evaluation service.
//!
//! * Every accepted request is answered exactly once, under seeded
//!   multi-producer stress with mixed priorities and selectors.
//! * Cache-deduplicated requests return byte-identical reports (pinned via
//!   the JSON emitter, not just `PartialEq`).
//! * A poisoned (panicking) or erroring backend fails only requests that
//!   selected it — no worker-pool deadlock, and the service keeps serving.
//! * The service grid path is result-identical to `Evaluator::evaluate_grid`
//!   (the guarantee that lets table binaries swap call sites byte-for-byte).

use rsn_eval::{
    Backend, CharmBackend, EvalError, EvalReport, Evaluator, WorkloadSpec, XnnAnalyticBackend,
};
use rsn_serve::{json, BackendSelector, EvalRequest, EvalService, Priority, ServiceConfig};
use rsn_workloads::bert::BertConfig;
use std::sync::Arc;
use std::time::Duration;

/// Generous bound for "the service did not deadlock".
const STRESS_TIMEOUT: Duration = Duration::from_secs(30);

/// A deterministic backend answering square GEMMs with latency `n` ns.
struct SquareOnly {
    name: &'static str,
}

impl Backend for SquareOnly {
    fn name(&self) -> &str {
        self.name
    }
    fn supports(&self, w: &WorkloadSpec) -> bool {
        matches!(w, WorkloadSpec::SquareGemm { .. })
    }
    fn evaluate(&self, w: &WorkloadSpec) -> Result<EvalReport, EvalError> {
        match w {
            WorkloadSpec::SquareGemm { n } => {
                let mut report = EvalReport::new(self.name, w.name());
                report.latency_s = Some(*n as f64 * 1e-9);
                report
                    .metrics
                    .insert("n_cubed".to_string(), (*n * *n * *n) as f64);
                Ok(report)
            }
            _ => Err(EvalError::Unsupported {
                backend: self.name.to_string(),
                workload: w.name(),
            }),
        }
    }
}

/// A poisoned backend: panics on every multiple-of-three size, errors on
/// every multiple-of-five, answers the rest.
struct Poisoned;

impl Backend for Poisoned {
    fn name(&self) -> &str {
        "poisoned"
    }
    fn supports(&self, w: &WorkloadSpec) -> bool {
        matches!(w, WorkloadSpec::SquareGemm { .. })
    }
    fn evaluate(&self, w: &WorkloadSpec) -> Result<EvalReport, EvalError> {
        match w {
            WorkloadSpec::SquareGemm { n } if n % 3 == 0 => {
                panic!("poisoned backend refuses n={n}")
            }
            WorkloadSpec::SquareGemm { n } if n % 5 == 0 => Err(EvalError::TooLarge {
                backend: "poisoned".to_string(),
                workload: w.name(),
                limit: "multiples of five".to_string(),
            }),
            WorkloadSpec::SquareGemm { n } => {
                let mut report = EvalReport::new("poisoned", w.name());
                report.latency_s = Some(*n as f64);
                Ok(report)
            }
            _ => Err(EvalError::Unsupported {
                backend: "poisoned".to_string(),
                workload: w.name(),
            }),
        }
    }
}

/// Deterministic 64-bit LCG for seeding the stress mixes.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

#[test]
fn every_request_gets_exactly_one_response() {
    let service = Arc::new(EvalService::with_config(
        Evaluator::empty()
            .with_backend(Box::new(SquareOnly { name: "alpha" }))
            .with_backend(Box::new(SquareOnly { name: "beta" }))
            .with_backend(Box::new(SquareOnly { name: "gamma" })),
        ServiceConfig {
            max_batch: 8,
            batch_deadline: Duration::from_millis(1),
            workers_per_backend: 2,
            ..ServiceConfig::default()
        },
    ));
    let producers = 8usize;
    let per_producer = 50usize;
    let mut joins = Vec::new();
    for producer in 0..producers {
        let service = Arc::clone(&service);
        joins.push(std::thread::spawn(move || {
            let mut rng = 0x5eed ^ (producer as u64) << 32;
            let mut answered = 0usize;
            for _ in 0..per_producer {
                // Mixed specs (16 distinct sizes → heavy dedup), selectors
                // and priorities.
                let n = (lcg(&mut rng) % 16 + 1) as usize;
                let selector = match lcg(&mut rng) % 3 {
                    0 => BackendSelector::All,
                    1 => BackendSelector::Named(vec!["beta".to_string()]),
                    _ => BackendSelector::Named(vec![
                        "gamma".to_string(),
                        "alpha".to_string(),
                        "nonexistent".to_string(),
                    ]),
                };
                let expected_entries = match &selector {
                    BackendSelector::All => 3,
                    BackendSelector::Named(names) => names.len(),
                };
                let priority = match lcg(&mut rng) % 3 {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                };
                let handle = service.submit(EvalRequest {
                    spec: WorkloadSpec::SquareGemm { n },
                    backends: selector,
                    priority,
                });
                let response = handle
                    .wait_timeout(STRESS_TIMEOUT)
                    .expect("request timed out: worker pool deadlock?");
                assert_eq!(response.results.len(), expected_entries);
                // Exactly one response per handle: a second receive finds
                // nothing.
                assert!(handle.wait_timeout(Duration::from_millis(1)).is_none());
                answered += 1;
            }
            answered
        }));
    }
    let answered: usize = joins.into_iter().map(|j| j.join().expect("producer")).sum();
    assert_eq!(answered, producers * per_producer);
    let stats = service.stats();
    assert_eq!(stats.submitted, (producers * per_producer) as u64);
    assert_eq!(stats.completed, stats.submitted);
    // 16 distinct sizes across 3 backends bound the distinct evaluations.
    assert!(stats.evaluations <= 16 * 3, "cache failed to deduplicate");
    assert_eq!(stats.eval_errors, 0);
    assert!(stats.cache_hits + stats.inflight_merged > 0);
}

#[test]
fn deduplicated_requests_return_byte_identical_reports() {
    let service = Arc::new(EvalService::with_config(
        Evaluator::empty()
            .with_backend(Box::new(SquareOnly { name: "alpha" }))
            .with_backend(Box::new(SquareOnly { name: "beta" })),
        ServiceConfig {
            max_batch: 32,
            batch_deadline: Duration::from_millis(2),
            workers_per_backend: 2,
            ..ServiceConfig::default()
        },
    ));
    let submitters = 24usize;
    let handles: Vec<_> = (0..submitters)
        .map(|_| service.submit(EvalRequest::all(WorkloadSpec::SquareGemm { n: 777 })))
        .collect();
    let rendered: Vec<String> = handles
        .into_iter()
        .map(|h| {
            let response = h.wait_timeout(STRESS_TIMEOUT).expect("no deadlock");
            response
                .results
                .iter()
                .map(|(name, result)| format!("{name}:{}", json::result_json(result).to_pretty()))
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect();
    for other in &rendered[1..] {
        assert_eq!(&rendered[0], other, "deduplicated responses diverged");
    }
    let stats = service.stats();
    // One evaluation per backend; everyone else was served from the cache
    // (completed hit or in-flight merge).
    assert_eq!(stats.evaluations, 2);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(
        stats.cache_hits + stats.inflight_merged,
        (submitters as u64 - 1) * 2
    );
}

#[test]
fn poisoned_backend_fails_only_its_own_requests() {
    let service = EvalService::with_config(
        Evaluator::empty()
            .with_backend(Box::new(SquareOnly { name: "healthy" }))
            .with_backend(Box::new(Poisoned)),
        ServiceConfig {
            max_batch: 4,
            batch_deadline: Duration::from_millis(1),
            workers_per_backend: 1,
            ..ServiceConfig::default()
        },
    );
    // Sizes 1..=15 hit the panic path (3,6,9,12,15), the error path (5,10)
    // and the healthy path, repeatedly, on a single-worker shard: any
    // panic-induced worker loss or cache wedge would deadlock later sizes.
    let handles: Vec<_> = (1..=15usize)
        .map(|n| service.submit(EvalRequest::all(WorkloadSpec::SquareGemm { n })))
        .collect();
    for (n, handle) in (1..=15usize).zip(handles) {
        let response = handle
            .wait_timeout(STRESS_TIMEOUT)
            .expect("poisoned backend wedged the service");
        let healthy = response.result("healthy").expect("healthy entry");
        assert!(healthy.is_ok(), "healthy backend failed for n={n}");
        let poisoned = response.result("poisoned").expect("poisoned entry");
        if n % 3 == 0 {
            match poisoned {
                Err(EvalError::Panicked {
                    backend, reason, ..
                }) => {
                    assert_eq!(backend, "poisoned");
                    assert!(reason.contains("refuses"), "unexpected reason: {reason}");
                }
                other => panic!("expected panic error for n={n}, got {other:?}"),
            }
        } else if n % 5 == 0 {
            assert!(
                matches!(poisoned, Err(EvalError::TooLarge { .. })),
                "expected TooLarge for n={n}"
            );
        } else {
            assert!(poisoned.is_ok(), "poisoned backend should answer n={n}");
        }
    }
    // The shard survived every panic and still answers fresh work.
    let late = service
        .submit(EvalRequest::named(
            WorkloadSpec::SquareGemm { n: 1024 },
            vec!["poisoned".to_string()],
        ))
        .wait_timeout(STRESS_TIMEOUT)
        .expect("shard died after panics");
    assert!(late.results[0].1.is_ok());
    let stats = service.stats();
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.eval_errors, 7); // 5 panics + 2 errors
}

#[test]
fn service_grid_is_result_identical_to_evaluator_grid() {
    let workloads: Vec<WorkloadSpec> = [1usize, 2, 4, 8]
        .iter()
        .map(|&b| WorkloadSpec::EncoderLayer {
            cfg: BertConfig::bert_large(384, b),
        })
        .collect();
    let build = || {
        Evaluator::empty()
            .with_backend(Box::new(XnnAnalyticBackend::new()))
            .with_backend(Box::new(CharmBackend::new()))
    };
    let direct = build().evaluate_grid(&workloads);
    let service = EvalService::new(build());
    let served = service.evaluate_grid(&workloads);
    assert_eq!(direct, served);
    // And byte-identical once emitted, not merely PartialEq-equal.
    let names: Vec<String> = service.backend_names().to_vec();
    assert_eq!(
        json::grid_json(&names, &workloads, &direct).to_pretty(),
        json::grid_json(&names, &workloads, &served).to_pretty()
    );
}
