//! Loopback integration tests of the epoll reactor front end and the
//! protocol-5 multiplexed client.
//!
//! The tests pin the contract the reactor exists for:
//!
//! * grids served by the reactor are **byte-identical** to the in-process
//!   path (and to the threads front end);
//! * one multiplexed connection completes requests **out of order** —
//!   a fast request overtakes a slow one submitted before it;
//! * a `cancel` frame suppresses the target's response and frees its
//!   credit slot without wedging the connection;
//! * one reactor thread serves **≥256 concurrent connections**;
//! * a v5 client against a v4-only shard falls back to strict FIFO,
//!   byte-identically, and never emits a cancel frame;
//! * killing a reactor shard mid-stream yields prompt
//!   [`EvalError::Transport`] errors, never hangs.

use rsn_eval::{Backend, CharmBackend, EvalError, Evaluator, WorkloadSpec, XnnAnalyticBackend};
use rsn_serve::json::grid_json;
use rsn_serve::remote::ShardServer;
use rsn_serve::wire::{
    decode_request_payload, decode_response_payload, write_request_frame, write_response_frame,
    FrameBuffer, ShardRequest, ShardResponse, WireEncoding, PROTOCOL_VERSION,
};
use rsn_serve::{
    BackendSelector, EvalService, FrontendPolicy, Priority, RemoteConfig, ServiceConfig,
    ShardRouter,
};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn reactor_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers_per_backend: workers,
        remote: RemoteConfig {
            frontend: FrontendPolicy::Reactor,
            ..RemoteConfig::default()
        },
        ..ServiceConfig::default()
    }
}

fn reactor_server(evaluator: Evaluator, workers: usize) -> ShardServer {
    ShardServer::bind(
        "127.0.0.1:0",
        EvalService::with_config(evaluator, reactor_config(workers)),
    )
    .expect("bind reactor shard")
}

fn paper_backends() -> Evaluator {
    Evaluator::empty()
        .with_backend(Box::new(XnnAnalyticBackend::new()))
        .with_backend(Box::new(CharmBackend::new()))
}

/// A backend whose evaluation sleeps `n` milliseconds for
/// `SquareGemm { n }`: request latency is controlled by the spec, so the
/// tests can stage a slow request being overtaken by a fast one.
struct StaggeredSquare;

impl Backend for StaggeredSquare {
    fn name(&self) -> &str {
        "stagger"
    }
    fn supports(&self, w: &WorkloadSpec) -> bool {
        matches!(w, WorkloadSpec::SquareGemm { .. })
    }
    fn evaluate(&self, w: &WorkloadSpec) -> Result<rsn_eval::EvalReport, EvalError> {
        if let WorkloadSpec::SquareGemm { n } = w {
            std::thread::sleep(Duration::from_millis((*n).min(2000) as u64));
        }
        Ok(rsn_eval::EvalReport::new(self.name(), w.name()))
    }
}

/// A raw protocol-5 wire client: hand-written frames over one socket, so
/// the tests control request ids and observe completion order directly.
struct RawClient {
    stream: TcpStream,
    frames: FrameBuffer,
    payload: Vec<u8>,
    scratch: Vec<u8>,
}

impl RawClient {
    fn connect(addr: &str) -> RawClient {
        let stream = TcpStream::connect(addr).expect("connect to reactor shard");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        RawClient {
            stream,
            frames: FrameBuffer::new(),
            payload: Vec::new(),
            scratch: Vec::new(),
        }
    }

    fn send(&mut self, id: u64, request: &ShardRequest) {
        write_request_frame(
            &mut self.stream,
            id,
            request,
            WireEncoding::Binary,
            &mut self.scratch,
        )
        .expect("send request frame");
    }

    fn recv(&mut self) -> (u64, ShardResponse) {
        loop {
            if self
                .frames
                .take_frame(&mut self.payload)
                .expect("well-formed frame")
            {
                return decode_response_payload(&self.payload).expect("response decodes");
            }
            let n = self.frames.fill(&mut self.stream).expect("socket read");
            assert!(n > 0, "shard closed the connection mid-stream");
        }
    }

    /// Hello handshake; returns the advertised credit window.
    fn hello(&mut self, id: u64) -> u64 {
        self.send(
            id,
            &ShardRequest::Hello {
                protocol: PROTOCOL_VERSION,
            },
        );
        let (got, response) = self.recv();
        assert_eq!(got, id);
        match response {
            ShardResponse::Backends {
                protocol,
                ring,
                window,
                ..
            } => {
                assert_eq!(protocol, PROTOCOL_VERSION);
                assert_eq!(ring, None, "the reactor never offers shm rings");
                window.expect("v5 peers are offered a credit window")
            }
            other => panic!("expected a Backends hello answer, got {other:?}"),
        }
    }
}

#[test]
fn reactor_grid_is_byte_identical_to_in_process() {
    let server = reactor_server(paper_backends(), 2);
    let service = ShardRouter::new()
        .remote(&server.local_addr().to_string())
        .expect("loopback shard reachable")
        .build()
        .expect("unique shard names");
    assert_eq!(service.backend_names(), ["rsn-xnn", "charm"]);

    let workloads = vec![
        WorkloadSpec::SquareGemm { n: 1024 },
        WorkloadSpec::SquareGemm { n: 2048 },
        // Unsupported by both backends: error entries must cross the
        // multiplexed wire and re-emit identically too.
        WorkloadSpec::DatapathProperties,
    ];
    let names: Vec<String> = service.backend_names().to_vec();
    assert_eq!(
        grid_json(&names, &workloads, &service.evaluate_grid(&workloads)).to_pretty(),
        grid_json(
            &names,
            &workloads,
            &paper_backends().evaluate_grid(&workloads)
        )
        .to_pretty(),
        "reactor-served grid must be byte-identical to in-process"
    );

    // The client really took the multiplexed path: its mux reactor thread
    // woke up, and no ring was ever negotiated.
    let pool = service
        .stats()
        .pool(&server.local_addr().to_string())
        .expect("pool registered")
        .clone();
    assert!(
        pool.reactor_wakeups > 0,
        "the v5 client must multiplex against a reactor shard: {pool:?}"
    );
    assert_eq!(pool.ring_exchanges, 0, "reactor shards offer no ring");
    assert!(server.ring_segments().is_empty());
    // Both v7 peers, both directions: the request direction interns only
    // the two backend labels, so any define beyond those proves the shard
    // answered with dictionary frames too (report labels interned), which
    // requires the mux connection's own hello to have upgraded it past the
    // strict-FIFO default.
    assert!(
        pool.dict_defines > 2 && pool.dict_hits > 0,
        "protocol-7 mux must carry symbol dictionaries in both directions: {pool:?}"
    );
}

#[test]
fn one_multiplexed_connection_completes_out_of_order() {
    let server = reactor_server(
        Evaluator::empty().with_backend(Box::new(StaggeredSquare)),
        2,
    );
    let mut client = RawClient::connect(&server.local_addr().to_string());
    let window = client.hello(1);
    assert!(window >= 2, "window must admit concurrent requests");

    // Slow request first, fast request second, both in flight on the one
    // connection: the fast answer must come back first.
    client.send(
        2,
        &ShardRequest::Evaluate {
            backend: "stagger".to_string(),
            spec: WorkloadSpec::SquareGemm { n: 700 },
        },
    );
    client.send(
        3,
        &ShardRequest::Evaluate {
            backend: "stagger".to_string(),
            spec: WorkloadSpec::SquareGemm { n: 1 },
        },
    );
    let started = Instant::now();
    let (first_id, first) = client.recv();
    assert_eq!(
        first_id, 3,
        "the fast request must overtake the slow one on a v5 connection"
    );
    assert!(matches!(first, ShardResponse::Evaluated(ref r) if r.is_ok()));
    assert!(
        started.elapsed() < Duration::from_millis(600),
        "the fast answer must not be held behind the slow evaluation"
    );
    let (second_id, second) = client.recv();
    assert_eq!(second_id, 2);
    assert!(matches!(second, ShardResponse::Evaluated(ref r) if r.is_ok()));
}

#[test]
fn cancel_suppresses_the_response_and_frees_the_slot() {
    let server = reactor_server(
        Evaluator::empty().with_backend(Box::new(StaggeredSquare)),
        2,
    );
    let mut client = RawClient::connect(&server.local_addr().to_string());
    client.hello(1);

    // A slow evaluation, immediately cancelled, then a fast one: only the
    // fast response may arrive (cancel frames get no answer either).
    client.send(
        10,
        &ShardRequest::Evaluate {
            backend: "stagger".to_string(),
            spec: WorkloadSpec::SquareGemm { n: 600 },
        },
    );
    client.send(11, &ShardRequest::Cancel { target: 10 });
    client.send(
        12,
        &ShardRequest::Evaluate {
            backend: "stagger".to_string(),
            spec: WorkloadSpec::SquareGemm { n: 2 },
        },
    );
    let (id, response) = client.recv();
    assert_eq!(id, 12, "the cancelled response must never hit the wire");
    assert!(matches!(response, ShardResponse::Evaluated(ref r) if r.is_ok()));

    // After the cancelled evaluation finishes server-side its slot is
    // free and the suppressed answer stays suppressed: the next exchange
    // answers the new id, not the dead one.
    std::thread::sleep(Duration::from_millis(800));
    client.send(
        13,
        &ShardRequest::Evaluate {
            backend: "stagger".to_string(),
            spec: WorkloadSpec::SquareGemm { n: 3 },
        },
    );
    let (id, response) = client.recv();
    assert_eq!(id, 13);
    assert!(matches!(response, ShardResponse::Evaluated(ref r) if r.is_ok()));
}

#[test]
fn one_reactor_thread_serves_hundreds_of_concurrent_connections() {
    let server = reactor_server(
        Evaluator::empty().with_backend(Box::new(XnnAnalyticBackend::new())),
        2,
    );
    let addr = server.local_addr().to_string();

    // 256 connections, all open at once, all multiplex-capable.
    const CONNS: usize = 256;
    let mut clients: Vec<RawClient> = (0..CONNS).map(|_| RawClient::connect(&addr)).collect();
    for client in clients.iter_mut() {
        client.send(
            1,
            &ShardRequest::Hello {
                protocol: PROTOCOL_VERSION,
            },
        );
    }
    for (i, client) in clients.iter_mut().enumerate() {
        let (id, response) = client.recv();
        assert_eq!(id, 1, "conn {i}");
        assert!(
            matches!(
                response,
                ShardResponse::Backends {
                    window: Some(_),
                    ..
                }
            ),
            "conn {i}: hello must negotiate a window"
        );
    }
    // Every connection evaluates (cache hits across connections are fine —
    // the point is that every socket gets its own correct answer).
    for (i, client) in clients.iter_mut().enumerate() {
        client.send(
            2,
            &ShardRequest::Evaluate {
                backend: "rsn-xnn".to_string(),
                spec: WorkloadSpec::SquareGemm {
                    n: 256 + (i % 16) * 64,
                },
            },
        );
    }
    for (i, client) in clients.iter_mut().enumerate() {
        let (id, response) = client.recv();
        assert_eq!(id, 2, "conn {i}");
        assert!(
            matches!(response, ShardResponse::Evaluated(ref r) if r.is_ok()),
            "conn {i}: evaluation must succeed"
        );
    }
}

#[test]
fn v5_client_against_v4_shard_stays_strict_fifo_byte_identically() {
    // A hand-built protocol-4 shard: binary-capable, batch-capable, but
    // strictly one-answer-per-question in arrival order, no window in its
    // hello, and no idea what a cancel frame is.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind v4 shard");
    let addr = listener.local_addr().expect("addr").to_string();
    let cancel_frames = Arc::new(AtomicU64::new(0));
    let seen_cancels = Arc::clone(&cancel_frames);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let seen_cancels = Arc::clone(&seen_cancels);
            std::thread::spawn(move || {
                let backend = XnnAnalyticBackend::new();
                let mut frames = FrameBuffer::new();
                let mut payload = Vec::new();
                let mut scratch = Vec::new();
                loop {
                    match frames.take_frame(&mut payload) {
                        Ok(true) => {}
                        Ok(false) => match frames.fill(&mut stream) {
                            Ok(0) | Err(_) => return,
                            Ok(_) => continue,
                        },
                        Err(_) => return,
                    }
                    let Ok((id, request, encoding)) = decode_request_payload(&payload) else {
                        return;
                    };
                    let response = match request {
                        ShardRequest::Hello { .. } => ShardResponse::Backends {
                            names: vec!["rsn-xnn".to_string()],
                            protocol: 4,
                            ring: None,
                            window: None,
                        },
                        ShardRequest::Cancel { .. } => {
                            seen_cancels.fetch_add(1, Ordering::SeqCst);
                            continue;
                        }
                        ShardRequest::Evaluate { spec, .. } => {
                            ShardResponse::Evaluated(Arc::new(backend.evaluate(&spec)))
                        }
                        ShardRequest::EvaluateBatch { specs, .. } => ShardResponse::EvaluatedBatch(
                            specs
                                .iter()
                                .map(|spec| Arc::new(backend.evaluate(spec)))
                                .collect(),
                        ),
                        ShardRequest::Supports { spec, .. } => {
                            ShardResponse::Supported(backend.supports(&spec))
                        }
                        ShardRequest::Stats => {
                            ShardResponse::Rejected("no stats on protocol 4".to_string())
                        }
                    };
                    // Strict FIFO: every answer goes out in arrival order.
                    if write_response_frame(&mut stream, id, &response, encoding, &mut scratch)
                        .is_err()
                    {
                        return;
                    }
                }
            });
        }
    });

    let service = ShardRouter::new()
        .remote(&addr)
        .expect("v4 shard reachable")
        .build()
        .expect("unique names");
    let specs: Vec<WorkloadSpec> = (1..=12usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 96 })
        .collect();
    let grid = service.evaluate_grid(&specs);

    // Byte-identical emission through the strict-FIFO fallback.
    let local = Evaluator::empty().with_backend(Box::new(XnnAnalyticBackend::new()));
    assert_eq!(
        grid_json(&["rsn-xnn".to_string()], &specs, &grid).to_pretty(),
        grid_json(
            &["rsn-xnn".to_string()],
            &specs,
            &local.evaluate_grid(&specs)
        )
        .to_pretty(),
        "v4 fallback grid must be byte-identical"
    );

    // No window was negotiated, so the client never multiplexed — and it
    // never sent the old shard a frame it cannot parse.
    let pool = service.stats().pool(&addr).expect("pool").clone();
    assert_eq!(
        pool.reactor_wakeups, 0,
        "a v4 peer must keep the client on blocking FIFO exchanges: {pool:?}"
    );
    assert_eq!(pool.inflight_per_conn, 0, "no multiplexed depth: {pool:?}");
    assert_eq!(
        cancel_frames.load(Ordering::SeqCst),
        0,
        "cancel frames must never reach a v4 shard"
    );
}

#[test]
fn killed_reactor_shard_yields_transport_errors_not_hangs() {
    let server = reactor_server(
        Evaluator::empty().with_backend(Box::new(XnnAnalyticBackend::new())),
        2,
    );
    let addr = server.local_addr().to_string();
    let service = ShardRouter::new()
        .remote(&addr)
        .expect("loopback shard reachable")
        .build()
        .expect("unique names");

    // Warm multiplexed traffic.
    let warm: Vec<WorkloadSpec> = (1..=8usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 32 })
        .collect();
    assert!(service
        .evaluate_grid(&warm)
        .iter()
        .flatten()
        .all(Result::is_ok));
    assert!(
        service.stats().pool(&addr).expect("pool").reactor_wakeups > 0,
        "warm traffic must have gone through the multiplexer"
    );

    // Kill the reactor mid-stream: queued fresh specs must all resolve to
    // clean transport errors, promptly.
    drop(server);
    let fresh: Vec<WorkloadSpec> = (1..=8usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 32 + 7 })
        .collect();
    let started = Instant::now();
    let response = service
        .submit_batch(fresh.clone(), BackendSelector::All, Priority::Normal)
        .wait_timeout(Duration::from_secs(30))
        .expect("queued requests must resolve, not hang");
    assert!(started.elapsed() < Duration::from_secs(30));
    assert_eq!(response.results.len(), fresh.len());
    for (slot, (backend, result)) in response.results.iter().enumerate() {
        assert_eq!(backend.as_ref(), "rsn-xnn");
        assert!(
            matches!(**result, Err(EvalError::Transport { .. })),
            "slot {slot} of the dead-reactor burst resolved to {result:?}"
        );
    }
}
