//! Round-trip guarantees of the `rsn_serve::json` wire format.
//!
//! For every document the service emits — reports, grids, workload specs,
//! errors, stats — these tests pin both directions:
//!
//! * **typed**: `decode(parse(emit(x))) == x` (NaN-valued floats aside,
//!   which have no JSON form and are asserted explicitly), and
//! * **textual**: `emit(parse(s)) == s` byte-identically for every emitted
//!   `s`, which is what makes the framed wire format and the snapshot
//!   files stable across a process hop.

use rsn_eval::{
    BreakdownRow, CycleStats, EvalError, EvalReport, SchedulerKind, SegmentMetric, WorkloadSpec,
};
use rsn_lib::mapping::MappingType;
use rsn_serve::json::{
    self, error_json, grid_json, grid_json_named, parse, report_json, result_json, stats_json,
    workload_spec_json, JsonValue,
};
use rsn_serve::topology::{topology_from_json, topology_json};
use rsn_serve::{
    ClassStats, LatencyHistogram, PoolStats, Priority, RemoteConfig, RemoteShardDecl,
    ServiceConfig, ServiceStats, ShardStats, Topology,
};
use rsn_workloads::bert::BertConfig;
use rsn_workloads::models::ModelKind;

/// Emits, parses, and re-emits: the two texts must match byte for byte.
fn assert_emit_stable(doc: &JsonValue) -> JsonValue {
    let text = doc.to_pretty();
    let parsed = parse(&text).unwrap_or_else(|e| panic!("emitted text must parse: {e}\n{text}"));
    assert_eq!(
        parsed.to_pretty(),
        text,
        "emit(parse(s)) must be byte-identical"
    );
    parsed
}

fn rich_report() -> EvalReport {
    let mut report = EvalReport::new("rsn-xnn", "encoder-layer L=512 B=6");
    report.latency_s = Some(17.98e-3);
    report.throughput_tasks_per_s = Some(333.76);
    report.achieved_flops = Some(4.7e12);
    report.segments.push(SegmentMetric {
        name: "Attention MM1+MM2 (pipelined)".into(),
        latency_s: 2.618e-3,
        compute_s: 2.0e-3,
        ddr_s: 0.4e-3,
        lpddr_s: 0.1e-3,
        phase_s: 0.118e-3,
    });
    report.breakdown.push(BreakdownRow {
        name: "quoted \"name\"\twith\nspecials \\ ×".into(),
        values: vec![("watts".into(), 60.8), ("share".into(), 0.6163)],
    });
    // An empty values object and empty metric map exercise `{}`.
    report.breakdown.push(BreakdownRow {
        name: "empty".into(),
        values: Vec::new(),
    });
    report.cycle = Some(CycleStats {
        scheduler: SchedulerKind::EventDriven,
        steps: 12345,
        fu_step_calls: 67890,
        makespan_cycles: u64::MAX,
        uops_retired: 42,
        words_transferred: 0,
        max_abs_error: Some(3.0517578125e-5),
    });
    report.metrics.insert("speedup".to_string(), 2.47);
    report.metrics.insert("aie_utilization".to_string(), 0.95);
    report
}

#[test]
fn report_round_trips_typed_and_textual() {
    let report = rich_report();
    let parsed = assert_emit_stable(&report_json(&report));
    let decoded = json::report_from_json(&parsed).expect("report decodes");
    assert_eq!(decoded, report);
}

#[test]
fn empty_report_round_trips() {
    // Empty segment/breakdown arrays and metric maps, all scalars absent.
    let report = EvalReport::new("b", "w");
    let parsed = assert_emit_stable(&report_json(&report));
    assert_eq!(json::report_from_json(&parsed).expect("decodes"), report);
}

#[test]
fn non_finite_floats_emit_null_and_decode_as_absent_or_nan() {
    let mut report = EvalReport::new("b", "w");
    report.latency_s = Some(f64::NAN);
    report.achieved_flops = Some(f64::INFINITY);
    report.metrics.insert("nan_metric".to_string(), f64::NAN);
    let text = report_json(&report).to_pretty();
    assert!(text.contains("\"latency_s\": null"));
    assert!(text.contains("\"achieved_flops\": null"));
    assert!(text.contains("\"nan_metric\": null"));
    let parsed = assert_emit_stable(&report_json(&report));
    let decoded = json::report_from_json(&parsed).expect("decodes");
    // Optional scalars lose the distinction between "absent" and
    // "non-finite" (both are null on the wire)...
    assert_eq!(decoded.latency_s, None);
    assert_eq!(decoded.achieved_flops, None);
    // ...while required float slots decode null back to NaN.
    assert!(decoded.metrics["nan_metric"].is_nan());
}

#[test]
fn every_workload_spec_round_trips() {
    let cfg = BertConfig::bert_large(512, 6);
    let tiny = BertConfig::tiny(8, 2);
    let specs = [
        WorkloadSpec::EncoderLayer { cfg },
        WorkloadSpec::FullModel { cfg },
        WorkloadSpec::SquareGemm { n: 6144 },
        WorkloadSpec::ZooModel {
            kind: ModelKind::Ncf,
        },
        WorkloadSpec::AttentionMapping {
            cfg,
            mapping: MappingType::Pipeline,
        },
        WorkloadSpec::PowerBreakdown,
        WorkloadSpec::DatapathProperties,
        WorkloadSpec::InstructionFootprint {
            m: 384,
            k: 256,
            n: 384,
        },
        WorkloadSpec::FunctionalGemm {
            m: 24,
            k: 16,
            n: 24,
            seed: u64::MAX,
        },
        WorkloadSpec::FunctionalAttention { cfg: tiny, seed: 9 },
        WorkloadSpec::ScalarPipeline { elements: 300 },
    ];
    for spec in specs {
        let parsed = assert_emit_stable(&workload_spec_json(&spec));
        let decoded = json::workload_spec_from_json(&parsed)
            .unwrap_or_else(|e| panic!("spec must decode: {e}"));
        assert_eq!(decoded, spec, "spec round trip");
    }
}

#[test]
fn every_eval_error_round_trips_structurally_or_by_display() {
    let exact = [
        EvalError::Unsupported {
            backend: "gpu T4".to_string(),
            workload: "power-breakdown".to_string(),
        },
        EvalError::TooLarge {
            backend: "cycle-engine".to_string(),
            workload: "gemm 6144^3".to_string(),
            limit: "≤ 2^20 streamed values".to_string(),
        },
        EvalError::Panicked {
            backend: "poisoned".to_string(),
            workload: "w".to_string(),
            reason: "index out of bounds\nsecond line".to_string(),
        },
        EvalError::Transport {
            backend: "remote rsn-xnn".to_string(),
            detail: "connection refused".to_string(),
        },
        EvalError::Remote {
            message: "engine error: deadlock at step 17".to_string(),
        },
    ];
    for error in exact {
        let parsed = assert_emit_stable(&error_json(&error));
        assert_eq!(json::error_from_json(&parsed).expect("decodes"), error);
    }
    // Engine errors carry rsn-core payloads that do not cross the wire:
    // they decode as `Remote` but preserve their display text exactly.
    let engine = EvalError::Engine(rsn_core::error::RsnError::StepLimitExceeded { limit: 10 });
    let parsed = assert_emit_stable(&error_json(&engine));
    let decoded = json::error_from_json(&parsed).expect("decodes");
    assert_eq!(decoded.to_string(), engine.to_string());
    assert!(matches!(decoded, EvalError::Remote { .. }));
}

#[test]
fn grid_documents_round_trip_byte_identically() {
    let mut ok = EvalReport::new("alpha", "gemm 64^3");
    ok.latency_s = Some(6.4e-8);
    let grid = vec![
        vec![
            Ok(ok),
            Err(EvalError::Unsupported {
                backend: "alpha".to_string(),
                workload: "power-breakdown".to_string(),
            }),
        ],
        vec![
            Err(EvalError::TooLarge {
                backend: "beta".to_string(),
                workload: "gemm 64^3".to_string(),
                limit: "tiny".to_string(),
            }),
            Ok(EvalReport::new("beta", "power-breakdown")),
        ],
    ];
    let doc = grid_json(
        &["alpha".to_string(), "beta".to_string()],
        &[
            WorkloadSpec::SquareGemm { n: 64 },
            WorkloadSpec::PowerBreakdown,
        ],
        &grid,
    );
    let text = doc.to_pretty();
    let decoded = json::grid_from_json(&assert_emit_stable(&doc)).expect("grid decodes");
    assert_eq!(decoded.backends, ["alpha", "beta"]);
    assert_eq!(decoded.workloads, ["gemm 64^3", "power-breakdown"]);
    assert_eq!(decoded.reports[0][0], grid[0][0]);
    // Error entries decode to `Remote` but re-emit the original text.
    let reemitted = grid_json_named(&decoded.backends, &decoded.workloads, &decoded.reports);
    assert_eq!(reemitted.to_pretty(), text);
}

#[test]
fn result_json_of_errors_is_the_flat_string_form() {
    let error = EvalError::Unsupported {
        backend: "a".to_string(),
        workload: "w".to_string(),
    };
    let doc = result_json(&Err(error.clone()));
    let parsed = assert_emit_stable(&doc);
    match json::result_from_json(&parsed).expect("decodes") {
        Err(EvalError::Remote { message }) => assert_eq!(message, error.to_string()),
        other => panic!("expected a remote error, got {other:?}"),
    }
}

#[test]
fn stats_round_trip_including_per_shard_counters() {
    let stats = ServiceStats {
        submitted: 10,
        completed: 10,
        batches: 3,
        batched_requests: 10,
        cache_hits: 4,
        cache_misses: 6,
        inflight_merged: 2,
        evaluations: 6,
        eval_errors: 1,
        evictions: 2,
        per_shard: vec![
            ShardStats {
                backend: "rsn-xnn".to_string(),
                evaluations: 4,
                errors: 0,
            },
            ShardStats {
                backend: "charm".to_string(),
                evaluations: 2,
                errors: 1,
            },
        ],
        remote_pools: vec![PoolStats {
            addr: "127.0.0.1:7070".to_string(),
            checkouts: 9,
            reused: 7,
            dials: 2,
            redials: 1,
            discarded: 1,
            pipelined_batches: 3,
            pipelined_specs: 8,
            bytes_sent: 4096,
            bytes_received: 16384,
            frames_coalesced: 5,
            ring_exchanges: 6,
            reactor_wakeups: 11,
            inflight_per_conn: 4,
            hedges_launched: 3,
            hedges_won: 2,
            failovers: 1,
            breaker_trips: 1,
            breaker_fast_fails: 5,
            dict_defines: 12,
            dict_hits: 340,
        }],
        classes: Priority::ALL
            .iter()
            .map(|&priority| {
                let mut latency = LatencyHistogram::new();
                for us in [90_u64, 450, 450, 12_000, 250_000] {
                    latency.record(std::time::Duration::from_micros(us));
                }
                ClassStats {
                    priority,
                    latency,
                    shed_deadline: 3,
                    shed_queue: 1,
                }
            })
            .collect(),
    };
    let parsed = assert_emit_stable(&stats_json(&stats));
    assert_eq!(json::stats_from_json(&parsed).expect("decodes"), stats);
    // And the empty default (empty per_shard/remote_pools arrays).
    let empty = ServiceStats::default();
    let parsed = assert_emit_stable(&stats_json(&empty));
    assert_eq!(json::stats_from_json(&parsed).expect("decodes"), empty);
}

#[test]
fn stats_without_pool_counters_decode_as_a_version_one_shard() {
    // What a pre-pooling shard emits: no `remote_pools` field at all.
    let legacy = r#"{
  "submitted": 1,
  "completed": 1,
  "batches": 1,
  "batched_requests": 1,
  "cache_hits": 0,
  "cache_misses": 1,
  "inflight_merged": 0,
  "evaluations": 1,
  "eval_errors": 0,
  "evictions": 0,
  "per_shard": []
}"#;
    let decoded = json::stats_from_json(&parse(legacy).expect("parses")).expect("decodes");
    assert!(decoded.remote_pools.is_empty());
    assert_eq!(decoded.submitted, 1);
}

#[test]
fn topology_round_trips_typed_and_textual() {
    let topology = Topology {
        listen: Some("0.0.0.0:7070".to_string()),
        service: ServiceConfig {
            max_batch: 32,
            batch_deadline: std::time::Duration::from_micros(500),
            workers_per_backend: 4,
            cache_capacity: Some(1024),
            class_budgets: [
                Some(std::time::Duration::from_micros(1_500)),
                None,
                Some(std::time::Duration::from_micros(50_000)),
            ],
            queue_capacity: Some(512),
            remote: RemoteConfig {
                connect_timeout: std::time::Duration::from_millis(2000),
                io_timeout: std::time::Duration::from_millis(15000),
                pool_size: 8,
                server_idle_timeout: std::time::Duration::from_millis(30000),
                encoding: rsn_serve::EncodingPolicy::Json,
                transport: rsn_serve::TransportPolicy::Shm,
                frontend: rsn_serve::FrontendPolicy::Reactor,
            },
        },
        local: vec!["rsn-xnn".to_string()],
        remotes: vec![
            RemoteShardDecl {
                addr: "10.0.0.7:7070".to_string(),
                weight: 2,
                pool_size: Some(16),
                encoding: Some(rsn_serve::EncodingPolicy::Binary),
                transport: Some(rsn_serve::TransportPolicy::Socket),
            },
            RemoteShardDecl::new("10.0.0.8:7070"),
        ],
        replicas: vec![rsn_serve::ReplicaGroupDecl {
            backend: "rsn-xnn".to_string(),
            shards: vec!["10.0.0.7:7070".to_string(), "10.0.0.8:7070".to_string()],
            hedge_budget_us: Some(7_500),
            breaker: Some(rsn_serve::BreakerConfig {
                window: 12,
                max_failures: 3,
                cooldown: std::time::Duration::from_millis(750),
            }),
        }],
    };
    let parsed = assert_emit_stable(&topology_json(&topology));
    assert_eq!(
        topology_from_json(&parsed).expect("topology decodes"),
        topology
    );
}

#[test]
fn escape_heavy_strings_survive_the_wire() {
    for text in [
        "plain",
        "quote \" backslash \\ slash /",
        "newline\n tab\t return\r",
        "control \u{1} \u{1f}",
        "unicode × é 😀 ßµ",
        "",
    ] {
        let doc = JsonValue::Str(text.to_string());
        let parsed = assert_emit_stable(&doc);
        assert_eq!(parsed, doc);
    }
}

#[test]
fn malformed_documents_fail_with_positions_not_panics() {
    for (text, line, column) in [
        ("{\"a\": }", 1, 7),
        ("[1, 2", 1, 6),
        ("{\"a\": 1 \"b\": 2}", 1, 9),
        ("\"\\u12g4\"", 1, 6),
        ("[01]", 1, 2),
    ] {
        let err = parse(text).unwrap_err();
        assert_eq!(
            (err.line, err.column),
            (line, column),
            "position for {text:?}: {err}"
        );
    }
}
