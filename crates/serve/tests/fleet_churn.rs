//! Churn tests of the fleet layer: replicated shard groups surviving the
//! failures they exist for, live.
//!
//! Each test stands up real `ShardServer`s on loopback and drives a fleet
//! service through the operator scenarios pinned by the fleet layer's
//! contract:
//!
//! * killing one replica of a two-replica group mid-stream loses **zero**
//!   requests — in-flight exchanges fail over to the sibling, the dead
//!   replica's breaker trips, and `hedges_won + failovers > 0` shows the
//!   resilience machinery (not luck) absorbed the outage;
//! * a stalled (slow) replica is hedged against after the per-group
//!   latency budget, and the fast sibling's answer wins;
//! * editing the topology file on disk re-admits a replaced shard through
//!   [`FleetController::reload`]/[`ShardRouter::watch`] without restarting
//!   the service.

use rsn_eval::{Backend, EvalError, EvalReport, Evaluator, WorkloadSpec};
use rsn_serve::remote::ShardServer;
use rsn_serve::topology::{topology_json, Topology};
use rsn_serve::{
    BreakerConfig, EvalRequest, EvalService, RemoteShardDecl, ReplicaGroupDecl, ServiceConfig,
    ShardRouter,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A deterministic replica workload: every replica of the group hosts a
/// backend with this exact name, so reports are byte-identical no matter
/// which replica served them.  `delay` models a slow (stalled) replica.
struct DelaySquare {
    delay: Duration,
}

impl Backend for DelaySquare {
    fn name(&self) -> &str {
        "square"
    }
    fn supports(&self, w: &WorkloadSpec) -> bool {
        matches!(w, WorkloadSpec::SquareGemm { .. })
    }
    fn evaluate(&self, w: &WorkloadSpec) -> Result<EvalReport, EvalError> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        Ok(EvalReport::new(self.name(), w.name()))
    }
}

fn square_shard(delay: Duration) -> ShardServer {
    ShardServer::bind(
        "127.0.0.1:0",
        EvalService::new(Evaluator::empty().with_backend(Box::new(DelaySquare { delay }))),
    )
    .expect("bind loopback shard")
}

/// A two-field topology over `addrs`: every address is a remote shard and
/// all of them form one `square` replica group with an explicit (small,
/// deterministic) hedge budget and a hair-trigger breaker.
fn square_fleet_topology(addrs: &[String], hedge_budget_us: u64) -> Topology {
    Topology {
        listen: None,
        service: ServiceConfig::default(),
        local: Vec::new(),
        remotes: addrs.iter().map(|a| RemoteShardDecl::new(a)).collect(),
        replicas: vec![ReplicaGroupDecl {
            backend: "square".to_string(),
            shards: addrs.to_vec(),
            hedge_budget_us: Some(hedge_budget_us),
            breaker: Some(BreakerConfig {
                window: 4,
                max_failures: 2,
                cooldown: Duration::from_secs(60),
            }),
        }],
    }
}

fn topology_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fleet_churn");
    std::fs::create_dir_all(&dir).expect("topology dir");
    dir.join(name)
}

fn write_topology(path: &PathBuf, topology: &Topology) {
    std::fs::write(path, topology_json(topology).to_pretty()).expect("write topology file");
}

fn assert_clean(result: &Result<EvalReport, EvalError>, spec: &WorkloadSpec) {
    match result {
        Ok(report) => assert_eq!(report.backend.as_ref(), "square"),
        Err(e @ (EvalError::Transport { .. } | EvalError::Overloaded { .. })) => {
            panic!("churn leaked an error for {}: {e}", spec.name())
        }
        Err(other) => panic!("unexpected error for {}: {other}", spec.name()),
    }
}

#[test]
fn killing_one_replica_mid_stream_loses_no_requests_and_reload_readmits() {
    let server_a = square_shard(Duration::from_millis(1));
    let server_b = square_shard(Duration::from_millis(1));
    let addr_a = server_a.local_addr().to_string();
    let addr_b = server_b.local_addr().to_string();

    // The deployment path: topology through a real file.
    let topology = square_fleet_topology(&[addr_a.clone(), addr_b.clone()], 50_000);
    let path = topology_path("churn.json");
    write_topology(&path, &topology);
    let loaded = Topology::from_file(&path).expect("load topology");
    assert_eq!(loaded, topology);

    let (service, controller) = ShardRouter::from_topology(&loaded)
        .expect("assemble fleet from topology")
        .build_fleet()
        .expect("unique backend names");
    assert_eq!(service.backend_names(), ["square"]);
    assert_eq!(
        controller.replica_addrs("square"),
        Some(vec![addr_a.clone(), addr_b.clone()])
    );

    // Phase 1 — both replicas healthy: a spread of distinct specs lands on
    // both (rendezvous routing), every answer clean.
    let warm: Vec<WorkloadSpec> = (1..=40).map(|n| WorkloadSpec::SquareGemm { n }).collect();
    let handles: Vec<_> = warm
        .iter()
        .map(|spec| service.submit(EvalRequest::all(spec.clone())))
        .collect();
    for (handle, spec) in handles.into_iter().zip(&warm) {
        let response = handle.wait();
        assert_clean(response.results[0].1.as_ref(), spec);
    }

    // Phase 2 — kill replica A while a stream is in flight.  The stream
    // must complete with zero Transport/Overloaded errors: exchanges that
    // died mid-flight on A fail over to B, and once A's breaker trips the
    // rest route straight to B.
    let stream: Vec<WorkloadSpec> = (100..=180)
        .map(|n| WorkloadSpec::SquareGemm { n })
        .collect();
    let handles: Vec<_> = stream
        .iter()
        .map(|spec| service.submit(EvalRequest::all(spec.clone())))
        .collect();
    std::thread::sleep(Duration::from_millis(10));
    drop(server_a); // sever every connection; the port goes dead
    for (handle, spec) in handles.into_iter().zip(&stream) {
        let response = handle.wait();
        assert_clean(response.results[0].1.as_ref(), spec);
    }
    // Guaranteed post-kill traffic so the failover counters cannot depend
    // on scheduler timing above.
    let after: Vec<WorkloadSpec> = (200..=240)
        .map(|n| WorkloadSpec::SquareGemm { n })
        .collect();
    for spec in &after {
        assert_clean(&service.evaluate(spec)[0], spec);
    }

    let stats = service.stats();
    let recovered: u64 = stats
        .remote_pools
        .iter()
        .map(|p| p.hedges_won + p.failovers)
        .sum();
    assert!(
        recovered > 0,
        "killing a replica must be absorbed by hedges or failovers, stats: {stats:?}"
    );
    let trips: u64 = stats.remote_pools.iter().map(|p| p.breaker_trips).sum();
    assert!(
        trips >= 1,
        "dead replica's breaker must trip, stats: {stats:?}"
    );

    // Phase 3 — operator replaces the dead shard in the topology file and
    // reloads: A drains out of the group, C joins, no restart.
    let server_c = square_shard(Duration::from_millis(1));
    let addr_c = server_c.local_addr().to_string();
    let replacement = square_fleet_topology(&[addr_b.clone(), addr_c.clone()], 50_000);
    write_topology(&path, &replacement);
    let reloaded = Topology::from_file(&path).expect("reload topology");
    let changed = controller.reload(&reloaded);
    assert!(
        changed >= 2,
        "expected A drained + C added, got {changed} changes"
    );
    assert_eq!(
        controller.replica_addrs("square"),
        Some(vec![addr_b.clone(), addr_c.clone()])
    );

    let fresh: Vec<WorkloadSpec> = (300..=360)
        .map(|n| WorkloadSpec::SquareGemm { n })
        .collect();
    for spec in &fresh {
        assert_clean(&service.evaluate(spec)[0], spec);
    }
    let stats = service.stats();
    assert!(
        stats.pool(&addr_a).is_none(),
        "drained replica must leave the stats registry"
    );
    let pool_c = stats.pool(&addr_c).expect("re-added replica registered");
    assert!(pool_c.checkouts > 0, "re-added replica must serve traffic");
}

#[test]
fn hedged_requests_beat_a_stalled_replica() {
    // One replica stalls on every evaluation; after the 5 ms hedge budget
    // the fleet re-issues the exchange against the fast sibling, whose
    // answer wins.
    let slow = square_shard(Duration::from_millis(80));
    let fast = square_shard(Duration::ZERO);
    let addr_slow = slow.local_addr().to_string();
    let addr_fast = fast.local_addr().to_string();

    let topology = square_fleet_topology(&[addr_slow.clone(), addr_fast.clone()], 5_000);
    let (service, _controller) = ShardRouter::from_topology(&topology)
        .expect("assemble fleet")
        .build_fleet()
        .expect("unique backend names");

    // Distinct specs so rendezvous routing sends roughly half to the slow
    // primary — those are the ones that hedge.
    for n in 1..=32 {
        let spec = WorkloadSpec::SquareGemm { n };
        assert_clean(&service.evaluate(&spec)[0], &spec);
    }

    let stats = service.stats();
    let launched: u64 = stats.remote_pools.iter().map(|p| p.hedges_launched).sum();
    let won: u64 = stats.remote_pools.iter().map(|p| p.hedges_won).sum();
    assert!(
        launched > 0,
        "slow primary must trigger hedges, stats: {stats:?}"
    );
    assert!(won > 0, "fast sibling must win hedges, stats: {stats:?}");
    // Wins land on the replica that answered, not the one that stalled.
    let fast_pool = stats.pool(&addr_fast).expect("fast replica registered");
    assert!(fast_pool.hedges_won > 0);
}

#[test]
fn watch_applies_topology_file_edits_without_restart() {
    let server_a = square_shard(Duration::ZERO);
    let addr_a = server_a.local_addr().to_string();

    let path = topology_path("watched.json");
    write_topology(
        &path,
        &square_fleet_topology(std::slice::from_ref(&addr_a), 50_000),
    );

    let (service, controller) =
        ShardRouter::watch(&path, Duration::from_millis(25)).expect("watching fleet service");
    assert!(controller.is_watching());
    let spec = WorkloadSpec::SquareGemm { n: 7 };
    assert_clean(&service.evaluate(&spec)[0], &spec);

    // Grow the group on disk; the watcher must pick the edit up and admit
    // the new replica while the service keeps serving.
    let server_b = square_shard(Duration::ZERO);
    let addr_b = server_b.local_addr().to_string();
    write_topology(
        &path,
        &square_fleet_topology(&[addr_a.clone(), addr_b.clone()], 50_000),
    );

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let addrs = controller.replica_addrs("square").expect("group exists");
        if addrs.contains(&addr_b) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watcher never applied the file edit; group still {addrs:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    for n in 10..=41 {
        let spec = WorkloadSpec::SquareGemm { n };
        assert_clean(&service.evaluate(&spec)[0], &spec);
    }
    let stats = service.stats();
    let pool_b = stats.pool(&addr_b).expect("watched-in replica registered");
    assert!(
        pool_b.checkouts > 0,
        "watched-in replica must serve traffic"
    );
}
