//! Loopback integration tests of the cross-process shard layer.
//!
//! A shard server on `127.0.0.1:0` hosts real evaluation backends; a
//! client-side service routes to it through [`RemoteBackend`]s.  The tests
//! pin the contract the whole layer exists for:
//!
//! * results and emitted JSON are **byte-identical** to the in-process path;
//! * killing the shard yields [`EvalError::Transport`] promptly — no hang,
//!   and no poisoned cache entry (each retry re-evaluates);
//! * the `shardd` binary speaks the same protocol as the in-process server
//!   (spawned as a child process, its logs kept for CI upload on failure).

use rsn_eval::{Backend, CharmBackend, EvalError, Evaluator, WorkloadSpec, XnnAnalyticBackend};
use rsn_serve::json::{grid_json, stats_json};
use rsn_serve::remote::{RemoteBackend, ShardServer};
use rsn_serve::topology::{topology_json, Topology};
use rsn_serve::{
    BackendSelector, EvalService, Priority, RemoteShardDecl, ServiceConfig, ShardRouter,
};
use rsn_workloads::bert::BertConfig;
use std::time::Duration;

fn paper_backends() -> Evaluator {
    Evaluator::empty()
        .with_backend(Box::new(XnnAnalyticBackend::new()))
        .with_backend(Box::new(CharmBackend::new()))
}

fn paper_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::EncoderLayer {
            cfg: BertConfig::bert_large(512, 6),
        },
        WorkloadSpec::FullModel {
            cfg: BertConfig::bert_large(384, 8),
        },
        WorkloadSpec::SquareGemm { n: 1024 },
        // Unsupported by both backends: error entries must cross the wire
        // and re-emit identically too.
        WorkloadSpec::DatapathProperties,
    ]
}

/// A service whose every backend is a remote shard on `server`.
fn remote_service(server: &ShardServer) -> EvalService {
    ShardRouter::new()
        .remote(&server.local_addr().to_string())
        .expect("loopback shard reachable")
        .build()
        .expect("unique shard names")
}

#[test]
fn remote_grid_is_byte_identical_to_in_process() {
    let server = ShardServer::bind("127.0.0.1:0", EvalService::new(paper_backends()))
        .expect("bind loopback shard");
    let remote = remote_service(&server);

    // Backend discovery preserves the shard's registration order.
    assert_eq!(remote.backend_names(), ["rsn-xnn", "charm"]);

    let workloads = paper_workloads();
    let local_grid = paper_backends().evaluate_grid(&workloads);
    let remote_grid = remote.evaluate_grid(&workloads);

    // Typed equality of every Ok cell...
    for (local_row, remote_row) in local_grid.iter().zip(&remote_grid) {
        for (local, remote) in local_row.iter().zip(remote_row) {
            match (local, remote) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                (a, b) => panic!("result shape diverged: {a:?} vs {b:?}"),
            }
        }
    }
    // ...and byte-identical JSON emission of the whole grid document.
    let names: Vec<String> = remote.backend_names().to_vec();
    assert_eq!(
        grid_json(&names, &workloads, &remote_grid).to_pretty(),
        grid_json(&names, &workloads, &local_grid).to_pretty()
    );

    // The shard did the evaluating; the client service attributed the work
    // to its remote shards.
    let server_stats = server.stats();
    assert!(server_stats.evaluations > 0);
    let client_stats = remote.stats();
    assert_eq!(
        client_stats
            .per_shard
            .iter()
            .map(|s| s.evaluations)
            .sum::<u64>(),
        client_stats.evaluations
    );
    // Stats documents cross the wire too (exercised via the emitters).
    assert!(stats_json(&server_stats).to_pretty().contains("per_shard"));
}

#[test]
fn mixed_local_and_remote_shards_serve_one_grid() {
    let server = ShardServer::bind(
        "127.0.0.1:0",
        EvalService::new(Evaluator::empty().with_backend(Box::new(CharmBackend::new()))),
    )
    .expect("bind loopback shard");
    let service = ShardRouter::new()
        .local(Box::new(XnnAnalyticBackend::new()))
        .remote(&server.local_addr().to_string())
        .expect("loopback shard reachable")
        .build()
        .expect("unique names across local and remote");
    assert_eq!(service.backend_names(), ["rsn-xnn", "charm"]);

    let workload = WorkloadSpec::EncoderLayer {
        cfg: BertConfig::bert_large(512, 6),
    };
    let results = service.evaluate(&workload);
    let rsn = results[0]
        .as_ref()
        .expect("local rsn-xnn")
        .latency_s
        .unwrap();
    let charm = results[1]
        .as_ref()
        .expect("remote charm")
        .latency_s
        .unwrap();
    assert!(charm > rsn, "paper headline must hold across the mix");

    // The remote shard's counters live on the shard server; the client
    // counts one evaluation per shard either way.
    let stats = service.stats();
    assert_eq!(stats.shard("rsn-xnn").unwrap().evaluations, 1);
    assert_eq!(stats.shard("charm").unwrap().evaluations, 1);
    assert_eq!(server.stats().evaluations, 1);
}

#[test]
fn remote_supports_probe_matches_local() {
    let server = ShardServer::bind("127.0.0.1:0", EvalService::new(paper_backends()))
        .expect("bind loopback shard");
    let remotes =
        RemoteBackend::connect_all(&server.local_addr().to_string()).expect("hello handshake");
    let local = paper_backends();
    for (remote, local) in remotes.iter().zip(local.backends()) {
        assert_eq!(remote.name(), local.name());
        for workload in paper_workloads() {
            assert_eq!(
                remote.supports(&workload),
                local.supports(&workload),
                "supports({}) diverged on {}",
                workload.name(),
                remote.name()
            );
        }
    }
}

#[test]
fn killed_shard_yields_transport_errors_not_hangs_or_poison() {
    let server = ShardServer::bind(
        "127.0.0.1:0",
        EvalService::new(Evaluator::empty().with_backend(Box::new(XnnAnalyticBackend::new()))),
    )
    .expect("bind loopback shard");
    let addr = server.local_addr().to_string();
    let service = ShardRouter::with_config(ServiceConfig::default())
        .remote(&addr)
        .expect("loopback shard reachable")
        .build()
        .expect("unique names");

    let spec = WorkloadSpec::SquareGemm { n: 512 };
    assert!(
        service.evaluate(&spec)[0].is_ok(),
        "shard alive: evaluation works"
    );

    // Kill the shard mid-stream.
    drop(server);

    let deadline = Duration::from_secs(10);
    let start = std::time::Instant::now();
    let first = service.evaluate(&WorkloadSpec::SquareGemm { n: 513 });
    assert!(
        start.elapsed() < deadline,
        "dead shard must fail fast, not hang"
    );
    match &first[0] {
        Err(EvalError::Transport { backend, .. }) => assert_eq!(backend, "rsn-xnn"),
        other => panic!("expected a transport error, got {other:?}"),
    }

    // Not cached poison: the same spec re-evaluates (and fails afresh)
    // instead of being served a retained error.
    let evals_after_first = service.stats().shard("rsn-xnn").unwrap().evaluations;
    let second = service.evaluate(&WorkloadSpec::SquareGemm { n: 513 });
    assert!(matches!(&second[0], Err(EvalError::Transport { .. })));
    assert_eq!(
        service.stats().shard("rsn-xnn").unwrap().evaluations,
        evals_after_first + 1,
        "errors must not be served from the cache"
    );

    // The pre-kill success *is* served from the cache (successes persist).
    assert!(service.evaluate(&spec)[0].is_ok());
}

#[test]
fn pooled_connections_amortise_dials_and_pipeline_micro_batches() {
    let server = ShardServer::bind("127.0.0.1:0", EvalService::new(paper_backends()))
        .expect("bind loopback shard");
    let addr = server.local_addr().to_string();
    let service = remote_service(&server);

    // A grid of distinct cheap specs: every cell is a cache miss on the
    // client, so each would have been a fresh TCP connect before pooling.
    let specs: Vec<WorkloadSpec> = (1..=24usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 64 })
        .collect();
    let grid = service.evaluate_grid(&specs);
    assert!(grid.iter().flatten().all(Result::is_ok));

    let pool = service
        .stats()
        .pool(&addr)
        .expect("pool registered")
        .clone();
    // 2 backends × 24 specs = 48 evaluations, but far fewer exchanges
    // (pipelining) and far fewer dials than exchanges (pooling).
    assert!(
        pool.pipelined_batches > 0,
        "micro-batches must cross the wire as batch exchanges: {pool:?}"
    );
    assert!(
        pool.pipelined_specs > pool.pipelined_batches,
        "pipelined exchanges must carry multiple specs: {pool:?}"
    );
    assert!(
        pool.checkouts > pool.dials,
        "pooling must amortise dials across exchanges: {pool:?}"
    );
    assert_eq!(pool.redials, 0, "healthy shard: no re-dials: {pool:?}");

    // The negotiated protocol is modern on both ends.
    let remotes = RemoteBackend::connect_all(&addr).expect("handshake");
    assert!(remotes[0].pool().supports_batch());
}

/// A backend whose every evaluation sleeps: total batch time scales with
/// the spec count, exposing any transport that bounds a whole batch by a
/// single per-evaluation timeout.
struct SlowSquare {
    delay: Duration,
}

impl Backend for SlowSquare {
    fn name(&self) -> &str {
        "slow-square"
    }
    fn supports(&self, w: &WorkloadSpec) -> bool {
        matches!(w, WorkloadSpec::SquareGemm { .. })
    }
    fn evaluate(&self, w: &WorkloadSpec) -> Result<rsn_eval::EvalReport, EvalError> {
        std::thread::sleep(self.delay);
        Ok(rsn_eval::EvalReport::new(self.name(), w.name()))
    }
}

#[test]
fn batch_exchanges_scale_the_read_budget_with_the_spec_count() {
    // io_timeout 250 ms, 8 specs of ~100 ms each: the whole batch takes
    // ~800 ms — over a single io_timeout, comfortably inside 8× it.  A
    // transport that bounds the one batch-response read by a lone
    // io_timeout would fail this against a perfectly healthy shard.
    let delay = Duration::from_millis(100);
    let server = ShardServer::bind(
        "127.0.0.1:0",
        EvalService::with_config(
            Evaluator::empty().with_backend(Box::new(SlowSquare { delay })),
            ServiceConfig {
                workers_per_backend: 1,
                ..ServiceConfig::default()
            },
        ),
    )
    .expect("bind loopback shard");
    let remote_config = rsn_serve::RemoteConfig {
        io_timeout: Duration::from_millis(250),
        ..rsn_serve::RemoteConfig::default()
    };
    let remotes = RemoteBackend::connect_all_with(&server.local_addr().to_string(), remote_config)
        .expect("handshake");
    let specs: Vec<WorkloadSpec> = (1..=8usize)
        .map(|n| WorkloadSpec::SquareGemm { n })
        .collect();
    let results = remotes[0].evaluate_many(&specs);
    assert_eq!(results.len(), specs.len());
    for (spec, result) in specs.iter().zip(&results) {
        assert!(
            result.is_ok(),
            "slow batch must get a scaled read budget, got {result:?} for {}",
            spec.name()
        );
    }
    assert_eq!(remotes[0].pool().stats().pipelined_batches, 1);
}

#[test]
fn killed_shard_fails_every_queued_request_then_pool_refills_after_restart() {
    let server = ShardServer::bind(
        "127.0.0.1:0",
        EvalService::new(Evaluator::empty().with_backend(Box::new(XnnAnalyticBackend::new()))),
    )
    .expect("bind loopback shard");
    let addr = server.local_addr().to_string();
    let service = ShardRouter::new()
        .remote(&addr)
        .expect("loopback shard reachable")
        .build()
        .expect("unique names");

    // Warm the pool with successful pooled traffic.
    let warm: Vec<WorkloadSpec> = (1..=8usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 32 })
        .collect();
    assert!(service
        .evaluate_grid(&warm)
        .iter()
        .flatten()
        .all(Result::is_ok));
    let dials_before_kill = service.stats().pool(&addr).expect("pool").dials;

    // Kill the shard, then queue a burst of fresh (never-cached) specs:
    // every one must resolve to a Transport error — queued work may not
    // hang, and no half-dead pooled connection may fake an answer.
    drop(server);
    let fresh: Vec<WorkloadSpec> = (1..=16usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 32 + 7 })
        .collect();
    let started = std::time::Instant::now();
    let response = service
        .submit_batch(fresh.clone(), BackendSelector::All, Priority::Normal)
        .wait_timeout(Duration::from_secs(30))
        .expect("queued requests must resolve, not hang");
    assert!(started.elapsed() < Duration::from_secs(30));
    assert_eq!(response.results.len(), fresh.len());
    for (slot, (backend, result)) in response.results.iter().enumerate() {
        assert_eq!(backend.as_ref(), "rsn-xnn");
        assert!(
            matches!(**result, Err(EvalError::Transport { .. })),
            "slot {slot} of the dead-shard burst resolved to {result:?}"
        );
    }
    // The dead idle connections were discarded or failed into re-dials,
    // never silently reused.
    let pool = service.stats().pool(&addr).expect("pool").clone();
    assert!(
        pool.discarded + pool.redials > 0,
        "dead pooled connections must be noticed: {pool:?}"
    );

    // Restart the shard on the very same address: the pool must refill
    // with working connections and serve fresh evaluations again.
    let revived = ShardServer::bind(
        &addr,
        EvalService::new(Evaluator::empty().with_backend(Box::new(XnnAnalyticBackend::new()))),
    )
    .expect("rebind the shard address");
    assert_eq!(revived.local_addr().to_string(), addr);
    let after: Vec<WorkloadSpec> = (1..=8usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 32 + 13 })
        .collect();
    assert!(
        service
            .evaluate_grid(&after)
            .iter()
            .flatten()
            .all(Result::is_ok),
        "restarted shard must serve through the same router"
    );
    let pool = service.stats().pool(&addr).expect("pool").clone();
    assert!(
        pool.dials > dials_before_kill,
        "the refill must have dialled fresh connections: {pool:?}"
    );
    // And errors were never cached: one of the burst specs now succeeds.
    assert!(service.evaluate(&fresh[0])[0].is_ok());
}

#[test]
fn shm_ring_negotiates_on_loopback_kills_promptly_and_unlinks_segments() {
    let server = ShardServer::bind(
        "127.0.0.1:0",
        EvalService::new(Evaluator::empty().with_backend(Box::new(XnnAnalyticBackend::new()))),
    )
    .expect("bind loopback shard");
    let addr = server.local_addr().to_string();
    let service = ShardRouter::new()
        .remote(&addr)
        .expect("loopback shard reachable")
        .build()
        .expect("unique names");

    // Loopback + the default `auto` policy on both ends: the hello offers
    // a ring and the pool switches onto it.
    let specs: Vec<WorkloadSpec> = (1..=32usize)
        .map(|n| WorkloadSpec::SquareGemm { n: 4096 + n })
        .collect();
    assert!(service
        .evaluate_grid(&specs)
        .iter()
        .flatten()
        .all(Result::is_ok));
    let pool = service.stats().pool(&addr).expect("pool").clone();
    assert!(
        pool.ring_exchanges > 0,
        "loopback auto-negotiation must carry exchanges over the ring: {pool:?}"
    );
    let segments = server.ring_segments();
    assert!(
        !segments.is_empty(),
        "a ring connection must own a live segment"
    );
    assert!(
        segments.iter().all(|p| p.exists()),
        "advertised segments must exist on disk: {segments:?}"
    );

    // Kill the shard mid-stream: the ring's liveness socket reports the
    // death and the evaluation fails with a prompt transport error.
    drop(server);
    let started = std::time::Instant::now();
    let result = service.evaluate(&WorkloadSpec::SquareGemm { n: 8191 });
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "dead ring peer must fail fast, not hang"
    );
    match &result[0] {
        Err(EvalError::Transport { backend, .. }) => assert_eq!(backend, "rsn-xnn"),
        other => panic!("expected a transport error over the dead ring, got {other:?}"),
    }

    // The serving threads wind down and every stale segment is unlinked —
    // nothing leaks into /dev/shm.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while segments.iter().any(|p| p.exists()) && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    for path in &segments {
        assert!(
            !path.exists(),
            "stale ring segment {} must be unlinked on server teardown",
            path.display()
        );
    }

    // Restart on the same address: the pool re-dials, re-negotiates a
    // fresh ring, and serves again.
    let revived = ShardServer::bind(
        &addr,
        EvalService::new(Evaluator::empty().with_backend(Box::new(XnnAnalyticBackend::new()))),
    )
    .expect("rebind the shard address");
    let ring_exchanges_before = service.stats().pool(&addr).expect("pool").ring_exchanges;
    let after: Vec<WorkloadSpec> = (1..=16usize)
        .map(|n| WorkloadSpec::SquareGemm { n: 8192 + n })
        .collect();
    assert!(service
        .evaluate_grid(&after)
        .iter()
        .flatten()
        .all(Result::is_ok));
    let pool = service.stats().pool(&addr).expect("pool").clone();
    assert!(
        pool.ring_exchanges > ring_exchanges_before,
        "the restarted shard must renegotiate the ring: {pool:?}"
    );
    drop(revived);
}

#[test]
fn socket_transport_policy_declines_the_ring_and_stays_byte_identical() {
    let server = ShardServer::bind("127.0.0.1:0", EvalService::new(paper_backends()))
        .expect("bind loopback shard");
    let addr = server.local_addr().to_string();
    let socket_only = rsn_serve::RemoteConfig {
        transport: rsn_serve::TransportPolicy::Socket,
        ..rsn_serve::RemoteConfig::default()
    };
    let service = ShardRouter::new()
        .remote_with(&addr, socket_only, 1)
        .expect("loopback shard reachable")
        .build()
        .expect("unique names");

    let workloads = paper_workloads();
    let via_socket = grid_json(
        service.backend_names(),
        &workloads,
        &service.evaluate_grid(&workloads),
    )
    .to_pretty();
    let in_process = EvalService::new(paper_backends());
    let reference = grid_json(
        in_process.backend_names(),
        &workloads,
        &in_process.evaluate_grid(&workloads),
    )
    .to_pretty();
    assert_eq!(via_socket, reference, "socket-only grid is byte-identical");

    let pool = service.stats().pool(&addr).expect("pool").clone();
    assert_eq!(
        pool.ring_exchanges, 0,
        "a socket-policy client must never touch the ring: {pool:?}"
    );
}

#[test]
fn topology_file_assembles_a_mixed_local_remote_service() {
    let server = ShardServer::bind(
        "127.0.0.1:0",
        EvalService::new(Evaluator::empty().with_backend(Box::new(CharmBackend::new()))),
    )
    .expect("bind loopback shard");

    // Emit the topology to a real file and load it back — the deployment
    // path, not just the in-memory one.
    let topology = Topology {
        listen: None,
        service: ServiceConfig::default(),
        local: vec!["rsn-xnn".to_string()],
        remotes: vec![RemoteShardDecl {
            addr: server.local_addr().to_string(),
            weight: 2,
            pool_size: Some(3),
            encoding: None,
            transport: None,
        }],
        replicas: Vec::new(),
    };
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("topologies");
    std::fs::create_dir_all(&dir).expect("topology dir");
    let path = dir.join("mixed.json");
    std::fs::write(&path, topology_json(&topology).to_pretty()).expect("write topology");
    let loaded = Topology::from_file(&path).expect("load topology");
    assert_eq!(loaded, topology);

    let service = ShardRouter::from_topology(&loaded)
        .expect("assemble from topology")
        .build()
        .expect("unique names");
    assert_eq!(service.backend_names(), ["rsn-xnn", "charm"]);

    // Same grid, byte-identical to fully in-process evaluation.
    let workloads = paper_workloads();
    let names: Vec<String> = service.backend_names().to_vec();
    assert_eq!(
        grid_json(&names, &workloads, &service.evaluate_grid(&workloads)).to_pretty(),
        grid_json(
            &names,
            &workloads,
            &paper_backends().evaluate_grid(&workloads)
        )
        .to_pretty()
    );
    // The declared pool bound reached the shard's connection pool.
    let pool = service
        .stats()
        .pool(&server.local_addr().to_string())
        .cloned()
        .expect("topology-declared pool registered");
    assert!(pool.checkouts > 0);
}

#[test]
fn topology_with_unknown_local_backend_is_rejected() {
    let topology = Topology {
        local: vec!["no-such-backend".to_string()],
        ..Topology::default()
    };
    match ShardRouter::from_topology(&topology) {
        Err(rsn_serve::RouterError::UnknownBackend { name, available }) => {
            assert_eq!(name, "no-such-backend");
            assert!(available.iter().any(|n| n == "rsn-xnn"));
        }
        Err(other) => panic!("expected UnknownBackend, got {other:?}"),
        Ok(_) => panic!("expected UnknownBackend, got a router"),
    }
}

#[test]
fn version_one_shards_fall_back_to_per_spec_exchanges() {
    // A protocol-1 shard: answers hello WITHOUT the protocol field and
    // rejects evaluate_batch, exactly like the pre-pooling server did.
    use rsn_serve::json::JsonValue;
    use rsn_serve::wire::{read_frame, write_frame, ShardRequest, ShardResponse};
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind legacy shard");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            std::thread::spawn(move || {
                let backend = XnnAnalyticBackend::new();
                while let Ok(Some(doc)) = read_frame(&mut stream) {
                    let (id, request) = match ShardRequest::from_json(&doc) {
                        Ok(decoded) => decoded,
                        Err(e) => {
                            // What an old server does with an unknown kind.
                            let _ = write_frame(
                                &mut stream,
                                &ShardResponse::Rejected(e.to_string()).to_json(0),
                            );
                            continue;
                        }
                    };
                    let response = match request {
                        ShardRequest::Hello { .. } => {
                            // Hand-built hello with no protocol field.
                            let legacy = JsonValue::Obj(vec![
                                ("id".to_string(), JsonValue::Int(id)),
                                ("ok".to_string(), JsonValue::Bool(true)),
                                (
                                    "backends".to_string(),
                                    JsonValue::Arr(vec![JsonValue::Str("rsn-xnn".to_string())]),
                                ),
                            ]);
                            let _ = write_frame(&mut stream, &legacy);
                            continue;
                        }
                        ShardRequest::Evaluate { spec, .. } => {
                            ShardResponse::Evaluated(std::sync::Arc::new(backend.evaluate(&spec)))
                        }
                        _ => ShardResponse::Rejected("unsupported on protocol 1".to_string()),
                    };
                    if write_frame(&mut stream, &response.to_json(id)).is_err() {
                        return;
                    }
                }
            });
        }
    });

    let remotes = RemoteBackend::connect_all(&addr).expect("hello against legacy shard");
    assert_eq!(remotes.len(), 1);
    assert_eq!(remotes[0].pool().protocol(), Some(1));
    assert!(!remotes[0].pool().supports_batch());

    // evaluate_many must fall back to per-spec exchanges and still answer
    // every spec correctly (and identically to a local evaluation).
    let specs: Vec<WorkloadSpec> = (1..=4usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 128 })
        .collect();
    let results = remotes[0].evaluate_many(&specs);
    assert_eq!(results.len(), specs.len());
    let local = XnnAnalyticBackend::new();
    for (spec, result) in specs.iter().zip(&results) {
        assert_eq!(
            result.as_ref().expect("legacy shard evaluates"),
            &local.evaluate(spec).expect("local evaluates")
        );
    }
    // No batch exchange was attempted against the old shard.
    assert_eq!(remotes[0].pool().stats().pipelined_batches, 0);
}

#[test]
fn shardd_binary_speaks_the_protocol() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    // Keep the child's output as a log file for CI to upload on failure.
    let log_dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("shard-logs");
    std::fs::create_dir_all(&log_dir).expect("create shard log dir");
    let log_path = log_dir.join("shardd.log");
    let log = std::fs::File::create(&log_path).expect("create shard log");

    let mut child = Command::new(env!("CARGO_BIN_EXE_shardd"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--backends",
            "rsn-xnn",
            "--workers",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(log)
        .spawn()
        .expect("spawn shardd");

    // First stdout line announces the bound address.
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("shardd listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
        .to_string();

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let remotes = RemoteBackend::connect_all(&addr).expect("hello against shardd");
        assert_eq!(remotes.len(), 1);
        assert_eq!(remotes[0].name(), "rsn-xnn");
        let report = remotes[0]
            .evaluate(&WorkloadSpec::SquareGemm { n: 1024 })
            .expect("evaluate through the process boundary");
        // Same numbers as in-process.
        let local = XnnAnalyticBackend::new()
            .evaluate(&WorkloadSpec::SquareGemm { n: 1024 })
            .expect("local evaluation");
        assert_eq!(report, local);

        // Kill the process: the next call is a transport error.
        child.kill().expect("kill shardd");
        child.wait().expect("reap shardd");
        match remotes[0].evaluate(&WorkloadSpec::SquareGemm { n: 2048 }) {
            Err(EvalError::Transport { .. }) => {}
            other => panic!("expected transport error after kill, got {other:?}"),
        }
    }));
    // Whatever happened, don't leak the child.
    let _ = child.kill();
    let _ = child.wait();
    if let Err(panic) = result {
        eprintln!("shardd log kept at {}", log_path.display());
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn version_two_shards_negotiate_json_fallback_byte_identically() {
    // A protocol-2 shard: speaks only JSON (it predates the binary codec)
    // but does understand evaluate_batch.  A v3 client under the default
    // `auto` encoding must learn this from the hello handshake and keep
    // every subsequent frame JSON — never poking a binary frame at the old
    // peer — while the results stay identical to a local evaluation.
    use rsn_serve::json::JsonValue;
    use rsn_serve::wire::{read_frame, write_frame, ShardRequest, ShardResponse};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc as StdArc;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind legacy shard");
    let addr = listener.local_addr().expect("addr").to_string();
    // Counts frames whose payload did not parse as a JSON request — a v2
    // shard would reject those, so the client must send none.
    let non_json_frames = StdArc::new(AtomicU64::new(0));
    let seen_binary = StdArc::clone(&non_json_frames);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let seen_binary = StdArc::clone(&seen_binary);
            std::thread::spawn(move || {
                let backend = XnnAnalyticBackend::new();
                loop {
                    // `read_frame` is the v2 code path: it parses the
                    // payload as JSON and errors on anything else.
                    let doc = match read_frame(&mut stream) {
                        Ok(Some(doc)) => doc,
                        Ok(None) => return,
                        Err(_) => {
                            seen_binary.fetch_add(1, Ordering::SeqCst);
                            let _ = write_frame(
                                &mut stream,
                                &ShardResponse::Rejected("not JSON".to_string()).to_json(0),
                            );
                            return;
                        }
                    };
                    let Ok((id, request)) = ShardRequest::from_json(&doc) else {
                        return;
                    };
                    let response = match request {
                        ShardRequest::Hello { .. } => {
                            // Protocol 2: batch yes, binary no.
                            let hello = JsonValue::Obj(vec![
                                ("id".to_string(), JsonValue::Int(id)),
                                ("ok".to_string(), JsonValue::Bool(true)),
                                (
                                    "backends".to_string(),
                                    JsonValue::Arr(vec![JsonValue::Str("rsn-xnn".to_string())]),
                                ),
                                ("protocol".to_string(), JsonValue::Int(2)),
                            ]);
                            let _ = write_frame(&mut stream, &hello);
                            continue;
                        }
                        ShardRequest::Evaluate { spec, .. } => {
                            ShardResponse::Evaluated(std::sync::Arc::new(backend.evaluate(&spec)))
                        }
                        ShardRequest::EvaluateBatch { specs, .. } => ShardResponse::EvaluatedBatch(
                            specs
                                .iter()
                                .map(|spec| std::sync::Arc::new(backend.evaluate(spec)))
                                .collect(),
                        ),
                        ShardRequest::Supports { spec, .. } => {
                            ShardResponse::Supported(backend.supports(&spec))
                        }
                        ShardRequest::Stats | ShardRequest::Cancel { .. } => {
                            ShardResponse::Rejected("unsupported on protocol 2".to_string())
                        }
                    };
                    if write_frame(&mut stream, &response.to_json(id)).is_err() {
                        return;
                    }
                }
            });
        }
    });

    // Default config = `auto` encoding: the v3 client must downgrade.
    let remotes = RemoteBackend::connect_all(&addr).expect("hello against v2 shard");
    assert_eq!(remotes[0].pool().protocol(), Some(2));
    assert!(remotes[0].pool().supports_batch(), "v2 shards pipeline");
    assert!(
        !remotes[0].pool().supports_binary(),
        "v2 shards must not be sent binary frames"
    );

    let specs: Vec<WorkloadSpec> = (1..=6usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 96 })
        .collect();
    let results = remotes[0].evaluate_many(&specs);
    let local = XnnAnalyticBackend::new();
    for (spec, result) in specs.iter().zip(&results) {
        assert_eq!(
            result.as_ref().expect("v2 shard evaluates"),
            &local.evaluate(spec).expect("local evaluates"),
            "fallback result diverged on {}",
            spec.name()
        );
    }
    // Byte-identical emission through the JSON fallback path.
    let remote_doc =
        rsn_serve::json::grid_json(&["rsn-xnn".to_string()], &specs, &[results]).to_pretty();
    let local_results: Vec<Result<rsn_eval::EvalReport, EvalError>> =
        specs.iter().map(|s| local.evaluate(s)).collect();
    let local_doc =
        rsn_serve::json::grid_json(&["rsn-xnn".to_string()], &specs, &[local_results]).to_pretty();
    assert_eq!(remote_doc, local_doc);
    // The batch pipelined (v2 capability) and no binary frame ever left
    // the client (v3 capability correctly withheld).
    assert!(remotes[0].pool().stats().pipelined_batches > 0);
    assert_eq!(non_json_frames.load(Ordering::SeqCst), 0);
}

#[test]
fn binary_encoding_negotiates_and_shrinks_the_wire() {
    use rsn_serve::{EncodingPolicy, RemoteConfig};

    // One v3 shard, two clients: one forced to JSON, one on the default
    // auto-negotiation (which must pick binary).  Same workload stream —
    // identical results, different wire encodings, measurably fewer bytes.
    let server = ShardServer::bind("127.0.0.1:0", EvalService::new(paper_backends()))
        .expect("bind loopback shard");
    let addr = server.local_addr().to_string();
    let specs: Vec<WorkloadSpec> = (1..=16usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 64 })
        .collect();

    let run = |encoding: EncodingPolicy| {
        let config = RemoteConfig {
            encoding,
            ..RemoteConfig::default()
        };
        let remotes =
            RemoteBackend::connect_all_with(&addr, config).expect("loopback shard reachable");
        let results = remotes[0].evaluate_many(&specs);
        let stats = remotes[0].pool().stats();
        (results, stats)
    };

    let (json_results, json_stats) = run(EncodingPolicy::Json);
    let (auto_results, auto_stats) = run(EncodingPolicy::Auto);

    // Identical domain results either way.
    assert_eq!(json_results.len(), auto_results.len());
    for (a, b) in json_results.iter().zip(&auto_results) {
        assert_eq!(a.as_ref().expect("json ok"), b.as_ref().expect("auto ok"));
    }
    // Auto negotiated binary against the v3 shard...
    assert!(auto_stats.pipelined_batches > 0);
    assert!(json_stats.bytes_received > 0 && auto_stats.bytes_received > 0);
    // ...and the binary stream is dramatically smaller in both directions.
    assert!(
        auto_stats.bytes_received * 3 < json_stats.bytes_received,
        "binary responses must shrink the wire: {} vs {} bytes",
        auto_stats.bytes_received,
        json_stats.bytes_received
    );
    assert!(
        auto_stats.bytes_sent < json_stats.bytes_sent,
        "binary requests must shrink the wire: {} vs {} bytes",
        auto_stats.bytes_sent,
        json_stats.bytes_sent
    );

    // Forcing JSON on the *server* (the debugging knob) keeps byte-parity
    // answers for a JSON client.
    let debug_server = ShardServer::bind(
        "127.0.0.1:0",
        EvalService::with_config(
            paper_backends(),
            ServiceConfig {
                remote: RemoteConfig {
                    encoding: EncodingPolicy::Json,
                    ..RemoteConfig::default()
                },
                ..ServiceConfig::default()
            },
        ),
    )
    .expect("bind debug shard");
    let remotes = RemoteBackend::connect_all(&debug_server.local_addr().to_string())
        .expect("debug shard reachable");
    let result = remotes[0]
        .evaluate(&WorkloadSpec::SquareGemm { n: 512 })
        .expect("json-forced shard evaluates");
    assert_eq!(
        result,
        XnnAnalyticBackend::new()
            .evaluate(&WorkloadSpec::SquareGemm { n: 512 })
            .expect("local evaluates")
    );
}

#[test]
fn version_six_shards_stay_on_plain_binary_byte_identically() {
    // A protocol-6 shard: full binary codec, no symbol dictionaries.  A v7
    // client under the default `auto` encoding must learn this from the
    // hello handshake and keep every frame a plain 0xB3 image — a 0xB7
    // dictionary frame would be rejected by the old decoder — and those
    // plain images must be byte-identical to the v6 encoder's own output.
    use rsn_serve::binary;
    use rsn_serve::wire::{
        decode_request_payload, write_response_frame, FrameBuffer, ShardRequest, ShardResponse,
        WireEncoding,
    };
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc as StdArc;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind v6 shard");
    let addr = listener.local_addr().expect("addr").to_string();
    let dict_frames = StdArc::new(AtomicU64::new(0));
    let binary_frames = StdArc::new(AtomicU64::new(0));
    let seen_dict = StdArc::clone(&dict_frames);
    let seen_binary = StdArc::clone(&binary_frames);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let seen_dict = StdArc::clone(&seen_dict);
            let seen_binary = StdArc::clone(&seen_binary);
            std::thread::spawn(move || {
                let backend = XnnAnalyticBackend::new();
                let mut frames = FrameBuffer::new();
                let mut payload = Vec::new();
                let mut scratch = Vec::new();
                loop {
                    match frames.take_frame(&mut payload) {
                        Ok(true) => {}
                        Ok(false) => match frames.fill(&mut stream) {
                            Ok(0) | Err(_) => return,
                            Ok(_) => continue,
                        },
                        Err(_) => return,
                    }
                    if payload.first() == Some(&binary::DICT_MAGIC) {
                        // A real v6 decoder would choke right here.
                        seen_dict.fetch_add(1, Ordering::SeqCst);
                        return;
                    }
                    let Ok((id, request, encoding)) = decode_request_payload(&payload) else {
                        return;
                    };
                    if encoding == WireEncoding::Binary {
                        seen_binary.fetch_add(1, Ordering::SeqCst);
                        // Pin: the v7 client's plain frames are byte-identical
                        // to what the v6 encoder itself produces.
                        let mut expected = Vec::new();
                        binary::encode_request(&mut expected, id, &request);
                        assert_eq!(payload, expected, "plain binary request image drifted");
                    }
                    let response = match request {
                        ShardRequest::Hello { .. } => ShardResponse::Backends {
                            names: vec!["rsn-xnn".to_string()],
                            protocol: 6,
                            ring: None,
                            window: None,
                        },
                        ShardRequest::Supports { spec, .. } => {
                            ShardResponse::Supported(backend.supports(&spec))
                        }
                        ShardRequest::Evaluate { spec, .. } => {
                            ShardResponse::Evaluated(std::sync::Arc::new(backend.evaluate(&spec)))
                        }
                        ShardRequest::EvaluateBatch { specs, .. } => ShardResponse::EvaluatedBatch(
                            specs
                                .iter()
                                .map(|spec| std::sync::Arc::new(backend.evaluate(spec)))
                                .collect(),
                        ),
                        _ => ShardResponse::Rejected("unsupported on protocol 6".to_string()),
                    };
                    if write_response_frame(&mut stream, id, &response, encoding, &mut scratch)
                        .is_err()
                    {
                        return;
                    }
                }
            });
        }
    });

    let remotes = RemoteBackend::connect_all(&addr).expect("hello against v6 shard");
    assert_eq!(remotes[0].pool().protocol(), Some(6));
    let specs: Vec<WorkloadSpec> = (1..=6usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 96 })
        .collect();
    let local = XnnAnalyticBackend::new();
    for _ in 0..2 {
        let results = remotes[0].evaluate_many(&specs);
        for (spec, result) in specs.iter().zip(&results) {
            assert_eq!(
                result.as_ref().expect("v6 shard evaluates"),
                &local.evaluate(spec).expect("local evaluates")
            );
        }
    }
    let stats = remotes[0].pool().stats();
    assert_eq!(
        stats.dict_defines, 0,
        "no dictionary state against a v6 peer"
    );
    assert_eq!(stats.dict_hits, 0, "no dictionary state against a v6 peer");
    assert_eq!(
        dict_frames.load(Ordering::SeqCst),
        0,
        "a 0xB7 frame reached the v6 shard"
    );
    assert!(
        binary_frames.load(Ordering::SeqCst) > 0,
        "the plain binary path was never exercised"
    );
}

#[test]
fn dict_encoding_negotiates_shrinks_the_wire_and_counts() {
    use rsn_serve::{EncodingPolicy, RemoteConfig};

    // One v7 shard, two clients over the same workload stream: the default
    // auto-negotiation (which must pick the symbol dictionaries) and the
    // `binary_nodict` escape hatch.  Identical results, fewer bytes, and
    // the dictionary counters populate only on the negotiated client.
    let server = ShardServer::bind("127.0.0.1:0", EvalService::new(paper_backends()))
        .expect("bind loopback shard");
    let addr = server.local_addr().to_string();
    let specs: Vec<WorkloadSpec> = (1..=8usize)
        .map(|n| WorkloadSpec::SquareGemm { n: n * 64 })
        .collect();

    let run = |encoding: EncodingPolicy| {
        let config = RemoteConfig {
            encoding,
            ..RemoteConfig::default()
        };
        let remotes =
            RemoteBackend::connect_all_with(&addr, config).expect("loopback shard reachable");
        // Three passes over the same specs: the first defines every label,
        // the rest must resolve them by reference.
        let mut runs = Vec::new();
        for _ in 0..3 {
            runs.push(remotes[0].evaluate_many(&specs));
        }
        (runs, remotes[0].pool().stats())
    };

    let (auto_runs, auto_stats) = run(EncodingPolicy::Auto);
    // `binary` vs `binary_nodict` both open with a binary hello, so their
    // byte counters differ only by the dictionary encoding itself (the
    // `auto` client's pre-negotiation hello goes out as JSON, which would
    // skew a byte comparison on a stream this short).
    let (dict_runs, dict_stats) = run(EncodingPolicy::Binary);
    let (plain_runs, plain_stats) = run(EncodingPolicy::BinaryNodict);

    // Identical domain results every way.
    for (dict_run, plain_run) in dict_runs.iter().zip(&plain_runs) {
        for (a, b) in dict_run.iter().zip(plain_run) {
            assert_eq!(a.as_ref().expect("dict ok"), b.as_ref().expect("nodict ok"));
        }
    }
    for (auto_run, dict_run) in auto_runs.iter().zip(&dict_runs) {
        for (a, b) in auto_run.iter().zip(dict_run) {
            assert_eq!(a.as_ref().expect("auto ok"), b.as_ref().expect("dict ok"));
        }
    }
    // Auto negotiation picked the dictionaries: labels interned, then
    // resolved by reference.
    assert!(
        auto_stats.dict_defines > 0,
        "auto client never defined a symbol"
    );
    assert!(
        auto_stats.dict_hits > auto_stats.dict_defines,
        "repeated labels must resolve by reference: {} hits vs {} defines",
        auto_stats.dict_hits,
        auto_stats.dict_defines
    );
    assert!(dict_stats.dict_defines > 0 && dict_stats.dict_hits > 0);
    // The escape hatch never touched a table...
    assert_eq!(plain_stats.dict_defines, 0);
    assert_eq!(plain_stats.dict_hits, 0);
    // ...and the dictionary stream is smaller in both directions.
    assert!(
        dict_stats.bytes_received < plain_stats.bytes_received,
        "dict responses must shrink the wire: {} vs {} bytes",
        dict_stats.bytes_received,
        plain_stats.bytes_received
    );
    assert!(
        dict_stats.bytes_sent < plain_stats.bytes_sent,
        "dict requests must shrink the wire: {} vs {} bytes",
        dict_stats.bytes_sent,
        plain_stats.bytes_sent
    );
}
