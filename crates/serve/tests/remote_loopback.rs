//! Loopback integration tests of the cross-process shard layer.
//!
//! A shard server on `127.0.0.1:0` hosts real evaluation backends; a
//! client-side service routes to it through [`RemoteBackend`]s.  The tests
//! pin the contract the whole layer exists for:
//!
//! * results and emitted JSON are **byte-identical** to the in-process path;
//! * killing the shard yields [`EvalError::Transport`] promptly — no hang,
//!   and no poisoned cache entry (each retry re-evaluates);
//! * the `shardd` binary speaks the same protocol as the in-process server
//!   (spawned as a child process, its logs kept for CI upload on failure).

use rsn_eval::{Backend, CharmBackend, EvalError, Evaluator, WorkloadSpec, XnnAnalyticBackend};
use rsn_serve::json::{grid_json, stats_json};
use rsn_serve::remote::{RemoteBackend, ShardServer};
use rsn_serve::{EvalService, ServiceConfig, ShardRouter};
use rsn_workloads::bert::BertConfig;
use std::time::Duration;

fn paper_backends() -> Evaluator {
    Evaluator::empty()
        .with_backend(Box::new(XnnAnalyticBackend::new()))
        .with_backend(Box::new(CharmBackend::new()))
}

fn paper_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::EncoderLayer {
            cfg: BertConfig::bert_large(512, 6),
        },
        WorkloadSpec::FullModel {
            cfg: BertConfig::bert_large(384, 8),
        },
        WorkloadSpec::SquareGemm { n: 1024 },
        // Unsupported by both backends: error entries must cross the wire
        // and re-emit identically too.
        WorkloadSpec::DatapathProperties,
    ]
}

/// A service whose every backend is a remote shard on `server`.
fn remote_service(server: &ShardServer) -> EvalService {
    ShardRouter::new()
        .remote(&server.local_addr().to_string())
        .expect("loopback shard reachable")
        .build()
        .expect("unique shard names")
}

#[test]
fn remote_grid_is_byte_identical_to_in_process() {
    let server = ShardServer::bind("127.0.0.1:0", EvalService::new(paper_backends()))
        .expect("bind loopback shard");
    let remote = remote_service(&server);

    // Backend discovery preserves the shard's registration order.
    assert_eq!(remote.backend_names(), ["rsn-xnn", "charm"]);

    let workloads = paper_workloads();
    let local_grid = paper_backends().evaluate_grid(&workloads);
    let remote_grid = remote.evaluate_grid(&workloads);

    // Typed equality of every Ok cell...
    for (local_row, remote_row) in local_grid.iter().zip(&remote_grid) {
        for (local, remote) in local_row.iter().zip(remote_row) {
            match (local, remote) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                (a, b) => panic!("result shape diverged: {a:?} vs {b:?}"),
            }
        }
    }
    // ...and byte-identical JSON emission of the whole grid document.
    let names: Vec<String> = remote.backend_names().to_vec();
    assert_eq!(
        grid_json(&names, &workloads, &remote_grid).to_pretty(),
        grid_json(&names, &workloads, &local_grid).to_pretty()
    );

    // The shard did the evaluating; the client service attributed the work
    // to its remote shards.
    let server_stats = server.stats();
    assert!(server_stats.evaluations > 0);
    let client_stats = remote.stats();
    assert_eq!(
        client_stats
            .per_shard
            .iter()
            .map(|s| s.evaluations)
            .sum::<u64>(),
        client_stats.evaluations
    );
    // Stats documents cross the wire too (exercised via the emitters).
    assert!(stats_json(&server_stats).to_pretty().contains("per_shard"));
}

#[test]
fn mixed_local_and_remote_shards_serve_one_grid() {
    let server = ShardServer::bind(
        "127.0.0.1:0",
        EvalService::new(Evaluator::empty().with_backend(Box::new(CharmBackend::new()))),
    )
    .expect("bind loopback shard");
    let service = ShardRouter::new()
        .local(Box::new(XnnAnalyticBackend::new()))
        .remote(&server.local_addr().to_string())
        .expect("loopback shard reachable")
        .build()
        .expect("unique names across local and remote");
    assert_eq!(service.backend_names(), ["rsn-xnn", "charm"]);

    let workload = WorkloadSpec::EncoderLayer {
        cfg: BertConfig::bert_large(512, 6),
    };
    let results = service.evaluate(&workload);
    let rsn = results[0]
        .as_ref()
        .expect("local rsn-xnn")
        .latency_s
        .unwrap();
    let charm = results[1]
        .as_ref()
        .expect("remote charm")
        .latency_s
        .unwrap();
    assert!(charm > rsn, "paper headline must hold across the mix");

    // The remote shard's counters live on the shard server; the client
    // counts one evaluation per shard either way.
    let stats = service.stats();
    assert_eq!(stats.shard("rsn-xnn").unwrap().evaluations, 1);
    assert_eq!(stats.shard("charm").unwrap().evaluations, 1);
    assert_eq!(server.stats().evaluations, 1);
}

#[test]
fn remote_supports_probe_matches_local() {
    let server = ShardServer::bind("127.0.0.1:0", EvalService::new(paper_backends()))
        .expect("bind loopback shard");
    let remotes =
        RemoteBackend::connect_all(&server.local_addr().to_string()).expect("hello handshake");
    let local = paper_backends();
    for (remote, local) in remotes.iter().zip(local.backends()) {
        assert_eq!(remote.name(), local.name());
        for workload in paper_workloads() {
            assert_eq!(
                remote.supports(&workload),
                local.supports(&workload),
                "supports({}) diverged on {}",
                workload.name(),
                remote.name()
            );
        }
    }
}

#[test]
fn killed_shard_yields_transport_errors_not_hangs_or_poison() {
    let server = ShardServer::bind(
        "127.0.0.1:0",
        EvalService::new(Evaluator::empty().with_backend(Box::new(XnnAnalyticBackend::new()))),
    )
    .expect("bind loopback shard");
    let addr = server.local_addr().to_string();
    let service = ShardRouter::with_config(ServiceConfig::default())
        .remote(&addr)
        .expect("loopback shard reachable")
        .build()
        .expect("unique names");

    let spec = WorkloadSpec::SquareGemm { n: 512 };
    assert!(
        service.evaluate(&spec)[0].is_ok(),
        "shard alive: evaluation works"
    );

    // Kill the shard mid-stream.
    drop(server);

    let deadline = Duration::from_secs(10);
    let start = std::time::Instant::now();
    let first = service.evaluate(&WorkloadSpec::SquareGemm { n: 513 });
    assert!(
        start.elapsed() < deadline,
        "dead shard must fail fast, not hang"
    );
    match &first[0] {
        Err(EvalError::Transport { backend, .. }) => assert_eq!(backend, "rsn-xnn"),
        other => panic!("expected a transport error, got {other:?}"),
    }

    // Not cached poison: the same spec re-evaluates (and fails afresh)
    // instead of being served a retained error.
    let evals_after_first = service.stats().shard("rsn-xnn").unwrap().evaluations;
    let second = service.evaluate(&WorkloadSpec::SquareGemm { n: 513 });
    assert!(matches!(&second[0], Err(EvalError::Transport { .. })));
    assert_eq!(
        service.stats().shard("rsn-xnn").unwrap().evaluations,
        evals_after_first + 1,
        "errors must not be served from the cache"
    );

    // The pre-kill success *is* served from the cache (successes persist).
    assert!(service.evaluate(&spec)[0].is_ok());
}

#[test]
fn shardd_binary_speaks_the_protocol() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    // Keep the child's output as a log file for CI to upload on failure.
    let log_dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("shard-logs");
    std::fs::create_dir_all(&log_dir).expect("create shard log dir");
    let log_path = log_dir.join("shardd.log");
    let log = std::fs::File::create(&log_path).expect("create shard log");

    let mut child = Command::new(env!("CARGO_BIN_EXE_shardd"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--backends",
            "rsn-xnn",
            "--workers",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(log)
        .spawn()
        .expect("spawn shardd");

    // First stdout line announces the bound address.
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("shardd listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
        .to_string();

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let remotes = RemoteBackend::connect_all(&addr).expect("hello against shardd");
        assert_eq!(remotes.len(), 1);
        assert_eq!(remotes[0].name(), "rsn-xnn");
        let report = remotes[0]
            .evaluate(&WorkloadSpec::SquareGemm { n: 1024 })
            .expect("evaluate through the process boundary");
        // Same numbers as in-process.
        let local = XnnAnalyticBackend::new()
            .evaluate(&WorkloadSpec::SquareGemm { n: 1024 })
            .expect("local evaluation");
        assert_eq!(report, local);

        // Kill the process: the next call is a transport error.
        child.kill().expect("kill shardd");
        child.wait().expect("reap shardd");
        match remotes[0].evaluate(&WorkloadSpec::SquareGemm { n: 2048 }) {
            Err(EvalError::Transport { .. }) => {}
            other => panic!("expected transport error after kill, got {other:?}"),
        }
    }));
    // Whatever happened, don't leak the child.
    let _ = child.kill();
    let _ = child.wait();
    if let Err(panic) = result {
        eprintln!("shardd log kept at {}", log_path.display());
        std::panic::resume_unwind(panic);
    }
}
