//! FNV-1a hashing for the serving layer's hot hash tables.
//!
//! Rust's default `HashMap` hasher (SipHash-1-3) is keyed to resist
//! collision flooding from attacker-chosen keys, at roughly an order of
//! magnitude more cost per short key than a multiply-xor hash.  The tables
//! in this crate hash workload specs (small enums of integers) and short
//! human-chosen label strings on every cache probe and wire decode, and
//! each table is bounded — the report cache by its capacity config, the
//! name interner by a hard entry cap — so a crafted key set can at worst
//! slow probes of one bounded table, never grow memory.  That trade
//! (bounded worst case for a ~10× cheaper common case) is right for paths
//! that hash several thousand keys per burst.

use std::hash::{BuildHasher, Hasher};

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// `BuildHasher` for [`FnvHasher`]; the zero-sized plug for `HashMap` /
/// `HashSet` type parameters.
#[derive(Clone, Default)]
pub(crate) struct FnvBuild;

impl BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(OFFSET)
    }
}

/// FNV-1a, with whole-word mixing for the integer writes that dominate
/// derived `Hash` impls over spec enums (byte-at-a-time only for raw byte
/// slices, i.e. strings).
pub(crate) struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.0 = (self.0 ^ u64::from(n)).wrapping_mul(PRIME);
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 ^ u64::from(n)).wrapping_mul(PRIME);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(PRIME);
    }

    fn write_usize(&mut self, n: usize) {
        self.0 = (self.0 ^ n as u64).wrapping_mul(PRIME);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn distinct_inputs_hash_differently() {
        let build = FnvBuild;
        let h = |bytes: &[u8]| {
            let mut hasher = build.build_hasher();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(b"rsn-xnn"), h(b"rsn-gpu"));
        assert_ne!(h(b""), h(b"\0"));
    }

    #[test]
    fn word_writes_mix_every_bit() {
        let build = FnvBuild;
        let h = |n: u64| {
            let mut hasher = build.build_hasher();
            hasher.write_u64(n);
            hasher.finish()
        };
        // Neighbouring integers (the common workload-size pattern) must not
        // collide or cluster into the same low bits.
        let lows: std::collections::HashSet<u64> = (0..64u64).map(|n| h(n) & 0xfff).collect();
        assert!(lows.len() > 48, "low-bit clustering: {}", lows.len());
    }
}
