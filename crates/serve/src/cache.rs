//! The keyed report cache with in-flight deduplication and an optional
//! capacity bound.
//!
//! Keys are `(backend shard, WorkloadSpec)` — the same spec evaluated by two
//! backends is two cache lines.  A lookup either returns a completed result,
//! merges the caller onto an identical evaluation that is already running,
//! or reserves the key so exactly one worker computes it.  Evaluation is
//! deterministic, so successful entries never go stale; with the default
//! unbounded capacity they never expire either, and a deduplicated caller
//! shares the very report every other caller of that key receives.  Failed
//! evaluations are *not* retained (see [`ReportCache::complete`]).
//!
//! The hot path is allocation-free: specs are stored as
//! `Arc<WorkloadSpec>` and looked up **by borrow** (`Arc<T>:
//! Borrow<T>` lets the map hash the spec itself), so neither a hit, nor a
//! merge, nor a publish clones a spec; reserving a vacant key bumps the
//! caller's `Arc` refcount.  Results are `Arc`-shared the same way — a hit
//! is two refcount bumps, whatever the report holds.
//!
//! With a capacity bound (`ServiceConfig::cache_capacity`), publishing a
//! result beyond the bound evicts the least-recently-used *completed* entry
//! (in-flight entries are owed to waiters and never evicted).  Recency is a
//! monotone tick bumped on every hit, so the policy is true LRU over
//! completed entries; the eviction scan is `O(entries)`, which is fine for
//! the few-thousand-entry capacities the service uses and keeps hits
//! allocation-free.

use crate::fnv::FnvBuild;
use crate::wire::SharedResult;
use rsn_eval::WorkloadSpec;
#[cfg(test)]
use rsn_eval::{EvalError, EvalReport};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cached results are shared, not copied: a hit hands out an `Arc` clone
/// (~one refcount bump), so serving a cached report costs the same whether
/// the report holds two scalars or a thousand segment rows.
pub(crate) type CachedResult = SharedResult;

enum Entry<W> {
    /// Scheduled but not finished; holds every caller awaiting the result
    /// (including the one that reserved the key).
    InFlight(Vec<W>),
    /// Finished; served to all future lookups without re-evaluating.
    /// `last_used` is the recency tick of the latest hit (or the insert).
    Ready {
        result: CachedResult,
        last_used: u64,
    },
}

/// Outcome of [`CacheTxn::lookup_or_reserve`].
pub(crate) enum Lookup {
    /// The key was already computed; here is the cached result.
    Ready(CachedResult),
    /// The key is being computed; the waiter was queued onto it.
    Merged,
    /// The key was vacant; the caller must schedule the evaluation, and the
    /// waiter was queued to receive it.
    Reserved,
}

struct CacheState<W> {
    /// Per-backend-shard key spaces, indexed by backend and grown lazily.
    /// Splitting by backend keeps the map key a bare `Arc<WorkloadSpec>`,
    /// which is what allows borrowed (clone-free) lookups by `&WorkloadSpec`.
    // FNV-keyed: specs are small integer enums and the map is bounded by
    // the capacity config, so the cheap hash is safe — see [`crate::fnv`].
    shards: Vec<HashMap<Arc<WorkloadSpec>, Entry<W>, FnvBuild>>,
    /// Completed entries resident (in-flight entries do not count toward
    /// the capacity bound).
    ready: usize,
    /// Monotone recency clock; bumped on every hit and publish.
    tick: u64,
}

impl<W> CacheState<W> {
    fn shard_mut(&mut self, backend: usize) -> &mut HashMap<Arc<WorkloadSpec>, Entry<W>, FnvBuild> {
        if backend >= self.shards.len() {
            self.shards.resize_with(backend + 1, HashMap::default);
        }
        &mut self.shards[backend]
    }

    /// Inserts (success) or vacates (error) one published key, adjusting the
    /// ready count, and returns the waiters that were queued on it.  Shared
    /// by [`ReportCache::complete`] and [`CacheTxn::publish`].
    fn store(&mut self, backend: usize, spec: Arc<WorkloadSpec>, result: CachedResult) -> Vec<W> {
        self.tick += 1;
        let tick = self.tick;
        let ok = result.is_ok();
        let shard = self.shard_mut(backend);
        let previous = if ok {
            shard.insert(
                spec,
                Entry::Ready {
                    result,
                    last_used: tick,
                },
            )
        } else {
            // Borrowed removal: the key hashes through the spec itself.
            shard.remove(spec.as_ref())
        };
        match (&previous, ok) {
            (Some(Entry::Ready { .. }), true) => {} // replaced in place
            (Some(Entry::Ready { .. }), false) => self.ready -= 1, // removed
            (_, true) => self.ready += 1,
            (_, false) => {}
        }
        match previous {
            Some(Entry::InFlight(waiters)) => waiters,
            _ => Vec::new(),
        }
    }

    /// Evicts least-recently-used completed entries until the ready count is
    /// within `capacity`; returns how many were removed.
    fn evict_to(&mut self, capacity: Option<usize>) -> u64 {
        let Some(capacity) = capacity else { return 0 };
        let mut evicted = 0;
        while self.ready > capacity {
            let victim = self
                .shards
                .iter()
                .enumerate()
                .flat_map(|(shard_idx, shard)| {
                    shard.iter().filter_map(move |(key, entry)| match entry {
                        Entry::Ready { last_used, .. } => {
                            Some((*last_used, shard_idx, Arc::clone(key)))
                        }
                        Entry::InFlight(_) => None,
                    })
                })
                .min_by_key(|(last_used, _, _)| *last_used)
                .map(|(_, shard_idx, key)| (shard_idx, key))
                .expect("ready count > 0 implies a ready entry");
            self.shards[victim.0].remove(victim.1.as_ref());
            self.ready -= 1;
            evicted += 1;
        }
        evicted
    }
}

/// `WorkloadSpec → EvalReport` cache, sharded by backend index, generic over
/// the waiter bookkeeping the service attaches to in-flight keys.
pub(crate) struct ReportCache<W> {
    state: Mutex<CacheState<W>>,
    /// Maximum completed entries; `None` is unbounded.
    capacity: Option<usize>,
}

impl<W> ReportCache<W> {
    /// An unbounded cache (entries never expire).
    #[cfg(test)]
    pub fn new() -> Self {
        Self::with_capacity(None)
    }

    /// A cache bounded to `capacity` completed entries; `Some(0)` is
    /// clamped to one entry so a publish is always observable by the
    /// waiters that raced with it.
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        Self {
            state: Mutex::new(CacheState {
                shards: Vec::new(),
                ready: 0,
                tick: 0,
            }),
            capacity: capacity.map(|c| c.max(1)),
        }
    }

    /// Opens a transaction that holds the cache lock across many lookups —
    /// the micro-batcher dispatches a whole batch under one acquisition, so
    /// the per-report locking cost shrinks with batch size.
    pub fn begin(&self) -> CacheTxn<'_, W> {
        CacheTxn {
            state: self.state.lock().expect("cache lock"),
            capacity: self.capacity,
        }
    }

    /// Publishes the result for a reserved key, returning the shared result,
    /// every waiter that merged onto it (in arrival order, the reserver
    /// first), and how many completed entries the capacity bound evicted.
    ///
    /// Only successful reports are retained: an error is delivered to every
    /// caller that raced with the evaluation but the key is vacated, so a
    /// transient failure (a panic, a resource hiccup, a dead remote shard)
    /// never poisons a `(backend, spec)` pair for the life of the service —
    /// the next request re-evaluates.  Deterministic errors
    /// (unsupported/too-large) are cheap for backends to re-produce, so
    /// losing negative caching costs little.
    #[cfg(test)]
    pub fn complete(
        &self,
        backend: usize,
        spec: &Arc<WorkloadSpec>,
        result: Result<EvalReport, EvalError>,
    ) -> (CachedResult, Vec<W>, u64) {
        self.complete_shared(backend, spec, Arc::new(result))
    }

    /// [`complete`](Self::complete) for a result that is already
    /// `Arc`-shared — a remote backend's wire decoder produces shared
    /// results, and storing that very `Arc` spares the unwrap-and-re-box
    /// a plain `complete` would force on every decoded report.
    pub fn complete_shared(
        &self,
        backend: usize,
        spec: &Arc<WorkloadSpec>,
        result: CachedResult,
    ) -> (CachedResult, Vec<W>, u64) {
        let mut state = self.state.lock().expect("cache lock");
        let waiters = state.store(backend, Arc::clone(spec), Arc::clone(&result));
        let evicted = state.evict_to(self.capacity);
        (result, waiters, evicted)
    }

    /// Number of cached keys (both in-flight and ready).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("cache lock")
            .shards
            .iter()
            .map(HashMap::len)
            .sum()
    }
}

/// A batch-scoped cache transaction (holds the lock until dropped).
pub(crate) struct CacheTxn<'a, W> {
    state: std::sync::MutexGuard<'a, CacheState<W>>,
    capacity: Option<usize>,
}

impl<W> CacheTxn<'_, W> {
    /// Looks up / reserves one `(backend, spec)` slot inside the
    /// transaction.  Hits and merges never clone the spec (the lookup
    /// borrows it); a reservation stores an `Arc` clone of the caller's.
    pub fn lookup_or_reserve(
        &mut self,
        backend: usize,
        spec: &Arc<WorkloadSpec>,
        waiter: W,
    ) -> Lookup {
        self.state.tick += 1;
        let tick = self.state.tick;
        let shard = self.state.shard_mut(backend);
        match shard.get_mut(spec.as_ref()) {
            Some(Entry::Ready { result, last_used }) => {
                *last_used = tick;
                Lookup::Ready(Arc::clone(result))
            }
            Some(Entry::InFlight(waiters)) => {
                waiters.push(waiter);
                Lookup::Merged
            }
            None => {
                shard.insert(Arc::clone(spec), Entry::InFlight(vec![waiter]));
                Lookup::Reserved
            }
        }
    }

    /// Read-only hit probe by borrowed spec: bumps recency and returns the
    /// cached result on a hit, but — unlike [`Self::lookup_or_reserve`] —
    /// never inserts an in-flight entry, queues a waiter, or clones the
    /// spec.  The shard's inline burst path probes with the plain specs it
    /// decoded off the wire, so a hit costs one hash and zero allocations;
    /// a miss leaves the cache untouched (the caller evaluates and then
    /// [`Self::publish`]es).
    pub fn peek(&mut self, backend: usize, spec: &WorkloadSpec) -> Option<CachedResult> {
        self.state.tick += 1;
        let tick = self.state.tick;
        let shard = self.state.shard_mut(backend);
        match shard.get_mut(spec) {
            Some(Entry::Ready { result, last_used }) => {
                *last_used = tick;
                Some(Arc::clone(result))
            }
            _ => None,
        }
    }

    /// Publishes a result for a key the caller evaluated without reserving
    /// it.  Retention matches [`ReportCache::complete`] — successes are
    /// inserted, errors vacate the key — and any waiters that reserved or
    /// merged onto the key between the caller's [`Self::peek`] and this
    /// publish are returned for the caller to fulfil with this result (the
    /// racing evaluation will later find the key ready/vacant and simply
    /// find no waiters of its own).  Returns the waiters plus how many
    /// entries the capacity bound evicted.
    pub fn publish(
        &mut self,
        backend: usize,
        spec: Arc<WorkloadSpec>,
        result: CachedResult,
    ) -> (Vec<W>, u64) {
        let waiters = self.state.store(backend, spec, result);
        let evicted = self.state.evict_to(self.capacity);
        (waiters, evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_eval::EvalReport;

    fn spec() -> Arc<WorkloadSpec> {
        Arc::new(WorkloadSpec::SquareGemm { n: 64 })
    }

    fn sized_spec(n: usize) -> Arc<WorkloadSpec> {
        Arc::new(WorkloadSpec::SquareGemm { n })
    }

    #[test]
    fn reserve_merge_complete_cycle() {
        let cache: ReportCache<u32> = ReportCache::new();
        {
            let mut txn = cache.begin();
            assert!(matches!(
                txn.lookup_or_reserve(0, &spec(), 1),
                Lookup::Reserved
            ));
            assert!(matches!(
                txn.lookup_or_reserve(0, &spec(), 2),
                Lookup::Merged
            ));
            // A different backend shard is a different cache line.
            assert!(matches!(
                txn.lookup_or_reserve(1, &spec(), 3),
                Lookup::Reserved
            ));
        }
        let (result, waiters, evicted) = cache.complete(0, &spec(), Ok(EvalReport::new("b", "w")));
        assert!(result.is_ok());
        assert_eq!(waiters, vec![1, 2]);
        assert_eq!(evicted, 0);
        let hit = |waiter| match cache.begin().lookup_or_reserve(0, &spec(), waiter) {
            Lookup::Ready(result) => result,
            _ => panic!("expected ready entry"),
        };
        let (first, second) = (hit(4), hit(5));
        assert!(first.is_ok());
        // Hits share the published result, they do not copy it.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_arcs_of_equal_specs_share_one_cache_line() {
        // Lookups hash the spec *value*, not the Arc pointer: two callers
        // holding different allocations of the same spec must deduplicate.
        let cache: ReportCache<u32> = ReportCache::new();
        let a = Arc::new(WorkloadSpec::SquareGemm { n: 256 });
        let b = Arc::new(WorkloadSpec::SquareGemm { n: 256 });
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &a, 1),
            Lookup::Reserved
        ));
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &b, 2),
            Lookup::Merged
        ));
        let (_, waiters, _) = cache.complete(0, &b, Ok(EvalReport::new("b", "w")));
        assert_eq!(waiters, vec![1, 2]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_delivered_but_not_retained() {
        let cache: ReportCache<u32> = ReportCache::new();
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &spec(), 1),
            Lookup::Reserved
        ));
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &spec(), 2),
            Lookup::Merged
        ));
        let (result, waiters, evicted) = cache.complete(
            0,
            &spec(),
            Err(EvalError::Panicked {
                backend: "b".to_string(),
                workload: "w".to_string(),
                reason: "transient".to_string(),
            }),
        );
        // Racing waiters get the error...
        assert!(result.is_err());
        assert_eq!(waiters, vec![1, 2]);
        assert_eq!(evicted, 0);
        // ...but the key is vacated: the next lookup re-reserves instead of
        // serving a permanently poisoned entry.
        assert_eq!(cache.len(), 0);
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &spec(), 3),
            Lookup::Reserved
        ));
    }

    #[test]
    fn capacity_evicts_least_recently_used_completed_entry() {
        let cache: ReportCache<u32> = ReportCache::with_capacity(Some(2));
        for n in 1..=2usize {
            assert!(matches!(
                cache.begin().lookup_or_reserve(0, &sized_spec(n), n as u32),
                Lookup::Reserved
            ));
            let (_, _, evicted) = cache.complete(0, &sized_spec(n), Ok(EvalReport::new("b", "w")));
            assert_eq!(evicted, 0);
        }
        // Touch entry 1 so entry 2 becomes the LRU victim.
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &sized_spec(1), 9),
            Lookup::Ready(_)
        ));
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &sized_spec(3), 10),
            Lookup::Reserved
        ));
        let (_, _, evicted) = cache.complete(0, &sized_spec(3), Ok(EvalReport::new("b", "w")));
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        // Entry 2 was evicted; entries 1 and 3 remain ready.
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &sized_spec(2), 11),
            Lookup::Reserved
        ));
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &sized_spec(1), 12),
            Lookup::Ready(_)
        ));
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &sized_spec(3), 13),
            Lookup::Ready(_)
        ));
    }

    #[test]
    fn inflight_entries_are_never_evicted() {
        let cache: ReportCache<u32> = ReportCache::with_capacity(Some(1));
        // Three reservations in flight at once — all must survive even
        // though the completed-entry capacity is one.
        for n in 1..=3usize {
            assert!(matches!(
                cache.begin().lookup_or_reserve(0, &sized_spec(n), n as u32),
                Lookup::Reserved
            ));
        }
        assert_eq!(cache.len(), 3);
        let mut total_evicted = 0;
        for n in 1..=3usize {
            let (_, waiters, evicted) =
                cache.complete(0, &sized_spec(n), Ok(EvalReport::new("b", "w")));
            assert_eq!(waiters, vec![n as u32]);
            total_evicted += evicted;
        }
        // Each publish beyond the first displaced the previous survivor.
        assert_eq!(total_evicted, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache: ReportCache<u32> = ReportCache::with_capacity(Some(0));
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &spec(), 1),
            Lookup::Reserved
        ));
        let (_, _, evicted) = cache.complete(0, &spec(), Ok(EvalReport::new("b", "w")));
        assert_eq!(evicted, 0);
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &spec(), 2),
            Lookup::Ready(_)
        ));
    }
}
