//! The keyed report cache with in-flight deduplication.
//!
//! Keys are `(backend shard, WorkloadSpec)` — the same spec evaluated by two
//! backends is two cache lines.  A lookup either returns a completed result,
//! merges the caller onto an identical evaluation that is already running,
//! or reserves the key so exactly one worker computes it.  Evaluation is
//! deterministic, so successful entries never expire; a deduplicated caller
//! shares the very report every other caller of that key receives.  Failed
//! evaluations are *not* retained (see [`ReportCache::complete`]).

use rsn_eval::{EvalError, EvalReport, WorkloadSpec};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cached results are shared, not copied: a hit hands out an `Arc` clone
/// (~one refcount bump), so serving a cached report costs the same whether
/// the report holds two scalars or a thousand segment rows.
pub(crate) type CachedResult = Arc<Result<EvalReport, EvalError>>;

enum Entry<W> {
    /// Scheduled but not finished; holds every caller awaiting the result
    /// (including the one that reserved the key).
    InFlight(Vec<W>),
    /// Finished; served to all future lookups without re-evaluating.
    Ready(CachedResult),
}

/// Outcome of [`ReportCache::lookup_or_reserve`].
pub(crate) enum Lookup {
    /// The key was already computed; here is the cached result.
    Ready(CachedResult),
    /// The key is being computed; the waiter was queued onto it.
    Merged,
    /// The key was vacant; the caller must schedule the evaluation, and the
    /// waiter was queued to receive it.
    Reserved,
}

/// `WorkloadSpec → EvalReport` cache, sharded by backend index, generic over
/// the waiter bookkeeping the service attaches to in-flight keys.
pub(crate) struct ReportCache<W> {
    map: Mutex<HashMap<(usize, WorkloadSpec), Entry<W>>>,
}

impl<W> ReportCache<W> {
    pub fn new() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Opens a transaction that holds the cache lock across many lookups —
    /// the micro-batcher dispatches a whole batch under one acquisition, so
    /// the per-report locking cost shrinks with batch size.
    pub fn begin(&self) -> CacheTxn<'_, W> {
        CacheTxn {
            map: self.map.lock().expect("cache lock"),
        }
    }

    /// Publishes the result for a reserved key, returning the shared result
    /// plus every waiter that merged onto it (in arrival order, the
    /// reserver first).
    ///
    /// Only successful reports are retained: an error is delivered to every
    /// caller that raced with the evaluation but the key is vacated, so a
    /// transient failure (a panic, a resource hiccup) never poisons a
    /// `(backend, spec)` pair for the life of the service — the next request
    /// re-evaluates.  Deterministic errors (unsupported/too-large) are cheap
    /// for backends to re-produce, so losing negative caching costs little.
    pub fn complete(
        &self,
        backend: usize,
        spec: &WorkloadSpec,
        result: Result<EvalReport, EvalError>,
    ) -> (CachedResult, Vec<W>) {
        let result = Arc::new(result);
        let mut map = self.map.lock().expect("cache lock");
        let previous = if result.is_ok() {
            map.insert((backend, spec.clone()), Entry::Ready(Arc::clone(&result)))
        } else {
            map.remove(&(backend, spec.clone()))
        };
        let waiters = match previous {
            Some(Entry::InFlight(waiters)) => waiters,
            _ => Vec::new(),
        };
        (result, waiters)
    }

    /// Number of cached keys (both in-flight and ready).
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }
}

/// A batch-scoped cache transaction (holds the lock until dropped).
pub(crate) struct CacheTxn<'a, W> {
    map: std::sync::MutexGuard<'a, HashMap<(usize, WorkloadSpec), Entry<W>>>,
}

impl<W> CacheTxn<'_, W> {
    /// Looks up / reserves one `(backend, spec)` slot inside the
    /// transaction.
    pub fn lookup_or_reserve(&mut self, backend: usize, spec: &WorkloadSpec, waiter: W) -> Lookup {
        match self.map.get_mut(&(backend, spec.clone())) {
            Some(Entry::Ready(result)) => Lookup::Ready(Arc::clone(result)),
            Some(Entry::InFlight(waiters)) => {
                waiters.push(waiter);
                Lookup::Merged
            }
            None => {
                self.map
                    .insert((backend, spec.clone()), Entry::InFlight(vec![waiter]));
                Lookup::Reserved
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_eval::EvalReport;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::SquareGemm { n: 64 }
    }

    #[test]
    fn reserve_merge_complete_cycle() {
        let cache: ReportCache<u32> = ReportCache::new();
        {
            let mut txn = cache.begin();
            assert!(matches!(
                txn.lookup_or_reserve(0, &spec(), 1),
                Lookup::Reserved
            ));
            assert!(matches!(
                txn.lookup_or_reserve(0, &spec(), 2),
                Lookup::Merged
            ));
            // A different backend shard is a different cache line.
            assert!(matches!(
                txn.lookup_or_reserve(1, &spec(), 3),
                Lookup::Reserved
            ));
        }
        let (result, waiters) = cache.complete(0, &spec(), Ok(EvalReport::new("b", "w")));
        assert!(result.is_ok());
        assert_eq!(waiters, vec![1, 2]);
        let hit = |waiter| match cache.begin().lookup_or_reserve(0, &spec(), waiter) {
            Lookup::Ready(result) => result,
            _ => panic!("expected ready entry"),
        };
        let (first, second) = (hit(4), hit(5));
        assert!(first.is_ok());
        // Hits share the published result, they do not copy it.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn errors_are_delivered_but_not_retained() {
        let cache: ReportCache<u32> = ReportCache::new();
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &spec(), 1),
            Lookup::Reserved
        ));
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &spec(), 2),
            Lookup::Merged
        ));
        let (result, waiters) = cache.complete(
            0,
            &spec(),
            Err(EvalError::Panicked {
                backend: "b".to_string(),
                workload: "w".to_string(),
                reason: "transient".to_string(),
            }),
        );
        // Racing waiters get the error...
        assert!(result.is_err());
        assert_eq!(waiters, vec![1, 2]);
        // ...but the key is vacated: the next lookup re-reserves instead of
        // serving a permanently poisoned entry.
        assert_eq!(cache.len(), 0);
        assert!(matches!(
            cache.begin().lookup_or_reserve(0, &spec(), 3),
            Lookup::Reserved
        ));
    }
}
