//! The shard wire protocol: length-prefixed JSON frames and the typed
//! request/response messages that cross them.
//!
//! # Framing
//!
//! One frame is a 4-byte big-endian payload length followed by exactly that
//! many bytes of UTF-8 JSON (the [`crate::json`] emitter's pretty form —
//! deterministic, so a frame for a given message is byte-stable).  Frames
//! larger than [`MAX_FRAME_BYTES`] are rejected on both sides, bounding
//! what a malformed or hostile peer can make the other side allocate.
//!
//! # Messages
//!
//! Requests carry a client-chosen `id` that the response echoes, so a
//! connection can be used for many sequential request/response exchanges:
//!
//! ```text
//! {"id": 1, "kind": "hello"}                      → backends + protocol version
//! {"id": 2, "kind": "supports", "backend", "spec"} → {"supported": bool}
//! {"id": 3, "kind": "evaluate", "backend", "spec"} → {"report"} | {"error"}
//! {"id": 4, "kind": "evaluate_batch", "backend", "specs"} → {"results": [...]}
//! {"id": 5, "kind": "stats"}                       → {"stats": {...}}
//! ```
//!
//! An `"ok": false` response with a `"message"` reports a protocol-level
//! failure (unparseable frame, unknown request kind, unknown backend name);
//! evaluation failures are *domain* results and travel as structured
//! [`EvalError`] documents inside an `"ok": true` response.
//!
//! # Versioning
//!
//! The hello response advertises the shard's [`PROTOCOL_VERSION`]; a
//! response without the field is a version-1 shard.  `evaluate_batch`
//! (one frame carrying a whole micro-batch of specs, answered by one frame
//! of results in order) exists from version 2 — clients that handshook a
//! version-1 shard fall back to per-spec `evaluate` exchanges, so old and
//! new peers interoperate in both directions.

use crate::json::{self, DecodeError, JsonParseError, JsonValue};
use crate::stats::ServiceStats;
use rsn_eval::{EvalError, EvalReport, WorkloadSpec};
use std::io::{Read, Write};

/// Upper bound on one frame's payload, sized generously above the largest
/// document the service emits (a full-model report is a few tens of KiB).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// The shard protocol version this build speaks.  Version 2 added the
/// `evaluate_batch` exchange; the hello response advertises the version so
/// clients can negotiate per-spec fallback against older shards.
pub const PROTOCOL_VERSION: u64 = 2;

/// A transport-layer failure: the connection died, a frame was malformed,
/// or a peer spoke something that is not the shard protocol.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// A frame exceeded [`MAX_FRAME_BYTES`].
    FrameTooLarge(u32),
    /// A frame's payload was not valid JSON.
    Parse(JsonParseError),
    /// A frame's JSON did not decode into the expected message.
    Decode(DecodeError),
    /// The peer answered with a protocol-level failure.
    Rejected(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::FrameTooLarge(len) => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_BYTES} byte bound"
                )
            }
            WireError::Parse(e) => write!(f, "malformed frame: {e}"),
            WireError::Decode(e) => write!(f, "unexpected frame: {e}"),
            WireError::Rejected(message) => write!(f, "peer rejected the request: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<JsonParseError> for WireError {
    fn from(e: JsonParseError) -> Self {
        WireError::Parse(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame(writer: &mut impl Write, doc: &JsonValue) -> Result<(), WireError> {
    let payload = doc.to_pretty();
    let len = u32::try_from(payload.len()).map_err(|_| WireError::FrameTooLarge(u32::MAX))?;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(len));
    }
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed JSON frame.  A clean EOF *before* the length
/// prefix returns `Ok(None)` (the peer closed an idle connection); EOF
/// mid-frame is an error.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<JsonValue>, WireError> {
    let mut prefix = [0u8; 4];
    match reader.read(&mut prefix)? {
        0 => return Ok(None),
        mut filled => {
            while filled < prefix.len() {
                let n = reader.read(&mut prefix[filled..])?;
                if n == 0 {
                    return Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed inside a frame length prefix",
                    )));
                }
                filled += n;
            }
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| WireError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e)))?;
    Ok(Some(json::parse(&text)?))
}

/// One request a client can make of a shard server.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardRequest {
    /// "Which backends do you host?"
    Hello,
    /// "Can `backend` structurally evaluate `spec`?"
    Supports {
        /// Backend shard name.
        backend: String,
        /// The workload in question.
        spec: WorkloadSpec,
    },
    /// "Evaluate `spec` on `backend`."
    Evaluate {
        /// Backend shard name.
        backend: String,
        /// The workload to evaluate.
        spec: WorkloadSpec,
    },
    /// "Evaluate every spec on `backend`, answer once with every result."
    /// One pipelined exchange per micro-batch instead of one per spec —
    /// requires a version ≥ 2 shard (see [`PROTOCOL_VERSION`]).
    EvaluateBatch {
        /// Backend shard name.
        backend: String,
        /// The workloads to evaluate, answered in this order.
        specs: Vec<WorkloadSpec>,
    },
    /// "How busy have you been?"
    Stats,
}

impl ShardRequest {
    /// Encodes the request with its exchange id.
    pub fn to_json(&self, id: u64) -> JsonValue {
        let mut pairs = vec![("id".to_string(), JsonValue::Int(id))];
        match self {
            ShardRequest::Hello => {
                pairs.push(("kind".to_string(), JsonValue::Str("hello".to_string())));
            }
            ShardRequest::Supports { backend, spec } => {
                pairs.push(("kind".to_string(), JsonValue::Str("supports".to_string())));
                pairs.push(("backend".to_string(), JsonValue::Str(backend.clone())));
                pairs.push(("spec".to_string(), json::workload_spec_json(spec)));
            }
            ShardRequest::Evaluate { backend, spec } => {
                pairs.push(("kind".to_string(), JsonValue::Str("evaluate".to_string())));
                pairs.push(("backend".to_string(), JsonValue::Str(backend.clone())));
                pairs.push(("spec".to_string(), json::workload_spec_json(spec)));
            }
            ShardRequest::EvaluateBatch { backend, specs } => {
                pairs.push((
                    "kind".to_string(),
                    JsonValue::Str("evaluate_batch".to_string()),
                ));
                pairs.push(("backend".to_string(), JsonValue::Str(backend.clone())));
                pairs.push((
                    "specs".to_string(),
                    JsonValue::Arr(specs.iter().map(json::workload_spec_json).collect()),
                ));
            }
            ShardRequest::Stats => {
                pairs.push(("kind".to_string(), JsonValue::Str("stats".to_string())));
            }
        }
        JsonValue::Obj(pairs)
    }

    /// Decodes a request frame into `(id, request)`.
    pub fn from_json(doc: &JsonValue) -> Result<(u64, Self), DecodeError> {
        const CTX: &str = "ShardRequest";
        let id = match doc.get("id") {
            Some(JsonValue::Int(id)) => *id,
            _ => {
                return Err(DecodeError {
                    context: CTX.to_string(),
                    message: "missing integer `id`".to_string(),
                })
            }
        };
        let kind = match doc.get("kind") {
            Some(JsonValue::Str(kind)) => kind.as_str(),
            _ => {
                return Err(DecodeError {
                    context: CTX.to_string(),
                    message: "missing string `kind`".to_string(),
                })
            }
        };
        let backend_name = || -> Result<String, DecodeError> {
            match doc.get("backend") {
                Some(JsonValue::Str(name)) => Ok(name.clone()),
                _ => Err(DecodeError {
                    context: CTX.to_string(),
                    message: "missing string `backend`".to_string(),
                }),
            }
        };
        let backend_and_spec = || -> Result<(String, WorkloadSpec), DecodeError> {
            let backend = backend_name()?;
            let spec = doc.get("spec").ok_or_else(|| DecodeError {
                context: CTX.to_string(),
                message: "missing `spec`".to_string(),
            })?;
            Ok((backend, json::workload_spec_from_json(spec)?))
        };
        let request = match kind {
            "hello" => ShardRequest::Hello,
            "supports" => {
                let (backend, spec) = backend_and_spec()?;
                ShardRequest::Supports { backend, spec }
            }
            "evaluate" => {
                let (backend, spec) = backend_and_spec()?;
                ShardRequest::Evaluate { backend, spec }
            }
            "evaluate_batch" => {
                let backend = backend_name()?;
                let specs = match doc.get("specs") {
                    Some(JsonValue::Arr(items)) => items
                        .iter()
                        .map(json::workload_spec_from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => {
                        return Err(DecodeError {
                            context: CTX.to_string(),
                            message: "missing array `specs`".to_string(),
                        })
                    }
                };
                ShardRequest::EvaluateBatch { backend, specs }
            }
            "stats" => ShardRequest::Stats,
            other => {
                return Err(DecodeError {
                    context: CTX.to_string(),
                    message: format!("unknown request kind `{other}`"),
                })
            }
        };
        Ok((id, request))
    }
}

/// One answer a shard server sends back.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardResponse {
    /// The backends this shard hosts, in registration order, and the
    /// protocol version the shard speaks (1 when the peer predates the
    /// version field).
    Backends {
        /// Hosted backend names, in registration order.
        names: Vec<String>,
        /// The shard's [`PROTOCOL_VERSION`].
        protocol: u64,
    },
    /// Whether the asked backend supports the asked spec.
    Supported(bool),
    /// The evaluation's domain result.
    Evaluated(Result<EvalReport, EvalError>),
    /// One domain result per spec of an `evaluate_batch` request, in the
    /// request's spec order.
    EvaluatedBatch(Vec<Result<EvalReport, EvalError>>),
    /// The shard's service statistics.
    Stats(ServiceStats),
    /// A protocol-level rejection (unknown backend/kind, malformed frame).
    Rejected(String),
}

impl ShardResponse {
    /// Encodes the response, echoing the request's exchange id.
    pub fn to_json(&self, id: u64) -> JsonValue {
        let ok = !matches!(self, ShardResponse::Rejected(_));
        let mut pairs = vec![
            ("id".to_string(), JsonValue::Int(id)),
            ("ok".to_string(), JsonValue::Bool(ok)),
        ];
        match self {
            ShardResponse::Backends { names, protocol } => {
                pairs.push((
                    "backends".to_string(),
                    JsonValue::Arr(names.iter().map(|n| JsonValue::Str(n.clone())).collect()),
                ));
                pairs.push(("protocol".to_string(), JsonValue::Int(*protocol)));
            }
            ShardResponse::Supported(supported) => {
                pairs.push(("supported".to_string(), JsonValue::Bool(*supported)));
            }
            ShardResponse::Evaluated(Ok(report)) => {
                pairs.push(("report".to_string(), json::report_json(report)));
            }
            ShardResponse::Evaluated(Err(error)) => {
                pairs.push(("error".to_string(), json::error_json(error)));
            }
            ShardResponse::EvaluatedBatch(results) => {
                pairs.push((
                    "results".to_string(),
                    JsonValue::Arr(
                        results
                            .iter()
                            .map(|result| match result {
                                Ok(report) => JsonValue::Obj(vec![(
                                    "report".to_string(),
                                    json::report_json(report),
                                )]),
                                Err(error) => JsonValue::Obj(vec![(
                                    "error".to_string(),
                                    json::error_json(error),
                                )]),
                            })
                            .collect(),
                    ),
                ));
            }
            ShardResponse::Stats(stats) => {
                pairs.push(("stats".to_string(), json::stats_json(stats)));
            }
            ShardResponse::Rejected(message) => {
                pairs.push(("message".to_string(), JsonValue::Str(message.clone())));
            }
        }
        JsonValue::Obj(pairs)
    }

    /// Decodes a response frame into `(id, response)`.
    pub fn from_json(doc: &JsonValue) -> Result<(u64, Self), DecodeError> {
        const CTX: &str = "ShardResponse";
        let id = match doc.get("id") {
            Some(JsonValue::Int(id)) => *id,
            _ => {
                return Err(DecodeError {
                    context: CTX.to_string(),
                    message: "missing integer `id`".to_string(),
                })
            }
        };
        if let Some(JsonValue::Bool(false)) = doc.get("ok") {
            let message = match doc.get("message") {
                Some(JsonValue::Str(m)) => m.clone(),
                _ => "unspecified peer failure".to_string(),
            };
            return Ok((id, ShardResponse::Rejected(message)));
        }
        let response = if let Some(backends) = doc.get("backends") {
            let names = match backends {
                JsonValue::Arr(items) => items
                    .iter()
                    .map(|item| match item {
                        JsonValue::Str(s) => Ok(s.clone()),
                        _ => Err(DecodeError {
                            context: CTX.to_string(),
                            message: "backend names must be strings".to_string(),
                        }),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => {
                    return Err(DecodeError {
                        context: CTX.to_string(),
                        message: "`backends` must be an array".to_string(),
                    })
                }
            };
            // Version-1 shards predate the `protocol` field.
            let protocol = match doc.get("protocol") {
                Some(JsonValue::Int(version)) => *version,
                _ => 1,
            };
            ShardResponse::Backends { names, protocol }
        } else if let Some(JsonValue::Bool(supported)) = doc.get("supported") {
            ShardResponse::Supported(*supported)
        } else if let Some(report) = doc.get("report") {
            ShardResponse::Evaluated(Ok(json::report_from_json(report)?))
        } else if let Some(error) = doc.get("error") {
            ShardResponse::Evaluated(Err(json::error_from_json(error)?))
        } else if let Some(results) = doc.get("results") {
            let results = match results {
                JsonValue::Arr(items) => items
                    .iter()
                    .map(|item| {
                        if let Some(report) = item.get("report") {
                            Ok(Ok(json::report_from_json(report)?))
                        } else if let Some(error) = item.get("error") {
                            Ok(Err(json::error_from_json(error)?))
                        } else {
                            Err(DecodeError {
                                context: CTX.to_string(),
                                message: "batch result carries neither `report` nor `error`"
                                    .to_string(),
                            })
                        }
                    })
                    .collect::<Result<Vec<_>, DecodeError>>()?,
                _ => {
                    return Err(DecodeError {
                        context: CTX.to_string(),
                        message: "`results` must be an array".to_string(),
                    })
                }
            };
            ShardResponse::EvaluatedBatch(results)
        } else if let Some(stats) = doc.get("stats") {
            ShardResponse::Stats(json::stats_from_json(stats)?)
        } else {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: "response carries no recognised payload".to_string(),
            });
        };
        Ok((id, response))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let doc = ShardRequest::Evaluate {
            backend: "rsn-xnn".to_string(),
            spec: WorkloadSpec::SquareGemm { n: 1024 },
        }
        .to_json(7);
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &doc).expect("write frame");
        // 4-byte prefix holds the payload length.
        let payload_len = u32::from_be_bytes(buffer[..4].try_into().unwrap());
        assert_eq!(payload_len as usize, buffer.len() - 4);
        let read = read_frame(&mut Cursor::new(&buffer)).expect("read frame");
        assert_eq!(read, Some(doc.clone()));
        // Exchange round trip.
        let (id, request) = ShardRequest::from_json(&doc).expect("decode request");
        assert_eq!(id, 7);
        assert!(matches!(request, ShardRequest::Evaluate { .. }));
    }

    #[test]
    fn clean_eof_is_none_but_midframe_eof_is_an_error() {
        assert!(matches!(read_frame(&mut Cursor::new(&[])), Ok(None)));
        // A length prefix promising more bytes than follow.
        let mut truncated = Vec::new();
        truncated.extend_from_slice(&100u32.to_be_bytes());
        truncated.extend_from_slice(b"short");
        assert!(matches!(
            read_frame(&mut Cursor::new(&truncated)),
            Err(WireError::Io(_))
        ));
        // Prefix itself truncated.
        assert!(matches!(
            read_frame(&mut Cursor::new(&[0u8, 0])),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&huge)),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn malformed_payload_is_a_parse_error_with_position() {
        let payload = b"{\"id\": oops}";
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buffer.extend_from_slice(payload);
        match read_frame(&mut Cursor::new(&buffer)) {
            Err(WireError::Parse(e)) => {
                assert_eq!((e.line, e.column), (1, 8));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn every_request_and_response_round_trips() {
        let requests = [
            ShardRequest::Hello,
            ShardRequest::Supports {
                backend: "alpha".to_string(),
                spec: WorkloadSpec::PowerBreakdown,
            },
            ShardRequest::Evaluate {
                backend: "beta".to_string(),
                spec: WorkloadSpec::FunctionalGemm {
                    m: 8,
                    k: 4,
                    n: 8,
                    seed: 3,
                },
            },
            ShardRequest::EvaluateBatch {
                backend: "gamma".to_string(),
                specs: vec![
                    WorkloadSpec::SquareGemm { n: 64 },
                    WorkloadSpec::PowerBreakdown,
                ],
            },
            ShardRequest::Stats,
        ];
        for (id, request) in requests.into_iter().enumerate() {
            let doc = request.to_json(id as u64);
            assert_eq!(
                ShardRequest::from_json(&doc).expect("request decodes"),
                (id as u64, request)
            );
        }
        let responses = [
            ShardResponse::Backends {
                names: vec!["a".to_string(), "b".to_string()],
                protocol: PROTOCOL_VERSION,
            },
            ShardResponse::Supported(true),
            ShardResponse::Evaluated(Ok(EvalReport::new("a", "w"))),
            ShardResponse::Evaluated(Err(EvalError::Unsupported {
                backend: "a".to_string(),
                workload: "w".to_string(),
            })),
            ShardResponse::EvaluatedBatch(vec![
                Ok(EvalReport::new("a", "w1")),
                Err(EvalError::Unsupported {
                    backend: "a".to_string(),
                    workload: "w2".to_string(),
                }),
            ]),
            ShardResponse::Stats(ServiceStats::default()),
            ShardResponse::Rejected("unknown backend `zeta`".to_string()),
        ];
        for (id, response) in responses.into_iter().enumerate() {
            let doc = response.to_json(id as u64);
            assert_eq!(
                ShardResponse::from_json(&doc).expect("response decodes"),
                (id as u64, response)
            );
        }
    }

    #[test]
    fn hello_without_protocol_field_is_a_version_one_shard() {
        // What a pre-versioning shard emitted: backends, no protocol.
        let doc = JsonValue::Obj(vec![
            ("id".to_string(), JsonValue::Int(9)),
            ("ok".to_string(), JsonValue::Bool(true)),
            (
                "backends".to_string(),
                JsonValue::Arr(vec![JsonValue::Str("rsn-xnn".to_string())]),
            ),
        ]);
        match ShardResponse::from_json(&doc).expect("legacy hello decodes") {
            (9, ShardResponse::Backends { names, protocol }) => {
                assert_eq!(names, ["rsn-xnn"]);
                assert_eq!(protocol, 1, "missing field must mean version 1");
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }
}
