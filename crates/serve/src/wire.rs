//! The shard wire protocol: length-prefixed frames (JSON or compact
//! binary) and the typed request/response messages that cross them.
//!
//! # Framing
//!
//! One frame is a 4-byte big-endian payload length followed by exactly that
//! many payload bytes.  The payload's first byte selects the encoding:
//! [`binary::MAGIC`] (`0xB3`) marks the protocol-3
//! compact binary codec ([`crate::binary`]); anything else is UTF-8 JSON
//! (the [`crate::json`] emitter's pretty form — deterministic, so a frame
//! for a given message is byte-stable).  Receivers dispatch per frame, so
//! mixed-encoding fleets interoperate without per-connection state.  Frames
//! larger than [`MAX_FRAME_BYTES`] are rejected on both sides, bounding
//! what a malformed or hostile peer can make the other side allocate.
//!
//! # Messages
//!
//! Requests carry a client-chosen `id` that the response echoes, so a
//! connection can be used for many sequential request/response exchanges
//! (shown here in their JSON form):
//!
//! ```text
//! {"id": 1, "kind": "hello"}                      → backends + protocol version
//! {"id": 2, "kind": "supports", "backend", "spec"} → {"supported": bool}
//! {"id": 3, "kind": "evaluate", "backend", "spec"} → {"report"} | {"error"}
//! {"id": 4, "kind": "evaluate_batch", "backend", "specs"} → {"results": [...]}
//! {"id": 5, "kind": "stats"}                       → {"stats": {...}}
//! ```
//!
//! An `"ok": false` response with a `"message"` reports a protocol-level
//! failure (unparseable frame, unknown request kind, unknown backend name);
//! evaluation failures are *domain* results and travel as structured
//! [`EvalError`] documents inside an `"ok": true` response.
//!
//! # Versioning and encoding negotiation
//!
//! The hello response advertises the shard's [`PROTOCOL_VERSION`]; a
//! response without the field is a version-1 shard.  `evaluate_batch`
//! (one frame carrying a whole micro-batch of specs, answered by one frame
//! of results in order) exists from version 2 — clients that handshook a
//! version-1 shard fall back to per-spec `evaluate` exchanges, so old and
//! new peers interoperate in both directions.
//!
//! Version 3 adds the binary codec.  Negotiation is one-sided and
//! hello-driven: a client sends its `hello` in JSON (every version
//! understands that), and switches to binary frames only after the
//! response advertises protocol ≥ 3; servers answer every request in the
//! encoding it arrived in (unless forced otherwise — see
//! [`EncodingPolicy`](crate::config::EncodingPolicy)), so a v3 server
//! transparently keeps speaking JSON to v1/v2 clients.
//!
//! Version 5 makes the negotiation two-sided for multiplexing: the client's
//! `hello` now carries *its* protocol version (missing means a pre-v5
//! client), and a reactor-fronted shard answering a v5 client advertises a
//! per-connection credit `window` in the hello response.  Only when both
//! halves are present may responses complete **out of order** (matched by
//! the echoed request id) and may the client send `cancel` frames; against
//! any older peer both sides keep the strict-FIFO one-response-per-request
//! discipline, byte-identically to v4.
//!
//! Version 7 adds per-connection symbol dictionaries and bitmap-compact
//! report framing ([`binary::DICT_MAGIC`], `0xB7`).  Unlike every earlier
//! encoding, a dictionary frame reads and writes *connection state* — the
//! per-direction symbol tables that resolve label ids — so the stateless
//! entry points here never emit or accept one: [`write_request_frame`]
//! treats [`WireEncoding::BinaryDict`] as plain binary, and the plain
//! decoders reject `0xB7` payloads outright.  Connection owners (the pool,
//! the reactor, the threads front end) thread their
//! [`binary::TxSymbols`]/[`binary::RxSymbols`] halves through the `_dict`
//! variants instead.  Negotiation stays hello-driven: both sides must
//! advertise ≥ 7 before either emits a dictionary frame, so a v7 client
//! against a v6 shard produces byte-identical v6 framing.

use crate::binary;
use crate::json::{self, DecodeError, JsonParseError, JsonValue};
use crate::stats::ServiceStats;
use rsn_eval::{EvalError, EvalReport, WorkloadSpec};
use std::io::{Read, Write};
use std::sync::Arc;

/// A domain result shared rather than copied: the report cache, the
/// response slots, and the wire layer all hand out clones of one `Arc`, so
/// serving or shipping a cached report never deep-copies it.
pub type SharedResult = Arc<Result<EvalReport, EvalError>>;

/// Upper bound on one frame's payload, sized generously above the largest
/// document the service emits (a full-model report is a few tens of KiB).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// The shard protocol version this build speaks.  Version 2 added the
/// `evaluate_batch` exchange; version 3 added the compact binary codec
/// ([`crate::binary`]); version 4 added shared-memory ring negotiation
/// (the hello response may advertise a same-host ring segment path — see
/// [`crate::shm`]) and extensible pool-counter records in binary stats
/// documents; version 5 adds request multiplexing (client protocol in the
/// hello request, a credit `window` in the hello response, out-of-order
/// response completion matched by id, and the `cancel` frame — see
/// [`crate::reactor`]); version 6 adds the trailing per-class latency
/// section in stats documents ([`crate::stats::ClassStats`]); version 7
/// adds per-connection symbol dictionaries and bitmap-compact report
/// frames ([`crate::binary::DICT_MAGIC`]).  The hello exchange advertises
/// the version both ways so each side can negotiate fallbacks against
/// older peers.
pub const PROTOCOL_VERSION: u64 = 7;

/// The protocol version that introduced request multiplexing.  Capability
/// checks for credit windows and out-of-order completion compare against
/// this, not [`PROTOCOL_VERSION`] — a v5 peer keeps its credit window when
/// talking to a v6 build.
pub(crate) const MUX_PROTOCOL: u64 = 5;

/// The protocol version that introduced the per-class latency section in
/// stats documents.  Servers clear `classes` from a stats snapshot before
/// answering a peer older than this: pre-v6 binary decoders reject
/// trailing bytes they do not know.
pub(crate) const LATENCY_STATS_PROTOCOL: u64 = 6;

/// The protocol version that introduced per-connection symbol dictionaries
/// and bitmap report frames.  Both sides must advertise at least this
/// before either may put a [`binary::DICT_MAGIC`] frame on the wire; any
/// older peer gets byte-identical v6 framing.
pub(crate) const DICT_PROTOCOL: u64 = 7;

/// The encoding of one frame on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireEncoding {
    /// Pretty-printed JSON (protocol ≤ 2, and the v3 debugging fallback).
    Json,
    /// The compact binary codec (protocol ≥ 3).
    Binary,
    /// The binary codec with per-connection symbol dictionaries and bitmap
    /// report frames (protocol ≥ 7).  Stateful: frames in this encoding
    /// must travel through the `_dict` functions with the connection's
    /// symbol tables; the stateless writers fall back to plain binary.
    BinaryDict,
}

/// A transport-layer failure: the connection died, a frame was malformed,
/// or a peer spoke something that is not the shard protocol.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// A frame exceeded [`MAX_FRAME_BYTES`]; carries the offending length
    /// (wider than `u32` so encode-side overflows report the real payload
    /// size instead of a saturated sentinel).
    FrameTooLarge(u64),
    /// A frame's payload was not valid JSON.
    Parse(JsonParseError),
    /// A frame's JSON did not decode into the expected message.
    Decode(DecodeError),
    /// The peer answered with a protocol-level failure.
    Rejected(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::FrameTooLarge(len) => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_BYTES} byte bound"
                )
            }
            WireError::Parse(e) => write!(f, "malformed frame: {e}"),
            WireError::Decode(e) => write!(f, "unexpected frame: {e}"),
            WireError::Rejected(message) => write!(f, "peer rejected the request: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<JsonParseError> for WireError {
    fn from(e: JsonParseError) -> Self {
        WireError::Parse(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame(writer: &mut impl Write, doc: &JsonValue) -> Result<(), WireError> {
    let payload = doc.to_pretty();
    if payload.len() as u64 > u64::from(MAX_FRAME_BYTES) {
        return Err(WireError::FrameTooLarge(payload.len() as u64));
    }
    let len = payload.len() as u32;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed JSON frame.  A clean EOF *before* the length
/// prefix returns `Ok(None)` (the peer closed an idle connection); EOF
/// mid-frame is an error.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<JsonValue>, WireError> {
    let mut prefix = [0u8; 4];
    match reader.read(&mut prefix)? {
        0 => return Ok(None),
        mut filled => {
            while filled < prefix.len() {
                let n = reader.read(&mut prefix[filled..])?;
                if n == 0 {
                    return Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed inside a frame length prefix",
                    )));
                }
                filled += n;
            }
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(u64::from(len)));
    }
    let mut payload = Vec::new();
    read_exact_growing(reader, &mut payload, len as usize)?;
    let text = String::from_utf8(payload)
        .map_err(|e| WireError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e)))?;
    Ok(Some(json::parse(&text)?))
}

/// Reads one frame's payload bytes into `scratch` (cleared and reused — no
/// per-frame buffer allocation once the scratch has grown to the working
/// set).  `Ok(None)` is a clean EOF before the length prefix.
fn read_payload(reader: &mut impl Read, scratch: &mut Vec<u8>) -> Result<Option<()>, WireError> {
    let mut prefix = [0u8; 4];
    match reader.read(&mut prefix)? {
        0 => return Ok(None),
        mut filled => {
            while filled < prefix.len() {
                let n = reader.read(&mut prefix[filled..])?;
                if n == 0 {
                    return Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed inside a frame length prefix",
                    )));
                }
                filled += n;
            }
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(u64::from(len)));
    }
    read_exact_growing(reader, scratch, len as usize)?;
    Ok(Some(()))
}

/// Granularity of payload-buffer growth: large enough that an honest
/// frame's read loop stays short, small enough that a spoofed prefix
/// cannot commit real memory it never backs with bytes.
const PAYLOAD_GROW_STEP: usize = 256 * 1024;

/// Reads exactly `len` bytes into `buf` (cleared first), growing the
/// buffer in [`PAYLOAD_GROW_STEP`] increments *as the bytes arrive*.  The
/// length prefix is attacker-controlled: committing the whole allocation
/// up front would let a hostile peer pin [`MAX_FRAME_BYTES`] of memory per
/// connection by sending nothing but a 4-byte prefix, so the allocation is
/// kept proportional to what the peer actually delivered.
fn read_exact_growing(
    reader: &mut impl Read,
    buf: &mut Vec<u8>,
    len: usize,
) -> std::io::Result<()> {
    buf.clear();
    let mut filled = 0;
    while filled < len {
        let target = len.min(filled + PAYLOAD_GROW_STEP);
        buf.resize(target, 0);
        reader.read_exact(&mut buf[filled..target])?;
        filled = target;
    }
    Ok(())
}

/// Frames the buffer prepared by [`begin_frame`] (4-byte placeholder,
/// then the payload): patches the length prefix in place and puts the
/// whole frame on the wire in **one** `write` — one syscall per frame
/// instead of two, and with `TCP_NODELAY` one segment instead of a
/// prefix-only runt packet.  Returns the total bytes written.
fn write_framed(writer: &mut impl Write, scratch: &mut [u8]) -> Result<u64, WireError> {
    let payload = scratch.len() - 4;
    if payload as u64 > u64::from(MAX_FRAME_BYTES) {
        return Err(WireError::FrameTooLarge(payload as u64));
    }
    let len = payload as u32;
    scratch[..4].copy_from_slice(&len.to_be_bytes());
    writer.write_all(scratch)?;
    writer.flush()?;
    Ok(u64::from(len) + 4)
}

/// Resets `scratch` to a 4-byte length-prefix placeholder; the encoders
/// append the payload behind it, so no post-encode memmove is needed.
fn begin_frame(scratch: &mut Vec<u8>) {
    scratch.clear();
    scratch.extend_from_slice(&[0u8; 4]);
}

/// Parses a JSON payload (already read off the wire) into a document.
fn parse_json_payload(payload: &[u8]) -> Result<JsonValue, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e)))?;
    Ok(json::parse(text)?)
}

/// Writes one request frame in the given encoding, reusing `scratch` for
/// the binary image.  Returns the bytes put on the wire.
pub fn write_request_frame(
    writer: &mut impl Write,
    id: u64,
    request: &ShardRequest,
    encoding: WireEncoding,
    scratch: &mut Vec<u8>,
) -> Result<u64, WireError> {
    begin_frame(scratch);
    match encoding {
        // Stateless entry point: without the connection's symbol tables,
        // BinaryDict degrades to the plain image, which every ≥ v3 peer
        // decodes.  Dictionary frames go through
        // [`write_request_frame_dict`].
        WireEncoding::Binary | WireEncoding::BinaryDict => {
            binary::encode_request(scratch, id, request)
        }
        WireEncoding::Json => {
            scratch.extend_from_slice(request.to_json(id).to_pretty().as_bytes());
        }
    }
    write_framed(writer, scratch)
}

/// Writes one request frame against the connection's transmit-side symbol
/// table.  Only meaningful with [`WireEncoding::BinaryDict`]; other
/// encodings behave exactly like [`write_request_frame`] (the table is
/// untouched).  Returns the bytes put on the wire.
pub fn write_request_frame_dict(
    writer: &mut impl Write,
    id: u64,
    request: &ShardRequest,
    encoding: WireEncoding,
    scratch: &mut Vec<u8>,
    tx: &mut binary::TxSymbols,
) -> Result<u64, WireError> {
    if encoding != WireEncoding::BinaryDict {
        return write_request_frame(writer, id, request, encoding, scratch);
    }
    begin_frame(scratch);
    binary::encode_request_dict(scratch, id, request, tx);
    write_framed(writer, scratch)
}

/// Writes one response frame in the given encoding, reusing `scratch` for
/// the binary image.  Returns the bytes put on the wire.
pub fn write_response_frame(
    writer: &mut impl Write,
    id: u64,
    response: &ShardResponse,
    encoding: WireEncoding,
    scratch: &mut Vec<u8>,
) -> Result<u64, WireError> {
    begin_frame(scratch);
    match encoding {
        // Stateless fallback — see [`write_request_frame`].
        WireEncoding::Binary | WireEncoding::BinaryDict => {
            binary::encode_response(scratch, id, response)
        }
        WireEncoding::Json => {
            scratch.extend_from_slice(response.to_json(id).to_pretty().as_bytes());
        }
    }
    write_framed(writer, scratch)
}

/// Writes one response frame against the connection's transmit-side symbol
/// table — the server-side counterpart of [`write_request_frame_dict`].
pub fn write_response_frame_dict(
    writer: &mut impl Write,
    id: u64,
    response: &ShardResponse,
    encoding: WireEncoding,
    scratch: &mut Vec<u8>,
    tx: &mut binary::TxSymbols,
) -> Result<u64, WireError> {
    if encoding != WireEncoding::BinaryDict {
        return write_response_frame(writer, id, response, encoding, scratch);
    }
    begin_frame(scratch);
    binary::encode_response_dict(scratch, id, response, tx);
    write_framed(writer, scratch)
}

/// Reads and decodes one request frame, dispatching on the payload's
/// leading byte.  Returns the exchange id, the request, the encoding it
/// arrived in (so servers can mirror it), and the bytes taken off the
/// wire; `Ok(None)` is a clean EOF before the length prefix.
pub fn read_request_frame(
    reader: &mut impl Read,
    scratch: &mut Vec<u8>,
) -> Result<Option<(u64, ShardRequest, WireEncoding, u64)>, WireError> {
    if read_payload(reader, scratch)?.is_none() {
        return Ok(None);
    }
    let bytes = scratch.len() as u64 + 4;
    let (id, request, encoding) = decode_request_payload(scratch)?;
    Ok(Some((id, request, encoding, bytes)))
}

/// Decodes one request payload (already stripped of its length prefix),
/// dispatching on the leading byte.  The frame-draining server loop uses
/// this directly on payloads extracted from a [`FrameBuffer`].
pub fn decode_request_payload(
    payload: &[u8],
) -> Result<(u64, ShardRequest, WireEncoding), WireError> {
    if payload.first() == Some(&binary::DICT_MAGIC) {
        return Err(WireError::Decode(DecodeError {
            context: "ShardRequest".to_string(),
            message: "dictionary frame on a connection without dictionary state".to_string(),
        }));
    }
    if payload.first() == Some(&binary::MAGIC) {
        let (id, request) = binary::decode_request(payload)?;
        Ok((id, request, WireEncoding::Binary))
    } else {
        let (id, request) = ShardRequest::from_json(&parse_json_payload(payload)?)?;
        Ok((id, request, WireEncoding::Json))
    }
}

/// Decodes one request payload against the connection's receive-side
/// symbol table, accepting all three encodings.  Frames that are not
/// [`binary::DICT_MAGIC`] leave the table untouched — plain and dictionary
/// frames interleave freely on a negotiated connection.
pub fn decode_request_payload_dict(
    payload: &[u8],
    rx: &mut binary::RxSymbols,
) -> Result<(u64, ShardRequest, WireEncoding), WireError> {
    if payload.first() == Some(&binary::DICT_MAGIC) {
        let (id, request) = binary::decode_request_dict(payload, rx)?;
        Ok((id, request, WireEncoding::BinaryDict))
    } else {
        decode_request_payload(payload)
    }
}

/// Reads and decodes one response frame, dispatching on the payload's
/// leading byte.  Returns the exchange id, the response and the bytes
/// taken off the wire; `Ok(None)` is a clean EOF before the length prefix.
pub fn read_response_frame(
    reader: &mut impl Read,
    scratch: &mut Vec<u8>,
) -> Result<Option<(u64, ShardResponse, u64)>, WireError> {
    if read_payload(reader, scratch)?.is_none() {
        return Ok(None);
    }
    let bytes = scratch.len() as u64 + 4;
    let (id, response) = decode_response_payload(scratch)?;
    Ok(Some((id, response, bytes)))
}

/// Reads and decodes one response frame against the connection's
/// receive-side symbol table — the stateful counterpart of
/// [`read_response_frame`] for dictionary-negotiated connections.
pub fn read_response_frame_dict(
    reader: &mut impl Read,
    scratch: &mut Vec<u8>,
    rx: &mut binary::RxSymbols,
) -> Result<Option<(u64, ShardResponse, u64)>, WireError> {
    if read_payload(reader, scratch)?.is_none() {
        return Ok(None);
    }
    let bytes = scratch.len() as u64 + 4;
    let (id, response) = if scratch.first() == Some(&binary::DICT_MAGIC) {
        binary::decode_response_dict(scratch, rx)?
    } else {
        decode_response_payload(scratch)?
    };
    Ok(Some((id, response, bytes)))
}

/// Decodes one response payload (already stripped of its length prefix),
/// dispatching on the leading byte.  The client-side multiplexer uses this
/// directly on payloads extracted from a [`FrameBuffer`], where responses
/// arrive out of request order and are routed by id.
pub fn decode_response_payload(payload: &[u8]) -> Result<(u64, ShardResponse), WireError> {
    if payload.first() == Some(&binary::DICT_MAGIC) {
        return Err(WireError::Decode(DecodeError {
            context: "ShardResponse".to_string(),
            message: "dictionary frame on a connection without dictionary state".to_string(),
        }));
    }
    if payload.first() == Some(&binary::MAGIC) {
        Ok(binary::decode_response(payload)?)
    } else {
        Ok(ShardResponse::from_json(&parse_json_payload(payload)?)?)
    }
}

/// Decodes one response payload against the connection's receive-side
/// symbol table, accepting all three encodings — the multiplexer's
/// counterpart of [`decode_response_payload`].
pub fn decode_response_payload_dict(
    payload: &[u8],
    rx: &mut binary::RxSymbols,
) -> Result<(u64, ShardResponse), WireError> {
    if payload.first() == Some(&binary::DICT_MAGIC) {
        Ok(binary::decode_response_dict(payload, rx)?)
    } else {
        decode_response_payload(payload)
    }
}

/// Accumulates wire bytes and slices them back into frames, so a receiver
/// can take *every* complete frame one `read` delivered instead of issuing
/// one syscall pair per frame.  This is what lets a shard server drain a
/// client's coalesced burst: read once, answer everything that arrived.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

/// How much free space [`FrameBuffer::fill`] guarantees before reading —
/// large enough that a burst of typical frames lands in one syscall.
const FILL_CHUNK: usize = 256 * 1024;

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unconsumed buffered bytes (complete frames plus any partial tail).
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Issues **one** `read` into the buffer, compacting consumed bytes
    /// first.  Returns the byte count (0 is EOF); `WouldBlock`/timeout
    /// errors pass through for the caller's idle handling.
    pub fn fill(&mut self, reader: &mut impl Read) -> std::io::Result<usize> {
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.buf.len() < self.end + FILL_CHUNK {
            self.buf.resize(self.end + FILL_CHUNK, 0);
        }
        let n = reader.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Extracts the next complete frame's payload into `scratch` (cleared
    /// first).  `Ok(false)` means no complete frame is buffered yet; a
    /// length prefix over [`MAX_FRAME_BYTES`] is an error.  Returns the
    /// frame's total wire size (prefix included) via `scratch.len() + 4`.
    pub fn take_frame(&mut self, scratch: &mut Vec<u8>) -> Result<bool, WireError> {
        if self.buffered() < 4 {
            return Ok(false);
        }
        let prefix: [u8; 4] = self.buf[self.start..self.start + 4]
            .try_into()
            .expect("4 bytes checked");
        let len = u32::from_be_bytes(prefix);
        if len > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge(u64::from(len)));
        }
        let total = 4 + len as usize;
        if self.buffered() < total {
            return Ok(false);
        }
        scratch.clear();
        scratch.extend_from_slice(&self.buf[self.start + 4..self.start + total]);
        self.start += total;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        Ok(true)
    }
}

/// One request a client can make of a shard server.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardRequest {
    /// "Which backends do you host?"  Carries the *client's* protocol
    /// version (from v5 on; decoders default a missing field to 1), so a
    /// reactor-fronted shard knows whether this connection may use
    /// out-of-order completion and credits.
    Hello {
        /// The client's [`PROTOCOL_VERSION`] (1 for pre-v5 peers, whose
        /// hello carries no version field).
        protocol: u64,
    },
    /// "Can `backend` structurally evaluate `spec`?"
    Supports {
        /// Backend shard name.
        backend: String,
        /// The workload in question.
        spec: WorkloadSpec,
    },
    /// "Evaluate `spec` on `backend`."
    Evaluate {
        /// Backend shard name.
        backend: String,
        /// The workload to evaluate.
        spec: WorkloadSpec,
    },
    /// "Evaluate every spec on `backend`, answer once with every result."
    /// One pipelined exchange per micro-batch instead of one per spec —
    /// requires a version ≥ 2 shard (see [`PROTOCOL_VERSION`]).
    EvaluateBatch {
        /// Backend shard name.
        backend: String,
        /// The workloads to evaluate, answered in this order.
        specs: Vec<WorkloadSpec>,
    },
    /// "How busy have you been?"
    Stats,
    /// "Forget request `target` if you have not answered it yet."  Best
    /// effort and fire-and-forget: the server sends no reply to a cancel,
    /// and may still answer the target if it already completed — the
    /// client resolves the waiter locally and tolerates the late response.
    /// Only meaningful on a multiplexed (v5, windowed) connection.
    Cancel {
        /// The id of the in-flight request to abandon.
        target: u64,
    },
}

impl ShardRequest {
    /// Encodes the request with its exchange id.
    pub fn to_json(&self, id: u64) -> JsonValue {
        let mut pairs = vec![("id".to_string(), JsonValue::Int(id))];
        match self {
            ShardRequest::Hello { protocol } => {
                pairs.push(("kind".to_string(), JsonValue::Str("hello".to_string())));
                // Pre-v5 decoders ignore unknown keys, so the client's
                // version is invisible to old shards.
                pairs.push(("protocol".to_string(), JsonValue::Int(*protocol)));
            }
            ShardRequest::Supports { backend, spec } => {
                pairs.push(("kind".to_string(), JsonValue::Str("supports".to_string())));
                pairs.push(("backend".to_string(), JsonValue::Str(backend.clone())));
                pairs.push(("spec".to_string(), json::workload_spec_json(spec)));
            }
            ShardRequest::Evaluate { backend, spec } => {
                pairs.push(("kind".to_string(), JsonValue::Str("evaluate".to_string())));
                pairs.push(("backend".to_string(), JsonValue::Str(backend.clone())));
                pairs.push(("spec".to_string(), json::workload_spec_json(spec)));
            }
            ShardRequest::EvaluateBatch { backend, specs } => {
                pairs.push((
                    "kind".to_string(),
                    JsonValue::Str("evaluate_batch".to_string()),
                ));
                pairs.push(("backend".to_string(), JsonValue::Str(backend.clone())));
                pairs.push((
                    "specs".to_string(),
                    JsonValue::Arr(specs.iter().map(json::workload_spec_json).collect()),
                ));
            }
            ShardRequest::Stats => {
                pairs.push(("kind".to_string(), JsonValue::Str("stats".to_string())));
            }
            ShardRequest::Cancel { target } => {
                pairs.push(("kind".to_string(), JsonValue::Str("cancel".to_string())));
                pairs.push(("target".to_string(), JsonValue::Int(*target)));
            }
        }
        JsonValue::Obj(pairs)
    }

    /// Decodes a request frame into `(id, request)`.
    pub fn from_json(doc: &JsonValue) -> Result<(u64, Self), DecodeError> {
        const CTX: &str = "ShardRequest";
        let id = match doc.get("id") {
            Some(JsonValue::Int(id)) => *id,
            _ => {
                return Err(DecodeError {
                    context: CTX.to_string(),
                    message: "missing integer `id`".to_string(),
                })
            }
        };
        let kind = match doc.get("kind") {
            Some(JsonValue::Str(kind)) => kind.as_str(),
            _ => {
                return Err(DecodeError {
                    context: CTX.to_string(),
                    message: "missing string `kind`".to_string(),
                })
            }
        };
        let backend_name = || -> Result<String, DecodeError> {
            match doc.get("backend") {
                Some(JsonValue::Str(name)) => Ok(name.clone()),
                _ => Err(DecodeError {
                    context: CTX.to_string(),
                    message: "missing string `backend`".to_string(),
                }),
            }
        };
        let backend_and_spec = || -> Result<(String, WorkloadSpec), DecodeError> {
            let backend = backend_name()?;
            let spec = doc.get("spec").ok_or_else(|| DecodeError {
                context: CTX.to_string(),
                message: "missing `spec`".to_string(),
            })?;
            Ok((backend, json::workload_spec_from_json(spec)?))
        };
        let request = match kind {
            // Pre-v5 clients hello without a version field.
            "hello" => ShardRequest::Hello {
                protocol: match doc.get("protocol") {
                    Some(JsonValue::Int(version)) => *version,
                    _ => 1,
                },
            },
            "supports" => {
                let (backend, spec) = backend_and_spec()?;
                ShardRequest::Supports { backend, spec }
            }
            "evaluate" => {
                let (backend, spec) = backend_and_spec()?;
                ShardRequest::Evaluate { backend, spec }
            }
            "evaluate_batch" => {
                let backend = backend_name()?;
                let specs = match doc.get("specs") {
                    Some(JsonValue::Arr(items)) => items
                        .iter()
                        .map(json::workload_spec_from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => {
                        return Err(DecodeError {
                            context: CTX.to_string(),
                            message: "missing array `specs`".to_string(),
                        })
                    }
                };
                ShardRequest::EvaluateBatch { backend, specs }
            }
            "stats" => ShardRequest::Stats,
            "cancel" => ShardRequest::Cancel {
                target: match doc.get("target") {
                    Some(JsonValue::Int(target)) => *target,
                    _ => {
                        return Err(DecodeError {
                            context: CTX.to_string(),
                            message: "missing integer `target`".to_string(),
                        })
                    }
                },
            },
            other => {
                return Err(DecodeError {
                    context: CTX.to_string(),
                    message: format!("unknown request kind `{other}`"),
                })
            }
        };
        Ok((id, request))
    }
}

/// One answer a shard server sends back.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardResponse {
    /// The backends this shard hosts, in registration order, and the
    /// protocol version the shard speaks (1 when the peer predates the
    /// version field).
    Backends {
        /// Hosted backend names, in registration order.
        names: Vec<String>,
        /// The shard's [`PROTOCOL_VERSION`].
        protocol: u64,
        /// Path of a shared-memory ring segment this connection may switch
        /// to (see [`crate::shm`]); `None` when the shard does not offer
        /// one (different host, transport disabled, or a pre-v4 peer).
        ring: Option<String>,
        /// Per-connection credit window for multiplexed requests: how many
        /// requests may be in flight on this connection at once, answered
        /// out of order and cancellable.  `None` when the connection stays
        /// strict-FIFO (a pre-v5 peer on either side, or a thread-frontend
        /// shard).  Advertising a window is the server's "multiplexing is
        /// on" signal.
        window: Option<u64>,
    },
    /// Whether the asked backend supports the asked spec.
    Supported(bool),
    /// The evaluation's domain result, `Arc`-shared with the producing
    /// service's report cache so answering a request never deep-copies the
    /// report.
    Evaluated(SharedResult),
    /// One domain result per spec of an `evaluate_batch` request, in the
    /// request's spec order (shared, like [`Evaluated`](Self::Evaluated)).
    EvaluatedBatch(Vec<SharedResult>),
    /// The shard's service statistics.
    Stats(ServiceStats),
    /// A protocol-level rejection (unknown backend/kind, malformed frame).
    Rejected(String),
}

impl ShardResponse {
    /// Encodes the response, echoing the request's exchange id.
    pub fn to_json(&self, id: u64) -> JsonValue {
        let ok = !matches!(self, ShardResponse::Rejected(_));
        let mut pairs = vec![
            ("id".to_string(), JsonValue::Int(id)),
            ("ok".to_string(), JsonValue::Bool(ok)),
        ];
        match self {
            ShardResponse::Backends {
                names,
                protocol,
                ring,
                window,
            } => {
                pairs.push((
                    "backends".to_string(),
                    JsonValue::Arr(names.iter().map(|n| JsonValue::Str(n.clone())).collect()),
                ));
                pairs.push(("protocol".to_string(), JsonValue::Int(*protocol)));
                // Emitted only when offered; pre-v4 decoders ignore unknown
                // keys, so the field is invisible to them either way.
                if let Some(path) = ring {
                    pairs.push(("ring".to_string(), JsonValue::Str(path.clone())));
                }
                // Same story for the v5 credit window.
                if let Some(credits) = window {
                    pairs.push(("window".to_string(), JsonValue::Int(*credits)));
                }
            }
            ShardResponse::Supported(supported) => {
                pairs.push(("supported".to_string(), JsonValue::Bool(*supported)));
            }
            ShardResponse::Evaluated(result) => match result.as_ref() {
                Ok(report) => pairs.push(("report".to_string(), json::report_json(report))),
                Err(error) => pairs.push(("error".to_string(), json::error_json(error))),
            },
            ShardResponse::EvaluatedBatch(results) => {
                pairs.push((
                    "results".to_string(),
                    JsonValue::Arr(
                        results
                            .iter()
                            .map(|result| match result.as_ref() {
                                Ok(report) => JsonValue::Obj(vec![(
                                    "report".to_string(),
                                    json::report_json(report),
                                )]),
                                Err(error) => JsonValue::Obj(vec![(
                                    "error".to_string(),
                                    json::error_json(error),
                                )]),
                            })
                            .collect(),
                    ),
                ));
            }
            ShardResponse::Stats(stats) => {
                pairs.push(("stats".to_string(), json::stats_json(stats)));
            }
            ShardResponse::Rejected(message) => {
                pairs.push(("message".to_string(), JsonValue::Str(message.clone())));
            }
        }
        JsonValue::Obj(pairs)
    }

    /// Decodes a response frame into `(id, response)`.
    pub fn from_json(doc: &JsonValue) -> Result<(u64, Self), DecodeError> {
        const CTX: &str = "ShardResponse";
        let id = match doc.get("id") {
            Some(JsonValue::Int(id)) => *id,
            _ => {
                return Err(DecodeError {
                    context: CTX.to_string(),
                    message: "missing integer `id`".to_string(),
                })
            }
        };
        if let Some(JsonValue::Bool(false)) = doc.get("ok") {
            let message = match doc.get("message") {
                Some(JsonValue::Str(m)) => m.clone(),
                _ => "unspecified peer failure".to_string(),
            };
            return Ok((id, ShardResponse::Rejected(message)));
        }
        let response = if let Some(backends) = doc.get("backends") {
            let names = match backends {
                JsonValue::Arr(items) => items
                    .iter()
                    .map(|item| match item {
                        JsonValue::Str(s) => Ok(s.clone()),
                        _ => Err(DecodeError {
                            context: CTX.to_string(),
                            message: "backend names must be strings".to_string(),
                        }),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => {
                    return Err(DecodeError {
                        context: CTX.to_string(),
                        message: "`backends` must be an array".to_string(),
                    })
                }
            };
            // Version-1 shards predate the `protocol` field.
            let protocol = match doc.get("protocol") {
                Some(JsonValue::Int(version)) => *version,
                _ => 1,
            };
            // Pre-v4 shards never advertise a ring segment.
            let ring = match doc.get("ring") {
                Some(JsonValue::Str(path)) => Some(path.clone()),
                _ => None,
            };
            // Pre-v5 shards never advertise a credit window.
            let window = match doc.get("window") {
                Some(JsonValue::Int(credits)) => Some(*credits),
                _ => None,
            };
            ShardResponse::Backends {
                names,
                protocol,
                ring,
                window,
            }
        } else if let Some(JsonValue::Bool(supported)) = doc.get("supported") {
            ShardResponse::Supported(*supported)
        } else if let Some(report) = doc.get("report") {
            ShardResponse::Evaluated(Arc::new(Ok(json::report_from_json(report)?)))
        } else if let Some(error) = doc.get("error") {
            ShardResponse::Evaluated(Arc::new(Err(json::error_from_json(error)?)))
        } else if let Some(results) = doc.get("results") {
            let results = match results {
                JsonValue::Arr(items) => items
                    .iter()
                    .map(|item| {
                        if let Some(report) = item.get("report") {
                            Ok(Arc::new(Ok(json::report_from_json(report)?)))
                        } else if let Some(error) = item.get("error") {
                            Ok(Arc::new(Err(json::error_from_json(error)?)))
                        } else {
                            Err(DecodeError {
                                context: CTX.to_string(),
                                message: "batch result carries neither `report` nor `error`"
                                    .to_string(),
                            })
                        }
                    })
                    .collect::<Result<Vec<SharedResult>, DecodeError>>()?,
                _ => {
                    return Err(DecodeError {
                        context: CTX.to_string(),
                        message: "`results` must be an array".to_string(),
                    })
                }
            };
            ShardResponse::EvaluatedBatch(results)
        } else if let Some(stats) = doc.get("stats") {
            ShardResponse::Stats(json::stats_from_json(stats)?)
        } else {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: "response carries no recognised payload".to_string(),
            });
        };
        Ok((id, response))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let doc = ShardRequest::Evaluate {
            backend: "rsn-xnn".to_string(),
            spec: WorkloadSpec::SquareGemm { n: 1024 },
        }
        .to_json(7);
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &doc).expect("write frame");
        // 4-byte prefix holds the payload length.
        let payload_len = u32::from_be_bytes(buffer[..4].try_into().unwrap());
        assert_eq!(payload_len as usize, buffer.len() - 4);
        let read = read_frame(&mut Cursor::new(&buffer)).expect("read frame");
        assert_eq!(read, Some(doc.clone()));
        // Exchange round trip.
        let (id, request) = ShardRequest::from_json(&doc).expect("decode request");
        assert_eq!(id, 7);
        assert!(matches!(request, ShardRequest::Evaluate { .. }));
    }

    #[test]
    fn clean_eof_is_none_but_midframe_eof_is_an_error() {
        assert!(matches!(read_frame(&mut Cursor::new(&[])), Ok(None)));
        // A length prefix promising more bytes than follow.
        let mut truncated = Vec::new();
        truncated.extend_from_slice(&100u32.to_be_bytes());
        truncated.extend_from_slice(b"short");
        assert!(matches!(
            read_frame(&mut Cursor::new(&truncated)),
            Err(WireError::Io(_))
        ));
        // Prefix itself truncated.
        assert!(matches!(
            read_frame(&mut Cursor::new(&[0u8, 0])),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&huge)),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn malformed_payload_is_a_parse_error_with_position() {
        let payload = b"{\"id\": oops}";
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buffer.extend_from_slice(payload);
        match read_frame(&mut Cursor::new(&buffer)) {
            Err(WireError::Parse(e)) => {
                assert_eq!((e.line, e.column), (1, 8));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn every_request_and_response_round_trips() {
        let requests = [
            ShardRequest::Hello {
                protocol: PROTOCOL_VERSION,
            },
            ShardRequest::Supports {
                backend: "alpha".to_string(),
                spec: WorkloadSpec::PowerBreakdown,
            },
            ShardRequest::Evaluate {
                backend: "beta".to_string(),
                spec: WorkloadSpec::FunctionalGemm {
                    m: 8,
                    k: 4,
                    n: 8,
                    seed: 3,
                },
            },
            ShardRequest::EvaluateBatch {
                backend: "gamma".to_string(),
                specs: vec![
                    WorkloadSpec::SquareGemm { n: 64 },
                    WorkloadSpec::PowerBreakdown,
                ],
            },
            ShardRequest::Stats,
            ShardRequest::Cancel { target: 41 },
        ];
        for (id, request) in requests.into_iter().enumerate() {
            let doc = request.to_json(id as u64);
            assert_eq!(
                ShardRequest::from_json(&doc).expect("request decodes"),
                (id as u64, request)
            );
        }
        let responses = [
            ShardResponse::Backends {
                names: vec!["a".to_string(), "b".to_string()],
                protocol: PROTOCOL_VERSION,
                ring: None,
                window: None,
            },
            ShardResponse::Backends {
                names: vec!["a".to_string()],
                protocol: PROTOCOL_VERSION,
                ring: Some("/dev/shm/rsn-ring-test".to_string()),
                window: None,
            },
            ShardResponse::Backends {
                names: vec!["a".to_string()],
                protocol: PROTOCOL_VERSION,
                ring: None,
                window: Some(64),
            },
            ShardResponse::Supported(true),
            ShardResponse::Evaluated(Arc::new(Ok(EvalReport::new("a", "w")))),
            ShardResponse::Evaluated(Arc::new(Err(EvalError::Unsupported {
                backend: "a".to_string(),
                workload: "w".to_string(),
            }))),
            ShardResponse::EvaluatedBatch(vec![
                Arc::new(Ok(EvalReport::new("a", "w1"))),
                Arc::new(Err(EvalError::Unsupported {
                    backend: "a".to_string(),
                    workload: "w2".to_string(),
                })),
            ]),
            ShardResponse::Stats(ServiceStats::default()),
            ShardResponse::Rejected("unknown backend `zeta`".to_string()),
        ];
        for (id, response) in responses.into_iter().enumerate() {
            let doc = response.to_json(id as u64);
            assert_eq!(
                ShardResponse::from_json(&doc).expect("response decodes"),
                (id as u64, response)
            );
        }
    }

    #[test]
    fn typed_frames_dispatch_on_the_magic_byte() {
        let request = ShardRequest::Evaluate {
            backend: "rsn-xnn".to_string(),
            spec: WorkloadSpec::SquareGemm { n: 2048 },
        };
        let mut scratch = Vec::new();
        for encoding in [WireEncoding::Json, WireEncoding::Binary] {
            let mut buffer = Vec::new();
            let sent = write_request_frame(&mut buffer, 11, &request, encoding, &mut scratch)
                .expect("write request");
            assert_eq!(sent as usize, buffer.len());
            let (id, decoded, seen, received) =
                read_request_frame(&mut Cursor::new(&buffer), &mut scratch)
                    .expect("read request")
                    .expect("not EOF");
            assert_eq!((id, seen, received), (11, encoding, sent));
            assert_eq!(decoded, request);
        }
        let response = ShardResponse::Evaluated(Arc::new(Ok(EvalReport::new("rsn-xnn", "w"))));
        for encoding in [WireEncoding::Json, WireEncoding::Binary] {
            let mut buffer = Vec::new();
            let sent = write_response_frame(&mut buffer, 7, &response, encoding, &mut scratch)
                .expect("write response");
            let (id, decoded, received) =
                read_response_frame(&mut Cursor::new(&buffer), &mut scratch)
                    .expect("read response")
                    .expect("not EOF");
            assert_eq!((id, received), (7, sent));
            assert_eq!(decoded, response);
        }
        // Binary frames are dramatically smaller than their JSON form.
        let mut json_buf = Vec::new();
        let mut bin_buf = Vec::new();
        write_response_frame(
            &mut json_buf,
            1,
            &response,
            WireEncoding::Json,
            &mut scratch,
        )
        .expect("json");
        write_response_frame(
            &mut bin_buf,
            1,
            &response,
            WireEncoding::Binary,
            &mut scratch,
        )
        .expect("binary");
        assert!(
            bin_buf.len() * 2 < json_buf.len(),
            "binary {} vs json {}",
            bin_buf.len(),
            json_buf.len()
        );
    }

    #[test]
    fn dict_frames_round_trip_and_shrink_on_reuse() {
        let mut codec_client = binary::ConnCodec::new();
        let mut codec_server = binary::ConnCodec::new();
        let mut scratch = Vec::new();
        let request = ShardRequest::Evaluate {
            backend: "rsn-xnn".to_string(),
            spec: WorkloadSpec::SquareGemm { n: 2048 },
        };
        let mut sizes = Vec::new();
        for id in 0..3u64 {
            let mut buffer = Vec::new();
            let sent = write_request_frame_dict(
                &mut buffer,
                id,
                &request,
                WireEncoding::BinaryDict,
                &mut scratch,
                &mut codec_client.tx,
            )
            .expect("write dict request");
            sizes.push(sent);
            assert_eq!(buffer[4], binary::DICT_MAGIC);
            // The stateless decoder must refuse what it cannot resolve.
            assert!(matches!(
                decode_request_payload(&buffer[4..]),
                Err(WireError::Decode(_))
            ));
            let (got_id, decoded, seen) =
                decode_request_payload_dict(&buffer[4..], &mut codec_server.rx)
                    .expect("decode dict request");
            assert_eq!((got_id, seen), (id, WireEncoding::BinaryDict));
            assert_eq!(decoded, request);
        }
        // First frame defines "rsn-xnn"; later frames reference it by id.
        assert!(sizes[1] < sizes[0], "reuse must shrink the frame");
        assert_eq!(sizes[1], sizes[2]);
        let (defines, hits) = codec_client.tx.take_counts();
        assert_eq!((defines, hits), (1, 2));
        let (defines, hits) = codec_server.rx.take_counts();
        assert_eq!((defines, hits), (1, 2));

        // Responses: same discipline through the server's tx table.
        let response = ShardResponse::Evaluated(Arc::new(Ok(EvalReport::new("rsn-xnn", "w"))));
        let mut first = Vec::new();
        let mut second = Vec::new();
        for buffer in [&mut first, &mut second] {
            write_response_frame_dict(
                buffer,
                7,
                &response,
                WireEncoding::BinaryDict,
                &mut scratch,
                &mut codec_server.tx,
            )
            .expect("write dict response");
            assert!(matches!(
                decode_response_payload(&buffer[4..]),
                Err(WireError::Decode(_))
            ));
            let (id, decoded) = decode_response_payload_dict(&buffer[4..], &mut codec_client.rx)
                .expect("decode dict response");
            assert_eq!(id, 7);
            assert_eq!(decoded, response);
        }
        assert!(second.len() < first.len());

        // Messages without dictionary-worthy labels keep their plain image
        // even through the dict writer — the magics interleave freely.
        let mut buffer = Vec::new();
        write_request_frame_dict(
            &mut buffer,
            9,
            &ShardRequest::Stats,
            WireEncoding::BinaryDict,
            &mut scratch,
            &mut codec_client.tx,
        )
        .expect("write stats");
        assert_eq!(buffer[4], binary::MAGIC);
        let (id, decoded, seen) = decode_request_payload_dict(&buffer[4..], &mut codec_server.rx)
            .expect("plain frame through the dict decoder");
        assert_eq!((id, seen), (9, WireEncoding::Binary));
        assert_eq!(decoded, ShardRequest::Stats);
    }

    #[test]
    fn hello_without_protocol_field_is_a_version_one_shard() {
        // What a pre-versioning shard emitted: backends, no protocol.
        let doc = JsonValue::Obj(vec![
            ("id".to_string(), JsonValue::Int(9)),
            ("ok".to_string(), JsonValue::Bool(true)),
            (
                "backends".to_string(),
                JsonValue::Arr(vec![JsonValue::Str("rsn-xnn".to_string())]),
            ),
        ]);
        match ShardResponse::from_json(&doc).expect("legacy hello decodes") {
            (
                9,
                ShardResponse::Backends {
                    names,
                    protocol,
                    ring,
                    window,
                },
            ) => {
                assert_eq!(names, ["rsn-xnn"]);
                assert_eq!(protocol, 1, "missing field must mean version 1");
                assert_eq!(ring, None, "pre-v4 shards never offer a ring");
                assert_eq!(window, None, "pre-v5 shards never offer a window");
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn hello_without_client_protocol_is_a_version_one_client() {
        // What a pre-v5 client sends: id and kind, no version field.
        let doc = JsonValue::Obj(vec![
            ("id".to_string(), JsonValue::Int(1)),
            ("kind".to_string(), JsonValue::Str("hello".to_string())),
        ]);
        match ShardRequest::from_json(&doc).expect("legacy hello decodes") {
            (1, ShardRequest::Hello { protocol }) => {
                assert_eq!(protocol, 1, "missing field must mean version 1");
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn oversized_encode_reports_the_real_length() {
        // A payload one byte over the bound must name its own length, not a
        // saturated sentinel (the bug this pins: `u32::MAX` in the error).
        let mut scratch = vec![0u8; 4 + MAX_FRAME_BYTES as usize + 1];
        match write_framed(&mut Vec::new(), &mut scratch) {
            Err(WireError::FrameTooLarge(len)) => {
                assert_eq!(len, u64::from(MAX_FRAME_BYTES) + 1);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }
}
