//! Deployment topology files: declarative shard wiring instead of
//! hand-wired code.
//!
//! A topology file is a hand-rolled-JSON document (parsed with
//! [`crate::json`], like everything else on the wire) declaring what a
//! process should assemble:
//!
//! ```json
//! {
//!   "listen": "127.0.0.1:7070",
//!   "service": {
//!     "max_batch": 16,
//!     "batch_deadline_us": 1000,
//!     "workers_per_backend": 2,
//!     "cache_capacity": 4096,
//!     "remote": {
//!       "connect_timeout_ms": 10000,
//!       "io_timeout_ms": 30000,
//!       "pool_size": 4,
//!       "server_idle_timeout_ms": 60000,
//!       "encoding": "auto",
//!       "frontend": "threads"
//!     }
//!   },
//!   "local": ["rsn-xnn", "roofline-bound"],
//!   "remotes": [
//!     {"addr": "10.0.0.7:7070", "weight": 2, "pool_size": 8},
//!     {"addr": "10.0.0.8:7070", "encoding": "json"}
//!   ],
//!   "replicas": [
//!     {
//!       "backend": "rsn-xnn",
//!       "shards": ["10.0.0.7:7070", "10.0.0.8:7070"],
//!       "hedge_budget_us": 5000,
//!       "breaker": {"window": 8, "max_failures": 4, "cooldown_ms": 1000}
//!     }
//!   ]
//! }
//! ```
//!
//! * `listen` — bind address for `shardd` (optional; clients ignore it);
//! * `service` — every [`ServiceConfig`] knob, durations as integral
//!   microseconds/milliseconds (optional; missing fields default);
//! * `local` — in-process backend pools by evaluation-layer name
//!   ([`rsn_eval::default_backends`] order);
//! * `remotes` — shard servers to autodiscover backends from via the
//!   `hello` handshake, with an optional per-shard worker `weight`
//!   (heavier shards get proportionally more client-side worker threads),
//!   `pool_size` (connection-pool bound override), `encoding`
//!   (`auto`/`json`/`binary`/`binary_nodict` wire-encoding override — force `json` on one
//!   shard to debug its traffic while the fleet stays binary) and
//!   `transport` (`auto`/`socket`/`shm` — whether the client accepts a
//!   shard's shared-memory ring offer; see [`crate::shm`]);
//! * `replicas` — replicated backend groups (see [`crate::fleet`]): each
//!   group serves one `backend` name from N interchangeable `shards`, all
//!   of which must also appear in `remotes[]` (that is where their
//!   per-shard pool/encoding/transport overrides live).  Requests route
//!   to a replica by rendezvous hash of the workload spec (cache
//!   locality), fail over to a sibling on transport errors, and — when a
//!   reply outlives the group's hedge budget (`hedge_budget_us`, default:
//!   derived from the pool's observed p95) — are hedged against a second
//!   replica, first answer wins.  `breaker` tunes the per-replica circuit
//!   breaker ([`BreakerConfig`]; missing fields default).
//!
//! [`ShardRouter::from_topology`](crate::ShardRouter::from_topology) turns
//! a parsed topology into a running mixed local/remote service;
//! `shardd --topology` and the table binaries' `--topology` flag load one
//! from disk.  Emission ([`topology_json`]) is deterministic and
//! round-trips byte-identically through parse → decode → re-emit, pinned
//! by `tests/json_roundtrip.rs`.
//!
//! # Live reload
//!
//! A topology file is no longer only a boot artifact: a running fleet can
//! re-read it and apply the difference in place.
//! [`ShardRouter::watch`](crate::ShardRouter::watch) polls the file's
//! mtime and, on change, diffs each replica group's shard set against the
//! running one — new shards get a (lazily dialled) pool and start taking
//! traffic, removed shards are *drained* (no new checkouts, inflight
//! exchanges finish, then the pool is dropped) — all without restarting
//! the service or disturbing unrelated pools.

use crate::config::{
    BreakerConfig, EncodingPolicy, FrontendPolicy, RemoteConfig, ServiceConfig, TransportPolicy,
};
use crate::json::{self, DecodeError, JsonParseError, JsonValue};
use std::time::Duration;

/// One remote shard server a topology wires in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteShardDecl {
    /// Shard server address (`host:port`).
    pub addr: String,
    /// Client-side worker weight: the shard's backends get
    /// `workers_per_backend × weight` worker threads each, so heavier
    /// shards absorb proportionally more concurrent requests.
    pub weight: usize,
    /// Connection-pool bound override for this shard; `None` uses
    /// [`RemoteConfig::pool_size`].
    pub pool_size: Option<usize>,
    /// Wire-encoding override for this shard; `None` uses
    /// [`RemoteConfig::encoding`].  Force `json` on one shard to read its
    /// traffic in a packet capture while the rest of the fleet stays
    /// binary.
    pub encoding: Option<EncodingPolicy>,
    /// Transport override for this shard; `None` uses
    /// [`RemoteConfig::transport`].  Force `socket` on one shard to keep
    /// it off shared memory (say, while bisecting a perf regression), or
    /// `shm` to accept ring offers from a non-loopback address that is
    /// known to be this host.
    pub transport: Option<TransportPolicy>,
}

impl RemoteShardDecl {
    /// A weight-1 declaration with the default pool bound and encoding.
    pub fn new(addr: &str) -> Self {
        Self {
            addr: addr.to_string(),
            weight: 1,
            pool_size: None,
            encoding: None,
            transport: None,
        }
    }
}

/// One replicated backend group: N interchangeable shards serving the
/// same backend name, with rendezvous routing, failover, hedging and
/// per-replica circuit breaking (see [`crate::fleet`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaGroupDecl {
    /// The backend name this group serves.  At most one group may claim a
    /// given name ([`topology_from_json`] rejects duplicates); a clash
    /// with a name autodiscovered from a non-replica shard surfaces at
    /// assembly time as
    /// [`RouterError::DuplicateBackend`](crate::RouterError).
    pub backend: String,
    /// Addresses of the group's replicas.  Every address must also appear
    /// in [`Topology::remotes`], whose matching declaration supplies the
    /// per-shard `pool_size`/`encoding`/`transport` overrides.
    pub shards: Vec<String>,
    /// Hedge budget in microseconds: how long the primary replica's
    /// exchange may run before a hedge is launched against a sibling.
    /// `None` derives the budget from the primary pool's observed p95
    /// exchange latency
    /// ([`ConnectionPool::observed_exchange_p95`](crate::ConnectionPool::observed_exchange_p95)),
    /// hedging nothing until enough samples exist.
    pub hedge_budget_us: Option<u64>,
    /// Circuit-breaker tuning for the group's replicas; `None` uses
    /// [`BreakerConfig::default`].
    pub breaker: Option<BreakerConfig>,
}

impl ReplicaGroupDecl {
    /// A group with the default (p95-derived) hedge budget and breaker.
    pub fn new(backend: &str, shards: &[&str]) -> Self {
        Self {
            backend: backend.to_string(),
            shards: shards.iter().map(|s| s.to_string()).collect(),
            hedge_budget_us: None,
            breaker: None,
        }
    }
}

/// A parsed deployment topology: which pools a process assembles, local
/// and remote, and how the service around them is tuned.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Topology {
    /// Bind address for a shard server process (`shardd --topology`);
    /// ignored by client-side loaders.
    pub listen: Option<String>,
    /// Service tuning for the assembled [`EvalService`](crate::EvalService).
    pub service: ServiceConfig,
    /// In-process backend pools, by evaluation-layer backend name.
    pub local: Vec<String>,
    /// Remote shard servers, autodiscovered via `hello` at assembly time.
    pub remotes: Vec<RemoteShardDecl>,
    /// Replicated backend groups over subsets of [`remotes`](Self::remotes).
    pub replicas: Vec<ReplicaGroupDecl>,
}

impl Topology {
    /// Loads and decodes a topology file.
    pub fn from_file(path: &std::path::Path) -> Result<Topology, TopologyError> {
        let text = std::fs::read_to_string(path).map_err(|source| TopologyError::Io {
            path: path.display().to_string(),
            source,
        })?;
        let doc = json::parse(&text)?;
        Ok(topology_from_json(&doc)?)
    }
}

/// Why a topology file could not be loaded.
#[derive(Debug)]
pub enum TopologyError {
    /// Reading the file failed.
    Io {
        /// The path that failed.
        path: String,
        /// The filesystem error.
        source: std::io::Error,
    },
    /// The file is not valid JSON.
    Parse(JsonParseError),
    /// The JSON does not decode into a topology.
    Decode(DecodeError),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Io { path, source } => {
                write!(f, "reading topology `{path}` failed: {source}")
            }
            TopologyError::Parse(e) => write!(f, "topology is not valid JSON: {e}"),
            TopologyError::Decode(e) => write!(f, "topology does not decode: {e}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl From<JsonParseError> for TopologyError {
    fn from(e: JsonParseError) -> Self {
        TopologyError::Parse(e)
    }
}

impl From<DecodeError> for TopologyError {
    fn from(e: DecodeError) -> Self {
        TopologyError::Decode(e)
    }
}

/// Converts a topology into its JSON document (deterministic emission;
/// every field explicit, so emitted topologies are self-documenting).
pub fn topology_json(topology: &Topology) -> JsonValue {
    JsonValue::obj([
        (
            "listen",
            topology
                .listen
                .as_ref()
                .map_or(JsonValue::Null, |addr| JsonValue::Str(addr.clone())),
        ),
        ("service", service_config_json(&topology.service)),
        (
            "local",
            JsonValue::Arr(
                topology
                    .local
                    .iter()
                    .map(|name| JsonValue::Str(name.clone()))
                    .collect(),
            ),
        ),
        (
            "remotes",
            JsonValue::Arr(
                topology
                    .remotes
                    .iter()
                    .map(|decl| {
                        JsonValue::obj([
                            ("addr", JsonValue::Str(decl.addr.clone())),
                            ("weight", JsonValue::Int(decl.weight as u64)),
                            (
                                "pool_size",
                                decl.pool_size
                                    .map_or(JsonValue::Null, |n| JsonValue::Int(n as u64)),
                            ),
                            (
                                "encoding",
                                decl.encoding.map_or(JsonValue::Null, |e| {
                                    JsonValue::Str(e.as_str().to_string())
                                }),
                            ),
                            (
                                "transport",
                                decl.transport.map_or(JsonValue::Null, |t| {
                                    JsonValue::Str(t.as_str().to_string())
                                }),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "replicas",
            JsonValue::Arr(
                topology
                    .replicas
                    .iter()
                    .map(|group| {
                        JsonValue::obj([
                            ("backend", JsonValue::Str(group.backend.clone())),
                            (
                                "shards",
                                JsonValue::Arr(
                                    group
                                        .shards
                                        .iter()
                                        .map(|addr| JsonValue::Str(addr.clone()))
                                        .collect(),
                                ),
                            ),
                            (
                                "hedge_budget_us",
                                group
                                    .hedge_budget_us
                                    .map_or(JsonValue::Null, JsonValue::Int),
                            ),
                            (
                                "breaker",
                                group.breaker.map_or(JsonValue::Null, |b| {
                                    JsonValue::obj([
                                        ("window", JsonValue::Int(b.window as u64)),
                                        ("max_failures", JsonValue::Int(b.max_failures as u64)),
                                        ("cooldown_ms", JsonValue::Int(millis_ceil(b.cooldown))),
                                    ])
                                }),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// A duration as whole milliseconds, rounded *up* — the topology's ms
/// fields must never emit a non-zero duration as `0` (the OS rejects
/// zero socket timeouts, so a truncated 500 µs connect timeout would make
/// every dial fail after a load).
fn millis_ceil(d: Duration) -> u64 {
    d.as_micros().div_ceil(1000) as u64
}

/// A duration as whole microseconds, rounded up (see [`millis_ceil`]).
fn micros_ceil(d: Duration) -> u64 {
    d.as_nanos().div_ceil(1000) as u64
}

/// Converts a service configuration into its topology JSON section.
pub fn service_config_json(config: &ServiceConfig) -> JsonValue {
    JsonValue::obj([
        ("max_batch", JsonValue::Int(config.max_batch as u64)),
        (
            "batch_deadline_us",
            JsonValue::Int(micros_ceil(config.batch_deadline)),
        ),
        (
            "workers_per_backend",
            JsonValue::Int(config.workers_per_backend as u64),
        ),
        (
            "cache_capacity",
            config
                .cache_capacity
                .map_or(JsonValue::Null, |n| JsonValue::Int(n as u64)),
        ),
        (
            "class_budgets_us",
            JsonValue::obj(crate::request::Priority::ALL.map(|priority| {
                (
                    priority.as_str(),
                    config.class_budgets[priority.index()]
                        .map_or(JsonValue::Null, |b| JsonValue::Int(micros_ceil(b))),
                )
            })),
        ),
        (
            "queue_capacity",
            config
                .queue_capacity
                .map_or(JsonValue::Null, |n| JsonValue::Int(n as u64)),
        ),
        (
            "remote",
            JsonValue::obj([
                (
                    "connect_timeout_ms",
                    JsonValue::Int(millis_ceil(config.remote.connect_timeout)),
                ),
                (
                    "io_timeout_ms",
                    JsonValue::Int(millis_ceil(config.remote.io_timeout)),
                ),
                ("pool_size", JsonValue::Int(config.remote.pool_size as u64)),
                (
                    "server_idle_timeout_ms",
                    JsonValue::Int(millis_ceil(config.remote.server_idle_timeout)),
                ),
                (
                    "encoding",
                    JsonValue::Str(config.remote.encoding.as_str().to_string()),
                ),
                (
                    "transport",
                    JsonValue::Str(config.remote.transport.as_str().to_string()),
                ),
                (
                    "frontend",
                    JsonValue::Str(config.remote.frontend.as_str().to_string()),
                ),
            ]),
        ),
    ])
}

/// Decodes the `service` topology section; every missing field keeps its
/// [`ServiceConfig::default`] value, so hand-written files stay terse.
pub fn service_config_from_json(value: &JsonValue) -> Result<ServiceConfig, DecodeError> {
    const CTX: &str = "ServiceConfig";
    let mut config = ServiceConfig::default();
    if let Some(v) = value.get("max_batch") {
        config.max_batch = decode_usize(v, CTX, "max_batch")?;
    }
    if let Some(v) = value.get("batch_deadline_us") {
        config.batch_deadline = Duration::from_micros(decode_u64(v, CTX, "batch_deadline_us")?);
    }
    if let Some(v) = value.get("workers_per_backend") {
        config.workers_per_backend = decode_usize(v, CTX, "workers_per_backend")?;
    }
    match value.get("cache_capacity") {
        None | Some(JsonValue::Null) => {}
        Some(v) => config.cache_capacity = Some(decode_usize(v, CTX, "cache_capacity")?),
    }
    match value.get("class_budgets_us") {
        None | Some(JsonValue::Null) => {}
        Some(budgets @ JsonValue::Obj(_)) => {
            for priority in crate::request::Priority::ALL {
                match budgets.get(priority.as_str()) {
                    None | Some(JsonValue::Null) => {}
                    Some(v) => {
                        config.class_budgets[priority.index()] = Some(Duration::from_micros(
                            decode_u64(v, CTX, "class_budgets_us")?,
                        ))
                    }
                }
            }
        }
        Some(_) => {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: "`class_budgets_us` must be an object keyed by class".to_string(),
            })
        }
    }
    match value.get("queue_capacity") {
        None | Some(JsonValue::Null) => {}
        Some(v) => config.queue_capacity = Some(decode_usize(v, CTX, "queue_capacity")?),
    }
    if let Some(remote) = value.get("remote") {
        config.remote = remote_config_from_json(remote)?;
    }
    Ok(config)
}

fn remote_config_from_json(value: &JsonValue) -> Result<RemoteConfig, DecodeError> {
    const CTX: &str = "RemoteConfig";
    let mut remote = RemoteConfig::default();
    if let Some(v) = value.get("connect_timeout_ms") {
        remote.connect_timeout = Duration::from_millis(decode_u64(v, CTX, "connect_timeout_ms")?);
    }
    if let Some(v) = value.get("io_timeout_ms") {
        remote.io_timeout = Duration::from_millis(decode_u64(v, CTX, "io_timeout_ms")?);
    }
    if let Some(v) = value.get("pool_size") {
        remote.pool_size = decode_usize(v, CTX, "pool_size")?;
    }
    if let Some(v) = value.get("server_idle_timeout_ms") {
        remote.server_idle_timeout =
            Duration::from_millis(decode_u64(v, CTX, "server_idle_timeout_ms")?);
    }
    if let Some(v) = value.get("encoding") {
        remote.encoding = decode_encoding(v, CTX)?;
    }
    if let Some(v) = value.get("transport") {
        remote.transport = decode_transport(v, CTX)?;
    }
    if let Some(v) = value.get("frontend") {
        remote.frontend = decode_frontend(v, CTX)?;
    }
    Ok(remote)
}

/// Decodes a `"threads"`/`"reactor"` front-end spelling.
fn decode_frontend(value: &JsonValue, ctx: &str) -> Result<FrontendPolicy, DecodeError> {
    match value {
        JsonValue::Str(text) => FrontendPolicy::parse(text).ok_or_else(|| DecodeError {
            context: ctx.to_string(),
            message: format!("`frontend`: unknown policy `{text}` (threads or reactor)"),
        }),
        _ => Err(DecodeError {
            context: ctx.to_string(),
            message: "`frontend` must be a string".to_string(),
        }),
    }
}

/// Decodes an `"auto"`/`"socket"`/`"shm"` transport spelling.
fn decode_transport(value: &JsonValue, ctx: &str) -> Result<TransportPolicy, DecodeError> {
    match value {
        JsonValue::Str(text) => TransportPolicy::parse(text).ok_or_else(|| DecodeError {
            context: ctx.to_string(),
            message: format!("`transport`: unknown policy `{text}` (auto, socket or shm)"),
        }),
        _ => Err(DecodeError {
            context: ctx.to_string(),
            message: "`transport` must be a string".to_string(),
        }),
    }
}

/// Decodes an `"auto"`/`"json"`/`"binary"`/`"binary_nodict"` encoding spelling.
fn decode_encoding(value: &JsonValue, ctx: &str) -> Result<EncodingPolicy, DecodeError> {
    match value {
        JsonValue::Str(text) => EncodingPolicy::parse(text).ok_or_else(|| DecodeError {
            context: ctx.to_string(),
            message: format!(
                "`encoding`: unknown policy `{text}` (auto, json, binary or binary_nodict)"
            ),
        }),
        _ => Err(DecodeError {
            context: ctx.to_string(),
            message: "`encoding` must be a string".to_string(),
        }),
    }
}

/// Decodes a [`topology_json`] document (or a sparser hand-written file —
/// only unknown shapes are errors, missing fields default).
pub fn topology_from_json(value: &JsonValue) -> Result<Topology, DecodeError> {
    const CTX: &str = "Topology";
    let listen = match value.get("listen") {
        None | Some(JsonValue::Null) => None,
        Some(JsonValue::Str(addr)) => Some(addr.clone()),
        Some(_) => {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: "`listen` must be a string or null".to_string(),
            })
        }
    };
    let service = match value.get("service") {
        Some(section) => service_config_from_json(section)?,
        None => ServiceConfig::default(),
    };
    let local = match value.get("local") {
        None => Vec::new(),
        Some(JsonValue::Arr(items)) => items
            .iter()
            .map(|item| match item {
                JsonValue::Str(name) => Ok(name.clone()),
                _ => Err(DecodeError {
                    context: CTX.to_string(),
                    message: "`local` entries must be backend-name strings".to_string(),
                }),
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: "`local` must be an array".to_string(),
            })
        }
    };
    let remotes = match value.get("remotes") {
        None => Vec::new(),
        Some(JsonValue::Arr(items)) => items
            .iter()
            .map(remote_decl_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: "`remotes` must be an array".to_string(),
            })
        }
    };
    let replicas = match value.get("replicas") {
        None | Some(JsonValue::Null) => Vec::new(),
        Some(JsonValue::Arr(items)) => items
            .iter()
            .map(replica_group_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: "`replicas` must be an array".to_string(),
            })
        }
    };
    // A replica group is a view over `remotes[]` — a shard address with no
    // remote declaration has no pool configuration to build from, and two
    // groups claiming one backend would route the same name two ways.
    // Reject both here so every loaded topology is assemblable.
    let mut claimed = std::collections::HashSet::new();
    for group in &replicas {
        if !claimed.insert(group.backend.as_str()) {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: format!(
                    "`replicas`: backend `{}` is claimed by more than one group",
                    group.backend
                ),
            });
        }
        for addr in &group.shards {
            if !remotes.iter().any(|decl| decl.addr == *addr) {
                return Err(DecodeError {
                    context: CTX.to_string(),
                    message: format!(
                        "`replicas`: group `{}` names shard `{addr}` which is not in `remotes`",
                        group.backend
                    ),
                });
            }
        }
    }
    Ok(Topology {
        listen,
        service,
        local,
        remotes,
        replicas,
    })
}

fn remote_decl_from_json(value: &JsonValue) -> Result<RemoteShardDecl, DecodeError> {
    const CTX: &str = "RemoteShardDecl";
    let addr = match value.get("addr") {
        Some(JsonValue::Str(addr)) => addr.clone(),
        _ => {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: "missing string `addr`".to_string(),
            })
        }
    };
    let weight = match value.get("weight") {
        None | Some(JsonValue::Null) => 1,
        Some(v) => decode_usize(v, CTX, "weight")?.max(1),
    };
    let pool_size = match value.get("pool_size") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(decode_usize(v, CTX, "pool_size")?),
    };
    let encoding = match value.get("encoding") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(decode_encoding(v, CTX)?),
    };
    let transport = match value.get("transport") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(decode_transport(v, CTX)?),
    };
    Ok(RemoteShardDecl {
        addr,
        weight,
        pool_size,
        encoding,
        transport,
    })
}

fn replica_group_from_json(value: &JsonValue) -> Result<ReplicaGroupDecl, DecodeError> {
    const CTX: &str = "ReplicaGroupDecl";
    let backend = match value.get("backend") {
        Some(JsonValue::Str(name)) => name.clone(),
        _ => {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: "missing string `backend`".to_string(),
            })
        }
    };
    let shards = match value.get("shards") {
        Some(JsonValue::Arr(items)) if !items.is_empty() => items
            .iter()
            .map(|item| match item {
                JsonValue::Str(addr) => Ok(addr.clone()),
                _ => Err(DecodeError {
                    context: CTX.to_string(),
                    message: "`shards` entries must be address strings".to_string(),
                }),
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: "`shards` must be a non-empty array of addresses".to_string(),
            })
        }
    };
    let hedge_budget_us = match value.get("hedge_budget_us") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(decode_u64(v, CTX, "hedge_budget_us")?),
    };
    let breaker = match value.get("breaker") {
        None | Some(JsonValue::Null) => None,
        Some(section @ JsonValue::Obj(_)) => Some(breaker_from_json(section)?),
        Some(_) => {
            return Err(DecodeError {
                context: CTX.to_string(),
                message: "`breaker` must be an object or null".to_string(),
            })
        }
    };
    Ok(ReplicaGroupDecl {
        backend,
        shards,
        hedge_budget_us,
        breaker,
    })
}

/// Decodes a `breaker` section; missing fields keep their
/// [`BreakerConfig::default`] values.
fn breaker_from_json(value: &JsonValue) -> Result<BreakerConfig, DecodeError> {
    const CTX: &str = "BreakerConfig";
    let mut breaker = BreakerConfig::default();
    if let Some(v) = value.get("window") {
        breaker.window = decode_usize(v, CTX, "window")?;
    }
    if let Some(v) = value.get("max_failures") {
        breaker.max_failures = decode_usize(v, CTX, "max_failures")?;
    }
    if let Some(v) = value.get("cooldown_ms") {
        breaker.cooldown = Duration::from_millis(decode_u64(v, CTX, "cooldown_ms")?);
    }
    if breaker.window == 0 || breaker.max_failures == 0 || breaker.max_failures > breaker.window {
        return Err(DecodeError {
            context: CTX.to_string(),
            message: format!(
                "`max_failures` ({}) must be between 1 and `window` ({})",
                breaker.max_failures, breaker.window
            ),
        });
    }
    Ok(breaker)
}

/// [`json::expect_u64`] with the field name prefixed into the message.
fn decode_u64(value: &JsonValue, ctx: &str, key: &str) -> Result<u64, DecodeError> {
    json::expect_u64(value, ctx).map_err(|mut e| {
        e.message = format!("`{key}`: {}", e.message);
        e
    })
}

/// [`json::expect_usize`] with the field name prefixed into the message.
fn decode_usize(value: &JsonValue, ctx: &str, key: &str) -> Result<usize, DecodeError> {
    json::expect_usize(value, ctx).map_err(|mut e| {
        e.message = format!("`{key}`: {}", e.message);
        e
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_topology() -> Topology {
        Topology {
            listen: Some("127.0.0.1:7070".to_string()),
            service: ServiceConfig {
                max_batch: 32,
                batch_deadline: Duration::from_micros(750),
                workers_per_backend: 3,
                cache_capacity: Some(4096),
                class_budgets: [
                    Some(Duration::from_micros(2_000)),
                    Some(Duration::from_micros(20_000)),
                    None,
                ],
                queue_capacity: Some(1024),
                remote: RemoteConfig {
                    connect_timeout: Duration::from_millis(2500),
                    io_timeout: Duration::from_millis(12000),
                    pool_size: 6,
                    server_idle_timeout: Duration::from_millis(45000),
                    encoding: EncodingPolicy::Binary,
                    transport: TransportPolicy::Socket,
                    frontend: FrontendPolicy::Reactor,
                },
            },
            local: vec!["rsn-xnn".to_string(), "roofline-bound".to_string()],
            remotes: vec![
                RemoteShardDecl {
                    addr: "10.0.0.7:7070".to_string(),
                    weight: 2,
                    pool_size: Some(8),
                    encoding: Some(EncodingPolicy::Json),
                    transport: Some(TransportPolicy::Shm),
                },
                RemoteShardDecl::new("10.0.0.8:7070"),
            ],
            replicas: vec![
                ReplicaGroupDecl {
                    backend: "rsn-xnn".to_string(),
                    shards: vec!["10.0.0.7:7070".to_string(), "10.0.0.8:7070".to_string()],
                    hedge_budget_us: Some(5_000),
                    breaker: Some(BreakerConfig {
                        window: 16,
                        max_failures: 6,
                        cooldown: Duration::from_millis(2_500),
                    }),
                },
                ReplicaGroupDecl::new("charm", &["10.0.0.8:7070"]),
            ],
        }
    }

    #[test]
    fn topology_round_trips_typed() {
        let topology = rich_topology();
        let doc = topology_json(&topology);
        let decoded = topology_from_json(&doc).expect("topology decodes");
        assert_eq!(decoded, topology);
    }

    #[test]
    fn sparse_hand_written_topology_defaults() {
        let doc = json::parse(r#"{"remotes": [{"addr": "host:1"}]}"#).expect("parse");
        let topology = topology_from_json(&doc).expect("decode");
        assert_eq!(topology.listen, None);
        assert_eq!(topology.service, ServiceConfig::default());
        assert!(topology.local.is_empty());
        assert_eq!(
            topology.remotes,
            vec![RemoteShardDecl::new("host:1")],
            "weight defaults to 1, pool_size to the service default"
        );
    }

    #[test]
    fn malformed_topology_is_a_decode_error_not_a_panic() {
        let bad = [
            r#"{"listen": 7}"#,
            r#"{"local": "rsn-xnn"}"#,
            r#"{"local": [3]}"#,
            r#"{"remotes": [{}]}"#,
            r#"{"remotes": [{"addr": "x", "weight": "heavy"}]}"#,
            r#"{"remotes": [{"addr": "x", "encoding": "yaml"}]}"#,
            r#"{"remotes": [{"addr": "x", "transport": "pipe"}]}"#,
            r#"{"service": {"remote": {"encoding": 3}}}"#,
            r#"{"service": {"remote": {"transport": 3}}}"#,
            r#"{"service": {"remote": {"frontend": 3}}}"#,
            r#"{"service": {"remote": {"frontend": "tokio"}}}"#,
            r#"{"service": {"max_batch": -1}}"#,
            r#"{"service": {"class_budgets_us": [2000]}}"#,
            r#"{"service": {"class_budgets_us": {"high": "fast"}}}"#,
            r#"{"service": {"queue_capacity": "lots"}}"#,
            r#"{"replicas": "all"}"#,
            r#"{"replicas": [{"shards": ["x:1"]}]}"#,
            r#"{"remotes": [{"addr": "x:1"}], "replicas": [{"backend": "b", "shards": []}]}"#,
            r#"{"remotes": [{"addr": "x:1"}], "replicas": [{"backend": "b", "shards": [7]}]}"#,
            r#"{"remotes": [{"addr": "x:1"}], "replicas": [{"backend": "b", "shards": ["x:1"], "hedge_budget_us": "soon"}]}"#,
            r#"{"remotes": [{"addr": "x:1"}], "replicas": [{"backend": "b", "shards": ["x:1"], "breaker": "open"}]}"#,
            r#"{"remotes": [{"addr": "x:1"}], "replicas": [{"backend": "b", "shards": ["x:1"], "breaker": {"window": 0}}]}"#,
            r#"{"remotes": [{"addr": "x:1"}], "replicas": [{"backend": "b", "shards": ["x:1"], "breaker": {"max_failures": 9}}]}"#,
        ];
        for text in bad {
            let doc = json::parse(text).expect("structurally valid JSON");
            assert!(topology_from_json(&doc).is_err(), "must reject {text}");
        }
    }

    #[test]
    fn replica_groups_must_reference_known_shards_once() {
        // A group naming a shard with no `remotes[]` declaration has no
        // pool configuration to assemble from.
        let unknown = json::parse(
            r#"{"remotes": [{"addr": "x:1"}],
                "replicas": [{"backend": "b", "shards": ["x:1", "y:2"]}]}"#,
        )
        .expect("parse");
        let err = topology_from_json(&unknown).expect_err("unknown shard must be rejected");
        assert!(err.message.contains("y:2"), "names the offender: {err}");

        // Two groups claiming one backend would route the name two ways.
        let duplicate = json::parse(
            r#"{"remotes": [{"addr": "x:1"}, {"addr": "y:2"}],
                "replicas": [{"backend": "b", "shards": ["x:1"]},
                             {"backend": "b", "shards": ["y:2"]}]}"#,
        )
        .expect("parse");
        let err = topology_from_json(&duplicate).expect_err("duplicate backend must be rejected");
        assert!(err.message.contains('b'), "names the backend: {err}");
    }

    #[test]
    fn sparse_replica_group_defaults() {
        let doc = json::parse(
            r#"{"remotes": [{"addr": "x:1"}],
                "replicas": [{"backend": "b", "shards": ["x:1"]}]}"#,
        )
        .expect("parse");
        let topology = topology_from_json(&doc).expect("decode");
        assert_eq!(
            topology.replicas,
            vec![ReplicaGroupDecl::new("b", &["x:1"])]
        );
        // A breaker object with only some fields keeps the rest default.
        let doc = json::parse(
            r#"{"remotes": [{"addr": "x:1"}],
                "replicas": [{"backend": "b", "shards": ["x:1"],
                              "breaker": {"max_failures": 2}}]}"#,
        )
        .expect("parse");
        let topology = topology_from_json(&doc).expect("decode");
        assert_eq!(
            topology.replicas[0].breaker,
            Some(BreakerConfig {
                max_failures: 2,
                ..BreakerConfig::default()
            })
        );
    }

    #[test]
    fn file_loading_reports_positioned_errors() {
        let dir = std::env::temp_dir().join("rsn-topology-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("broken.json");
        std::fs::write(&path, "{\"listen\": oops}").expect("write");
        match Topology::from_file(&path) {
            Err(TopologyError::Parse(e)) => assert_eq!((e.line, e.column), (1, 12)),
            other => panic!("expected a parse error, got {other:?}"),
        }
        match Topology::from_file(&dir.join("missing.json")) {
            Err(TopologyError::Io { .. }) => {}
            other => panic!("expected an io error, got {other:?}"),
        }
    }
}
