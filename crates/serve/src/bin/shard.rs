//! `shardd` — hosts backend worker pools as a remote evaluation shard.
//!
//! ```sh
//! shardd --listen 127.0.0.1:7070 --backends rsn-xnn,charm --workers 2
//! shardd --topology deploy/shard-a.json
//! ```
//!
//! With `--topology` the shard loads everything (bind address via the
//! file's `"listen"` field, hosted backends via `"local"`, service and
//! transport tuning via `"service"`) from a topology file — see
//! [`rsn_serve::topology`] — and individual flags override the file.
//! The first stdout line is always `shardd listening on <addr>` (with the
//! real port when `--listen` used port 0), so launchers can scrape the
//! address; everything else goes to stderr.  The process serves until
//! killed — pooled clients re-dial transparently, so restarting a shard
//! costs its clients one transport error per in-flight request and
//! nothing after.

use rsn_eval::{default_backends, Evaluator};
use rsn_serve::remote::ShardServer;
use rsn_serve::topology::Topology;
use rsn_serve::EvalService;
use std::io::Write as _;

const USAGE: &str = "usage: shardd [--topology FILE] [--listen ADDR] [--backends NAME,NAME,...] \
                     [--workers N] [--cache-capacity N] [--encoding auto|json|binary|binary_nodict] \
                     [--transport auto|socket|shm] [--frontend threads|reactor]\n\
                     \n\
                     --topology FILE      load listen address, hosted backends and service\n\
                     \x20                    tuning from a topology file (flags override it)\n\
                     --listen ADDR        bind address (default 127.0.0.1:7070; port 0 picks one)\n\
                     --backends NAMES     comma-separated backend names to host (default: all)\n\
                     --workers N          worker threads per hosted backend (default 2)\n\
                     --cache-capacity N   bound the report cache to N completed entries\n\
                     --encoding POLICY    answer encoding: auto mirrors each request (default),\n\
                     \x20                    json forces readable frames for debugging, binary\n\
                     \x20                    forces the compact codec (v3-only clients), and\n\
                     \x20                    binary_nodict forces the v7 symbol dictionaries off\n\
                     --transport POLICY   shared-memory ring offers: auto offers one to\n\
                     \x20                    loopback peers (default), socket never offers,\n\
                     \x20                    shm offers to every peer (same-host fleets behind\n\
                     \x20                    a non-loopback address)\n\
                     --frontend POLICY    connection front end: threads serves each connection\n\
                     \x20                    from a blocking thread (default), reactor serves\n\
                     \x20                    them all from one event loop (protocol-5\n\
                     \x20                    multiplexing; never offers shm rings)\n";

fn fail(message: &str) -> ! {
    eprintln!("shardd: {message}");
    eprint!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut listen: Option<String> = None;
    let mut backend_names: Option<Vec<String>> = None;
    let mut workers: Option<usize> = None;
    let mut cache_capacity: Option<usize> = None;
    let mut encoding: Option<rsn_serve::EncodingPolicy> = None;
    let mut transport: Option<rsn_serve::TransportPolicy> = None;
    let mut frontend: Option<rsn_serve::FrontendPolicy> = None;
    let mut topology: Option<Topology> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--topology" => {
                let path = value("--topology");
                topology = Some(
                    Topology::from_file(std::path::Path::new(&path))
                        .unwrap_or_else(|e| fail(&e.to_string())),
                );
            }
            "--listen" => listen = Some(value("--listen")),
            "--backends" => {
                backend_names = Some(
                    value("--backends")
                        .split(',')
                        .map(|name| name.trim().to_string())
                        .filter(|name| !name.is_empty())
                        .collect(),
                );
            }
            "--workers" => {
                workers = Some(
                    value("--workers")
                        .parse()
                        .unwrap_or_else(|_| fail("--workers needs an integer")),
                );
            }
            "--cache-capacity" => {
                cache_capacity = Some(
                    value("--cache-capacity")
                        .parse()
                        .unwrap_or_else(|_| fail("--cache-capacity needs an integer")),
                );
            }
            "--encoding" => {
                let text = value("--encoding");
                encoding = Some(rsn_serve::EncodingPolicy::parse(&text).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown encoding `{text}` (expected auto, json, binary or binary_nodict)"
                    ))
                }));
            }
            "--transport" => {
                let text = value("--transport");
                transport = Some(rsn_serve::TransportPolicy::parse(&text).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown transport `{text}` (expected auto, socket or shm)"
                    ))
                }));
            }
            "--frontend" => {
                let text = value("--frontend");
                frontend = Some(rsn_serve::FrontendPolicy::parse(&text).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown frontend `{text}` (expected threads or reactor)"
                    ))
                }));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    // Resolution order: explicit flag > topology file > built-in default.
    let mut config = topology
        .as_ref()
        .map(|t| t.service.clone())
        .unwrap_or_default();
    if let Some(workers) = workers {
        config.workers_per_backend = workers;
    }
    if let Some(capacity) = cache_capacity {
        config.cache_capacity = Some(capacity);
    }
    if let Some(encoding) = encoding {
        config.remote.encoding = encoding;
    }
    if let Some(transport) = transport {
        config.remote.transport = transport;
    }
    if let Some(frontend) = frontend {
        config.remote.frontend = frontend;
    }
    let listen = listen
        .or_else(|| topology.as_ref().and_then(|t| t.listen.clone()))
        .unwrap_or_else(|| "127.0.0.1:7070".to_string());
    if backend_names.is_none() {
        if let Some(topology) = &topology {
            if !topology.local.is_empty() {
                backend_names = Some(topology.local.clone());
            }
            if !topology.remotes.is_empty() {
                eprintln!(
                    "shardd: note: topology `remotes` entries are ignored — a shard hosts \
                     local pools; point clients (table binaries, routers) at this shard instead"
                );
            }
        }
    }

    let mut evaluator = Evaluator::empty();
    let mut available = Vec::new();
    for backend in default_backends() {
        available.push(backend.name().to_string());
        let wanted = backend_names
            .as_ref()
            .is_none_or(|names| names.iter().any(|n| n == backend.name()));
        if wanted {
            evaluator.register(backend);
        }
    }
    if let Some(names) = &backend_names {
        for name in names {
            if !available.contains(name) {
                fail(&format!(
                    "unknown backend `{name}` (available: {})",
                    available.join(", ")
                ));
            }
        }
    }
    if evaluator.backends().is_empty() {
        fail("no backends selected");
    }

    let service = EvalService::with_config(evaluator, config);
    let server = match ShardServer::bind(&listen, service) {
        Ok(server) => server,
        Err(e) => fail(&format!("binding {listen} failed: {e}")),
    };
    println!("shardd listening on {}", server.local_addr());
    std::io::stdout().flush().expect("flush listen line");
    eprintln!("shardd hosting: {}", server.backend_names().join(", "));

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
