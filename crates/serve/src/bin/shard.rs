//! `shardd` — hosts backend worker pools as a remote evaluation shard.
//!
//! ```sh
//! shardd --listen 127.0.0.1:7070 --backends rsn-xnn,charm --workers 2
//! ```
//!
//! The first stdout line is always `shardd listening on <addr>` (with the
//! real port when `--listen` used port 0), so launchers can scrape the
//! address; everything else goes to stderr.  The process serves until
//! killed — clients reconnect per request, so restarting a shard is
//! transparent to them.

use rsn_eval::{default_backends, Evaluator};
use rsn_serve::remote::ShardServer;
use rsn_serve::{EvalService, ServiceConfig};
use std::io::Write as _;

const USAGE: &str = "usage: shardd [--listen ADDR] [--backends NAME,NAME,...] \
                     [--workers N] [--cache-capacity N]\n\
                     \n\
                     --listen ADDR        bind address (default 127.0.0.1:7070; port 0 picks one)\n\
                     --backends NAMES     comma-separated backend names to host (default: all)\n\
                     --workers N          worker threads per hosted backend (default 2)\n\
                     --cache-capacity N   bound the report cache to N completed entries\n";

fn fail(message: &str) -> ! {
    eprintln!("shardd: {message}");
    eprint!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:7070".to_string();
    let mut backend_names: Option<Vec<String>> = None;
    let mut config = ServiceConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--listen" => listen = value("--listen"),
            "--backends" => {
                backend_names = Some(
                    value("--backends")
                        .split(',')
                        .map(|name| name.trim().to_string())
                        .filter(|name| !name.is_empty())
                        .collect(),
                );
            }
            "--workers" => {
                config.workers_per_backend = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers needs an integer"));
            }
            "--cache-capacity" => {
                config.cache_capacity = Some(
                    value("--cache-capacity")
                        .parse()
                        .unwrap_or_else(|_| fail("--cache-capacity needs an integer")),
                );
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    let mut evaluator = Evaluator::empty();
    let mut available = Vec::new();
    for backend in default_backends() {
        available.push(backend.name().to_string());
        let wanted = backend_names
            .as_ref()
            .is_none_or(|names| names.iter().any(|n| n == backend.name()));
        if wanted {
            evaluator.register(backend);
        }
    }
    if let Some(names) = &backend_names {
        for name in names {
            if !available.contains(name) {
                fail(&format!(
                    "unknown backend `{name}` (available: {})",
                    available.join(", ")
                ));
            }
        }
    }
    if evaluator.backends().is_empty() {
        fail("no backends selected");
    }

    let service = EvalService::with_config(evaluator, config);
    let server = match ShardServer::bind(&listen, service) {
        Ok(server) => server,
        Err(e) => fail(&format!("binding {listen} failed: {e}")),
    };
    println!("shardd listening on {}", server.local_addr());
    std::io::stdout().flush().expect("flush listen line");
    eprintln!("shardd hosting: {}", server.backend_names().join(", "));

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
