//! The compact binary wire codec (protocol version 3).
//!
//! The JSON wire format is self-describing and diffable, but building a
//! pretty-printed `String` per frame — one allocation per key, a full
//! recursive-descent parse on the receiving side — is what capped the
//! remote path at ~10% of in-process throughput (see `BENCH_serve.json`).
//! This module is the allocation-free replacement: every wire document
//! (specs, reports, errors, results, batches, stats) encodes straight into
//! a caller-owned `Vec<u8>` scratch buffer with no intermediate
//! [`JsonValue`](crate::json::JsonValue) tree, and decodes straight out of
//! the received payload bytes.
//!
//! # Layout
//!
//! A binary payload starts with [`MAGIC`] (`0xB3`) — a byte no JSON
//! document of ours can start with, so receivers dispatch per frame and
//! mixed-encoding fleets interoperate (see [`crate::wire`] for the
//! negotiation rules).  After the magic byte:
//!
//! ```text
//! magic  tag  varint(id)  body…
//! ```
//!
//! * integers are unsigned LEB128 varints (7 bits per byte, high bit =
//!   continue) — counters and ids are small, so most take one byte;
//! * strings are a varint byte length followed by UTF-8 bytes;
//! * floats are 8 little-endian bytes of their IEEE-754 bits (non-finite
//!   values survive exactly, unlike JSON's `null` mapping);
//! * options are a `0`/`1` presence byte, then the value;
//! * sequences are a varint count, then the elements.
//!
//! Message `tag` bytes: requests use `0x01`–`0x05` (hello, supports,
//! evaluate, evaluate_batch, stats), responses `0x81`–`0x85` in the same
//! order plus `0x8F` for a protocol-level rejection.  Inner documents
//! (specs, errors) carry their own one-byte variant tags.
//!
//! Encoding is deterministic (metric maps iterate in `BTreeMap` order), so
//! a document's binary image is byte-stable — the round-trip tests pin
//! `decode(encode(x)) == x` identity for every document type and semantic
//! equality with the JSON codec.

use crate::fnv::FnvBuild;
use crate::json::DecodeError;
use crate::request::Priority;
use crate::stats::{ClassStats, LatencyHistogram, PoolStats, ServiceStats, ShardStats};
use crate::wire::{ShardRequest, ShardResponse, SharedResult};
use rsn_eval::{BreakdownRow, CycleStats, SegmentMetric};
use rsn_eval::{EvalError, EvalReport, SchedulerKind, WorkloadSpec};
use rsn_workloads::bert::BertConfig;
use rsn_workloads::models::ModelKind;
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;

/// First byte of every binary payload.  The JSON emitter's documents start
/// with `{`, `[`, `"`, a digit, `-`, `t`, `f` or `n` — all ASCII — so this
/// byte unambiguously marks a binary frame.
pub const MAGIC: u8 = 0xB3;

// Message tags (requests 0x0_, responses 0x8_).
const TAG_HELLO: u8 = 0x01;
const TAG_SUPPORTS: u8 = 0x02;
const TAG_EVALUATE: u8 = 0x03;
const TAG_EVALUATE_BATCH: u8 = 0x04;
const TAG_STATS: u8 = 0x05;
const TAG_CANCEL: u8 = 0x06;
const TAG_BACKENDS: u8 = 0x81;
const TAG_SUPPORTED: u8 = 0x82;
const TAG_EVALUATED: u8 = 0x83;
const TAG_EVALUATED_BATCH: u8 = 0x84;
const TAG_STATS_RESPONSE: u8 = 0x85;
const TAG_REJECTED: u8 = 0x8F;

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_usize(out: &mut Vec<u8>, value: usize) {
    put_varint(out, value as u64);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_f64(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_bits().to_le_bytes());
}

fn put_opt_f64(out: &mut Vec<u8>, value: Option<f64>) {
    match value {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
    }
}

fn put_bool(out: &mut Vec<u8>, value: bool) {
    out.push(u8::from(value));
}

// ---------------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------------

/// Walks a binary payload; every read is bounds-checked so a truncated or
/// hostile frame decodes into a [`DecodeError`], never a panic.
///
/// The reader is *borrowing*: [`Reader::take`] and [`Reader::str_ref`]
/// return slices of the frame buffer itself, so decoders only allocate at
/// the API boundary where a document must outlive its frame.  The owned
/// [`Reader::str`] wrapper exists for cold paths (errors, rejections) and
/// so tests can property-check the borrowed accessors against their owned
/// counterparts.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const CTX: &str = "binary frame";

impl<'a> Reader<'a> {
    /// Starts reading at the first byte of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> DecodeError {
        DecodeError {
            context: CTX.to_string(),
            message: format!("at byte {}: {}", self.pos, message.into()),
        }
    }

    /// Reads one raw byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.error("unexpected end of payload"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Borrows the next `n` bytes straight out of the frame buffer.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| self.error(format!("payload truncated ({n} bytes promised)")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(self.error("varint longer than 64 bits"))
    }

    /// A plain usize value (a dimension, a batch size) — unbounded.
    pub fn usize_val(&mut self) -> Result<usize, DecodeError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| self.error("value does not fit in usize"))
    }

    /// A collection count.  A count can never promise more elements than
    /// bytes remain (each element costs at least one byte); this caps what
    /// a hostile length prefix can make collection decoders pre-allocate.
    #[allow(clippy::len_without_is_empty)] // a wire count, not a container size
    pub fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.usize_val()?;
        if n > self.bytes.len().saturating_sub(self.pos) {
            return Err(self.error(format!("implausible collection length {n}")));
        }
        Ok(n)
    }

    /// Borrows one length-prefixed UTF-8 string from the frame buffer —
    /// validation only, no copy.
    pub fn str_ref(&mut self) -> Result<&'a str, DecodeError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| self.error("string is not valid UTF-8"))
    }

    /// Owned counterpart of [`Reader::str_ref`] for strings that must
    /// outlive the frame.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        self.str_ref().map(str::to_owned)
    }

    /// Reads one IEEE-754 double from its little-endian bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        let bytes = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("8 bytes taken"),
        )))
    }

    /// Reads one presence-byte-prefixed optional double.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, DecodeError> {
        match self.byte()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            other => Err(self.error(format!("invalid option tag {other:#04x}"))),
        }
    }

    /// Reads one `0`/`1` boolean byte.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.error(format!("invalid bool byte {other:#04x}"))),
        }
    }

    /// Fails unless the whole payload was consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.error("trailing bytes after the message"))
        }
    }

    /// Bytes left after the current position (used by decoders that accept
    /// optional trailing fields from newer peers).
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

// ---------------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------------

/// Deduplicates the small closed set of backend and slot names that appear
/// in every report and stats record, handing decoders a shared `Arc<str>`
/// instead of a fresh allocation per document.  Bounded so a hostile peer
/// streaming unique names cannot grow the table without limit: once full,
/// lookups still hit for known names and misses fall back to a fresh
/// one-off `Arc`.
pub struct Interner {
    // FNV-keyed: the vocabulary is short human-chosen labels, and the table
    // is capped, so the cheap hash is safe — see [`crate::fnv`].
    set: HashSet<Arc<str>, FnvBuild>,
}

/// Names longer than this are never cached — real backend and workload
/// labels are short, and skipping the hash probe for long one-off strings
/// keeps the common path cheap.
const INTERN_MAX_LEN: usize = 64;
/// Upper bound on distinct cached names.
const INTERN_CAP: usize = 256;

impl Interner {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            set: HashSet::default(),
        }
    }

    /// Returns a shared copy of `s`, allocating only on first sight.
    pub fn intern(&mut self, s: &str) -> Arc<str> {
        if s.len() > INTERN_MAX_LEN {
            return Arc::from(s);
        }
        if let Some(existing) = self.set.get(s) {
            return Arc::clone(existing);
        }
        let fresh: Arc<str> = Arc::from(s);
        if self.set.len() < INTERN_CAP {
            self.set.insert(Arc::clone(&fresh));
        }
        fresh
    }
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Per-thread interning table shared by every decode on the thread —
    /// pool exchange threads and shard connection threads each converge on
    /// one long-lived set of name `Arc`s.
    static INTERNER: RefCell<Interner> = RefCell::new(Interner::new());
}

/// Runs `f` with the thread's interning table borrowed once.  Decoders that
/// intern several labels per report hoist the TLS access and `RefCell`
/// borrow out of the per-label path — on a 2048-report burst that is four
/// fewer TLS round-trips per report.
fn with_interner<T>(f: impl FnOnce(&mut Interner) -> T) -> T {
    INTERNER.with(|table| f(&mut table.borrow_mut()))
}

// ---------------------------------------------------------------------------
// WorkloadSpec
// ---------------------------------------------------------------------------

fn put_bert_config(out: &mut Vec<u8>, cfg: &BertConfig) {
    put_usize(out, cfg.hidden);
    put_usize(out, cfg.heads);
    put_usize(out, cfg.ff_dim);
    put_usize(out, cfg.seq_len);
    put_usize(out, cfg.batch);
    put_usize(out, cfg.layers);
}

fn read_bert_config(r: &mut Reader<'_>) -> Result<BertConfig, DecodeError> {
    Ok(BertConfig {
        hidden: r.usize_val()?,
        heads: r.usize_val()?,
        ff_dim: r.usize_val()?,
        seq_len: r.usize_val()?,
        batch: r.usize_val()?,
        layers: r.usize_val()?,
    })
}

/// Appends one workload spec (a one-byte variant tag, then its fields).
pub fn encode_spec(out: &mut Vec<u8>, spec: &WorkloadSpec) {
    match spec {
        WorkloadSpec::EncoderLayer { cfg } => {
            out.push(0);
            put_bert_config(out, cfg);
        }
        WorkloadSpec::FullModel { cfg } => {
            out.push(1);
            put_bert_config(out, cfg);
        }
        WorkloadSpec::SquareGemm { n } => {
            out.push(2);
            put_usize(out, *n);
        }
        WorkloadSpec::ZooModel { kind } => {
            out.push(3);
            put_str(out, kind.name());
        }
        WorkloadSpec::AttentionMapping { cfg, mapping } => {
            out.push(4);
            put_bert_config(out, cfg);
            put_str(out, &mapping.letter().to_string());
        }
        WorkloadSpec::PowerBreakdown => out.push(5),
        WorkloadSpec::DatapathProperties => out.push(6),
        WorkloadSpec::InstructionFootprint { m, k, n } => {
            out.push(7);
            put_usize(out, *m);
            put_usize(out, *k);
            put_usize(out, *n);
        }
        WorkloadSpec::FunctionalGemm { m, k, n, seed } => {
            out.push(8);
            put_usize(out, *m);
            put_usize(out, *k);
            put_usize(out, *n);
            put_varint(out, *seed);
        }
        WorkloadSpec::FunctionalAttention { cfg, seed } => {
            out.push(9);
            put_bert_config(out, cfg);
            put_varint(out, *seed);
        }
        WorkloadSpec::ScalarPipeline { elements } => {
            out.push(10);
            put_usize(out, *elements);
        }
    }
}

fn read_spec(r: &mut Reader<'_>) -> Result<WorkloadSpec, DecodeError> {
    match r.byte()? {
        0 => Ok(WorkloadSpec::EncoderLayer {
            cfg: read_bert_config(r)?,
        }),
        1 => Ok(WorkloadSpec::FullModel {
            cfg: read_bert_config(r)?,
        }),
        2 => Ok(WorkloadSpec::SquareGemm { n: r.usize_val()? }),
        3 => {
            let name = r.str_ref()?;
            let kind = ModelKind::table7_models()
                .into_iter()
                .find(|k| k.name() == name)
                .ok_or_else(|| r.error(format!("unknown zoo model `{name}`")))?;
            Ok(WorkloadSpec::ZooModel { kind })
        }
        4 => {
            let cfg = read_bert_config(r)?;
            let letter = r.str_ref()?;
            let mapping = rsn_lib::mapping::MappingType::all()
                .into_iter()
                .find(|m| m.letter().to_string() == letter)
                .ok_or_else(|| r.error(format!("unknown mapping type `{letter}`")))?;
            Ok(WorkloadSpec::AttentionMapping { cfg, mapping })
        }
        5 => Ok(WorkloadSpec::PowerBreakdown),
        6 => Ok(WorkloadSpec::DatapathProperties),
        7 => Ok(WorkloadSpec::InstructionFootprint {
            m: r.usize_val()?,
            k: r.usize_val()?,
            n: r.usize_val()?,
        }),
        8 => Ok(WorkloadSpec::FunctionalGemm {
            m: r.usize_val()?,
            k: r.usize_val()?,
            n: r.usize_val()?,
            seed: r.varint()?,
        }),
        9 => Ok(WorkloadSpec::FunctionalAttention {
            cfg: read_bert_config(r)?,
            seed: r.varint()?,
        }),
        10 => Ok(WorkloadSpec::ScalarPipeline {
            elements: r.usize_val()?,
        }),
        other => Err(r.error(format!("unknown workload tag {other:#04x}"))),
    }
}

/// Decodes one standalone workload-spec document (used by tests; on the
/// wire specs travel inside request bodies).
pub fn decode_spec(bytes: &[u8]) -> Result<WorkloadSpec, DecodeError> {
    let mut r = Reader::new(bytes);
    let spec = read_spec(&mut r)?;
    r.finish()?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// EvalReport / EvalError / results
// ---------------------------------------------------------------------------

/// Appends one evaluation report.
pub fn encode_report(out: &mut Vec<u8>, report: &EvalReport) {
    put_str(out, &report.backend);
    put_str(out, &report.workload);
    put_opt_f64(out, report.latency_s);
    put_opt_f64(out, report.throughput_tasks_per_s);
    put_opt_f64(out, report.achieved_flops);
    put_usize(out, report.segments.len());
    for s in &report.segments {
        put_str(out, &s.name);
        put_f64(out, s.latency_s);
        put_f64(out, s.compute_s);
        put_f64(out, s.ddr_s);
        put_f64(out, s.lpddr_s);
        put_f64(out, s.phase_s);
    }
    put_usize(out, report.breakdown.len());
    for row in &report.breakdown {
        put_str(out, &row.name);
        put_usize(out, row.values.len());
        for (key, value) in &row.values {
            put_str(out, key);
            put_f64(out, *value);
        }
    }
    match &report.cycle {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            out.push(match c.scheduler {
                SchedulerKind::EventDriven => 0,
                SchedulerKind::RoundRobin => 1,
            });
            put_varint(out, c.steps);
            put_varint(out, c.fu_step_calls);
            put_varint(out, c.makespan_cycles);
            put_varint(out, c.uops_retired);
            put_varint(out, c.words_transferred);
            put_opt_f64(out, c.max_abs_error);
        }
    }
    put_usize(out, report.metrics.len());
    for (key, value) in &report.metrics {
        put_str(out, key);
        put_f64(out, *value);
    }
}

fn read_report(r: &mut Reader<'_>, names: &mut Interner) -> Result<EvalReport, DecodeError> {
    // Backend (and frequently workload) names repeat across every report of
    // a stream; borrow them out of the frame and intern, so a decoded
    // report aliases the same `Arc<str>`s the service uses as slot names
    // instead of allocating fresh `String`s.
    let backend = names.intern(r.str_ref()?);
    let workload = names.intern(r.str_ref()?);
    let mut report = EvalReport::new(backend, workload);
    report.latency_s = r.opt_f64()?;
    report.throughput_tasks_per_s = r.opt_f64()?;
    report.achieved_flops = r.opt_f64()?;
    for _ in 0..r.len()? {
        report.segments.push(SegmentMetric {
            // Segment, breakdown and metric labels are drawn from small
            // fixed vocabularies that repeat in every report of a stream —
            // intern them all, so a 2048-report burst decodes to aliases
            // of a handful of `Arc<str>`s instead of tens of thousands of
            // short-lived `String`s.
            name: names.intern(r.str_ref()?),
            latency_s: r.f64()?,
            compute_s: r.f64()?,
            ddr_s: r.f64()?,
            lpddr_s: r.f64()?,
            phase_s: r.f64()?,
        });
    }
    for _ in 0..r.len()? {
        let name = names.intern(r.str_ref()?);
        let mut values = Vec::new();
        for _ in 0..r.len()? {
            values.push((names.intern(r.str_ref()?), r.f64()?));
        }
        report.breakdown.push(BreakdownRow { name, values });
    }
    if r.bool()? {
        let scheduler = match r.byte()? {
            0 => SchedulerKind::EventDriven,
            1 => SchedulerKind::RoundRobin,
            other => return Err(r.error(format!("unknown scheduler tag {other:#04x}"))),
        };
        report.cycle = Some(CycleStats {
            scheduler,
            steps: r.varint()?,
            fu_step_calls: r.varint()?,
            makespan_cycles: r.varint()?,
            uops_retired: r.varint()?,
            words_transferred: r.varint()?,
            max_abs_error: r.opt_f64()?,
        });
    }
    for _ in 0..r.len()? {
        let key = names.intern(r.str_ref()?);
        let value = r.f64()?;
        report.metrics.insert(key, value);
    }
    Ok(report)
}

/// Decodes one standalone report document (used by tests).
pub fn decode_report(bytes: &[u8]) -> Result<EvalReport, DecodeError> {
    let mut r = Reader::new(bytes);
    let report = with_interner(|names| read_report(&mut r, names))?;
    r.finish()?;
    Ok(report)
}

/// Appends one evaluation error.  Like the JSON codec, engine errors encode
/// by display text (their payload types do not cross the wire) and decode
/// as [`EvalError::Remote`].
pub fn encode_error(out: &mut Vec<u8>, error: &EvalError) {
    match error {
        EvalError::Unsupported { backend, workload } => {
            out.push(0);
            put_str(out, backend);
            put_str(out, workload);
        }
        EvalError::TooLarge {
            backend,
            workload,
            limit,
        } => {
            out.push(1);
            put_str(out, backend);
            put_str(out, workload);
            put_str(out, limit);
        }
        EvalError::Engine(_) | EvalError::Remote { .. } => {
            out.push(2);
            put_str(out, &error.to_string());
        }
        EvalError::Panicked {
            backend,
            workload,
            reason,
        } => {
            out.push(3);
            put_str(out, backend);
            put_str(out, workload);
            put_str(out, reason);
        }
        EvalError::Transport { backend, detail } => {
            out.push(4);
            put_str(out, backend);
            put_str(out, detail);
        }
        EvalError::Overloaded { class, reason } => {
            out.push(5);
            put_str(out, class);
            put_str(out, reason);
        }
    }
}

fn read_error(r: &mut Reader<'_>) -> Result<EvalError, DecodeError> {
    match r.byte()? {
        0 => Ok(EvalError::Unsupported {
            backend: r.str()?,
            workload: r.str()?,
        }),
        1 => Ok(EvalError::TooLarge {
            backend: r.str()?,
            workload: r.str()?,
            limit: r.str()?,
        }),
        2 => Ok(EvalError::Remote { message: r.str()? }),
        3 => Ok(EvalError::Panicked {
            backend: r.str()?,
            workload: r.str()?,
            reason: r.str()?,
        }),
        4 => Ok(EvalError::Transport {
            backend: r.str()?,
            detail: r.str()?,
        }),
        5 => Ok(EvalError::Overloaded {
            class: r.str()?,
            reason: r.str()?,
        }),
        other => Err(r.error(format!("unknown error tag {other:#04x}"))),
    }
}

/// Decodes one standalone error document (used by tests).
pub fn decode_error(bytes: &[u8]) -> Result<EvalError, DecodeError> {
    let mut r = Reader::new(bytes);
    let error = read_error(&mut r)?;
    r.finish()?;
    Ok(error)
}

/// Appends one domain result (`0` = report, `1` = error).
pub fn encode_result(out: &mut Vec<u8>, result: &Result<EvalReport, EvalError>) {
    match result {
        Ok(report) => {
            out.push(0);
            encode_report(out, report);
        }
        Err(error) => {
            out.push(1);
            encode_error(out, error);
        }
    }
}

fn read_result(
    r: &mut Reader<'_>,
    names: &mut Interner,
) -> Result<Result<EvalReport, EvalError>, DecodeError> {
    match r.byte()? {
        0 => Ok(Ok(read_report(r, names)?)),
        1 => Ok(Err(read_error(r)?)),
        other => Err(r.error(format!("unknown result tag {other:#04x}"))),
    }
}

/// Decodes one standalone result document (used by tests).
pub fn decode_result(bytes: &[u8]) -> Result<Result<EvalReport, EvalError>, DecodeError> {
    let mut r = Reader::new(bytes);
    let result = with_interner(|names| read_result(&mut r, names))?;
    r.finish()?;
    Ok(result)
}

// ---------------------------------------------------------------------------
// ServiceStats
// ---------------------------------------------------------------------------

/// Appends one service-statistics snapshot.
pub fn encode_stats(out: &mut Vec<u8>, stats: &ServiceStats) {
    put_varint(out, stats.submitted);
    put_varint(out, stats.completed);
    put_varint(out, stats.batches);
    put_varint(out, stats.batched_requests);
    put_varint(out, stats.cache_hits);
    put_varint(out, stats.cache_misses);
    put_varint(out, stats.inflight_merged);
    put_varint(out, stats.evaluations);
    put_varint(out, stats.eval_errors);
    put_varint(out, stats.evictions);
    put_usize(out, stats.per_shard.len());
    for shard in &stats.per_shard {
        put_str(out, &shard.backend);
        put_varint(out, shard.evaluations);
        put_varint(out, shard.errors);
    }
    put_usize(out, stats.remote_pools.len());
    for pool in &stats.remote_pools {
        put_str(out, &pool.addr);
        // Pool records are extensible: a varint field count precedes the
        // counter varints, so a decoder reads the fields it knows, skips
        // any it does not, and zero-fills the rest.  New counters append.
        put_usize(out, POOL_FIELD_COUNT);
        put_varint(out, pool.checkouts);
        put_varint(out, pool.reused);
        put_varint(out, pool.dials);
        put_varint(out, pool.redials);
        put_varint(out, pool.discarded);
        put_varint(out, pool.pipelined_batches);
        put_varint(out, pool.pipelined_specs);
        put_varint(out, pool.bytes_sent);
        put_varint(out, pool.bytes_received);
        put_varint(out, pool.frames_coalesced);
        put_varint(out, pool.ring_exchanges);
        put_varint(out, pool.reactor_wakeups);
        put_varint(out, pool.inflight_per_conn);
        put_varint(out, pool.hedges_launched);
        put_varint(out, pool.hedges_won);
        put_varint(out, pool.failovers);
        put_varint(out, pool.breaker_trips);
        put_varint(out, pool.breaker_fast_fails);
    }
    // Trailing-optional per-class latency section, appended since v6.  It
    // is emitted only when populated: pre-v6 decoders `finish()` after the
    // pool records and would reject appended bytes, so servers clear
    // `classes` before answering a peer whose hello said < v6 (see the
    // front ends), and the resulting empty image is byte-identical to v5's.
    // Decoding the other way, a missing section reads as "no classes".
    if stats.classes.is_empty() {
        return;
    }
    put_usize(out, stats.classes.len());
    for class in &stats.classes {
        put_str(out, class.priority.as_str());
        put_varint(out, class.shed_deadline);
        put_varint(out, class.shed_queue);
        put_varint(out, class.latency.count);
        put_varint(out, class.latency.sum_us);
        put_varint(out, class.latency.max_us);
        put_usize(out, class.latency.bucket_counts().len());
        for &bucket in class.latency.bucket_counts() {
            put_varint(out, bucket);
        }
    }
}

/// Counter varints per pool record in this build's encoding (the record's
/// field-count prefix).
const POOL_FIELD_COUNT: usize = 18;

fn read_stats(r: &mut Reader<'_>) -> Result<ServiceStats, DecodeError> {
    let mut stats = ServiceStats {
        submitted: r.varint()?,
        completed: r.varint()?,
        batches: r.varint()?,
        batched_requests: r.varint()?,
        cache_hits: r.varint()?,
        cache_misses: r.varint()?,
        inflight_merged: r.varint()?,
        evaluations: r.varint()?,
        eval_errors: r.varint()?,
        evictions: r.varint()?,
        ..ServiceStats::default()
    };
    for _ in 0..r.len()? {
        stats.per_shard.push(ShardStats {
            backend: r.str()?,
            evaluations: r.varint()?,
            errors: r.varint()?,
        });
    }
    for _ in 0..r.len()? {
        let addr = r.str()?;
        // Lenient record decode: a shorter count (older peer) zero-fills
        // the missing counters, a longer one (newer peer) skips the extras.
        let mut fields = [0u64; POOL_FIELD_COUNT];
        for index in 0..r.len()? {
            let value = r.varint()?;
            if let Some(slot) = fields.get_mut(index) {
                *slot = value;
            }
        }
        stats.remote_pools.push(PoolStats {
            addr,
            checkouts: fields[0],
            reused: fields[1],
            dials: fields[2],
            redials: fields[3],
            discarded: fields[4],
            pipelined_batches: fields[5],
            pipelined_specs: fields[6],
            bytes_sent: fields[7],
            bytes_received: fields[8],
            frames_coalesced: fields[9],
            ring_exchanges: fields[10],
            reactor_wakeups: fields[11],
            inflight_per_conn: fields[12],
            hedges_launched: fields[13],
            hedges_won: fields[14],
            failovers: fields[15],
            breaker_trips: fields[16],
            breaker_fast_fails: fields[17],
        });
    }
    // Trailing-optional: a v1–v5 peer's image simply ends here.
    if r.remaining() > 0 {
        for _ in 0..r.len()? {
            let spelling = r.str()?;
            let priority = Priority::parse(&spelling)
                .ok_or_else(|| r.error(format!("unknown priority class `{spelling}`")))?;
            let shed_deadline = r.varint()?;
            let shed_queue = r.varint()?;
            let count = r.varint()?;
            let sum_us = r.varint()?;
            let max_us = r.varint()?;
            let bucket_count = r.len()?;
            let mut buckets = Vec::with_capacity(bucket_count);
            for _ in 0..bucket_count {
                buckets.push(r.varint()?);
            }
            stats.classes.push(ClassStats {
                priority,
                latency: LatencyHistogram::from_parts(buckets, count, sum_us, max_us),
                shed_deadline,
                shed_queue,
            });
        }
    }
    Ok(stats)
}

/// Decodes one standalone stats document (used by tests).
pub fn decode_stats(bytes: &[u8]) -> Result<ServiceStats, DecodeError> {
    let mut r = Reader::new(bytes);
    let stats = read_stats(&mut r)?;
    r.finish()?;
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------------

/// Encodes one request payload (magic, tag, id, body), **appending** to
/// `out` — the frame writer reserves its length-prefix placeholder in the
/// same buffer first, so the whole frame leaves in one `write`.
pub fn encode_request(out: &mut Vec<u8>, id: u64, request: &ShardRequest) {
    out.push(MAGIC);
    match request {
        ShardRequest::Hello { protocol } => {
            out.push(TAG_HELLO);
            put_varint(out, id);
            // Trailing optional client version, appended since v5 — pre-v5
            // decoders call `finish()` after the id and would reject the
            // extra varint, but clients always hello in JSON (where unknown
            // keys are ignored), so the binary image only ever reaches
            // peers that read it.
            put_varint(out, *protocol);
        }
        ShardRequest::Supports { backend, spec } => {
            out.push(TAG_SUPPORTS);
            put_varint(out, id);
            put_str(out, backend);
            encode_spec(out, spec);
        }
        ShardRequest::Evaluate { backend, spec } => {
            out.push(TAG_EVALUATE);
            put_varint(out, id);
            put_str(out, backend);
            encode_spec(out, spec);
        }
        ShardRequest::EvaluateBatch { backend, specs } => {
            out.push(TAG_EVALUATE_BATCH);
            put_varint(out, id);
            put_str(out, backend);
            put_usize(out, specs.len());
            for spec in specs {
                encode_spec(out, spec);
            }
        }
        ShardRequest::Stats => {
            out.push(TAG_STATS);
            put_varint(out, id);
        }
        ShardRequest::Cancel { target } => {
            out.push(TAG_CANCEL);
            put_varint(out, id);
            put_varint(out, *target);
        }
    }
}

/// Decodes one request payload (including the magic byte).
pub fn decode_request(bytes: &[u8]) -> Result<(u64, ShardRequest), DecodeError> {
    let mut r = Reader::new(bytes);
    if r.byte()? != MAGIC {
        return Err(r.error("payload does not start with the binary magic byte"));
    }
    let tag = r.byte()?;
    let id = r.varint()?;
    let request = match tag {
        TAG_HELLO => {
            // The client version varint arrived in v5; a payload ending
            // right after the id is an older client speaking version 1
            // semantics (no multiplexing, strict FIFO).
            let protocol = if r.remaining() > 0 { r.varint()? } else { 1 };
            ShardRequest::Hello { protocol }
        }
        TAG_SUPPORTS => ShardRequest::Supports {
            backend: r.str()?,
            spec: read_spec(&mut r)?,
        },
        TAG_EVALUATE => ShardRequest::Evaluate {
            backend: r.str()?,
            spec: read_spec(&mut r)?,
        },
        TAG_EVALUATE_BATCH => {
            let backend = r.str()?;
            let count = r.len()?;
            let mut specs = Vec::with_capacity(count);
            for _ in 0..count {
                specs.push(read_spec(&mut r)?);
            }
            ShardRequest::EvaluateBatch { backend, specs }
        }
        TAG_STATS => ShardRequest::Stats,
        TAG_CANCEL => ShardRequest::Cancel {
            target: r.varint()?,
        },
        other => return Err(r.error(format!("unknown request tag {other:#04x}"))),
    };
    r.finish()?;
    Ok((id, request))
}

/// Encodes one response payload (magic, tag, id, body), **appending** to
/// `out` (see [`encode_request`]).
pub fn encode_response(out: &mut Vec<u8>, id: u64, response: &ShardResponse) {
    out.push(MAGIC);
    match response {
        ShardResponse::Backends {
            names,
            protocol,
            ring,
            window,
        } => {
            out.push(TAG_BACKENDS);
            put_varint(out, id);
            put_usize(out, names.len());
            for name in names {
                put_str(out, name);
            }
            put_varint(out, *protocol);
            // Trailing optional ring path, appended only when offered —
            // decoders treat end-of-payload here as "no ring" so pre-v4
            // images stay decodable.
            if let Some(path) = ring {
                out.push(1);
                put_str(out, path);
            } else {
                out.push(0);
            }
            // Trailing optional credit window (v5), after the ring bytes;
            // decoders treat end-of-payload here as "no multiplexing".
            if let Some(credits) = window {
                out.push(1);
                put_varint(out, *credits);
            } else {
                out.push(0);
            }
        }
        ShardResponse::Supported(supported) => {
            out.push(TAG_SUPPORTED);
            put_varint(out, id);
            put_bool(out, *supported);
        }
        ShardResponse::Evaluated(result) => {
            out.push(TAG_EVALUATED);
            put_varint(out, id);
            encode_result(out, result);
        }
        ShardResponse::EvaluatedBatch(results) => {
            out.push(TAG_EVALUATED_BATCH);
            put_varint(out, id);
            put_usize(out, results.len());
            for result in results {
                encode_result(out, result);
            }
        }
        ShardResponse::Stats(stats) => {
            out.push(TAG_STATS_RESPONSE);
            put_varint(out, id);
            encode_stats(out, stats);
        }
        ShardResponse::Rejected(message) => {
            out.push(TAG_REJECTED);
            put_varint(out, id);
            put_str(out, message);
        }
    }
}

/// Decodes one response payload (including the magic byte).
pub fn decode_response(bytes: &[u8]) -> Result<(u64, ShardResponse), DecodeError> {
    let mut r = Reader::new(bytes);
    if r.byte()? != MAGIC {
        return Err(r.error("payload does not start with the binary magic byte"));
    }
    let tag = r.byte()?;
    let id = r.varint()?;
    let response = match tag {
        TAG_BACKENDS => {
            let count = r.len()?;
            let mut names = Vec::with_capacity(count);
            for _ in 0..count {
                names.push(r.str()?);
            }
            let protocol = r.varint()?;
            // The ring field arrived in v4; a payload ending right after
            // the protocol varint is an older image with no ring offer.
            let ring = if r.remaining() == 0 {
                None
            } else {
                match r.byte()? {
                    0 => None,
                    1 => Some(r.str()?),
                    other => return Err(r.error(format!("invalid ring tag {other:#04x}"))),
                }
            };
            // The window field arrived in v5; a payload ending after the
            // ring bytes is a v4 image with no multiplexing offer.
            let window = if r.remaining() == 0 {
                None
            } else {
                match r.byte()? {
                    0 => None,
                    1 => Some(r.varint()?),
                    other => return Err(r.error(format!("invalid window tag {other:#04x}"))),
                }
            };
            ShardResponse::Backends {
                names,
                protocol,
                ring,
                window,
            }
        }
        TAG_SUPPORTED => ShardResponse::Supported(r.bool()?),
        TAG_EVALUATED => {
            ShardResponse::Evaluated(Arc::new(with_interner(|names| read_result(&mut r, names))?))
        }
        TAG_EVALUATED_BATCH => {
            let count = r.len()?;
            let mut results: Vec<SharedResult> = Vec::with_capacity(count);
            // One interner borrow for the whole batch: the table access is
            // hoisted out of the per-report decode loop.
            with_interner(|names| -> Result<(), DecodeError> {
                for _ in 0..count {
                    results.push(Arc::new(read_result(&mut r, names)?));
                }
                Ok(())
            })?;
            ShardResponse::EvaluatedBatch(results)
        }
        TAG_STATS_RESPONSE => ShardResponse::Stats(read_stats(&mut r)?),
        TAG_REJECTED => ShardResponse::Rejected(r.str()?),
        other => return Err(r.error(format!("unknown response tag {other:#04x}"))),
    };
    r.finish()?;
    Ok((id, response))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_across_widths() {
        let mut out = Vec::new();
        for value in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            out.clear();
            put_varint(&mut out, value);
            let mut r = Reader::new(&out);
            assert_eq!(r.varint().expect("decodes"), value);
            r.finish().expect("consumed exactly");
        }
        // Single-byte encodings for the common small counters.
        out.clear();
        put_varint(&mut out, 42);
        assert_eq!(out, [42]);
    }

    #[test]
    fn floats_survive_non_finite_values() {
        let mut out = Vec::new();
        for value in [0.0f64, -1.5, f64::INFINITY, f64::NEG_INFINITY] {
            out.clear();
            put_f64(&mut out, value);
            assert_eq!(Reader::new(&out).f64().expect("decodes"), value);
        }
        out.clear();
        put_f64(&mut out, f64::NAN);
        assert!(Reader::new(&out).f64().expect("decodes").is_nan());
    }

    #[test]
    fn truncated_payloads_decode_to_errors_not_panics() {
        let mut out = Vec::new();
        encode_request(
            &mut out,
            9,
            &ShardRequest::Evaluate {
                backend: "rsn-xnn".to_string(),
                spec: WorkloadSpec::SquareGemm { n: 4096 },
            },
        );
        for cut in 0..out.len() {
            assert!(
                decode_request(&out[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        assert!(decode_request(&out).is_ok());
    }

    #[test]
    fn hostile_collection_lengths_are_rejected_before_allocation() {
        // An evaluate_batch frame promising u64::MAX specs in 4 bytes.
        let mut out = vec![MAGIC, TAG_EVALUATE_BATCH];
        put_varint(&mut out, 1); // id
        put_str(&mut out, "b");
        put_varint(&mut out, u64::MAX); // spec count
        let err = decode_request(&out).expect_err("must reject");
        assert!(err.message.contains("implausible"), "{err}");
    }

    #[test]
    fn json_frames_cannot_be_mistaken_for_binary() {
        assert!(decode_request(b"{\n  \"id\": 1\n}").is_err());
        assert!(decode_response(b"[1, 2]").is_err());
    }
}
