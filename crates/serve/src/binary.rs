//! The compact binary wire codec (protocol version 3).
//!
//! The JSON wire format is self-describing and diffable, but building a
//! pretty-printed `String` per frame — one allocation per key, a full
//! recursive-descent parse on the receiving side — is what capped the
//! remote path at ~10% of in-process throughput (see `BENCH_serve.json`).
//! This module is the allocation-free replacement: every wire document
//! (specs, reports, errors, results, batches, stats) encodes straight into
//! a caller-owned `Vec<u8>` scratch buffer with no intermediate
//! [`JsonValue`](crate::json::JsonValue) tree, and decodes straight out of
//! the received payload bytes.
//!
//! # Layout
//!
//! A binary payload starts with [`MAGIC`] (`0xB3`) — a byte no JSON
//! document of ours can start with, so receivers dispatch per frame and
//! mixed-encoding fleets interoperate (see [`crate::wire`] for the
//! negotiation rules).  After the magic byte:
//!
//! ```text
//! magic  tag  varint(id)  body…
//! ```
//!
//! * integers are unsigned LEB128 varints (7 bits per byte, high bit =
//!   continue) — counters and ids are small, so most take one byte;
//! * strings are a varint byte length followed by UTF-8 bytes;
//! * floats are 8 little-endian bytes of their IEEE-754 bits (non-finite
//!   values survive exactly, unlike JSON's `null` mapping);
//! * options are a `0`/`1` presence byte, then the value;
//! * sequences are a varint count, then the elements.
//!
//! Message `tag` bytes: requests use `0x01`–`0x05` (hello, supports,
//! evaluate, evaluate_batch, stats), responses `0x81`–`0x85` in the same
//! order plus `0x8F` for a protocol-level rejection.  Inner documents
//! (specs, errors) carry their own one-byte variant tags.
//!
//! Encoding is deterministic (metric maps iterate in `BTreeMap` order), so
//! a document's binary image is byte-stable — the round-trip tests pin
//! `decode(encode(x)) == x` identity for every document type and semantic
//! equality with the JSON codec.

use crate::fnv::FnvBuild;
use crate::json::DecodeError;
use crate::request::Priority;
use crate::stats::{ClassStats, LatencyHistogram, PoolStats, ServiceStats, ShardStats};
use crate::wire::{ShardRequest, ShardResponse, SharedResult};
use rsn_eval::{BreakdownRow, CycleStats, Metrics, SegmentMetric};
use rsn_eval::{EvalError, EvalReport, SchedulerKind, WorkloadSpec};
use rsn_workloads::bert::BertConfig;
use rsn_workloads::models::ModelKind;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// First byte of every binary payload.  The JSON emitter's documents start
/// with `{`, `[`, `"`, a digit, `-`, `t`, `f` or `n` — all ASCII — so this
/// byte unambiguously marks a binary frame.
pub const MAGIC: u8 = 0xB3;

// Message tags (requests 0x0_, responses 0x8_).
const TAG_HELLO: u8 = 0x01;
const TAG_SUPPORTS: u8 = 0x02;
const TAG_EVALUATE: u8 = 0x03;
const TAG_EVALUATE_BATCH: u8 = 0x04;
const TAG_STATS: u8 = 0x05;
const TAG_CANCEL: u8 = 0x06;
const TAG_BACKENDS: u8 = 0x81;
const TAG_SUPPORTED: u8 = 0x82;
const TAG_EVALUATED: u8 = 0x83;
const TAG_EVALUATED_BATCH: u8 = 0x84;
const TAG_STATS_RESPONSE: u8 = 0x85;
const TAG_REJECTED: u8 = 0x8F;

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_usize(out: &mut Vec<u8>, value: usize) {
    put_varint(out, value as u64);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_f64(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_bits().to_le_bytes());
}

fn put_opt_f64(out: &mut Vec<u8>, value: Option<f64>) {
    match value {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
    }
}

fn put_bool(out: &mut Vec<u8>, value: bool) {
    out.push(u8::from(value));
}

// ---------------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------------

/// Walks a binary payload; every read is bounds-checked so a truncated or
/// hostile frame decodes into a [`DecodeError`], never a panic.
///
/// The reader is *borrowing*: [`Reader::take`] and [`Reader::str_ref`]
/// return slices of the frame buffer itself, so decoders only allocate at
/// the API boundary where a document must outlive its frame.  The owned
/// [`Reader::str`] wrapper exists for cold paths (errors, rejections) and
/// so tests can property-check the borrowed accessors against their owned
/// counterparts.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const CTX: &str = "binary frame";

impl<'a> Reader<'a> {
    /// Starts reading at the first byte of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> DecodeError {
        DecodeError {
            context: CTX.to_string(),
            message: format!("at byte {}: {}", self.pos, message.into()),
        }
    }

    /// Reads one raw byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.error("unexpected end of payload"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Borrows the next `n` bytes straight out of the frame buffer.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| self.error(format!("payload truncated ({n} bytes promised)")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(self.error("varint longer than 64 bits"))
    }

    /// A plain usize value (a dimension, a batch size) — unbounded.
    pub fn usize_val(&mut self) -> Result<usize, DecodeError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| self.error("value does not fit in usize"))
    }

    /// A collection count.  A count can never promise more elements than
    /// bytes remain (each element costs at least one byte); this caps what
    /// a hostile length prefix can make collection decoders pre-allocate.
    #[allow(clippy::len_without_is_empty)] // a wire count, not a container size
    pub fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.usize_val()?;
        if n > self.bytes.len().saturating_sub(self.pos) {
            return Err(self.error(format!("implausible collection length {n}")));
        }
        Ok(n)
    }

    /// Borrows one length-prefixed UTF-8 string from the frame buffer —
    /// validation only, no copy.
    pub fn str_ref(&mut self) -> Result<&'a str, DecodeError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| self.error("string is not valid UTF-8"))
    }

    /// Owned counterpart of [`Reader::str_ref`] for strings that must
    /// outlive the frame.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        self.str_ref().map(str::to_owned)
    }

    /// Reads one IEEE-754 double from its little-endian bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        let bytes = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("8 bytes taken"),
        )))
    }

    /// Reads one presence-byte-prefixed optional double.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, DecodeError> {
        match self.byte()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            other => Err(self.error(format!("invalid option tag {other:#04x}"))),
        }
    }

    /// Reads one `0`/`1` boolean byte.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.error(format!("invalid bool byte {other:#04x}"))),
        }
    }

    /// Fails unless the whole payload was consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.error("trailing bytes after the message"))
        }
    }

    /// Bytes left after the current position (used by decoders that accept
    /// optional trailing fields from newer peers).
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// A safe `Vec::with_capacity` hint for a collection of `count`
    /// elements each costing at least `min_elem_bytes` on the wire: an
    /// honest count always passes through unchanged (its elements' bytes
    /// are all still ahead of the cursor), while a hostile length prefix is
    /// clamped to what the remaining payload could actually back — the
    /// same bounded-growth discipline as [`Reader::len`], applied to the
    /// pre-allocation.
    fn capacity_hint(&self, count: usize, min_elem_bytes: usize) -> usize {
        count.min(self.remaining() / min_elem_bytes.max(1))
    }
}

// ---------------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------------

/// Deduplicates the small closed set of backend and slot names that appear
/// in every report and stats record, handing decoders a shared `Arc<str>`
/// instead of a fresh allocation per document.  Bounded so a hostile peer
/// streaming unique names cannot grow the table without limit: once full,
/// lookups still hit for known names and misses fall back to a fresh
/// one-off `Arc`.
pub struct Interner {
    // FNV-keyed: the vocabulary is short human-chosen labels, and the table
    // is capped, so the cheap hash is safe — see [`crate::fnv`].
    set: HashSet<Arc<str>, FnvBuild>,
}

/// Names longer than this are never cached — real backend and workload
/// labels are short, and skipping the hash probe for long one-off strings
/// keeps the common path cheap.
const INTERN_MAX_LEN: usize = 64;
/// Upper bound on distinct cached names.
const INTERN_CAP: usize = 256;

impl Interner {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            set: HashSet::default(),
        }
    }

    /// Returns a shared copy of `s`, allocating only on first sight.
    pub fn intern(&mut self, s: &str) -> Arc<str> {
        if s.len() > INTERN_MAX_LEN {
            return Arc::from(s);
        }
        if let Some(existing) = self.set.get(s) {
            return Arc::clone(existing);
        }
        let fresh: Arc<str> = Arc::from(s);
        if self.set.len() < INTERN_CAP {
            self.set.insert(Arc::clone(&fresh));
        }
        fresh
    }
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Per-thread interning table shared by every decode on the thread —
    /// pool exchange threads and shard connection threads each converge on
    /// one long-lived set of name `Arc`s.
    static INTERNER: RefCell<Interner> = RefCell::new(Interner::new());
}

/// Runs `f` with the thread's interning table borrowed once.  Decoders that
/// intern several labels per report hoist the TLS access and `RefCell`
/// borrow out of the per-label path — on a 2048-report burst that is four
/// fewer TLS round-trips per report.
fn with_interner<T>(f: impl FnOnce(&mut Interner) -> T) -> T {
    INTERNER.with(|table| f(&mut table.borrow_mut()))
}

// ---------------------------------------------------------------------------
// Per-connection symbol dictionaries (protocol 7)
// ---------------------------------------------------------------------------

/// First byte of a dictionary-encoded binary payload (protocol 7).  Like
/// [`MAGIC`], no JSON document can start with it, so receivers still
/// dispatch per frame — but unlike plain binary frames, a dictionary frame
/// reads and writes *connection state*: the per-direction symbol tables
/// that resolve label ids.  Frames with this magic may only appear on a
/// connection whose hello negotiated protocol ≥ 7, and the two magics may
/// interleave freely on such a connection (plain frames never touch the
/// tables).
pub const DICT_MAGIC: u8 = 0xB7;

/// Upper bound on symbols per direction per connection.  Once a table is
/// full, further first-sight labels fall back to inline strings — a peer
/// streaming unique labels degrades to plain-binary cost, it cannot grow
/// the table without limit.
pub const DICT_CAP: usize = 4096;

// A dictionary string ("dstr") is a varint tag:
//   0          inline:  length + bytes, no table entry (table full, or a
//              label too long to be worth a slot);
//   1          define:  varint id + length + bytes, appending the string
//              to the table (the id must equal the table's current length
//              — explicit so a duplicate or out-of-order define is a
//              decode error, not a silent re-intern);
//   n ≥ 2      reference to table entry `n - 2` (no string bytes at all).
const DSTR_INLINE: u64 = 0;
const DSTR_DEFINE: u64 = 1;
const DSTR_REF_BASE: u64 = 2;

/// The encode half of one connection direction's symbol dictionary: maps
/// labels already defined on this connection to their ids.
///
/// The FNV-keyed probe happens once per label *occurrence on the encode
/// side only*; the decode side resolves references by direct vector index
/// with no hashing at all — that, plus the absent string bytes, is the
/// protocol-7 saving.
#[derive(Debug, Default)]
pub struct TxSymbols {
    ids: HashMap<Arc<str>, u32, FnvBuild>,
    defines: u64,
    hits: u64,
}

impl TxSymbols {
    /// An empty table (one per connection direction).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one dictionary string, defining it on first sight.
    fn put(&mut self, out: &mut Vec<u8>, label: &str) {
        // Long labels are one-offs (same judgement as the interner): a
        // table slot would be wasted on them, and the length check keeps
        // the common short-label path from hashing pathological strings.
        if label.len() > INTERN_MAX_LEN {
            put_varint(out, DSTR_INLINE);
            put_str(out, label);
            return;
        }
        if let Some(&id) = self.ids.get(label) {
            self.hits += 1;
            put_varint(out, DSTR_REF_BASE + u64::from(id));
            return;
        }
        if self.ids.len() >= DICT_CAP {
            put_varint(out, DSTR_INLINE);
            put_str(out, label);
            return;
        }
        let id = self.ids.len() as u32;
        self.ids.insert(Arc::from(label), id);
        self.defines += 1;
        put_varint(out, DSTR_DEFINE);
        put_varint(out, u64::from(id));
        put_str(out, label);
    }

    /// Drains the `(defines, hits)` counters accumulated since the last
    /// take, so connection owners can fold them into pool counters without
    /// this module knowing about atomics.
    pub fn take_counts(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.defines),
            std::mem::take(&mut self.hits),
        )
    }
}

/// The decode half of one connection direction's symbol dictionary: the
/// id-indexed table of labels the peer has defined.  Resolution is a
/// bounds-checked vector index and an `Arc` clone — no string bytes off
/// the wire, no hash, no interner probe.
#[derive(Debug, Default)]
pub struct RxSymbols {
    table: Vec<Arc<str>>,
    defines: u64,
    hits: u64,
}

impl RxSymbols {
    /// An empty table (one per connection direction).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one dictionary string, recording a define into the table.
    fn get(&mut self, r: &mut Reader<'_>) -> Result<Arc<str>, DecodeError> {
        match r.varint()? {
            DSTR_INLINE => Ok(Arc::from(r.str_ref()?)),
            DSTR_DEFINE => {
                let id = r.varint()?;
                if self.table.len() >= DICT_CAP {
                    return Err(r.error(format!(
                        "dictionary define past the {DICT_CAP}-entry table bound"
                    )));
                }
                if id != self.table.len() as u64 {
                    return Err(r.error(format!(
                        "dictionary define id {id} out of order (expected {})",
                        self.table.len()
                    )));
                }
                let label: Arc<str> = Arc::from(r.str_ref()?);
                self.table.push(Arc::clone(&label));
                self.defines += 1;
                Ok(label)
            }
            tag => {
                let id = (tag - DSTR_REF_BASE) as usize;
                let label = self.table.get(id).ok_or_else(|| {
                    r.error(format!(
                        "dictionary reference {id} outside the {}-entry table",
                        self.table.len()
                    ))
                })?;
                self.hits += 1;
                Ok(Arc::clone(label))
            }
        }
    }

    /// Drains the `(defines, hits)` counters — see
    /// [`TxSymbols::take_counts`].
    pub fn take_counts(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.defines),
            std::mem::take(&mut self.hits),
        )
    }
}

/// Both directions of one connection's dictionary state: `tx` encodes what
/// this side sends, `rx` resolves what the peer sends.  Reset per
/// connection — a fresh connection always starts from empty tables, so a
/// frame stream is self-contained and replayable.
#[derive(Debug, Default)]
pub struct ConnCodec {
    /// Symbols this side has defined in its outgoing frames.
    pub tx: TxSymbols,
    /// Symbols the peer has defined in its incoming frames.
    pub rx: RxSymbols,
}

impl ConnCodec {
    /// Fresh empty tables for a new connection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains both directions' `(defines, hits)` counters as one sum.
    pub fn take_counts(&mut self) -> (u64, u64) {
        let (tx_defines, tx_hits) = self.tx.take_counts();
        let (rx_defines, rx_hits) = self.rx.take_counts();
        (tx_defines + rx_defines, tx_hits + rx_hits)
    }
}

// Report presence bitmap (protocol 7): one leading varint replaces the
// three per-`Option` tag bytes, the cycle presence bool, the nested
// `max_abs_error` option tag, and lets empty sections cost nothing — the
// common analytic-report shape encodes its fixed scalars back-to-back.
const REPORT_HAS_LATENCY: u64 = 1 << 0;
const REPORT_HAS_THROUGHPUT: u64 = 1 << 1;
const REPORT_HAS_FLOPS: u64 = 1 << 2;
const REPORT_HAS_SEGMENTS: u64 = 1 << 3;
const REPORT_HAS_BREAKDOWN: u64 = 1 << 4;
const REPORT_HAS_CYCLE: u64 = 1 << 5;
const REPORT_CYCLE_HAS_ERROR: u64 = 1 << 6;
const REPORT_HAS_METRICS: u64 = 1 << 7;
const REPORT_KNOWN_BITS: u64 = REPORT_HAS_LATENCY
    | REPORT_HAS_THROUGHPUT
    | REPORT_HAS_FLOPS
    | REPORT_HAS_SEGMENTS
    | REPORT_HAS_BREAKDOWN
    | REPORT_HAS_CYCLE
    | REPORT_CYCLE_HAS_ERROR
    | REPORT_HAS_METRICS;

/// Appends one report in the dictionary/bitmap form: a presence bitmap,
/// dictionary strings for every label, and present fields back-to-back.
pub fn encode_report_dict(out: &mut Vec<u8>, report: &EvalReport, tx: &mut TxSymbols) {
    let mut bits = 0u64;
    if report.latency_s.is_some() {
        bits |= REPORT_HAS_LATENCY;
    }
    if report.throughput_tasks_per_s.is_some() {
        bits |= REPORT_HAS_THROUGHPUT;
    }
    if report.achieved_flops.is_some() {
        bits |= REPORT_HAS_FLOPS;
    }
    if !report.segments.is_empty() {
        bits |= REPORT_HAS_SEGMENTS;
    }
    if !report.breakdown.is_empty() {
        bits |= REPORT_HAS_BREAKDOWN;
    }
    if let Some(cycle) = &report.cycle {
        bits |= REPORT_HAS_CYCLE;
        if cycle.max_abs_error.is_some() {
            bits |= REPORT_CYCLE_HAS_ERROR;
        }
    }
    if !report.metrics.is_empty() {
        bits |= REPORT_HAS_METRICS;
    }
    put_varint(out, bits);
    tx.put(out, &report.backend);
    tx.put(out, &report.workload);
    if let Some(v) = report.latency_s {
        put_f64(out, v);
    }
    if let Some(v) = report.throughput_tasks_per_s {
        put_f64(out, v);
    }
    if let Some(v) = report.achieved_flops {
        put_f64(out, v);
    }
    if !report.segments.is_empty() {
        put_usize(out, report.segments.len());
        for s in &report.segments {
            tx.put(out, &s.name);
            put_f64(out, s.latency_s);
            put_f64(out, s.compute_s);
            put_f64(out, s.ddr_s);
            put_f64(out, s.lpddr_s);
            put_f64(out, s.phase_s);
        }
    }
    if !report.breakdown.is_empty() {
        put_usize(out, report.breakdown.len());
        for row in &report.breakdown {
            tx.put(out, &row.name);
            put_usize(out, row.values.len());
            for (key, value) in &row.values {
                tx.put(out, key);
                put_f64(out, *value);
            }
        }
    }
    if let Some(c) = &report.cycle {
        out.push(match c.scheduler {
            SchedulerKind::EventDriven => 0,
            SchedulerKind::RoundRobin => 1,
        });
        put_varint(out, c.steps);
        put_varint(out, c.fu_step_calls);
        put_varint(out, c.makespan_cycles);
        put_varint(out, c.uops_retired);
        put_varint(out, c.words_transferred);
        if let Some(e) = c.max_abs_error {
            put_f64(out, e);
        }
    }
    if !report.metrics.is_empty() {
        put_usize(out, report.metrics.len());
        for (key, value) in &report.metrics {
            tx.put(out, key);
            put_f64(out, *value);
        }
    }
}

fn read_report_dict(r: &mut Reader<'_>, rx: &mut RxSymbols) -> Result<EvalReport, DecodeError> {
    let bits = r.varint()?;
    if bits & !REPORT_KNOWN_BITS != 0 {
        return Err(r.error(format!("unknown report bitmap bits {bits:#x}")));
    }
    if bits & REPORT_CYCLE_HAS_ERROR != 0 && bits & REPORT_HAS_CYCLE == 0 {
        return Err(r.error("cycle error bit set without the cycle section"));
    }
    let backend = rx.get(r)?;
    let workload = rx.get(r)?;
    let mut report = EvalReport::new(backend, workload);
    if bits & REPORT_HAS_LATENCY != 0 {
        report.latency_s = Some(r.f64()?);
    }
    if bits & REPORT_HAS_THROUGHPUT != 0 {
        report.throughput_tasks_per_s = Some(r.f64()?);
    }
    if bits & REPORT_HAS_FLOPS != 0 {
        report.achieved_flops = Some(r.f64()?);
    }
    if bits & REPORT_HAS_SEGMENTS != 0 {
        let segment_count = r.len()?;
        report
            .segments
            .reserve(r.capacity_hint(segment_count, SEGMENT_MIN_BYTES));
        for _ in 0..segment_count {
            report.segments.push(SegmentMetric {
                name: rx.get(r)?,
                latency_s: r.f64()?,
                compute_s: r.f64()?,
                ddr_s: r.f64()?,
                lpddr_s: r.f64()?,
                phase_s: r.f64()?,
            });
        }
    }
    if bits & REPORT_HAS_BREAKDOWN != 0 {
        let row_count = r.len()?;
        report
            .breakdown
            .reserve(r.capacity_hint(row_count, ROW_MIN_BYTES));
        for _ in 0..row_count {
            let name = rx.get(r)?;
            let value_count = r.len()?;
            let mut values = Vec::with_capacity(r.capacity_hint(value_count, PAIR_MIN_BYTES));
            for _ in 0..value_count {
                values.push((rx.get(r)?, r.f64()?));
            }
            report.breakdown.push(BreakdownRow { name, values });
        }
    }
    if bits & REPORT_HAS_CYCLE != 0 {
        let scheduler = match r.byte()? {
            0 => SchedulerKind::EventDriven,
            1 => SchedulerKind::RoundRobin,
            other => return Err(r.error(format!("unknown scheduler tag {other:#04x}"))),
        };
        report.cycle = Some(CycleStats {
            scheduler,
            steps: r.varint()?,
            fu_step_calls: r.varint()?,
            makespan_cycles: r.varint()?,
            uops_retired: r.varint()?,
            words_transferred: r.varint()?,
            max_abs_error: if bits & REPORT_CYCLE_HAS_ERROR != 0 {
                Some(r.f64()?)
            } else {
                None
            },
        });
    }
    if bits & REPORT_HAS_METRICS != 0 {
        let metric_count = r.len()?;
        let mut metrics = Vec::with_capacity(r.capacity_hint(metric_count, PAIR_MIN_BYTES));
        for _ in 0..metric_count {
            metrics.push((rx.get(r)?, r.f64()?));
        }
        report.metrics = Metrics::from_entries(metrics);
    }
    Ok(report)
}

/// Appends one domain result in dictionary form (`0` = report, `1` =
/// error).  Errors keep the plain v6 field encoding — they are the cold
/// path, and their free-text payloads are poor dictionary citizens.
pub fn encode_result_dict(
    out: &mut Vec<u8>,
    result: &Result<EvalReport, EvalError>,
    tx: &mut TxSymbols,
) {
    match result {
        Ok(report) => {
            out.push(0);
            encode_report_dict(out, report, tx);
        }
        Err(error) => {
            out.push(1);
            encode_error(out, error);
        }
    }
}

fn read_result_dict(
    r: &mut Reader<'_>,
    rx: &mut RxSymbols,
) -> Result<Result<EvalReport, EvalError>, DecodeError> {
    match r.byte()? {
        0 => Ok(Ok(read_report_dict(r, rx)?)),
        1 => Ok(Err(read_error(r)?)),
        other => Err(r.error(format!("unknown result tag {other:#04x}"))),
    }
}

/// Encodes one request payload for a dictionary-negotiated connection.
/// Only the messages that carry labels worth a table slot (`supports`,
/// `evaluate`, `evaluate_batch` — their backend name repeats on every
/// exchange) use [`DICT_MAGIC`]; hello, stats and cancel keep their plain
/// [`MAGIC`] image, which never touches the tables — the magics interleave
/// freely on one connection.
pub fn encode_request_dict(out: &mut Vec<u8>, id: u64, request: &ShardRequest, tx: &mut TxSymbols) {
    match request {
        ShardRequest::Supports { backend, spec } => {
            out.push(DICT_MAGIC);
            out.push(TAG_SUPPORTS);
            put_varint(out, id);
            tx.put(out, backend);
            encode_spec(out, spec);
        }
        ShardRequest::Evaluate { backend, spec } => {
            out.push(DICT_MAGIC);
            out.push(TAG_EVALUATE);
            put_varint(out, id);
            tx.put(out, backend);
            encode_spec(out, spec);
        }
        ShardRequest::EvaluateBatch { backend, specs } => {
            out.push(DICT_MAGIC);
            out.push(TAG_EVALUATE_BATCH);
            put_varint(out, id);
            tx.put(out, backend);
            put_usize(out, specs.len());
            for spec in specs {
                encode_spec(out, spec);
            }
        }
        ShardRequest::Hello { .. } | ShardRequest::Stats | ShardRequest::Cancel { .. } => {
            encode_request(out, id, request);
        }
    }
}

/// Decodes one [`DICT_MAGIC`] request payload against the connection's
/// receive-side table.
pub fn decode_request_dict(
    bytes: &[u8],
    rx: &mut RxSymbols,
) -> Result<(u64, ShardRequest), DecodeError> {
    let mut r = Reader::new(bytes);
    if r.byte()? != DICT_MAGIC {
        return Err(r.error("payload does not start with the dictionary magic byte"));
    }
    let tag = r.byte()?;
    let id = r.varint()?;
    let request = match tag {
        TAG_SUPPORTS => ShardRequest::Supports {
            backend: rx.get(&mut r)?.to_string(),
            spec: read_spec(&mut r)?,
        },
        TAG_EVALUATE => ShardRequest::Evaluate {
            backend: rx.get(&mut r)?.to_string(),
            spec: read_spec(&mut r)?,
        },
        TAG_EVALUATE_BATCH => {
            let backend = rx.get(&mut r)?.to_string();
            let count = r.len()?;
            let mut specs = Vec::with_capacity(count);
            for _ in 0..count {
                specs.push(read_spec(&mut r)?);
            }
            ShardRequest::EvaluateBatch { backend, specs }
        }
        other => return Err(r.error(format!("unknown dictionary request tag {other:#04x}"))),
    };
    r.finish()?;
    Ok((id, request))
}

/// Encodes one response payload for a dictionary-negotiated connection.
/// Only results (`evaluated`, `evaluated_batch`) carry the repeating
/// labels dictionaries exist for; everything else keeps its plain image
/// (see [`encode_request_dict`]).
pub fn encode_response_dict(
    out: &mut Vec<u8>,
    id: u64,
    response: &ShardResponse,
    tx: &mut TxSymbols,
) {
    match response {
        ShardResponse::Evaluated(result) => {
            out.push(DICT_MAGIC);
            out.push(TAG_EVALUATED);
            put_varint(out, id);
            encode_result_dict(out, result, tx);
        }
        ShardResponse::EvaluatedBatch(results) => {
            out.push(DICT_MAGIC);
            out.push(TAG_EVALUATED_BATCH);
            put_varint(out, id);
            put_usize(out, results.len());
            for result in results {
                encode_result_dict(out, result, tx);
            }
        }
        _ => encode_response(out, id, response),
    }
}

/// Decodes one [`DICT_MAGIC`] response payload against the connection's
/// receive-side table.
pub fn decode_response_dict(
    bytes: &[u8],
    rx: &mut RxSymbols,
) -> Result<(u64, ShardResponse), DecodeError> {
    let mut r = Reader::new(bytes);
    if r.byte()? != DICT_MAGIC {
        return Err(r.error("payload does not start with the dictionary magic byte"));
    }
    let tag = r.byte()?;
    let id = r.varint()?;
    let response = match tag {
        TAG_EVALUATED => ShardResponse::Evaluated(Arc::new(read_result_dict(&mut r, rx)?)),
        TAG_EVALUATED_BATCH => {
            let count = r.len()?;
            let mut results: Vec<SharedResult> = Vec::with_capacity(count);
            for _ in 0..count {
                results.push(Arc::new(read_result_dict(&mut r, rx)?));
            }
            ShardResponse::EvaluatedBatch(results)
        }
        other => return Err(r.error(format!("unknown dictionary response tag {other:#04x}"))),
    };
    r.finish()?;
    Ok((id, response))
}

// ---------------------------------------------------------------------------
// WorkloadSpec
// ---------------------------------------------------------------------------

fn put_bert_config(out: &mut Vec<u8>, cfg: &BertConfig) {
    put_usize(out, cfg.hidden);
    put_usize(out, cfg.heads);
    put_usize(out, cfg.ff_dim);
    put_usize(out, cfg.seq_len);
    put_usize(out, cfg.batch);
    put_usize(out, cfg.layers);
}

fn read_bert_config(r: &mut Reader<'_>) -> Result<BertConfig, DecodeError> {
    Ok(BertConfig {
        hidden: r.usize_val()?,
        heads: r.usize_val()?,
        ff_dim: r.usize_val()?,
        seq_len: r.usize_val()?,
        batch: r.usize_val()?,
        layers: r.usize_val()?,
    })
}

/// Appends one workload spec (a one-byte variant tag, then its fields).
pub fn encode_spec(out: &mut Vec<u8>, spec: &WorkloadSpec) {
    match spec {
        WorkloadSpec::EncoderLayer { cfg } => {
            out.push(0);
            put_bert_config(out, cfg);
        }
        WorkloadSpec::FullModel { cfg } => {
            out.push(1);
            put_bert_config(out, cfg);
        }
        WorkloadSpec::SquareGemm { n } => {
            out.push(2);
            put_usize(out, *n);
        }
        WorkloadSpec::ZooModel { kind } => {
            out.push(3);
            put_str(out, kind.name());
        }
        WorkloadSpec::AttentionMapping { cfg, mapping } => {
            out.push(4);
            put_bert_config(out, cfg);
            put_str(out, &mapping.letter().to_string());
        }
        WorkloadSpec::PowerBreakdown => out.push(5),
        WorkloadSpec::DatapathProperties => out.push(6),
        WorkloadSpec::InstructionFootprint { m, k, n } => {
            out.push(7);
            put_usize(out, *m);
            put_usize(out, *k);
            put_usize(out, *n);
        }
        WorkloadSpec::FunctionalGemm { m, k, n, seed } => {
            out.push(8);
            put_usize(out, *m);
            put_usize(out, *k);
            put_usize(out, *n);
            put_varint(out, *seed);
        }
        WorkloadSpec::FunctionalAttention { cfg, seed } => {
            out.push(9);
            put_bert_config(out, cfg);
            put_varint(out, *seed);
        }
        WorkloadSpec::ScalarPipeline { elements } => {
            out.push(10);
            put_usize(out, *elements);
        }
    }
}

fn read_spec(r: &mut Reader<'_>) -> Result<WorkloadSpec, DecodeError> {
    match r.byte()? {
        0 => Ok(WorkloadSpec::EncoderLayer {
            cfg: read_bert_config(r)?,
        }),
        1 => Ok(WorkloadSpec::FullModel {
            cfg: read_bert_config(r)?,
        }),
        2 => Ok(WorkloadSpec::SquareGemm { n: r.usize_val()? }),
        3 => {
            let name = r.str_ref()?;
            let kind = ModelKind::table7_models()
                .into_iter()
                .find(|k| k.name() == name)
                .ok_or_else(|| r.error(format!("unknown zoo model `{name}`")))?;
            Ok(WorkloadSpec::ZooModel { kind })
        }
        4 => {
            let cfg = read_bert_config(r)?;
            let letter = r.str_ref()?;
            let mapping = rsn_lib::mapping::MappingType::all()
                .into_iter()
                .find(|m| m.letter().to_string() == letter)
                .ok_or_else(|| r.error(format!("unknown mapping type `{letter}`")))?;
            Ok(WorkloadSpec::AttentionMapping { cfg, mapping })
        }
        5 => Ok(WorkloadSpec::PowerBreakdown),
        6 => Ok(WorkloadSpec::DatapathProperties),
        7 => Ok(WorkloadSpec::InstructionFootprint {
            m: r.usize_val()?,
            k: r.usize_val()?,
            n: r.usize_val()?,
        }),
        8 => Ok(WorkloadSpec::FunctionalGemm {
            m: r.usize_val()?,
            k: r.usize_val()?,
            n: r.usize_val()?,
            seed: r.varint()?,
        }),
        9 => Ok(WorkloadSpec::FunctionalAttention {
            cfg: read_bert_config(r)?,
            seed: r.varint()?,
        }),
        10 => Ok(WorkloadSpec::ScalarPipeline {
            elements: r.usize_val()?,
        }),
        other => Err(r.error(format!("unknown workload tag {other:#04x}"))),
    }
}

/// Decodes one standalone workload-spec document (used by tests; on the
/// wire specs travel inside request bodies).
pub fn decode_spec(bytes: &[u8]) -> Result<WorkloadSpec, DecodeError> {
    let mut r = Reader::new(bytes);
    let spec = read_spec(&mut r)?;
    r.finish()?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// EvalReport / EvalError / results
// ---------------------------------------------------------------------------

/// Appends one evaluation report.
pub fn encode_report(out: &mut Vec<u8>, report: &EvalReport) {
    put_str(out, &report.backend);
    put_str(out, &report.workload);
    put_opt_f64(out, report.latency_s);
    put_opt_f64(out, report.throughput_tasks_per_s);
    put_opt_f64(out, report.achieved_flops);
    put_usize(out, report.segments.len());
    for s in &report.segments {
        put_str(out, &s.name);
        put_f64(out, s.latency_s);
        put_f64(out, s.compute_s);
        put_f64(out, s.ddr_s);
        put_f64(out, s.lpddr_s);
        put_f64(out, s.phase_s);
    }
    put_usize(out, report.breakdown.len());
    for row in &report.breakdown {
        put_str(out, &row.name);
        put_usize(out, row.values.len());
        for (key, value) in &row.values {
            put_str(out, key);
            put_f64(out, *value);
        }
    }
    match &report.cycle {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            out.push(match c.scheduler {
                SchedulerKind::EventDriven => 0,
                SchedulerKind::RoundRobin => 1,
            });
            put_varint(out, c.steps);
            put_varint(out, c.fu_step_calls);
            put_varint(out, c.makespan_cycles);
            put_varint(out, c.uops_retired);
            put_varint(out, c.words_transferred);
            put_opt_f64(out, c.max_abs_error);
        }
    }
    put_usize(out, report.metrics.len());
    for (key, value) in &report.metrics {
        put_str(out, key);
        put_f64(out, *value);
    }
}

fn read_report(r: &mut Reader<'_>, names: &mut Interner) -> Result<EvalReport, DecodeError> {
    // Backend (and frequently workload) names repeat across every report of
    // a stream; borrow them out of the frame and intern, so a decoded
    // report aliases the same `Arc<str>`s the service uses as slot names
    // instead of allocating fresh `String`s.
    let backend = names.intern(r.str_ref()?);
    let workload = names.intern(r.str_ref()?);
    let mut report = EvalReport::new(backend, workload);
    report.latency_s = r.opt_f64()?;
    report.throughput_tasks_per_s = r.opt_f64()?;
    report.achieved_flops = r.opt_f64()?;
    let segment_count = r.len()?;
    report
        .segments
        .reserve(r.capacity_hint(segment_count, SEGMENT_MIN_BYTES));
    for _ in 0..segment_count {
        report.segments.push(SegmentMetric {
            // Segment, breakdown and metric labels are drawn from small
            // fixed vocabularies that repeat in every report of a stream —
            // intern them all, so a 2048-report burst decodes to aliases
            // of a handful of `Arc<str>`s instead of tens of thousands of
            // short-lived `String`s.
            name: names.intern(r.str_ref()?),
            latency_s: r.f64()?,
            compute_s: r.f64()?,
            ddr_s: r.f64()?,
            lpddr_s: r.f64()?,
            phase_s: r.f64()?,
        });
    }
    let row_count = r.len()?;
    report
        .breakdown
        .reserve(r.capacity_hint(row_count, ROW_MIN_BYTES));
    for _ in 0..row_count {
        let name = names.intern(r.str_ref()?);
        let value_count = r.len()?;
        let mut values = Vec::with_capacity(r.capacity_hint(value_count, PAIR_MIN_BYTES));
        for _ in 0..value_count {
            values.push((names.intern(r.str_ref()?), r.f64()?));
        }
        report.breakdown.push(BreakdownRow { name, values });
    }
    if r.bool()? {
        report.cycle = Some(read_cycle(r)?);
    }
    let metric_count = r.len()?;
    let mut metrics = Vec::with_capacity(r.capacity_hint(metric_count, PAIR_MIN_BYTES));
    for _ in 0..metric_count {
        metrics.push((names.intern(r.str_ref()?), r.f64()?));
    }
    // The encoder emits metrics in map (sorted) order, so this adopts the
    // vec after one sortedness check instead of one binary-search-and-shift
    // insert per key (O(k²) on a k-metric report).
    report.metrics = Metrics::from_entries(metrics);
    Ok(report)
}

/// Smallest possible wire footprint of one segment (a 1-byte name length
/// plus five raw doubles) — the pre-allocation clamp for segment counts.
const SEGMENT_MIN_BYTES: usize = 1 + 5 * 8;
/// Smallest possible breakdown row (1-byte name length, 1-byte value count).
const ROW_MIN_BYTES: usize = 2;
/// Smallest possible labelled `(key, f64)` pair (1-byte key length + bits).
const PAIR_MIN_BYTES: usize = 1 + 8;

fn read_cycle(r: &mut Reader<'_>) -> Result<CycleStats, DecodeError> {
    let scheduler = match r.byte()? {
        0 => SchedulerKind::EventDriven,
        1 => SchedulerKind::RoundRobin,
        other => return Err(r.error(format!("unknown scheduler tag {other:#04x}"))),
    };
    Ok(CycleStats {
        scheduler,
        steps: r.varint()?,
        fu_step_calls: r.varint()?,
        makespan_cycles: r.varint()?,
        uops_retired: r.varint()?,
        words_transferred: r.varint()?,
        max_abs_error: r.opt_f64()?,
    })
}

/// Decodes one standalone report document (used by tests).
pub fn decode_report(bytes: &[u8]) -> Result<EvalReport, DecodeError> {
    let mut r = Reader::new(bytes);
    let report = with_interner(|names| read_report(&mut r, names))?;
    r.finish()?;
    Ok(report)
}

/// Appends one evaluation error.  Like the JSON codec, engine errors encode
/// by display text (their payload types do not cross the wire) and decode
/// as [`EvalError::Remote`].
pub fn encode_error(out: &mut Vec<u8>, error: &EvalError) {
    match error {
        EvalError::Unsupported { backend, workload } => {
            out.push(0);
            put_str(out, backend);
            put_str(out, workload);
        }
        EvalError::TooLarge {
            backend,
            workload,
            limit,
        } => {
            out.push(1);
            put_str(out, backend);
            put_str(out, workload);
            put_str(out, limit);
        }
        EvalError::Engine(_) | EvalError::Remote { .. } => {
            out.push(2);
            put_str(out, &error.to_string());
        }
        EvalError::Panicked {
            backend,
            workload,
            reason,
        } => {
            out.push(3);
            put_str(out, backend);
            put_str(out, workload);
            put_str(out, reason);
        }
        EvalError::Transport { backend, detail } => {
            out.push(4);
            put_str(out, backend);
            put_str(out, detail);
        }
        EvalError::Overloaded { class, reason } => {
            out.push(5);
            put_str(out, class);
            put_str(out, reason);
        }
    }
}

fn read_error(r: &mut Reader<'_>) -> Result<EvalError, DecodeError> {
    match r.byte()? {
        0 => Ok(EvalError::Unsupported {
            backend: r.str()?,
            workload: r.str()?,
        }),
        1 => Ok(EvalError::TooLarge {
            backend: r.str()?,
            workload: r.str()?,
            limit: r.str()?,
        }),
        2 => Ok(EvalError::Remote { message: r.str()? }),
        3 => Ok(EvalError::Panicked {
            backend: r.str()?,
            workload: r.str()?,
            reason: r.str()?,
        }),
        4 => Ok(EvalError::Transport {
            backend: r.str()?,
            detail: r.str()?,
        }),
        5 => Ok(EvalError::Overloaded {
            class: r.str()?,
            reason: r.str()?,
        }),
        other => Err(r.error(format!("unknown error tag {other:#04x}"))),
    }
}

/// Decodes one standalone error document (used by tests).
pub fn decode_error(bytes: &[u8]) -> Result<EvalError, DecodeError> {
    let mut r = Reader::new(bytes);
    let error = read_error(&mut r)?;
    r.finish()?;
    Ok(error)
}

/// Appends one domain result (`0` = report, `1` = error).
pub fn encode_result(out: &mut Vec<u8>, result: &Result<EvalReport, EvalError>) {
    match result {
        Ok(report) => {
            out.push(0);
            encode_report(out, report);
        }
        Err(error) => {
            out.push(1);
            encode_error(out, error);
        }
    }
}

fn read_result(
    r: &mut Reader<'_>,
    names: &mut Interner,
) -> Result<Result<EvalReport, EvalError>, DecodeError> {
    match r.byte()? {
        0 => Ok(Ok(read_report(r, names)?)),
        1 => Ok(Err(read_error(r)?)),
        other => Err(r.error(format!("unknown result tag {other:#04x}"))),
    }
}

/// Decodes one standalone result document (used by tests).
pub fn decode_result(bytes: &[u8]) -> Result<Result<EvalReport, EvalError>, DecodeError> {
    let mut r = Reader::new(bytes);
    let result = with_interner(|names| read_result(&mut r, names))?;
    r.finish()?;
    Ok(result)
}

// ---------------------------------------------------------------------------
// ServiceStats
// ---------------------------------------------------------------------------

/// Appends one service-statistics snapshot.
pub fn encode_stats(out: &mut Vec<u8>, stats: &ServiceStats) {
    put_varint(out, stats.submitted);
    put_varint(out, stats.completed);
    put_varint(out, stats.batches);
    put_varint(out, stats.batched_requests);
    put_varint(out, stats.cache_hits);
    put_varint(out, stats.cache_misses);
    put_varint(out, stats.inflight_merged);
    put_varint(out, stats.evaluations);
    put_varint(out, stats.eval_errors);
    put_varint(out, stats.evictions);
    put_usize(out, stats.per_shard.len());
    for shard in &stats.per_shard {
        put_str(out, &shard.backend);
        put_varint(out, shard.evaluations);
        put_varint(out, shard.errors);
    }
    put_usize(out, stats.remote_pools.len());
    for pool in &stats.remote_pools {
        put_str(out, &pool.addr);
        // Pool records are extensible: a varint field count precedes the
        // counter varints, so a decoder reads the fields it knows, skips
        // any it does not, and zero-fills the rest.  New counters append.
        put_usize(out, POOL_FIELD_COUNT);
        put_varint(out, pool.checkouts);
        put_varint(out, pool.reused);
        put_varint(out, pool.dials);
        put_varint(out, pool.redials);
        put_varint(out, pool.discarded);
        put_varint(out, pool.pipelined_batches);
        put_varint(out, pool.pipelined_specs);
        put_varint(out, pool.bytes_sent);
        put_varint(out, pool.bytes_received);
        put_varint(out, pool.frames_coalesced);
        put_varint(out, pool.ring_exchanges);
        put_varint(out, pool.reactor_wakeups);
        put_varint(out, pool.inflight_per_conn);
        put_varint(out, pool.hedges_launched);
        put_varint(out, pool.hedges_won);
        put_varint(out, pool.failovers);
        put_varint(out, pool.breaker_trips);
        put_varint(out, pool.breaker_fast_fails);
        put_varint(out, pool.dict_defines);
        put_varint(out, pool.dict_hits);
    }
    // Trailing-optional per-class latency section, appended since v6.  It
    // is emitted only when populated: pre-v6 decoders `finish()` after the
    // pool records and would reject appended bytes, so servers clear
    // `classes` before answering a peer whose hello said < v6 (see the
    // front ends), and the resulting empty image is byte-identical to v5's.
    // Decoding the other way, a missing section reads as "no classes".
    if stats.classes.is_empty() {
        return;
    }
    put_usize(out, stats.classes.len());
    for class in &stats.classes {
        put_str(out, class.priority.as_str());
        put_varint(out, class.shed_deadline);
        put_varint(out, class.shed_queue);
        put_varint(out, class.latency.count);
        put_varint(out, class.latency.sum_us);
        put_varint(out, class.latency.max_us);
        put_usize(out, class.latency.bucket_counts().len());
        for &bucket in class.latency.bucket_counts() {
            put_varint(out, bucket);
        }
    }
}

/// Counter varints per pool record in this build's encoding (the record's
/// field-count prefix).  18 → 20 in v7: the two symbol-dictionary counters
/// append, and older peers' records zero-fill them leniently.
const POOL_FIELD_COUNT: usize = 20;

fn read_stats(r: &mut Reader<'_>) -> Result<ServiceStats, DecodeError> {
    let mut stats = ServiceStats {
        submitted: r.varint()?,
        completed: r.varint()?,
        batches: r.varint()?,
        batched_requests: r.varint()?,
        cache_hits: r.varint()?,
        cache_misses: r.varint()?,
        inflight_merged: r.varint()?,
        evaluations: r.varint()?,
        eval_errors: r.varint()?,
        evictions: r.varint()?,
        ..ServiceStats::default()
    };
    for _ in 0..r.len()? {
        stats.per_shard.push(ShardStats {
            backend: r.str()?,
            evaluations: r.varint()?,
            errors: r.varint()?,
        });
    }
    for _ in 0..r.len()? {
        let addr = r.str()?;
        // Lenient record decode: a shorter count (older peer) zero-fills
        // the missing counters, a longer one (newer peer) skips the extras.
        let mut fields = [0u64; POOL_FIELD_COUNT];
        for index in 0..r.len()? {
            let value = r.varint()?;
            if let Some(slot) = fields.get_mut(index) {
                *slot = value;
            }
        }
        stats.remote_pools.push(PoolStats {
            addr,
            checkouts: fields[0],
            reused: fields[1],
            dials: fields[2],
            redials: fields[3],
            discarded: fields[4],
            pipelined_batches: fields[5],
            pipelined_specs: fields[6],
            bytes_sent: fields[7],
            bytes_received: fields[8],
            frames_coalesced: fields[9],
            ring_exchanges: fields[10],
            reactor_wakeups: fields[11],
            inflight_per_conn: fields[12],
            hedges_launched: fields[13],
            hedges_won: fields[14],
            failovers: fields[15],
            breaker_trips: fields[16],
            breaker_fast_fails: fields[17],
            dict_defines: fields[18],
            dict_hits: fields[19],
        });
    }
    // Trailing-optional: a v1–v5 peer's image simply ends here.
    if r.remaining() > 0 {
        for _ in 0..r.len()? {
            let spelling = r.str()?;
            let priority = Priority::parse(&spelling)
                .ok_or_else(|| r.error(format!("unknown priority class `{spelling}`")))?;
            let shed_deadline = r.varint()?;
            let shed_queue = r.varint()?;
            let count = r.varint()?;
            let sum_us = r.varint()?;
            let max_us = r.varint()?;
            let bucket_count = r.len()?;
            let mut buckets = Vec::with_capacity(bucket_count);
            for _ in 0..bucket_count {
                buckets.push(r.varint()?);
            }
            stats.classes.push(ClassStats {
                priority,
                latency: LatencyHistogram::from_parts(buckets, count, sum_us, max_us),
                shed_deadline,
                shed_queue,
            });
        }
    }
    Ok(stats)
}

/// Decodes one standalone stats document (used by tests).
pub fn decode_stats(bytes: &[u8]) -> Result<ServiceStats, DecodeError> {
    let mut r = Reader::new(bytes);
    let stats = read_stats(&mut r)?;
    r.finish()?;
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------------

/// Encodes one request payload (magic, tag, id, body), **appending** to
/// `out` — the frame writer reserves its length-prefix placeholder in the
/// same buffer first, so the whole frame leaves in one `write`.
pub fn encode_request(out: &mut Vec<u8>, id: u64, request: &ShardRequest) {
    out.push(MAGIC);
    match request {
        ShardRequest::Hello { protocol } => {
            out.push(TAG_HELLO);
            put_varint(out, id);
            // Trailing optional client version, appended since v5 — pre-v5
            // decoders call `finish()` after the id and would reject the
            // extra varint, but clients always hello in JSON (where unknown
            // keys are ignored), so the binary image only ever reaches
            // peers that read it.
            put_varint(out, *protocol);
        }
        ShardRequest::Supports { backend, spec } => {
            out.push(TAG_SUPPORTS);
            put_varint(out, id);
            put_str(out, backend);
            encode_spec(out, spec);
        }
        ShardRequest::Evaluate { backend, spec } => {
            out.push(TAG_EVALUATE);
            put_varint(out, id);
            put_str(out, backend);
            encode_spec(out, spec);
        }
        ShardRequest::EvaluateBatch { backend, specs } => {
            out.push(TAG_EVALUATE_BATCH);
            put_varint(out, id);
            put_str(out, backend);
            put_usize(out, specs.len());
            for spec in specs {
                encode_spec(out, spec);
            }
        }
        ShardRequest::Stats => {
            out.push(TAG_STATS);
            put_varint(out, id);
        }
        ShardRequest::Cancel { target } => {
            out.push(TAG_CANCEL);
            put_varint(out, id);
            put_varint(out, *target);
        }
    }
}

/// Decodes one request payload (including the magic byte).
pub fn decode_request(bytes: &[u8]) -> Result<(u64, ShardRequest), DecodeError> {
    let mut r = Reader::new(bytes);
    if r.byte()? != MAGIC {
        return Err(r.error("payload does not start with the binary magic byte"));
    }
    let tag = r.byte()?;
    let id = r.varint()?;
    let request = match tag {
        TAG_HELLO => {
            // The client version varint arrived in v5; a payload ending
            // right after the id is an older client speaking version 1
            // semantics (no multiplexing, strict FIFO).
            let protocol = if r.remaining() > 0 { r.varint()? } else { 1 };
            ShardRequest::Hello { protocol }
        }
        TAG_SUPPORTS => ShardRequest::Supports {
            backend: r.str()?,
            spec: read_spec(&mut r)?,
        },
        TAG_EVALUATE => ShardRequest::Evaluate {
            backend: r.str()?,
            spec: read_spec(&mut r)?,
        },
        TAG_EVALUATE_BATCH => {
            let backend = r.str()?;
            let count = r.len()?;
            let mut specs = Vec::with_capacity(count);
            for _ in 0..count {
                specs.push(read_spec(&mut r)?);
            }
            ShardRequest::EvaluateBatch { backend, specs }
        }
        TAG_STATS => ShardRequest::Stats,
        TAG_CANCEL => ShardRequest::Cancel {
            target: r.varint()?,
        },
        other => return Err(r.error(format!("unknown request tag {other:#04x}"))),
    };
    r.finish()?;
    Ok((id, request))
}

/// Encodes one response payload (magic, tag, id, body), **appending** to
/// `out` (see [`encode_request`]).
pub fn encode_response(out: &mut Vec<u8>, id: u64, response: &ShardResponse) {
    out.push(MAGIC);
    match response {
        ShardResponse::Backends {
            names,
            protocol,
            ring,
            window,
        } => {
            out.push(TAG_BACKENDS);
            put_varint(out, id);
            put_usize(out, names.len());
            for name in names {
                put_str(out, name);
            }
            put_varint(out, *protocol);
            // Trailing optional ring path, appended only when offered —
            // decoders treat end-of-payload here as "no ring" so pre-v4
            // images stay decodable.
            if let Some(path) = ring {
                out.push(1);
                put_str(out, path);
            } else {
                out.push(0);
            }
            // Trailing optional credit window (v5), after the ring bytes;
            // decoders treat end-of-payload here as "no multiplexing".
            if let Some(credits) = window {
                out.push(1);
                put_varint(out, *credits);
            } else {
                out.push(0);
            }
        }
        ShardResponse::Supported(supported) => {
            out.push(TAG_SUPPORTED);
            put_varint(out, id);
            put_bool(out, *supported);
        }
        ShardResponse::Evaluated(result) => {
            out.push(TAG_EVALUATED);
            put_varint(out, id);
            encode_result(out, result);
        }
        ShardResponse::EvaluatedBatch(results) => {
            out.push(TAG_EVALUATED_BATCH);
            put_varint(out, id);
            put_usize(out, results.len());
            for result in results {
                encode_result(out, result);
            }
        }
        ShardResponse::Stats(stats) => {
            out.push(TAG_STATS_RESPONSE);
            put_varint(out, id);
            encode_stats(out, stats);
        }
        ShardResponse::Rejected(message) => {
            out.push(TAG_REJECTED);
            put_varint(out, id);
            put_str(out, message);
        }
    }
}

/// Decodes one response payload (including the magic byte).
pub fn decode_response(bytes: &[u8]) -> Result<(u64, ShardResponse), DecodeError> {
    let mut r = Reader::new(bytes);
    if r.byte()? != MAGIC {
        return Err(r.error("payload does not start with the binary magic byte"));
    }
    let tag = r.byte()?;
    let id = r.varint()?;
    let response = match tag {
        TAG_BACKENDS => {
            let count = r.len()?;
            let mut names = Vec::with_capacity(count);
            for _ in 0..count {
                names.push(r.str()?);
            }
            let protocol = r.varint()?;
            // The ring field arrived in v4; a payload ending right after
            // the protocol varint is an older image with no ring offer.
            let ring = if r.remaining() == 0 {
                None
            } else {
                match r.byte()? {
                    0 => None,
                    1 => Some(r.str()?),
                    other => return Err(r.error(format!("invalid ring tag {other:#04x}"))),
                }
            };
            // The window field arrived in v5; a payload ending after the
            // ring bytes is a v4 image with no multiplexing offer.
            let window = if r.remaining() == 0 {
                None
            } else {
                match r.byte()? {
                    0 => None,
                    1 => Some(r.varint()?),
                    other => return Err(r.error(format!("invalid window tag {other:#04x}"))),
                }
            };
            ShardResponse::Backends {
                names,
                protocol,
                ring,
                window,
            }
        }
        TAG_SUPPORTED => ShardResponse::Supported(r.bool()?),
        TAG_EVALUATED => {
            ShardResponse::Evaluated(Arc::new(with_interner(|names| read_result(&mut r, names))?))
        }
        TAG_EVALUATED_BATCH => {
            let count = r.len()?;
            let mut results: Vec<SharedResult> = Vec::with_capacity(count);
            // One interner borrow for the whole batch: the table access is
            // hoisted out of the per-report decode loop.
            with_interner(|names| -> Result<(), DecodeError> {
                for _ in 0..count {
                    results.push(Arc::new(read_result(&mut r, names)?));
                }
                Ok(())
            })?;
            ShardResponse::EvaluatedBatch(results)
        }
        TAG_STATS_RESPONSE => ShardResponse::Stats(read_stats(&mut r)?),
        TAG_REJECTED => ShardResponse::Rejected(r.str()?),
        other => return Err(r.error(format!("unknown response tag {other:#04x}"))),
    };
    r.finish()?;
    Ok((id, response))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_across_widths() {
        let mut out = Vec::new();
        for value in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            out.clear();
            put_varint(&mut out, value);
            let mut r = Reader::new(&out);
            assert_eq!(r.varint().expect("decodes"), value);
            r.finish().expect("consumed exactly");
        }
        // Single-byte encodings for the common small counters.
        out.clear();
        put_varint(&mut out, 42);
        assert_eq!(out, [42]);
    }

    #[test]
    fn floats_survive_non_finite_values() {
        let mut out = Vec::new();
        for value in [0.0f64, -1.5, f64::INFINITY, f64::NEG_INFINITY] {
            out.clear();
            put_f64(&mut out, value);
            assert_eq!(Reader::new(&out).f64().expect("decodes"), value);
        }
        out.clear();
        put_f64(&mut out, f64::NAN);
        assert!(Reader::new(&out).f64().expect("decodes").is_nan());
    }

    #[test]
    fn truncated_payloads_decode_to_errors_not_panics() {
        let mut out = Vec::new();
        encode_request(
            &mut out,
            9,
            &ShardRequest::Evaluate {
                backend: "rsn-xnn".to_string(),
                spec: WorkloadSpec::SquareGemm { n: 4096 },
            },
        );
        for cut in 0..out.len() {
            assert!(
                decode_request(&out[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        assert!(decode_request(&out).is_ok());
    }

    #[test]
    fn hostile_collection_lengths_are_rejected_before_allocation() {
        // An evaluate_batch frame promising u64::MAX specs in 4 bytes.
        let mut out = vec![MAGIC, TAG_EVALUATE_BATCH];
        put_varint(&mut out, 1); // id
        put_str(&mut out, "b");
        put_varint(&mut out, u64::MAX); // spec count
        let err = decode_request(&out).expect_err("must reject");
        assert!(err.message.contains("implausible"), "{err}");
    }

    #[test]
    fn json_frames_cannot_be_mistaken_for_binary() {
        assert!(decode_request(b"{\n  \"id\": 1\n}").is_err());
        assert!(decode_response(b"[1, 2]").is_err());
    }
}
