//! Bounded per-shard connection pooling for the remote backend layer.
//!
//! Before this module every remote evaluation paid a fresh TCP connect and
//! a full exchange set-up — simple and parallel-safe, but a per-call
//! handshake tax on the serving hot path.  A [`ConnectionPool`] amortises
//! that tax: framed connections to one shard address are kept idle between
//! exchanges and handed out again, bounded by
//! [`RemoteConfig::pool_size`](crate::config::RemoteConfig::pool_size).
//!
//! # Invariants
//!
//! * **Health-checked checkout** — an idle connection is probed before
//!   reuse (a closed or desynchronised socket is discarded, never handed
//!   out), so a shard restart between exchanges costs one re-dial, not an
//!   error.
//! * **Poison-free check-in** — a connection returns to the pool only
//!   after a fully clean exchange (frame written, response frame read and
//!   decoded, not a protocol rejection).  Any transport error discards the
//!   connection on the spot.
//! * **One retry over a fresh dial** — an exchange that fails on a
//!   *reused* connection is retried exactly once on a freshly dialled one
//!   (the shard may have legitimately reaped the idle connection).
//!   Evaluations are deterministic and side-effect-free, so the retry is
//!   idempotent; a failure on a fresh connection is a genuine shard
//!   failure and surfaces immediately.
//! * **Bounded** — at most `pool_size` idle connections are retained;
//!   a `pool_size` of zero disables pooling entirely (every exchange
//!   dials, the pre-pool behaviour, kept measurable for the serve
//!   benchmark's pooled-vs-unpooled comparison).
//!
//! The pool also owns the shard-protocol negotiation state: the `hello`
//! handshake records the peer's [`PROTOCOL_VERSION`](crate::wire::PROTOCOL_VERSION)
//! so [`RemoteBackend`](crate::remote::RemoteBackend)s sharing the pool
//! know whether the shard speaks `evaluate_batch` (pipelined micro-batch
//! exchanges, protocol ≥ 2) and the binary codec (protocol ≥ 3) or needs
//! the per-spec / JSON fallbacks.  Because the state lives on the pool —
//! not on individual connections — it survives connection check-in and is
//! shared by every backend routed through this shard address.

use crate::config::{EncodingPolicy, RemoteConfig};
use crate::stats::PoolStats;
use crate::wire::{
    read_response_frame, write_request_frame, ShardRequest, ShardResponse, WireEncoding, WireError,
};
use std::cell::RefCell;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Per-thread frame scratch: binary images are built here and received
    /// payloads land here, so the steady-state exchange path allocates no
    /// per-frame buffers (the buffer grows once to the working-set frame
    /// size and is reused).
    static FRAME_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Lock-free transport counters of one shard pool, surfaced through
/// [`ServiceStats::remote_pools`](crate::ServiceStats::remote_pools).
#[derive(Debug, Default)]
pub(crate) struct PoolCounters {
    /// Connections requested from the pool (one per exchange).
    pub checkouts: AtomicU64,
    /// Checkouts served by a healthy idle connection (no dial paid).
    pub reused: AtomicU64,
    /// Fresh TCP dials (pool empty, pooling disabled, or retry).
    pub dials: AtomicU64,
    /// Of those dials, how many were the retry of an exchange that failed
    /// on a reused connection.
    pub redials: AtomicU64,
    /// Idle connections found dead (or desynchronised) at checkout and
    /// thrown away.
    pub discarded: AtomicU64,
    /// `evaluate_batch` exchanges sent (one frame per micro-batch).
    pub pipelined_batches: AtomicU64,
    /// Specs carried by those exchanges (`pipelined_specs /
    /// pipelined_batches` is the achieved pipeline depth).
    pub pipelined_specs: AtomicU64,
    /// Bytes put on the wire by this pool (length prefixes included).
    pub bytes_sent: AtomicU64,
    /// Bytes taken off the wire by this pool (length prefixes included).
    pub bytes_received: AtomicU64,
}

/// A bounded pool of framed connections to one shard server address.
///
/// Shared (via `Arc`) by every [`RemoteBackend`](crate::remote::RemoteBackend)
/// pointing at the same shard, so concurrent evaluations across backends
/// reuse one warm connection set instead of keeping one per backend.
#[derive(Debug)]
pub struct ConnectionPool {
    addr: String,
    config: RemoteConfig,
    idle: Mutex<Vec<TcpStream>>,
    counters: PoolCounters,
    /// Negotiated shard protocol version; 0 until a `hello` has answered.
    protocol: AtomicU64,
    /// Monotonic exchange ids (diagnostic only — exchanges on one
    /// connection are strictly sequential).
    next_id: AtomicU64,
}

impl ConnectionPool {
    /// A pool for `addr` with the given transport tuning.
    pub fn new(addr: &str, config: RemoteConfig) -> Self {
        Self {
            addr: addr.to_string(),
            config,
            idle: Mutex::new(Vec::new()),
            counters: PoolCounters::default(),
            protocol: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
        }
    }

    /// The shard server address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The pool's transport tuning.
    pub fn config(&self) -> &RemoteConfig {
        &self.config
    }

    /// The negotiated shard protocol version (`None` before any `hello`
    /// has answered).
    pub fn protocol(&self) -> Option<u64> {
        match self.protocol.load(Ordering::Acquire) {
            0 => None,
            version => Some(version),
        }
    }

    /// Whether the shard behind this pool speaks `evaluate_batch`
    /// (protocol ≥ 2).  `false` until negotiated.
    pub fn supports_batch(&self) -> bool {
        self.protocol().is_some_and(|v| v >= 2)
    }

    /// Whether the shard behind this pool speaks the binary codec
    /// (protocol ≥ 3).  `false` until negotiated.
    pub fn supports_binary(&self) -> bool {
        self.protocol().is_some_and(|v| v >= 3)
    }

    /// The encoding the next frame to this shard should use, combining the
    /// configured [`EncodingPolicy`] with the negotiated protocol.  The
    /// negotiated state lives on the pool, so it survives connection
    /// check-in/checkout and is shared by every backend on this pool.
    pub fn frame_encoding(&self) -> WireEncoding {
        match self.config.encoding {
            EncodingPolicy::Json => WireEncoding::Json,
            EncodingPolicy::Binary => WireEncoding::Binary,
            EncodingPolicy::Auto => {
                if self.supports_binary() {
                    WireEncoding::Binary
                } else {
                    WireEncoding::Json
                }
            }
        }
    }

    /// Idle connections currently parked in the pool.
    pub fn idle_connections(&self) -> usize {
        self.idle.lock().expect("pool idle lock").len()
    }

    /// A point-in-time snapshot of the pool's transport counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            addr: self.addr.clone(),
            checkouts: self.counters.checkouts.load(Ordering::Relaxed),
            reused: self.counters.reused.load(Ordering::Relaxed),
            dials: self.counters.dials.load(Ordering::Relaxed),
            redials: self.counters.redials.load(Ordering::Relaxed),
            discarded: self.counters.discarded.load(Ordering::Relaxed),
            pipelined_batches: self.counters.pipelined_batches.load(Ordering::Relaxed),
            pipelined_specs: self.counters.pipelined_specs.load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.counters.bytes_received.load(Ordering::Relaxed),
        }
    }

    /// Performs the `hello` handshake, recording the shard's protocol
    /// version for [`supports_batch`](Self::supports_batch), and returns
    /// the hosted backend names in registration order.
    pub fn hello(&self) -> Result<Vec<String>, WireError> {
        match self.exchange(&ShardRequest::Hello)? {
            ShardResponse::Backends { names, protocol } => {
                self.protocol.store(protocol.max(1), Ordering::Release);
                Ok(names)
            }
            ShardResponse::Rejected(message) => Err(WireError::Rejected(message)),
            _ => Err(WireError::Rejected(
                "shard answered hello with an unexpected payload".to_string(),
            )),
        }
    }

    /// Records one pipelined micro-batch exchange of `specs` specs in the
    /// pool counters.
    pub(crate) fn count_pipelined(&self, specs: usize) {
        self.counters
            .pipelined_batches
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .pipelined_specs
            .fetch_add(specs as u64, Ordering::Relaxed);
    }

    /// One request/response exchange over a pooled connection.
    ///
    /// Checkout (reuse or dial), write the frame, read and decode the
    /// response, check the connection back in on clean success.  An
    /// exchange that fails on a *reused* connection is retried once over a
    /// fresh dial (see module docs for why that is safe); every other
    /// failure surfaces immediately.
    pub fn exchange(&self, request: &ShardRequest) -> Result<ShardResponse, WireError> {
        self.counters.checkouts.fetch_add(1, Ordering::Relaxed);
        if let Some(stream) = self.checkout_idle() {
            match self.exchange_on(stream, request) {
                Ok(response) => {
                    // Counted only on success: a checkout whose reused
                    // connection turned out stale pays a redial below and
                    // must not also inflate the reuse ratio.
                    self.counters.reused.fetch_add(1, Ordering::Relaxed);
                    return Ok(response);
                }
                Err(_) => {
                    // The shard may have reaped this idle connection;
                    // retry exactly once on a fresh dial.
                    self.counters.redials.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let stream = self.dial()?;
        self.exchange_on(stream, request)
    }

    /// Pops the first *healthy* idle connection, discarding dead ones.
    fn checkout_idle(&self) -> Option<TcpStream> {
        loop {
            let candidate = self.idle.lock().expect("pool idle lock").pop()?;
            if connection_is_idle_and_live(&candidate) {
                return Some(candidate);
            }
            self.counters.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Dials a fresh connection with the configured timeouts.
    fn dial(&self) -> Result<TcpStream, WireError> {
        self.counters.dials.fetch_add(1, Ordering::Relaxed);
        let resolved = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            WireError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                format!("`{}` resolves to no address", self.addr),
            ))
        })?;
        let stream = TcpStream::connect_timeout(&resolved, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        // Frames are small and every exchange is write→read: without
        // TCP_NODELAY, Nagle holds the second and later exchanges of a
        // *reused* connection hostage to the peer's delayed ACK (~40 ms a
        // round trip) — the one pathology connect-per-call never saw,
        // because a fresh socket has no unacknowledged data.
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Runs one framed exchange on `stream`; on clean success the stream
    /// goes back to the pool, on any failure (or protocol rejection) it is
    /// dropped with the socket.
    ///
    /// The response read is bounded by `io_timeout` — scaled by the spec
    /// count for `evaluate_batch` exchanges, since the shard evaluates the
    /// whole batch before its single answer frame: a batch of `n` specs
    /// gets the same per-evaluation time budget the per-spec path gives.
    fn exchange_on(
        &self,
        mut stream: TcpStream,
        request: &ShardRequest,
    ) -> Result<ShardResponse, WireError> {
        let read_budget = match request {
            ShardRequest::EvaluateBatch { specs, .. } => self
                .config
                .io_timeout
                .saturating_mul(specs.len().max(1).min(u32::MAX as usize) as u32),
            _ => self.config.io_timeout,
        };
        stream.set_read_timeout(Some(read_budget))?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let encoding = self.frame_encoding();
        let response = FRAME_SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut();
            let sent = write_request_frame(&mut stream, id, request, encoding, scratch)?;
            self.counters.bytes_sent.fetch_add(sent, Ordering::Relaxed);
            let (_, response, received) =
                read_response_frame(&mut stream, scratch)?.ok_or_else(|| {
                    WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "shard closed the connection before answering",
                    ))
                })?;
            self.counters
                .bytes_received
                .fetch_add(received, Ordering::Relaxed);
            Ok::<ShardResponse, WireError>(response)
        })?;
        // A protocol-level rejection may leave the server about to close
        // the connection (framing failures do); never pool it.
        if !matches!(response, ShardResponse::Rejected(_)) {
            self.checkin(stream);
        }
        Ok(response)
    }

    /// Returns a connection to the pool, bounded by the configured size.
    fn checkin(&self, stream: TcpStream) {
        let mut idle = self.idle.lock().expect("pool idle lock");
        if idle.len() < self.config.pool_size {
            idle.push(stream);
        }
        // Over the bound (or pool_size 0): drop, closing the socket.
    }
}

/// Probes an idle pooled connection: healthy means "no pending bytes, no
/// error" — a non-blocking 1-byte peek must say `WouldBlock`.  `Ok(0)` is
/// the peer's FIN (a reaped or restarted shard), `Ok(_)` is a protocol
/// desynchronisation (the peer sent bytes we never asked for); both make
/// the connection unusable.
fn connection_is_idle_and_live(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let live = matches!(
        stream.peek(&mut probe),
        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
    );
    live && stream.set_nonblocking(false).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// A raw echo-ish peer: accepts connections and answers every frame
    /// with a fixed rejection, counting connections accepted.
    fn rejecting_peer() -> (String, std::sync::Arc<AtomicU64>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind peer");
        let addr = listener.local_addr().expect("peer addr").to_string();
        let accepted = std::sync::Arc::new(AtomicU64::new(0));
        let count = std::sync::Arc::clone(&accepted);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                count.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let mut prefix = [0u8; 4];
                    while stream.read_exact(&mut prefix).is_ok() {
                        let len = u32::from_be_bytes(prefix) as usize;
                        let mut payload = vec![0u8; len];
                        if stream.read_exact(&mut payload).is_err() {
                            return;
                        }
                        let body = br#"{"id": 0, "ok": true, "supported": true}"#;
                        let frame_len = (body.len() as u32).to_be_bytes();
                        if stream.write_all(&frame_len).is_err() || stream.write_all(body).is_err()
                        {
                            return;
                        }
                    }
                });
            }
        });
        (addr, accepted)
    }

    fn probe_request() -> ShardRequest {
        ShardRequest::Supports {
            backend: "any".to_string(),
            spec: rsn_eval::WorkloadSpec::PowerBreakdown,
        }
    }

    #[test]
    fn pooled_exchanges_reuse_one_connection() {
        let (addr, accepted) = rejecting_peer();
        let pool = ConnectionPool::new(&addr, RemoteConfig::default());
        for _ in 0..5 {
            let response = pool.exchange(&probe_request()).expect("exchange");
            assert_eq!(response, ShardResponse::Supported(true));
        }
        let stats = pool.stats();
        assert_eq!(accepted.load(Ordering::SeqCst), 1, "one dial serves all");
        assert_eq!(stats.checkouts, 5);
        assert_eq!(stats.dials, 1);
        assert_eq!(stats.reused, 4);
        assert_eq!(stats.redials, 0);
        assert_eq!(pool.idle_connections(), 1);
    }

    #[test]
    fn pool_size_zero_dials_every_exchange() {
        let (addr, accepted) = rejecting_peer();
        let pool = ConnectionPool::new(
            &addr,
            RemoteConfig {
                pool_size: 0,
                ..RemoteConfig::default()
            },
        );
        for _ in 0..3 {
            pool.exchange(&probe_request()).expect("exchange");
        }
        // Give the peer threads a beat to register the accepts.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(accepted.load(Ordering::SeqCst), 3);
        let stats = pool.stats();
        assert_eq!(stats.dials, 3);
        assert_eq!(stats.reused, 0);
        assert_eq!(pool.idle_connections(), 0);
    }

    #[test]
    fn dead_idle_connections_are_discarded_then_redialled() {
        let (addr, _accepted) = rejecting_peer();
        let pool = ConnectionPool::new(&addr, RemoteConfig::default());
        pool.exchange(&probe_request()).expect("warm the pool");
        assert_eq!(pool.idle_connections(), 1);
        // Sabotage the idle connection from our side: close it so the
        // health probe sees a dead socket at the next checkout.
        {
            let idle = pool.idle.lock().expect("idle lock");
            idle[0]
                .shutdown(std::net::Shutdown::Both)
                .expect("shutdown idle conn");
        }
        let response = pool.exchange(&probe_request()).expect("exchange survives");
        assert_eq!(response, ShardResponse::Supported(true));
        let stats = pool.stats();
        assert_eq!(stats.discarded + stats.redials, 1, "dead conn was noticed");
        assert_eq!(stats.dials, 2, "a fresh dial replaced it");
        assert_eq!(pool.idle_connections(), 1, "the pool refilled");
    }

    #[test]
    fn unreachable_address_fails_with_io_error_not_a_hang() {
        // A bound-then-dropped listener: nobody is listening there now.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        };
        let pool = ConnectionPool::new(
            &addr,
            RemoteConfig {
                connect_timeout: std::time::Duration::from_millis(500),
                ..RemoteConfig::default()
            },
        );
        let started = std::time::Instant::now();
        match pool.exchange(&probe_request()) {
            Err(WireError::Io(_)) => {}
            other => panic!("expected an I/O error, got {other:?}"),
        }
        assert!(started.elapsed() < std::time::Duration::from_secs(5));
        assert_eq!(pool.stats().dials, 1);
    }
}
