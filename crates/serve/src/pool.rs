//! Bounded per-shard connection pooling for the remote backend layer.
//!
//! Before this module every remote evaluation paid a fresh TCP connect and
//! a full exchange set-up — simple and parallel-safe, but a per-call
//! handshake tax on the serving hot path.  A [`ConnectionPool`] amortises
//! that tax: framed connections to one shard address are kept idle between
//! exchanges and handed out again, bounded by
//! [`RemoteConfig::pool_size`](crate::config::RemoteConfig::pool_size).
//!
//! # Invariants
//!
//! * **Health-checked checkout** — an idle connection is probed before
//!   reuse (a closed or desynchronised socket is discarded, never handed
//!   out), so a shard restart between exchanges costs one re-dial, not an
//!   error.
//! * **Poison-free check-in** — a connection returns to the pool only
//!   after a fully clean exchange (frame written, response frame read and
//!   decoded, not a protocol rejection).  Any transport error discards the
//!   connection on the spot.
//! * **One retry over a fresh dial** — an exchange that fails on a
//!   *reused* connection is retried exactly once on a freshly dialled one
//!   (the shard may have legitimately reaped the idle connection).
//!   Evaluations are deterministic and side-effect-free, so the retry is
//!   idempotent; a failure on a fresh connection is a genuine shard
//!   failure and surfaces immediately.
//! * **Bounded** — at most `pool_size` idle connections are retained;
//!   a `pool_size` of zero disables pooling entirely (every exchange
//!   dials, the pre-pool behaviour, kept measurable for the serve
//!   benchmark's pooled-vs-unpooled comparison).
//!
//! The pool also owns the shard-protocol negotiation state: the `hello`
//! handshake records the peer's [`PROTOCOL_VERSION`]
//! so [`RemoteBackend`](crate::remote::RemoteBackend)s sharing the pool
//! know whether the shard speaks `evaluate_batch` (pipelined micro-batch
//! exchanges, protocol ≥ 2) and the binary codec (protocol ≥ 3) or needs
//! the per-spec / JSON fallbacks.  Because the state lives on the pool —
//! not on individual connections — it survives connection check-in and is
//! shared by every backend routed through this shard address.
//!
//! # Pools in a replicated fleet
//!
//! When a topology `replicas` group maps a backend onto several shards,
//! each member shard keeps its own `ConnectionPool` and the fleet layer
//! ([`crate::fleet`]) routes between them.  Two pieces of per-pool state
//! exist for that layer:
//!
//! * every successful exchange's wall time feeds a latency histogram, and
//!   [`observed_exchange_p95`](ConnectionPool::observed_exchange_p95)
//!   exposes its p95 — the default **hedge budget** (how long the fleet
//!   waits before racing a sibling replica) when the topology does not
//!   pin one;
//! * the `hedges_launched`/`hedges_won`/`failovers`/`breaker_trips`/
//!   `breaker_fast_fails` counters record what the fleet layer did with
//!   this pool, surfaced through the same
//!   [`ServiceStats::remote_pools`](crate::ServiceStats::remote_pools)
//!   snapshot as the transport counters.
//!
//! Construction never dials ([`ConnectionPool::new`] is lazy — the first
//! exchange pays the connect), so a pool for a currently-dead replica can
//! sit in a fleet, breaker-open, until the shard comes back: live
//! topology reload adds and drains pools without restarting anything.

use crate::binary::ConnCodec;
use crate::config::{EncodingPolicy, RemoteConfig, TransportPolicy};
use crate::reactor::Multiplexer;
use crate::shm::{RingConn, Segment};
use crate::stats::{LatencyRecorder, PoolStats};
use crate::wire::{
    read_response_frame, read_response_frame_dict, write_request_frame, write_request_frame_dict,
    ShardRequest, ShardResponse, WireEncoding, WireError, DICT_PROTOCOL, PROTOCOL_VERSION,
};
use std::cell::RefCell;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

thread_local! {
    /// Per-thread frame scratch: binary images are built here and received
    /// payloads land here, so the steady-state exchange path allocates no
    /// per-frame buffers (the buffer grows once to the working-set frame
    /// size and is reused).
    static FRAME_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
    /// Per-thread burst buffer: a coalesced exchange's frames are laid out
    /// contiguously here so the whole burst leaves in one write.
    static BURST_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Per-pool memory of whether this shard's connections can ride a
/// shared-memory ring, so only the first dial pays the probing hello
/// against a shard (or peer) that will never offer one.
const RING_UNKNOWN: u64 = 0;
const RING_AVAILABLE: u64 = 1;
const RING_REFUSED: u64 = 2;

/// One pooled connection: a transport plus the per-connection symbol
/// dictionaries of the protocol-7 encoding.  The codec rides with the
/// connection through check-in and checkout — whichever thread holds the
/// connection holds its tables, and dropping the connection drops them
/// (fresh connections always start from empty tables).
#[derive(Debug)]
struct PooledConn {
    transport: Transport,
    codec: ConnCodec,
}

impl PooledConn {
    fn tcp(stream: TcpStream) -> Self {
        Self {
            transport: Transport::Tcp(stream),
            codec: ConnCodec::new(),
        }
    }

    fn ring(conn: Box<RingConn>) -> Self {
        Self {
            transport: Transport::Ring(conn),
            codec: ConnCodec::new(),
        }
    }
}

/// The byte channel of one pooled connection: either a plain framed TCP
/// stream, or a negotiated shared-memory ring pair (with its TCP stream
/// demoted to the liveness channel — see [`crate::shm`]).  Both speak
/// identical frames, so the exchange paths are transport-blind.
#[derive(Debug)]
enum Transport {
    Tcp(TcpStream),
    Ring(Box<RingConn>),
}

impl Transport {
    fn is_ring(&self) -> bool {
        matches!(self, Transport::Ring(_))
    }

    /// Bounds the time the next response reads may take.
    fn set_read_budget(&mut self, budget: Duration) -> Result<(), WireError> {
        match self {
            Transport::Tcp(stream) => stream.set_read_timeout(Some(budget)).map_err(WireError::Io),
            Transport::Ring(conn) => {
                conn.set_read_budget(budget);
                Ok(())
            }
        }
    }

    /// Whether an *idle* connection is healthy enough to hand out again:
    /// live peer, no unconsumed bytes (leftovers mean desynchronisation).
    fn is_idle_and_live(&self) -> bool {
        match self {
            Transport::Tcp(stream) => connection_is_idle_and_live(stream),
            Transport::Ring(conn) => {
                if conn.is_desynchronised() {
                    return false;
                }
                // The liveness socket is permanently non-blocking; a
                // healthy idle peer has nothing to say on it.
                let mut probe = [0u8; 1];
                matches!(
                    conn.stream().peek(&mut probe),
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
                )
            }
        }
    }
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(stream) => stream.read(buf),
            Transport::Ring(conn) => conn.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(stream) => stream.write(buf),
            Transport::Ring(conn) => conn.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(stream) => stream.flush(),
            Transport::Ring(conn) => conn.flush(),
        }
    }
}

/// Lock-free transport counters of one shard pool, surfaced through
/// [`ServiceStats::remote_pools`](crate::ServiceStats::remote_pools).
#[derive(Debug, Default)]
pub(crate) struct PoolCounters {
    /// Connections requested from the pool (one per exchange).
    pub checkouts: AtomicU64,
    /// Checkouts served by a healthy idle connection (no dial paid).
    pub reused: AtomicU64,
    /// Fresh TCP dials (pool empty, pooling disabled, or retry).
    pub dials: AtomicU64,
    /// Of those dials, how many were the retry of an exchange that failed
    /// on a reused connection.
    pub redials: AtomicU64,
    /// Idle connections found dead (or desynchronised) at checkout and
    /// thrown away.
    pub discarded: AtomicU64,
    /// `evaluate_batch` exchanges sent (one frame per micro-batch).
    pub pipelined_batches: AtomicU64,
    /// Specs carried by those exchanges (`pipelined_specs /
    /// pipelined_batches` is the achieved pipeline depth).
    pub pipelined_specs: AtomicU64,
    /// Bytes put on the wire by this pool (length prefixes included).
    pub bytes_sent: AtomicU64,
    /// Bytes taken off the wire by this pool (length prefixes included).
    pub bytes_received: AtomicU64,
    /// Request frames that shared a coalesced burst write with at least
    /// one other frame (bursts of one count nothing).
    pub frames_coalesced: AtomicU64,
    /// Exchanges whose frames rode a shared-memory ring instead of the
    /// socket.
    pub ring_exchanges: AtomicU64,
    /// Times a reactor thread driving this pool's multiplexed connection
    /// was woken (socket readiness or a submitter's wake byte).
    pub reactor_wakeups: AtomicU64,
    /// High-water mark of requests in flight on one multiplexed
    /// connection; stays zero against strict-FIFO (pre-v5) shards.
    pub inflight_per_conn: AtomicU64,
    /// Hedge exchanges launched because an exchange on this pool outlived
    /// its hedge budget (fleet layer; see [`crate::fleet`]).
    pub hedges_launched: AtomicU64,
    /// Hedge exchanges this pool answered first, beating the raced sibling.
    pub hedges_won: AtomicU64,
    /// Exchanges that failed here and were rerouted to a sibling replica.
    pub failovers: AtomicU64,
    /// Times this pool's circuit breaker tripped open.
    pub breaker_trips: AtomicU64,
    /// Routing decisions that skipped this pool because its breaker was open.
    pub breaker_fast_fails: AtomicU64,
    /// Labels defined into protocol-7 symbol dictionaries on this pool's
    /// connections (both directions).
    pub dict_defines: AtomicU64,
    /// Label occurrences resolved through those dictionaries instead of
    /// re-sending string bytes (both directions).
    pub dict_hits: AtomicU64,
    /// Wall time of every *successful* exchange; its p95 is the default
    /// hedge budget ([`ConnectionPool::observed_exchange_p95`]).
    pub exchange_latency: LatencyRecorder,
}

impl PoolCounters {
    /// Raises `inflight_per_conn` to `depth` if it is the new high water.
    pub fn note_inflight(&self, depth: u64) {
        self.inflight_per_conn.fetch_max(depth, Ordering::Relaxed);
    }

    /// Folds drained symbol-dictionary counters in (see
    /// [`ConnCodec::take_counts`]).
    pub fn note_dict(&self, defines: u64, hits: u64) {
        if defines != 0 {
            self.dict_defines.fetch_add(defines, Ordering::Relaxed);
        }
        if hits != 0 {
            self.dict_hits.fetch_add(hits, Ordering::Relaxed);
        }
    }
}

/// A bounded pool of framed connections to one shard server address.
///
/// Shared (via `Arc`) by every [`RemoteBackend`](crate::remote::RemoteBackend)
/// pointing at the same shard, so concurrent evaluations across backends
/// reuse one warm connection set instead of keeping one per backend.
#[derive(Debug)]
pub struct ConnectionPool {
    addr: String,
    config: RemoteConfig,
    idle: Mutex<Vec<PooledConn>>,
    counters: Arc<PoolCounters>,
    /// Negotiated shard protocol version; 0 until a `hello` has answered.
    protocol: AtomicU64,
    /// Credit window the shard advertised in `hello` (v5 multiplexing);
    /// 0 until negotiated, and stays 0 against strict-FIFO shards.
    window: AtomicU64,
    /// Whether this shard offers ring segments (one of the `RING_*`
    /// states), learned on the first ring-eligible dial.
    ring_state: AtomicU64,
    /// The multiplexed connection, once one has been established (v5 shard,
    /// binary encoding, no ring).  Poisoned (`None`) again on transport
    /// failure so the next exchange re-dials.
    mux: Mutex<Option<Arc<Multiplexer>>>,
    /// Monotonic exchange ids (diagnostic only — exchanges on one
    /// connection are strictly sequential).
    next_id: AtomicU64,
}

impl ConnectionPool {
    /// A pool for `addr` with the given transport tuning.
    pub fn new(addr: &str, config: RemoteConfig) -> Self {
        Self {
            addr: addr.to_string(),
            config,
            idle: Mutex::new(Vec::new()),
            counters: Arc::new(PoolCounters::default()),
            protocol: AtomicU64::new(0),
            window: AtomicU64::new(0),
            ring_state: AtomicU64::new(RING_UNKNOWN),
            mux: Mutex::new(None),
            next_id: AtomicU64::new(1),
        }
    }

    /// The shard server address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The pool's transport tuning.
    pub fn config(&self) -> &RemoteConfig {
        &self.config
    }

    /// The negotiated shard protocol version (`None` before any `hello`
    /// has answered).
    pub fn protocol(&self) -> Option<u64> {
        match self.protocol.load(Ordering::Acquire) {
            0 => None,
            version => Some(version),
        }
    }

    /// Whether the shard behind this pool speaks `evaluate_batch`
    /// (protocol ≥ 2).  `false` until negotiated.
    pub fn supports_batch(&self) -> bool {
        self.protocol().is_some_and(|v| v >= 2)
    }

    /// Whether the shard behind this pool speaks the binary codec
    /// (protocol ≥ 3).  `false` until negotiated.
    pub fn supports_binary(&self) -> bool {
        self.protocol().is_some_and(|v| v >= 3)
    }

    /// Whether the shard behind this pool speaks the protocol-7 symbol
    /// dictionaries.  `false` until negotiated.
    pub fn supports_dict(&self) -> bool {
        self.protocol().is_some_and(|v| v >= DICT_PROTOCOL)
    }

    /// The per-connection credit window the shard advertised (`None` until
    /// a `hello` has answered, or when the shard never offered one —
    /// advertising a window is the shard's "multiplexing is on" signal).
    pub fn window(&self) -> Option<u64> {
        match self.window.load(Ordering::Acquire) {
            0 => None,
            credits => Some(credits),
        }
    }

    /// Whether exchanges on this pool may ride one multiplexed v5
    /// connection: the shard advertised a window, the frames are binary
    /// (response ids route replies without a JSON parse per peek), and no
    /// shared-memory ring won the transport negotiation (rings already
    /// beat sockets; multiplexing them is future work).
    fn mux_eligible(&self) -> bool {
        self.window().is_some()
            && matches!(
                self.frame_encoding(),
                WireEncoding::Binary | WireEncoding::BinaryDict
            )
            && self.ring_state.load(Ordering::Acquire) != RING_AVAILABLE
            && self.config.pool_size > 0
    }

    /// The encoding the next frame to this shard should use, combining the
    /// configured [`EncodingPolicy`] with the negotiated protocol.  The
    /// negotiated state lives on the pool, so it survives connection
    /// check-in/checkout and is shared by every backend on this pool.
    pub fn frame_encoding(&self) -> WireEncoding {
        match self.config.encoding {
            EncodingPolicy::Json => WireEncoding::Json,
            EncodingPolicy::Binary => {
                if self.supports_dict() {
                    WireEncoding::BinaryDict
                } else {
                    WireEncoding::Binary
                }
            }
            // The debugging escape hatch: plain binary even against a v7
            // shard, so dictionary suspicion can be ruled out per pool.
            EncodingPolicy::BinaryNodict => WireEncoding::Binary,
            EncodingPolicy::Auto => {
                if self.supports_dict() {
                    WireEncoding::BinaryDict
                } else if self.supports_binary() {
                    WireEncoding::Binary
                } else {
                    WireEncoding::Json
                }
            }
        }
    }

    /// Idle connections currently parked in the pool.
    pub fn idle_connections(&self) -> usize {
        self.idle.lock().expect("pool idle lock").len()
    }

    /// A point-in-time snapshot of the pool's transport counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            addr: self.addr.clone(),
            checkouts: self.counters.checkouts.load(Ordering::Relaxed),
            reused: self.counters.reused.load(Ordering::Relaxed),
            dials: self.counters.dials.load(Ordering::Relaxed),
            redials: self.counters.redials.load(Ordering::Relaxed),
            discarded: self.counters.discarded.load(Ordering::Relaxed),
            pipelined_batches: self.counters.pipelined_batches.load(Ordering::Relaxed),
            pipelined_specs: self.counters.pipelined_specs.load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.counters.bytes_received.load(Ordering::Relaxed),
            frames_coalesced: self.counters.frames_coalesced.load(Ordering::Relaxed),
            ring_exchanges: self.counters.ring_exchanges.load(Ordering::Relaxed),
            reactor_wakeups: self.counters.reactor_wakeups.load(Ordering::Relaxed),
            inflight_per_conn: self.counters.inflight_per_conn.load(Ordering::Relaxed),
            hedges_launched: self.counters.hedges_launched.load(Ordering::Relaxed),
            hedges_won: self.counters.hedges_won.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            breaker_trips: self.counters.breaker_trips.load(Ordering::Relaxed),
            breaker_fast_fails: self.counters.breaker_fast_fails.load(Ordering::Relaxed),
            dict_defines: self.counters.dict_defines.load(Ordering::Relaxed),
            dict_hits: self.counters.dict_hits.load(Ordering::Relaxed),
        }
    }

    /// The fleet-resilience counters of this pool, shared with the fleet
    /// layer so hedges and failovers land on the pool they describe.
    pub(crate) fn fleet_counters(&self) -> &Arc<PoolCounters> {
        &self.counters
    }

    /// The 95th percentile of this pool's successful-exchange wall times,
    /// once at least [`Self::P95_MIN_SAMPLES`] exchanges have completed —
    /// the observed-latency source for the fleet layer's default hedge
    /// budget.  `None` until enough samples exist (a freshly-dialled pool
    /// must not hedge on one unlucky measurement).
    pub fn observed_exchange_p95(&self) -> Option<Duration> {
        let histogram = self.counters.exchange_latency.snapshot();
        if histogram.count < Self::P95_MIN_SAMPLES {
            return None;
        }
        histogram.p95().map(Duration::from_micros)
    }

    /// Successful exchanges required before
    /// [`observed_exchange_p95`](Self::observed_exchange_p95) reports.
    pub const P95_MIN_SAMPLES: u64 = 16;

    /// Performs the `hello` handshake, recording the shard's protocol
    /// version for [`supports_batch`](Self::supports_batch), and returns
    /// the hosted backend names in registration order.
    pub fn hello(&self) -> Result<Vec<String>, WireError> {
        match self.exchange(&ShardRequest::Hello {
            protocol: PROTOCOL_VERSION,
        })? {
            // Any ring offer in this response belongs to the connection
            // that carried the exchange; rings are negotiated per
            // connection at dial time, so it is ignored here.
            ShardResponse::Backends {
                names,
                protocol,
                window,
                ..
            } => {
                self.protocol.store(protocol.max(1), Ordering::Release);
                self.window.store(window.unwrap_or(0), Ordering::Release);
                Ok(names)
            }
            ShardResponse::Rejected(message) => Err(WireError::Rejected(message)),
            _ => Err(WireError::Rejected(
                "shard answered hello with an unexpected payload".to_string(),
            )),
        }
    }

    /// Records one pipelined micro-batch exchange of `specs` specs in the
    /// pool counters.
    pub(crate) fn count_pipelined(&self, specs: usize) {
        self.counters
            .pipelined_batches
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .pipelined_specs
            .fetch_add(specs as u64, Ordering::Relaxed);
    }

    /// One request/response exchange over a pooled connection.
    ///
    /// Checkout (reuse or dial), write the frame, read and decode the
    /// response, check the connection back in on clean success.  An
    /// exchange that fails on a *reused* connection is retried once over a
    /// fresh dial (see module docs for why that is safe); every other
    /// failure surfaces immediately.
    pub fn exchange(&self, request: &ShardRequest) -> Result<ShardResponse, WireError> {
        let started = std::time::Instant::now();
        let response = self.exchange_unrecorded(request);
        // Only clean exchanges feed the latency histogram: failures are
        // the breaker's signal, not a latency sample, and a timeout would
        // drag the p95 toward the very budget it is meant to derive.
        if response.is_ok() {
            self.counters.exchange_latency.record(started.elapsed());
        }
        response
    }

    fn exchange_unrecorded(&self, request: &ShardRequest) -> Result<ShardResponse, WireError> {
        self.counters.checkouts.fetch_add(1, Ordering::Relaxed);
        if let Some(mux) = self.mux_handle() {
            match mux.exchange(request, self.read_budget_for(request)) {
                Ok(response) => {
                    self.counters.reused.fetch_add(1, Ordering::Relaxed);
                    return Ok(response);
                }
                // A dead multiplexed connection degrades to the plain
                // pooled path below (which dials fresh) — same story as a
                // reaped idle connection.
                Err(_) => {
                    self.poison_mux(&mux);
                    self.counters.redials.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if let Some(conn) = self.checkout_idle() {
            match self.exchange_on(conn, request) {
                Ok(response) => {
                    // Counted only on success: a checkout whose reused
                    // connection turned out stale pays a redial below and
                    // must not also inflate the reuse ratio.
                    self.counters.reused.fetch_add(1, Ordering::Relaxed);
                    return Ok(response);
                }
                Err(_) => {
                    // The shard may have reaped this idle connection;
                    // retry exactly once on a fresh dial.
                    self.counters.redials.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let conn = self.dial()?;
        self.exchange_on(conn, request)
    }

    /// Sends several requests as **one** coalesced burst over one pooled
    /// connection — all frames laid out contiguously and written together,
    /// then every response read back in request order — so a multi-chunk
    /// hand-off from a serving worker pays one transport round trip instead
    /// of one per chunk.  Retry semantics match [`exchange`](Self::exchange):
    /// a burst that fails on a reused connection is retried once over a
    /// fresh dial (evaluations are idempotent).
    pub fn exchange_burst(
        &self,
        requests: &[ShardRequest],
    ) -> Result<Vec<ShardResponse>, WireError> {
        let started = std::time::Instant::now();
        let responses = self.exchange_burst_unrecorded(requests);
        if responses.is_ok() && requests.len() > 1 {
            // Bursts of one were recorded by the `exchange` they became.
            self.counters.exchange_latency.record(started.elapsed());
        }
        responses
    }

    fn exchange_burst_unrecorded(
        &self,
        requests: &[ShardRequest],
    ) -> Result<Vec<ShardResponse>, WireError> {
        match requests.len() {
            0 => return Ok(Vec::new()),
            // A burst of one is a plain exchange (and is not counted as
            // coalesced — nothing shared a write).
            1 => return self.exchange(&requests[0]).map(|response| vec![response]),
            _ => {}
        }
        self.counters.checkouts.fetch_add(1, Ordering::Relaxed);
        if let Some(mux) = self.mux_handle() {
            let budget = requests
                .iter()
                .map(|request| self.read_budget_for(request))
                .fold(Duration::ZERO, Duration::saturating_add);
            match mux.exchange_burst(requests, budget) {
                Ok(responses) => {
                    self.counters.reused.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .frames_coalesced
                        .fetch_add(requests.len() as u64, Ordering::Relaxed);
                    return Ok(responses);
                }
                Err(_) => {
                    self.poison_mux(&mux);
                    self.counters.redials.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if let Some(conn) = self.checkout_idle() {
            match self.burst_on(conn, requests) {
                Ok(responses) => {
                    self.counters.reused.fetch_add(1, Ordering::Relaxed);
                    return Ok(responses);
                }
                Err(_) => {
                    self.counters.redials.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let conn = self.dial()?;
        self.burst_on(conn, requests)
    }

    /// The pool's live multiplexed connection, dialling one on first use.
    /// `None` when multiplexing is not negotiated (pre-v5 shard, JSON
    /// encoding, a ring in play) or the dial fails — callers then take the
    /// plain pooled path, so a mux setback never fails an exchange.
    fn mux_handle(&self) -> Option<Arc<Multiplexer>> {
        if !self.mux_eligible() {
            return None;
        }
        let mut slot = self.mux.lock().expect("pool mux lock");
        if let Some(mux) = slot.as_ref() {
            if mux.is_healthy() {
                return Some(Arc::clone(mux));
            }
            *slot = None;
        }
        let stream = self.dial_tcp().ok()?;
        self.counters.dials.fetch_add(1, Ordering::Relaxed);
        let mux = Arc::new(
            Multiplexer::start(
                stream,
                self.window()?,
                self.frame_encoding(),
                Arc::clone(&self.counters),
                self.config.io_timeout,
            )
            .ok()?,
        );
        *slot = Some(Arc::clone(&mux));
        Some(mux)
    }

    /// Drops the pool's multiplexed connection if `dead` is still the one
    /// installed (a racing thread may already have replaced it).
    fn poison_mux(&self, dead: &Arc<Multiplexer>) {
        let mut slot = self.mux.lock().expect("pool mux lock");
        if slot.as_ref().is_some_and(|m| Arc::ptr_eq(m, dead)) {
            *slot = None;
        }
    }

    /// Pops the first *healthy* idle connection, discarding dead ones.
    fn checkout_idle(&self) -> Option<PooledConn> {
        loop {
            let candidate = self.idle.lock().expect("pool idle lock").pop()?;
            if candidate.transport.is_idle_and_live() {
                return Some(candidate);
            }
            self.counters.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Dials a fresh connection with the configured timeouts, negotiating
    /// a shared-memory ring for it when the transport policy allows and
    /// the shard offers one.
    fn dial(&self) -> Result<PooledConn, WireError> {
        self.counters.dials.fetch_add(1, Ordering::Relaxed);
        let stream = self.dial_tcp()?;
        // Ring upgrade is only worth a probing hello on connections that
        // will live in the pool; the unpooled configuration keeps its
        // dial-per-exchange meaning (and the benchmark its baseline).
        if self.config.transport == TransportPolicy::Socket
            || self.config.pool_size == 0
            || self.ring_state.load(Ordering::Acquire) == RING_REFUSED
        {
            return Ok(PooledConn::tcp(stream));
        }
        self.negotiate_ring(stream)
    }

    /// One configured TCP connect: resolve, dial with the connect timeout,
    /// arm the I/O timeouts, disable Nagle.
    ///
    /// Frames are small and every exchange is write→read: without
    /// TCP_NODELAY, Nagle holds the second and later exchanges of a
    /// *reused* connection hostage to the peer's delayed ACK (~40 ms a
    /// round trip) — the one pathology connect-per-call never saw, because
    /// a fresh socket has no unacknowledged data.
    fn dial_tcp(&self) -> Result<TcpStream, WireError> {
        let resolved = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            WireError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                format!("`{}` resolves to no address", self.addr),
            ))
        })?;
        let stream = TcpStream::connect_timeout(&resolved, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// One hello on the fresh connection: learns the shard's protocol and,
    /// when a ring segment is offered, maps it and upgrades the connection.
    /// Every *semantic* disappointment — an old shard, no offer, a segment
    /// that will not map — degrades to the plain socket; only transport
    /// failures propagate.
    fn negotiate_ring(&self, mut stream: TcpStream) -> Result<PooledConn, WireError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let encoding = self.frame_encoding();
        let hello = ShardRequest::Hello {
            protocol: PROTOCOL_VERSION,
        };
        let offer = FRAME_SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut();
            let sent = write_request_frame(&mut stream, id, &hello, encoding, scratch)?;
            self.counters.bytes_sent.fetch_add(sent, Ordering::Relaxed);
            let (_, response, received) =
                read_response_frame(&mut stream, scratch)?.ok_or_else(|| {
                    WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "shard closed the connection during ring negotiation",
                    ))
                })?;
            self.counters
                .bytes_received
                .fetch_add(received, Ordering::Relaxed);
            Ok::<ShardResponse, WireError>(response)
        })?;
        let ring = match offer {
            ShardResponse::Backends {
                protocol,
                ring,
                window,
                ..
            } => {
                self.protocol.store(protocol.max(1), Ordering::Release);
                self.window.store(window.unwrap_or(0), Ordering::Release);
                ring
            }
            // Anything else is a peer that does not speak hello the way a
            // shard does (a test double, a very old build).  The exchange
            // itself was framed cleanly, so the connection is usable.
            _ => None,
        };
        let Some(path) = ring else {
            self.ring_state.store(RING_REFUSED, Ordering::Release);
            return Ok(PooledConn::tcp(stream));
        };
        match Segment::open(Path::new(&path)) {
            Ok(segment) => match RingConn::new(stream, &segment, self.config.io_timeout) {
                Ok(conn) => {
                    self.ring_state.store(RING_AVAILABLE, Ordering::Release);
                    Ok(PooledConn::ring(Box::new(conn)))
                }
                Err(e) => Err(WireError::Io(e)),
            },
            // Different filesystem namespace, permissions, or a corrupt
            // segment: fall back to the socket (and stop probing).
            Err(_) => {
                self.ring_state.store(RING_REFUSED, Ordering::Release);
                Ok(PooledConn::tcp(stream))
            }
        }
    }

    /// The response-read budget of one request: `io_timeout`, scaled by
    /// the spec count for `evaluate_batch` exchanges, since the shard
    /// evaluates the whole batch before its single answer frame.
    fn read_budget_for(&self, request: &ShardRequest) -> Duration {
        match request {
            ShardRequest::EvaluateBatch { specs, .. } => self
                .config
                .io_timeout
                .saturating_mul(specs.len().max(1).min(u32::MAX as usize) as u32),
            _ => self.config.io_timeout,
        }
    }

    /// Runs one framed exchange on `conn`; on clean success the connection
    /// goes back to the pool, on any failure (or protocol rejection) it is
    /// dropped.
    fn exchange_on(
        &self,
        mut conn: PooledConn,
        request: &ShardRequest,
    ) -> Result<ShardResponse, WireError> {
        conn.transport
            .set_read_budget(self.read_budget_for(request))?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let encoding = self.frame_encoding();
        let result = FRAME_SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut();
            let sent = write_request_frame_dict(
                &mut conn.transport,
                id,
                request,
                encoding,
                scratch,
                &mut conn.codec.tx,
            )?;
            self.counters.bytes_sent.fetch_add(sent, Ordering::Relaxed);
            let (_, response, received) =
                read_response_frame_dict(&mut conn.transport, scratch, &mut conn.codec.rx)?
                    .ok_or_else(|| {
                        WireError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "shard closed the connection before answering",
                        ))
                    })?;
            self.counters
                .bytes_received
                .fetch_add(received, Ordering::Relaxed);
            Ok::<ShardResponse, WireError>(response)
        });
        // Drain on every outcome — a failed exchange's defines are still
        // real table entries the peer may reference.
        let (defines, hits) = conn.codec.take_counts();
        self.counters.note_dict(defines, hits);
        let response = result?;
        if conn.transport.is_ring() {
            self.counters.ring_exchanges.fetch_add(1, Ordering::Relaxed);
        }
        // A protocol-level rejection may leave the server about to close
        // the connection (framing failures do); never pool it.
        if !matches!(response, ShardResponse::Rejected(_)) {
            self.checkin(conn);
        }
        Ok(response)
    }

    /// Runs a coalesced burst on `conn`: every request frame in one
    /// contiguous write, every response read back in request order (ids
    /// are verified — an out-of-order shard is a desynchronised one).
    fn burst_on(
        &self,
        mut conn: PooledConn,
        requests: &[ShardRequest],
    ) -> Result<Vec<ShardResponse>, WireError> {
        let budget = requests
            .iter()
            .map(|request| self.read_budget_for(request))
            .fold(Duration::ZERO, Duration::saturating_add);
        conn.transport.set_read_budget(budget)?;
        let first_id = self
            .next_id
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let encoding = self.frame_encoding();
        let result = FRAME_SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut();
            BURST_SCRATCH.with(|burst_cell| {
                let burst = &mut burst_cell.borrow_mut();
                burst.clear();
                for (offset, request) in requests.iter().enumerate() {
                    write_request_frame_dict(
                        &mut **burst,
                        first_id + offset as u64,
                        request,
                        encoding,
                        scratch,
                        &mut conn.codec.tx,
                    )?;
                }
                conn.transport.write_all(burst)?;
                conn.transport.flush()?;
                self.counters
                    .bytes_sent
                    .fetch_add(burst.len() as u64, Ordering::Relaxed);
                Ok::<(), WireError>(())
            })?;
            let mut responses = Vec::with_capacity(requests.len());
            for offset in 0..requests.len() as u64 {
                let (id, response, received) =
                    read_response_frame_dict(&mut conn.transport, scratch, &mut conn.codec.rx)?
                        .ok_or_else(|| {
                            WireError::Io(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "shard closed the connection mid-burst",
                            ))
                        })?;
                self.counters
                    .bytes_received
                    .fetch_add(received, Ordering::Relaxed);
                if id != first_id + offset {
                    return Err(WireError::Rejected(format!(
                        "shard answered burst frame {} with id {id}",
                        first_id + offset
                    )));
                }
                responses.push(response);
            }
            Ok::<Vec<ShardResponse>, WireError>(responses)
        });
        let (defines, hits) = conn.codec.take_counts();
        self.counters.note_dict(defines, hits);
        let responses = result?;
        self.counters
            .frames_coalesced
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        if conn.transport.is_ring() {
            self.counters
                .ring_exchanges
                .fetch_add(requests.len() as u64, Ordering::Relaxed);
        }
        if responses
            .iter()
            .all(|response| !matches!(response, ShardResponse::Rejected(_)))
        {
            self.checkin(conn);
        }
        Ok(responses)
    }

    /// Returns a connection to the pool, bounded by the configured size.
    fn checkin(&self, conn: PooledConn) {
        let mut idle = self.idle.lock().expect("pool idle lock");
        if idle.len() < self.config.pool_size {
            idle.push(conn);
        }
        // Over the bound (or pool_size 0): drop, closing the transport.
    }
}

/// Probes an idle pooled connection: healthy means "no pending bytes, no
/// error" — a non-blocking 1-byte peek must say `WouldBlock`.  `Ok(0)` is
/// the peer's FIN (a reaped or restarted shard), `Ok(_)` is a protocol
/// desynchronisation (the peer sent bytes we never asked for); both make
/// the connection unusable.
fn connection_is_idle_and_live(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let mut live = false;
    // Retry a signal-interrupted peek exactly once: `EINTR` says nothing
    // about the socket's health, only that a signal landed mid-syscall.
    for attempt in 0..2 {
        live = match stream.peek(&mut probe) {
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => true,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted && attempt == 0 => continue,
            _ => false,
        };
        break;
    }
    // Restore blocking mode on *every* verdict — a connection handed out
    // still in nonblocking mode would turn its next exchange's reads into
    // spurious `WouldBlock` transport errors.  A healthy probe whose mode
    // restore fails is unusable too.
    let restored = stream.set_nonblocking(false).is_ok();
    live && restored
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// A raw echo-ish peer: accepts connections and answers every frame
    /// with a fixed rejection, counting connections accepted.
    fn rejecting_peer() -> (String, std::sync::Arc<AtomicU64>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind peer");
        let addr = listener.local_addr().expect("peer addr").to_string();
        let accepted = std::sync::Arc::new(AtomicU64::new(0));
        let count = std::sync::Arc::clone(&accepted);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                count.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let mut prefix = [0u8; 4];
                    while stream.read_exact(&mut prefix).is_ok() {
                        let len = u32::from_be_bytes(prefix) as usize;
                        let mut payload = vec![0u8; len];
                        if stream.read_exact(&mut payload).is_err() {
                            return;
                        }
                        let body = br#"{"id": 0, "ok": true, "supported": true}"#;
                        let frame_len = (body.len() as u32).to_be_bytes();
                        if stream.write_all(&frame_len).is_err() || stream.write_all(body).is_err()
                        {
                            return;
                        }
                    }
                });
            }
        });
        (addr, accepted)
    }

    fn probe_request() -> ShardRequest {
        ShardRequest::Supports {
            backend: "any".to_string(),
            spec: rsn_eval::WorkloadSpec::PowerBreakdown,
        }
    }

    #[test]
    fn pooled_exchanges_reuse_one_connection() {
        let (addr, accepted) = rejecting_peer();
        let pool = ConnectionPool::new(&addr, RemoteConfig::default());
        for _ in 0..5 {
            let response = pool.exchange(&probe_request()).expect("exchange");
            assert_eq!(response, ShardResponse::Supported(true));
        }
        let stats = pool.stats();
        assert_eq!(accepted.load(Ordering::SeqCst), 1, "one dial serves all");
        assert_eq!(stats.checkouts, 5);
        assert_eq!(stats.dials, 1);
        assert_eq!(stats.reused, 4);
        assert_eq!(stats.redials, 0);
        assert_eq!(pool.idle_connections(), 1);
    }

    #[test]
    fn pool_size_zero_dials_every_exchange() {
        let (addr, accepted) = rejecting_peer();
        let pool = ConnectionPool::new(
            &addr,
            RemoteConfig {
                pool_size: 0,
                ..RemoteConfig::default()
            },
        );
        for _ in 0..3 {
            pool.exchange(&probe_request()).expect("exchange");
        }
        // Give the peer threads a beat to register the accepts.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(accepted.load(Ordering::SeqCst), 3);
        let stats = pool.stats();
        assert_eq!(stats.dials, 3);
        assert_eq!(stats.reused, 0);
        assert_eq!(pool.idle_connections(), 0);
    }

    #[test]
    fn dead_idle_connections_are_discarded_then_redialled() {
        let (addr, _accepted) = rejecting_peer();
        let pool = ConnectionPool::new(&addr, RemoteConfig::default());
        pool.exchange(&probe_request()).expect("warm the pool");
        assert_eq!(pool.idle_connections(), 1);
        // Sabotage the idle connection from our side: close it so the
        // health probe sees a dead socket at the next checkout.
        {
            let idle = pool.idle.lock().expect("idle lock");
            match &idle[0].transport {
                Transport::Tcp(stream) => stream
                    .shutdown(std::net::Shutdown::Both)
                    .expect("shutdown idle conn"),
                Transport::Ring(_) => unreachable!("the test peer never offers a ring"),
            }
        }
        let response = pool.exchange(&probe_request()).expect("exchange survives");
        assert_eq!(response, ShardResponse::Supported(true));
        let stats = pool.stats();
        assert_eq!(stats.discarded + stats.redials, 1, "dead conn was noticed");
        assert_eq!(stats.dials, 2, "a fresh dial replaced it");
        assert_eq!(pool.idle_connections(), 1, "the pool refilled");
    }

    #[test]
    fn unreachable_address_fails_with_io_error_not_a_hang() {
        // A bound-then-dropped listener: nobody is listening there now.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        };
        let pool = ConnectionPool::new(
            &addr,
            RemoteConfig {
                connect_timeout: std::time::Duration::from_millis(500),
                ..RemoteConfig::default()
            },
        );
        let started = std::time::Instant::now();
        match pool.exchange(&probe_request()) {
            Err(WireError::Io(_)) => {}
            other => panic!("expected an I/O error, got {other:?}"),
        }
        assert!(started.elapsed() < std::time::Duration::from_secs(5));
        assert_eq!(pool.stats().dials, 1);
    }
}
