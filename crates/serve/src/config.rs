//! Service tuning knobs.

use std::time::Duration;

/// Configuration of an [`EvalService`](crate::EvalService).
///
/// The two batching knobs bound the micro-batcher from both sides: a batch
/// is dispatched as soon as it holds [`max_batch`](Self::max_batch) requests
/// *or* as soon as [`batch_deadline`](Self::batch_deadline) has elapsed since
/// its first request arrived, whichever comes first.  Small deadlines favour
/// latency, large batches favour throughput (fewer queue and cache
/// transactions per report).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Maximum requests coalesced into one batch (size bound).
    pub max_batch: usize,
    /// Maximum time a batch waits for more requests (deadline bound).
    pub batch_deadline: Duration,
    /// Worker threads per backend shard.  Each worker owns a handle to one
    /// backend and serves only that backend's work queue, so a slow or
    /// poisoned backend can never stall another backend's requests.
    pub workers_per_backend: usize,
    /// Optional bound on completed report-cache entries.  `None` (the
    /// default) keeps the cache append-only — correct for deterministic
    /// backends but unbounded in memory when the spec stream churns.
    /// `Some(n)` evicts the least-recently-used *completed* entry once more
    /// than `n` are resident (in-flight entries are never evicted; they are
    /// owed to waiters).  Evictions are counted in
    /// [`ServiceStats::evictions`](crate::ServiceStats::evictions).
    pub cache_capacity: Option<usize>,
}

impl ServiceConfig {
    /// A configuration with the given batch size bound and the default
    /// deadline/worker settings.
    pub fn with_max_batch(max_batch: usize) -> Self {
        Self {
            max_batch: max_batch.max(1),
            ..Self::default()
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            batch_deadline: Duration::from_millis(1),
            workers_per_backend: 2,
            cache_capacity: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let cfg = ServiceConfig::default();
        assert!(cfg.max_batch >= 1);
        assert!(cfg.workers_per_backend >= 1);
        assert!(cfg.batch_deadline > Duration::ZERO);
    }

    #[test]
    fn with_max_batch_clamps_zero() {
        assert_eq!(ServiceConfig::with_max_batch(0).max_batch, 1);
        assert_eq!(ServiceConfig::with_max_batch(64).max_batch, 64);
    }
}
