//! Service tuning knobs.

use std::time::Duration;

/// Which wire encoding the remote layer uses (see [`crate::binary`] and
/// the negotiation rules in [`crate::wire`]).
///
/// On the client side this decides what a connection pool *sends*: `Auto`
/// sends JSON until the hello handshake has learned the shard speaks
/// protocol ≥ 3, then switches to binary.  On the server side it decides
/// what a shard *answers with*: `Auto` mirrors each request's encoding (so
/// old JSON clients keep working), `Json` forces readable frames for
/// debugging (`shardd --encoding json`, or the topology's `encoding`
/// knob), and `Binary` forces the compact codec even for JSON requests —
/// only useful when every client is known to be version ≥ 3.
/// `BinaryNodict` is `Binary` with the protocol-7 symbol dictionaries
/// forced off: frames stay stateless plain binary even against v7 peers,
/// for debugging dictionary suspicion and for the bench's v7-vs-v6
/// same-run comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingPolicy {
    /// Negotiate per peer: dictionary binary with v7 peers, plain binary
    /// with v3–v6 peers, JSON otherwise.
    #[default]
    Auto,
    /// Always JSON (the debugging / archaeology setting).
    Json,
    /// Binary, with dictionaries where the peer negotiates v7 (requires
    /// every peer to speak protocol ≥ 3).
    Binary,
    /// Binary with symbol dictionaries forced off — every frame is the
    /// stateless plain image, even against v7 peers.
    BinaryNodict,
}

impl EncodingPolicy {
    /// The policy's topology-file / CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            EncodingPolicy::Auto => "auto",
            EncodingPolicy::Json => "json",
            EncodingPolicy::Binary => "binary",
            EncodingPolicy::BinaryNodict => "binary_nodict",
        }
    }

    /// Parses the topology-file / CLI spelling.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "auto" => Some(EncodingPolicy::Auto),
            "json" => Some(EncodingPolicy::Json),
            "binary" => Some(EncodingPolicy::Binary),
            "binary_nodict" => Some(EncodingPolicy::BinaryNodict),
            _ => None,
        }
    }
}

impl std::fmt::Display for EncodingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which transport the remote layer rides (see [`crate::shm`] for the
/// shared-memory ring and the negotiation rules).
///
/// On the server side this decides whether a shard *offers* a ring segment
/// in its hello response: `Auto` offers one to loopback peers, `Shm`
/// offers one to every peer (for operators who know their clients are
/// local, e.g. behind a proxy address), `Socket` never offers.  On the
/// client side it decides whether a pool *accepts* an offer: `Socket`
/// ignores ring offers, anything else maps the segment and switches —
/// falling back to the socket transparently if mapping fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportPolicy {
    /// Negotiate per peer: shared memory where the hello advertises a
    /// mappable same-host segment, the socket otherwise.
    #[default]
    Auto,
    /// Sockets only — never offer nor accept a ring segment.
    Socket,
    /// Offer a ring to every peer (server) / accept any offer (client).
    Shm,
}

impl TransportPolicy {
    /// The policy's topology-file / CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            TransportPolicy::Auto => "auto",
            TransportPolicy::Socket => "socket",
            TransportPolicy::Shm => "shm",
        }
    }

    /// Parses the topology-file / CLI spelling.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "auto" => Some(TransportPolicy::Auto),
            "socket" => Some(TransportPolicy::Socket),
            "shm" => Some(TransportPolicy::Shm),
            _ => None,
        }
    }
}

impl std::fmt::Display for TransportPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a shard server drives its connections (see [`crate::reactor`]).
///
/// `Threads` is the classic one-blocking-thread-per-connection front end:
/// simple, debuggable, strictly FIFO per connection.  `Reactor` serves
/// every connection from one nonblocking event-loop thread, which unlocks
/// the protocol-5 features — out-of-order completion, cancellation, a
/// per-connection credit window — and scales to thousands of idle
/// connections without a thread each.  The reactor never offers
/// shared-memory rings (same-host deployments wanting rings should stay on
/// `Threads`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontendPolicy {
    /// One blocking serve thread per connection (the default).
    #[default]
    Threads,
    /// One nonblocking event-loop thread for every connection
    /// (`shardd --frontend reactor`).
    Reactor,
}

impl FrontendPolicy {
    /// The policy's topology-file / CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FrontendPolicy::Threads => "threads",
            FrontendPolicy::Reactor => "reactor",
        }
    }

    /// Parses the topology-file / CLI spelling.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "threads" => Some(FrontendPolicy::Threads),
            "reactor" => Some(FrontendPolicy::Reactor),
            _ => None,
        }
    }
}

impl std::fmt::Display for FrontendPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration of an [`EvalService`](crate::EvalService).
///
/// The two batching knobs bound the micro-batcher from both sides: a batch
/// is dispatched as soon as it holds [`max_batch`](Self::max_batch) requests
/// *or* as soon as [`batch_deadline`](Self::batch_deadline) has elapsed since
/// its first request arrived, whichever comes first.  Small deadlines favour
/// latency, large batches favour throughput (fewer queue and cache
/// transactions per report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum requests coalesced into one batch (size bound).
    pub max_batch: usize,
    /// Maximum time a batch waits for more requests (deadline bound).
    pub batch_deadline: Duration,
    /// Worker threads per backend shard.  Each worker owns a handle to one
    /// backend and serves only that backend's work queue, so a slow or
    /// poisoned backend can never stall another backend's requests.
    pub workers_per_backend: usize,
    /// Optional bound on completed report-cache entries.  `None` (the
    /// default) keeps the cache append-only — correct for deterministic
    /// backends but unbounded in memory when the spec stream churns.
    /// `Some(n)` evicts the least-recently-used *completed* entry once more
    /// than `n` are resident (in-flight entries are never evicted; they are
    /// owed to waiters).  Evictions are counted in
    /// [`ServiceStats::evictions`](crate::ServiceStats::evictions).
    pub cache_capacity: Option<usize>,
    /// Optional per-class queue-age budgets (SLOs), indexed by
    /// [`Priority::index`](crate::Priority).  When a class has a budget and
    /// a request of that class reaches the batcher already older than it,
    /// the request is *shed*: fast-failed with
    /// [`EvalError::Overloaded`](rsn_eval::EvalError::Overloaded) instead
    /// of evaluated.  Under sustained overload this keeps the classes with
    /// budgets inside (a small multiple of) them, at the price of errors
    /// for the excess offered load.  `None` (every class, the default)
    /// never sheds on age.
    pub class_budgets: [Option<Duration>; 3],
    /// Optional bound on requests resident in the pending queues.  A
    /// submission that would push the total past this is refused whole with
    /// [`EvalError::Overloaded`](rsn_eval::EvalError::Overloaded) — the
    /// admission gate that bounds queue memory under an open-loop overload
    /// (arrivals that do not slow down when responses lag).  `None` (the
    /// default) admits everything.
    pub queue_capacity: Option<usize>,
    /// Transport tuning of remote backend shards (connection pooling,
    /// timeouts).  Ignored by services with no remote shards.
    pub remote: RemoteConfig,
}

/// Transport tuning of the cross-process shard layer: every timeout the
/// remote path applies, plus the per-shard connection-pool bound.  One
/// place instead of scattered constants, so deployments (and the topology
/// file) can tune them together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteConfig {
    /// Bound on establishing a TCP connection to a shard server.  A
    /// blackholed shard host (dropped SYNs, no RST) fails within this,
    /// not the OS's multi-minute TCP default.
    pub connect_timeout: Duration,
    /// Bound on each socket read and write of an exchange, so a hung shard
    /// yields [`EvalError::Transport`](rsn_eval::EvalError::Transport),
    /// never a stuck worker.
    pub io_timeout: Duration,
    /// Idle connections retained per shard connection pool.  `0` disables
    /// pooling entirely: every exchange dials a fresh connection (the
    /// pre-pool behaviour, kept measurable for the serve benchmark's
    /// pooled-vs-unpooled comparison).
    pub pool_size: usize,
    /// How long a shard *server* lets a connection sit idle between
    /// requests before reaping it.  Pooled clients re-dial transparently
    /// when a reaped connection is found dead at checkout.
    pub server_idle_timeout: Duration,
    /// Which wire encoding to speak (client: what pools send; server: what
    /// shards answer with).  The default `Auto` negotiates binary with v3
    /// peers and falls back to JSON against older ones.
    pub encoding: EncodingPolicy,
    /// Which transport to ride (client: whether pools accept a shard's
    /// ring offer; server: whether shards make one).  The default `Auto`
    /// uses shared memory for same-host connections and the socket
    /// everywhere else.
    pub transport: TransportPolicy,
    /// How a shard server drives its connections: blocking
    /// thread-per-connection, or the nonblocking reactor event loop that
    /// enables protocol-5 multiplexing.  Client pools ignore this knob —
    /// they follow the server's hello (a shard that advertises a credit
    /// window gets a multiplexed connection).
    pub frontend: FrontendPolicy,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(30),
            pool_size: 4,
            server_idle_timeout: Duration::from_secs(60),
            encoding: EncodingPolicy::Auto,
            transport: TransportPolicy::Auto,
            frontend: FrontendPolicy::Threads,
        }
    }
}

/// Circuit-breaker tuning for one replica of a replicated backend (the
/// topology's `replicas[].breaker` object; see [`crate::fleet`]).
///
/// Each replica keeps a rolling window of its last
/// [`window`](Self::window) exchange outcomes.  When
/// [`max_failures`](Self::max_failures) or more of them are failures the
/// breaker *trips open*: the fleet router stops offering that replica
/// work (counted as
/// [`breaker_fast_fails`](crate::ServiceStats::remote_pools) on skip) and
/// siblings absorb its share.  After [`cooldown`](Self::cooldown) the
/// breaker goes *half-open* and the next checkout runs the pool's hello
/// health check as a probe: success closes the breaker, failure re-opens
/// it for another cooldown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Rolling outcome-window length (exchanges remembered per replica).
    pub window: usize,
    /// Failures within the window that trip the breaker open.
    pub max_failures: usize,
    /// How long a tripped breaker stays open before the half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 8,
            max_failures: 4,
            cooldown: Duration::from_secs(1),
        }
    }
}

impl ServiceConfig {
    /// A configuration with the given batch size bound and the default
    /// deadline/worker settings.
    pub fn with_max_batch(max_batch: usize) -> Self {
        Self {
            max_batch: max_batch.max(1),
            ..Self::default()
        }
    }

    /// Returns the configuration with `priority`'s queue-age budget set.
    pub fn with_class_budget(mut self, priority: crate::Priority, budget: Duration) -> Self {
        self.class_budgets[priority.index()] = Some(budget);
        self
    }

    /// The queue-age budget of `priority`, if one is configured.
    pub fn class_budget(&self, priority: crate::Priority) -> Option<Duration> {
        self.class_budgets[priority.index()]
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            batch_deadline: Duration::from_millis(1),
            workers_per_backend: 2,
            cache_capacity: None,
            class_budgets: [None; 3],
            queue_capacity: None,
            remote: RemoteConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let cfg = ServiceConfig::default();
        assert!(cfg.max_batch >= 1);
        assert!(cfg.workers_per_backend >= 1);
        assert!(cfg.batch_deadline > Duration::ZERO);
    }

    #[test]
    fn remote_defaults_are_ordered_sensibly() {
        let remote = RemoteConfig::default();
        // Connect must give up well before an exchange does, and a pooled
        // connection must be reusable by default.
        assert!(remote.connect_timeout <= remote.io_timeout);
        assert!(remote.pool_size >= 1);
        // The server reaps idle connections no sooner than a client-side
        // exchange may legitimately take, so a pooled connection is never
        // reaped out from under an in-flight request.
        assert!(remote.server_idle_timeout >= remote.io_timeout);
    }

    #[test]
    fn with_max_batch_clamps_zero() {
        assert_eq!(ServiceConfig::with_max_batch(0).max_batch, 1);
        assert_eq!(ServiceConfig::with_max_batch(64).max_batch, 64);
    }

    #[test]
    fn breaker_defaults_are_consistent() {
        let breaker = BreakerConfig::default();
        // The trip threshold must be reachable within the window, and a
        // tripped breaker must actually rest before its half-open probe.
        assert!(breaker.max_failures <= breaker.window);
        assert!(breaker.max_failures >= 1);
        assert!(breaker.cooldown > Duration::ZERO);
    }

    #[test]
    fn encoding_policy_spellings_round_trip() {
        for policy in [
            EncodingPolicy::Auto,
            EncodingPolicy::Json,
            EncodingPolicy::Binary,
            EncodingPolicy::BinaryNodict,
        ] {
            assert_eq!(EncodingPolicy::parse(policy.as_str()), Some(policy));
        }
        assert_eq!(EncodingPolicy::parse("yaml"), None);
        assert_eq!(RemoteConfig::default().encoding, EncodingPolicy::Auto);
    }

    #[test]
    fn transport_policy_spellings_round_trip() {
        for policy in [
            TransportPolicy::Auto,
            TransportPolicy::Socket,
            TransportPolicy::Shm,
        ] {
            assert_eq!(TransportPolicy::parse(policy.as_str()), Some(policy));
        }
        assert_eq!(TransportPolicy::parse("pipe"), None);
        assert_eq!(RemoteConfig::default().transport, TransportPolicy::Auto);
    }

    #[test]
    fn frontend_policy_spellings_round_trip() {
        for policy in [FrontendPolicy::Threads, FrontendPolicy::Reactor] {
            assert_eq!(FrontendPolicy::parse(policy.as_str()), Some(policy));
        }
        assert_eq!(FrontendPolicy::parse("tokio"), None);
        // Threads stays the default so existing deployments (and the
        // shared-memory ring negotiation) are untouched by the reactor.
        assert_eq!(RemoteConfig::default().frontend, FrontendPolicy::Threads);
    }
}
