//! Nonblocking event-loop front ends for the shard wire: a hand-rolled
//! `epoll` reactor (with a portable `poll` fallback) serving every shard
//! connection from one thread, and the client-side `Multiplexer` that
//! keeps many requests in flight on one connection.
//!
//! # Why a reactor
//!
//! The thread-per-connection front end in [`crate::remote`] is simple and
//! strictly FIFO: each connection's serving thread blocks in `read`, so a
//! slow evaluation at the head of a connection stalls everything queued
//! behind it, and a thousand idle pooled connections pin a thousand
//! threads.  The reactor inverts that: every connection is a small state
//! machine stepped by readiness events, evaluations run through the
//! service's worker pools via completion callbacks, and responses leave in
//! *completion* order — protocol 5 clients match them back up by request
//! id.
//!
//! ```text
//!             ┌───────────── reactor thread ──────────────┐
//!   accept ──►│ tokens: listener │ wake pipe │ conns…     │
//!             └────┬──────────────────────────────┬───────┘
//!    epoll/poll    │ socket readable              │ completion queue
//!                  ▼                              ▼
//!             ┌─ per-connection state machine ────────────┐
//!             │ READ   FrameBuffer::fill → take_frame     │
//!             │        hello/supports/stats/cancel inline │
//!             │        evaluate → submit_batch_callback   │
//!             │ DONE   encode → out buffer (held for      │
//!             │        FIFO order on pre-v5 peers)        │
//!             │ WRITE  drain out; partial ⇒ want-write    │
//!             └───────────────────────────────────────────┘
//! ```
//!
//! # Protocol-5 negotiation
//!
//! A client that sends `hello { protocol: 5 }` to a reactor-fronted shard
//! is answered with a credit `window`: the shard will accept up to that
//! many request frames in flight on the connection, answers them in
//! completion order, and honours `cancel` frames (the slot frees, the
//! eventual stale response is suppressed).  Everything older — or any
//! peer on the threads front end — gets no window and keeps the strict
//! FIFO contract: the reactor holds out-of-order completions and releases
//! them in request order, byte-identically to the blocking front end.
//!
//! The reactor never offers shared-memory rings (a ring's busy-poll
//! consumer has no place on an event loop); same-host deployments that
//! want rings should stay on `--frontend threads`.
//!
//! # Backpressure
//!
//! Credits are enforced on the server by *not reading*: once a protocol-5
//! connection has `window` evaluations in flight, its frames stay in the
//! kernel socket buffer (read interest is dropped) until a completion
//! frees a slot — TCP flow control pushes back to the client, whose own
//! `Multiplexer` blocks submitters on the same window.

use crate::binary::{ConnCodec, RxSymbols, TxSymbols};
use crate::config::EncodingPolicy;
use crate::pool::PoolCounters;
use crate::request::{BackendSelector, EvalResponse, Priority};
use crate::service::EvalService;
use crate::wire::{
    decode_request_payload_dict, decode_response_payload_dict, write_request_frame_dict,
    write_response_frame, write_response_frame_dict, FrameBuffer, ShardRequest, ShardResponse,
    SharedResult, WireEncoding, WireError, LATENCY_STATS_PROTOCOL, MUX_PROTOCOL, PROTOCOL_VERSION,
};
use rsn_eval::EvalError;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Request frames a protocol-5 connection may have in flight before the
/// reactor stops reading it (and the client [`Multiplexer`] blocks
/// submitters).  Large enough to keep a shard's worker pools saturated
/// from one connection, small enough that one greedy connection cannot
/// monopolise the completion queue.
pub(crate) const CREDIT_WINDOW: u64 = 32;

// ---------------------------------------------------------------------------
// Raw readiness syscalls.  The std net surface has no readiness API, and
// this crate adds no dependencies, so the handful of calls the event loop
// needs are declared directly (std already links libc on every supported
// target) — the same approach `crate::shm` takes for `mmap`.
// ---------------------------------------------------------------------------

mod sys {
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const F_GETFL: i32 = 3;
    pub const F_SETFL: i32 = 4;
    pub const O_NONBLOCK: i32 = 0o4000;
}

#[cfg(target_os = "linux")]
mod sys_epoll {
    /// The kernel ABI packs this struct on x86-64 (and only there).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
}

/// Puts a raw descriptor into nonblocking mode.
fn set_nonblocking_fd(fd: i32) -> std::io::Result<()> {
    unsafe {
        let flags = sys::fcntl(fd, sys::F_GETFL, 0);
        if flags < 0 {
            return Err(std::io::Error::last_os_error());
        }
        if sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) < 0 {
            return Err(std::io::Error::last_os_error());
        }
    }
    Ok(())
}

/// A self-pipe for waking a blocked readiness wait from another thread:
/// completion callbacks (and multiplexer submitters) write one byte, the
/// event loop sees the read end become readable and drains it.  Both ends
/// are nonblocking, so a wake against an already-pending pipe is a no-op
/// (`EAGAIN`), never a stall.
#[derive(Debug)]
pub(crate) struct WakePipe {
    read_fd: i32,
    write_fd: i32,
}

impl WakePipe {
    fn new() -> std::io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        let pipe = WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        set_nonblocking_fd(pipe.read_fd)?;
        set_nonblocking_fd(pipe.write_fd)?;
        Ok(pipe)
    }

    /// The readable end, for registration with a [`Poller`].
    fn read_fd(&self) -> i32 {
        self.read_fd
    }

    /// Makes the read end readable.  Failure (a full pipe) is fine: a full
    /// pipe is by definition already waking its reader.
    fn wake(&self) {
        let byte = [1u8];
        unsafe {
            let _ = sys::write(self.write_fd, byte.as_ptr(), 1);
        }
    }

    /// Consumes every pending wake byte.
    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

const INTEREST_READ: u8 = 0b01;
const INTEREST_WRITE: u8 = 0b10;

/// One readiness event: the registered token plus what the descriptor is
/// ready for.  Errors and hangups surface as readable *and* writable —
/// the next `read`/`write` reports the concrete failure.
#[derive(Debug, Clone, Copy)]
struct Event {
    token: u64,
    readable: bool,
    writable: bool,
}

/// A minimal readiness selector: `epoll` on Linux (scales past the
/// `poll` array rebuild for many-connection shards), a portable `poll`
/// registration list everywhere else — and on Linux too, should
/// `epoll_create1` fail at runtime.
#[derive(Debug)]
enum Poller {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: i32,
    },
    Poll {
        entries: Vec<(i32, u64, u8)>,
    },
}

impl Poller {
    fn new() -> std::io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let epfd = unsafe { sys_epoll::epoll_create1(0) };
            if epfd >= 0 {
                return Ok(Poller::Epoll { epfd });
            }
        }
        Ok(Poller::Poll {
            entries: Vec::new(),
        })
    }

    #[cfg(target_os = "linux")]
    fn epoll_bits(interest: u8) -> u32 {
        let mut bits = 0;
        if interest & INTEREST_READ != 0 {
            bits |= sys_epoll::EPOLLIN;
        }
        if interest & INTEREST_WRITE != 0 {
            bits |= sys_epoll::EPOLLOUT;
        }
        bits
    }

    #[cfg(target_os = "linux")]
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, token: u64, interest: u8) -> std::io::Result<()> {
        let mut event = sys_epoll::EpollEvent {
            events: Self::epoll_bits(interest),
            data: token,
        };
        if unsafe { sys_epoll::epoll_ctl(epfd, op, fd, &mut event) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn register(&mut self, fd: i32, token: u64, interest: u8) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd } => {
                Self::epoll_ctl(*epfd, sys_epoll::EPOLL_CTL_ADD, fd, token, interest)
            }
            Poller::Poll { entries } => {
                entries.push((fd, token, interest));
                Ok(())
            }
        }
    }

    fn modify(&mut self, fd: i32, token: u64, interest: u8) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd } => {
                Self::epoll_ctl(*epfd, sys_epoll::EPOLL_CTL_MOD, fd, token, interest)
            }
            Poller::Poll { entries } => {
                for entry in entries.iter_mut() {
                    if entry.0 == fd {
                        entry.2 = interest;
                    }
                }
                Ok(())
            }
        }
    }

    fn deregister(&mut self, fd: i32) {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd } => {
                let _ = Self::epoll_ctl(*epfd, sys_epoll::EPOLL_CTL_DEL, fd, 0, 0);
            }
            Poller::Poll { entries } => entries.retain(|entry| entry.0 != fd),
        }
    }

    /// Blocks up to `timeout_ms` for readiness, appending events to
    /// `events` (cleared first).  A signal interruption reports no events
    /// rather than an error.
    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> std::io::Result<()> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd } => {
                let mut buf = [sys_epoll::EpollEvent { events: 0, data: 0 }; 64];
                let n = unsafe {
                    sys_epoll::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                if n < 0 {
                    let error = std::io::Error::last_os_error();
                    if error.kind() == std::io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(error);
                }
                for slot in buf.iter().take(n as usize) {
                    // Copy out of the (packed) ABI struct before use.
                    let entry = *slot;
                    let bits = entry.events;
                    let failed = bits & (sys_epoll::EPOLLERR | sys_epoll::EPOLLHUP) != 0;
                    events.push(Event {
                        token: entry.data,
                        readable: failed || bits & sys_epoll::EPOLLIN != 0,
                        writable: failed || bits & sys_epoll::EPOLLOUT != 0,
                    });
                }
                Ok(())
            }
            Poller::Poll { entries } => {
                let mut fds: Vec<sys::PollFd> = entries
                    .iter()
                    .map(|&(fd, _, interest)| {
                        let mut bits = 0i16;
                        if interest & INTEREST_READ != 0 {
                            bits |= sys::POLLIN;
                        }
                        if interest & INTEREST_WRITE != 0 {
                            bits |= sys::POLLOUT;
                        }
                        sys::PollFd {
                            fd,
                            events: bits,
                            revents: 0,
                        }
                    })
                    .collect();
                let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
                if n < 0 {
                    let error = std::io::Error::last_os_error();
                    if error.kind() == std::io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(error);
                }
                for (slot, &(_, token, _)) in fds.iter().zip(entries.iter()) {
                    let bits = slot.revents;
                    if bits == 0 {
                        continue;
                    }
                    let failed = bits & (sys::POLLERR | sys::POLLHUP) != 0;
                    events.push(Event {
                        token,
                        readable: failed || bits & sys::POLLIN != 0,
                        writable: failed || bits & sys::POLLOUT != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Poller::Epoll { epfd } = self {
            unsafe {
                sys::close(*epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Server side: the reactor front end.
// ---------------------------------------------------------------------------

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// A finished evaluation on its way back to the reactor thread: pushed by
/// a worker-pool completion callback, drained after the wake byte lands.
struct DoneEntry {
    token: u64,
    id: u64,
    single: bool,
    expected: usize,
    encoding: WireEncoding,
    response: EvalResponse,
}

/// The channel between worker-pool callbacks and the reactor thread.
struct CompletionQueue {
    done: Mutex<Vec<DoneEntry>>,
    wake: WakePipe,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    fd: i32,
    frames: FrameBuffer,
    /// Encoded response bytes not yet written; `out_pos` marks the prefix
    /// the socket has accepted.
    out: Vec<u8>,
    out_pos: usize,
    /// The peer's protocol from its hello; 0 until one arrives (treated
    /// as version 1: strict FIFO, no credit window).
    peer_protocol: u64,
    /// Ids owed a response, in request order — only maintained for
    /// pre-v5 peers, whose blocking clients read responses sequentially.
    order: VecDeque<u64>,
    /// Completed responses held until their id reaches the front of
    /// `order` (pre-v5 peers only).
    fifo_done: HashMap<u64, Vec<u8>>,
    /// Evaluations submitted to the worker pools, not yet completed.
    inflight: u64,
    /// Ids whose `cancel` arrived before their completion: the response
    /// is suppressed when it surfaces.
    cancelled: HashSet<u64>,
    /// Flush `out`, then close (set after a framing error: the stream
    /// position can no longer be trusted).
    closing: bool,
    /// Read interest dropped: the credit window is exhausted, frames stay
    /// in the kernel buffer until a completion frees a slot.
    read_paused: bool,
    /// Interest bits currently registered with the poller.
    interest: u8,
    dead: bool,
    last_activity: Instant,
    /// Protocol-7 symbol dictionaries: `rx` interns the labels this peer
    /// defines in its request frames, `tx` tracks what this side has
    /// defined in its responses.  Reset with the connection, never shared.
    codec: ConnCodec,
}

impl Conn {
    fn new(stream: TcpStream, fd: i32) -> Conn {
        Conn {
            stream,
            fd,
            frames: FrameBuffer::new(),
            out: Vec::new(),
            out_pos: 0,
            peer_protocol: 0,
            order: VecDeque::new(),
            fifo_done: HashMap::new(),
            inflight: 0,
            cancelled: HashSet::new(),
            closing: false,
            read_paused: false,
            interest: INTEREST_READ,
            dead: false,
            last_activity: Instant::now(),
            codec: ConnCodec::new(),
        }
    }

    /// Whether this peer negotiated out-of-order completion (protocol 5).
    fn fifo(&self) -> bool {
        self.peer_protocol < MUX_PROTOCOL
    }

    fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// Encodes one response frame into a fresh buffer; a response too large
/// for the frame bound degrades to a protocol-level rejection so the
/// connection (and, for FIFO peers, the response order) survives.  A
/// *dictionary* frame that hits the bound also winds the connection down:
/// the symbol table may have advanced past the discarded frame, so later
/// references would desynchronise the peer.
fn encode_response(
    conn: &mut Conn,
    id: u64,
    response: &ShardResponse,
    encoding: WireEncoding,
    scratch: &mut Vec<u8>,
) -> Vec<u8> {
    let mut bytes = Vec::new();
    if write_response_frame_dict(
        &mut bytes,
        id,
        response,
        encoding,
        scratch,
        &mut conn.codec.tx,
    )
    .is_ok()
    {
        return bytes;
    }
    bytes.clear();
    let fallback = ShardResponse::Rejected("response exceeded the frame bound".to_string());
    let _ = write_response_frame(&mut bytes, id, &fallback, WireEncoding::Json, scratch);
    if encoding == WireEncoding::BinaryDict {
        conn.closing = true;
    }
    bytes
}

/// Queues one encoded response on a connection: straight to the out
/// buffer for protocol-5 peers (completion order *is* the wire order),
/// held for request order on older ones.
fn queue_response(conn: &mut Conn, id: u64, bytes: Vec<u8>) {
    if conn.fifo() {
        conn.fifo_done.insert(id, bytes);
        flush_fifo(conn);
    } else {
        conn.out.extend_from_slice(&bytes);
    }
}

/// Releases every held response whose id has reached the front of the
/// request order.
fn flush_fifo(conn: &mut Conn) {
    while let Some(&front) = conn.order.front() {
        match conn.fifo_done.remove(&front) {
            Some(bytes) => {
                conn.out.extend_from_slice(&bytes);
                conn.order.pop_front();
            }
            None => break,
        }
    }
}

/// Shapes a completed [`EvalResponse`] into the response the request's
/// form owes, padding defensively so a shape mismatch surfaces as a
/// domain error, never a desync (mirrors the threads front end).
fn completed_response(response: EvalResponse, expected: usize, single: bool) -> ShardResponse {
    let mut results: Vec<SharedResult> = response
        .results
        .into_iter()
        .map(|(_, result)| result)
        .collect();
    while results.len() < expected {
        results.push(Arc::new(Err(EvalError::Remote {
            message: "shard produced no result slot".to_string(),
        })));
    }
    results.truncate(expected.max(1));
    if single {
        ShardResponse::Evaluated(results.remove(0))
    } else {
        ShardResponse::EvaluatedBatch(results)
    }
}

/// Handles one decoded request frame on `conn`.
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    conn: &mut Conn,
    token: u64,
    payload: &[u8],
    service: &EvalService,
    completions: &Arc<CompletionQueue>,
    policy: EncodingPolicy,
    scratch: &mut Vec<u8>,
) {
    let Ok((id, request, request_encoding)) =
        decode_request_payload_dict(payload, &mut conn.codec.rx)
    else {
        // The encoding never decoded, so answer in JSON (readable by every
        // protocol version) and wind the connection down: after a framing
        // error the stream position cannot be trusted.
        let rejection = ShardResponse::Rejected("malformed frame".to_string());
        let bytes = encode_response(conn, 0, &rejection, WireEncoding::Json, scratch);
        conn.out.extend_from_slice(&bytes);
        conn.closing = true;
        return;
    };
    let mut encoding = match policy {
        EncodingPolicy::Auto => request_encoding,
        EncodingPolicy::Json => WireEncoding::Json,
        // Forced binary still mirrors the *dictness* of each request: a
        // dictionary frame gets a dictionary answer, a plain one stays
        // plain, so pre-v7 peers never see a stateful frame.
        EncodingPolicy::Binary => {
            if request_encoding == WireEncoding::BinaryDict {
                WireEncoding::BinaryDict
            } else {
                WireEncoding::Binary
            }
        }
        EncodingPolicy::BinaryNodict => WireEncoding::Binary,
    };
    // Dictionary responses require encode order == wire order, and the
    // FIFO hold below releases out-of-order completions in *request*
    // order.  A peer that sends dictionary frames before its protocol-5
    // hello (no conforming client does) therefore gets plain binary,
    // which every dict-capable client decodes statelessly.
    if encoding == WireEncoding::BinaryDict && conn.fifo() {
        encoding = WireEncoding::Binary;
    }
    // FIFO bookkeeping uses the protocol in force when the frame arrived;
    // a hello upgrades the *following* frames.
    if conn.fifo() && !matches!(request, ShardRequest::Cancel { .. }) {
        conn.order.push_back(id);
    }
    match request {
        ShardRequest::Hello { protocol } => {
            conn.peer_protocol = protocol;
            // The reactor never offers rings; it advertises a credit
            // window instead, and only to peers new enough to use it.
            let response = ShardResponse::Backends {
                names: service.backend_names().to_vec(),
                protocol: PROTOCOL_VERSION,
                ring: None,
                window: (protocol >= MUX_PROTOCOL).then_some(CREDIT_WINDOW),
            };
            let bytes = encode_response(conn, id, &response, encoding, scratch);
            // The hello itself was enqueued under the peer's *old*
            // protocol, so release it through the same path.
            if conn.order.back() == Some(&id) {
                conn.fifo_done.insert(id, bytes);
                flush_fifo(conn);
            } else {
                queue_response(conn, id, bytes);
            }
        }
        ShardRequest::Supports { backend, spec } => {
            let response = match service.backend_supports(&backend, &spec) {
                Some(supported) => ShardResponse::Supported(supported),
                None => ShardResponse::Rejected(format!("unknown backend `{backend}`")),
            };
            let bytes = encode_response(conn, id, &response, encoding, scratch);
            queue_response(conn, id, bytes);
        }
        ShardRequest::Stats => {
            let mut stats = service.stats();
            // Pre-v6 binary decoders reject the trailing per-class latency
            // section, so strip it for peers that predate it.
            if conn.peer_protocol < LATENCY_STATS_PROTOCOL {
                stats.classes.clear();
            }
            let response = ShardResponse::Stats(stats);
            let bytes = encode_response(conn, id, &response, encoding, scratch);
            queue_response(conn, id, bytes);
        }
        ShardRequest::Cancel { target } => {
            // Fire-and-forget: free nothing here (the evaluation runs to
            // completion and feeds the cache), just suppress the response.
            conn.cancelled.insert(target);
        }
        ShardRequest::Evaluate { backend, spec } => {
            submit_eval(
                conn,
                token,
                id,
                backend,
                vec![spec],
                true,
                encoding,
                service,
                completions,
                scratch,
            );
        }
        ShardRequest::EvaluateBatch { backend, specs } => {
            submit_eval(
                conn,
                token,
                id,
                backend,
                specs,
                false,
                encoding,
                service,
                completions,
                scratch,
            );
        }
    }
}

/// Submits an evaluation to the worker pools; the completion callback
/// hands the result back to the reactor thread through the queue + wake
/// pipe (it runs on whichever worker finishes last).
#[allow(clippy::too_many_arguments)]
fn submit_eval(
    conn: &mut Conn,
    token: u64,
    id: u64,
    backend: String,
    specs: Vec<rsn_eval::WorkloadSpec>,
    single: bool,
    encoding: WireEncoding,
    service: &EvalService,
    completions: &Arc<CompletionQueue>,
    scratch: &mut Vec<u8>,
) {
    if !service.backend_names().contains(&backend) {
        let rejection = ShardResponse::Rejected(format!("unknown backend `{backend}`"));
        let bytes = encode_response(conn, id, &rejection, encoding, scratch);
        queue_response(conn, id, bytes);
        return;
    }
    let expected = specs.len();
    conn.inflight += 1;
    let queue = Arc::clone(completions);
    service.submit_batch_callback(
        specs,
        BackendSelector::Named(vec![backend]),
        Priority::Normal,
        move |response| {
            queue
                .done
                .lock()
                .expect("completion queue lock")
                .push(DoneEntry {
                    token,
                    id,
                    single,
                    expected,
                    encoding,
                    response,
                });
            queue.wake.wake();
        },
    );
}

/// Extracts and handles every complete frame buffered on `conn`,
/// stopping at the credit window.
fn drain_frames(
    conn: &mut Conn,
    token: u64,
    service: &EvalService,
    completions: &Arc<CompletionQueue>,
    policy: EncodingPolicy,
    payload: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
) {
    while !conn.closing && !conn.dead {
        if !conn.fifo() && conn.inflight >= CREDIT_WINDOW {
            conn.read_paused = true;
            break;
        }
        match conn.frames.take_frame(payload) {
            Ok(true) => {
                handle_frame(conn, token, payload, service, completions, policy, scratch);
            }
            Ok(false) => break,
            Err(error) => {
                let rejection = ShardResponse::Rejected(error.to_string());
                let bytes = encode_response(conn, 0, &rejection, WireEncoding::Json, scratch);
                conn.out.extend_from_slice(&bytes);
                conn.closing = true;
            }
        }
    }
}

/// Writes as much pending output as the socket accepts.
fn try_write(conn: &mut Conn) {
    while conn.wants_write() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    if conn.closing {
        conn.dead = true;
    }
}

/// The reactor front end: serves every shard connection from this one
/// thread until `shutdown` is raised (the owner wakes the listener with a
/// throwaway connection, exactly as the threads front end's drop does).
///
/// Accepted connections are registered in `registry` (keyed by token) so
/// [`crate::remote::ShardServer`]'s drop can sever them.
pub(crate) fn serve_reactor(
    listener: TcpListener,
    service: Arc<EvalService>,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Mutex<HashMap<u64, TcpStream>>>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let Ok(mut poller) = Poller::new() else {
        return;
    };
    let Ok(wake) = WakePipe::new() else {
        return;
    };
    let completions = Arc::new(CompletionQueue {
        done: Mutex::new(Vec::new()),
        wake,
    });
    if poller
        .register(listener.as_raw_fd(), TOKEN_LISTENER, INTEREST_READ)
        .is_err()
        || poller
            .register(completions.wake.read_fd(), TOKEN_WAKE, INTEREST_READ)
            .is_err()
    {
        return;
    }
    let remote = service.config().remote.clone();
    let policy = remote.encoding;
    let idle_timeout = remote.server_idle_timeout;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut payload = Vec::new();
    let mut scratch = Vec::new();
    let mut events = Vec::new();

    loop {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        if poller.wait(&mut events, 500).is_err() {
            break;
        }
        if shutdown.load(Ordering::Acquire) {
            break;
        }

        for event in &events {
            match event.token {
                TOKEN_LISTENER => loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let token = next_token;
                            next_token += 1;
                            let fd = stream.as_raw_fd();
                            if poller.register(fd, token, INTEREST_READ).is_err() {
                                continue;
                            }
                            if let Ok(clone) = stream.try_clone() {
                                registry
                                    .lock()
                                    .expect("connection registry lock")
                                    .insert(token, clone);
                            }
                            conns.insert(token, Conn::new(stream, fd));
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                },
                TOKEN_WAKE => completions.wake.drain(),
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if event.readable && !conn.dead {
                            match conn.frames.fill(&mut conn.stream) {
                                Ok(0) => conn.dead = true,
                                Ok(_) => conn.last_activity = Instant::now(),
                                Err(ref e)
                                    if e.kind() == std::io::ErrorKind::WouldBlock
                                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                                Err(_) => conn.dead = true,
                            }
                        }
                        let _ = event.writable; // handled in the per-conn pass
                    }
                }
            }
        }

        // Route finished evaluations back onto their connections.
        let done = std::mem::take(&mut *completions.done.lock().expect("completion queue lock"));
        for entry in done {
            let Some(conn) = conns.get_mut(&entry.token) else {
                continue; // the connection closed while evaluating
            };
            conn.inflight = conn.inflight.saturating_sub(1);
            conn.last_activity = Instant::now();
            if conn.cancelled.remove(&entry.id) {
                // The client gave up on this id; it already freed the
                // credit, so the response must never hit the wire.
                if conn.inflight == 0 {
                    conn.cancelled.clear();
                }
                continue;
            }
            let response = completed_response(entry.response, entry.expected, entry.single);
            let bytes = encode_response(conn, entry.id, &response, entry.encoding, &mut scratch);
            queue_response(conn, entry.id, bytes);
            if conn.inflight == 0 {
                conn.cancelled.clear();
            }
        }

        // Step every connection's state machine: drain buffered frames
        // (credit permitting), flush output, reap the idle and the dead.
        let now = Instant::now();
        let mut dead_tokens: Vec<u64> = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            if !conn.dead {
                conn.read_paused = !conn.fifo() && conn.inflight >= CREDIT_WINDOW;
                if !conn.read_paused && !conn.closing {
                    drain_frames(
                        conn,
                        token,
                        &service,
                        &completions,
                        policy,
                        &mut payload,
                        &mut scratch,
                    );
                }
                try_write(conn);
            }
            if !conn.dead
                && conn.inflight == 0
                && !conn.wants_write()
                && now.duration_since(conn.last_activity) >= idle_timeout
            {
                // Idle reap: the peer went quiet; pooled clients re-dial.
                conn.dead = true;
            }
            if conn.dead {
                dead_tokens.push(token);
            } else {
                let mut want = 0u8;
                if !conn.closing && !conn.read_paused {
                    want |= INTEREST_READ;
                }
                if conn.wants_write() {
                    want |= INTEREST_WRITE;
                }
                if want != conn.interest {
                    if poller.modify(conn.fd, token, want).is_err() {
                        conn.dead = true;
                        dead_tokens.push(token);
                    } else {
                        conn.interest = want;
                    }
                }
            }
        }
        for token in dead_tokens {
            if let Some(conn) = conns.remove(&token) {
                poller.deregister(conn.fd);
            }
            registry
                .lock()
                .expect("connection registry lock")
                .remove(&token);
        }
    }
}

// ---------------------------------------------------------------------------
// Client side: the multiplexer.
// ---------------------------------------------------------------------------

/// Requests in flight on one multiplexed connection, keyed by wire id.
type PendingMap = HashMap<u64, mpsc::Sender<ShardResponse>>;

/// State shared between submitters and the multiplexer's reactor thread.
#[derive(Debug)]
struct MuxState {
    next_id: u64,
    /// Credits consumed: requests submitted and not yet answered (or
    /// cancelled).  Bounded by the negotiated window.
    in_use: u64,
    /// Encoded request frames waiting for the reactor thread to write.
    outbound: Vec<u8>,
    pending: PendingMap,
    /// Protocol-7 request-direction symbol table.  Lives under the state
    /// lock so encode order always equals wire order: frames append to
    /// `outbound` in the same critical section that advances the table.
    tx: TxSymbols,
}

#[derive(Debug)]
struct MuxShared {
    state: Mutex<MuxState>,
    /// Signalled whenever a credit frees (a response routed, a cancel, or
    /// the connection dying).
    credits: Condvar,
    wake: WakePipe,
    dead: AtomicBool,
    window: u64,
    /// Frame encoding negotiated for this connection (`BinaryDict` against
    /// protocol-7 shards, plain `Binary` otherwise).
    encoding: WireEncoding,
    counters: Arc<PoolCounters>,
}

/// A multiplexed client connection to a protocol-5 shard: many requests
/// in flight at once, responses matched back by id, a credit window
/// blocking submitters when the shard is saturated.
///
/// One reactor thread owns the socket.  Submitting threads acquire a
/// credit, append their encoded frame to the outbound buffer, and poke
/// the wake pipe; the reactor writes when the socket accepts bytes,
/// reads whatever frames arrive (in *any* order), and routes each to its
/// waiting submitter.  A submitter that times out sends `cancel` for its
/// id and resolves locally — the slot frees immediately, and the shard
/// suppresses the stale response.
///
/// Any transport failure marks the whole connection dead: every pending
/// exchange fails fast, and the owning [`ConnectionPool`]
/// (see [`crate::pool`]) discards the multiplexer and falls back to its
/// plain pooled path, so a mux setback never fails an exchange that a
/// re-dial could have served.
#[derive(Debug)]
pub(crate) struct Multiplexer {
    inner: Arc<MuxShared>,
    thread: Option<JoinHandle<()>>,
}

fn dead_mux_error() -> WireError {
    WireError::Io(std::io::Error::new(
        std::io::ErrorKind::ConnectionAborted,
        "multiplexed connection is dead",
    ))
}

fn timeout_error(what: &str) -> WireError {
    WireError::Io(std::io::Error::new(std::io::ErrorKind::TimedOut, what))
}

impl Multiplexer {
    /// Takes ownership of a freshly dialled stream and starts the reactor
    /// thread.  `window` is the shard's advertised credit window,
    /// `encoding` the frame encoding negotiated for the connection, and
    /// `io_timeout` bounds how long the reactor lets pending output stall
    /// against a full socket before declaring the connection dead.
    pub fn start(
        stream: TcpStream,
        window: u64,
        encoding: WireEncoding,
        counters: Arc<PoolCounters>,
        io_timeout: Duration,
    ) -> Result<Multiplexer, WireError> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let wake = WakePipe::new()?;
        // The connection's own `hello` goes out as its very first frame.
        // The pool negotiated protocol and window on a *different*
        // connection, and the shard tracks versions per connection: without
        // this, a reactor-fronted shard would treat the mux connection as a
        // pre-v5 FIFO peer — holding completions in request order and
        // downgrading protocol-7 dictionary responses to plain binary.  Id
        // 0 is below `next_id`'s floor, so the `backends` answer falls into
        // the unknown-id drop path like any cancelled response.
        let mut outbound = Vec::new();
        let mut tx = TxSymbols::new();
        let mut scratch = Vec::new();
        write_request_frame_dict(
            &mut outbound,
            0,
            &ShardRequest::Hello {
                protocol: PROTOCOL_VERSION,
            },
            encoding,
            &mut scratch,
            &mut tx,
        )?;
        let shared = Arc::new(MuxShared {
            state: Mutex::new(MuxState {
                next_id: 1,
                in_use: 0,
                outbound,
                pending: HashMap::new(),
                tx,
            }),
            credits: Condvar::new(),
            wake,
            dead: AtomicBool::new(false),
            window: window.max(1),
            encoding,
            counters,
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("shard-mux".to_string())
                .spawn(move || mux_loop(stream, &shared, io_timeout))
                .map_err(WireError::Io)?
        };
        Ok(Multiplexer {
            inner: shared,
            thread: Some(thread),
        })
    }

    /// Whether the connection is still usable (no transport failure yet).
    pub fn is_healthy(&self) -> bool {
        !self.inner.dead.load(Ordering::Acquire)
    }

    /// One request/response exchange, sharing the connection with every
    /// concurrent caller.  `budget` bounds the whole exchange (credit
    /// wait plus response wait); on timeout the request is cancelled.
    pub fn exchange(
        &self,
        request: &ShardRequest,
        budget: Duration,
    ) -> Result<ShardResponse, WireError> {
        // One deadline bounds both halves: whatever the credit wait spent
        // is no longer available to the response wait, so a slow shard can
        // never stretch a "bounded" exchange to 2× its budget.
        let deadline = Instant::now() + budget;
        let (id, rx) = self.submit(request, deadline)?;
        match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
            Ok(response) => Ok(response),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.cancel_local(id);
                Err(timeout_error("multiplexed exchange timed out"))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(dead_mux_error()),
        }
    }

    /// Submits several requests back-to-back (their frames coalesce in
    /// the outbound buffer) and collects the responses in request order.
    /// Any failure cancels whatever is still outstanding and fails the
    /// burst — the pool retries on a fresh connection.
    pub fn exchange_burst(
        &self,
        requests: &[ShardRequest],
        budget: Duration,
    ) -> Result<Vec<ShardResponse>, WireError> {
        // The clock starts before the first submit: every credit wait and
        // every response wait draws down the same deadline, so an n-request
        // burst against a credit-starved shard costs at most one budget,
        // not (n+1) of them.
        let deadline = Instant::now() + budget;
        let mut submitted = Vec::with_capacity(requests.len());
        let mut failure: Option<WireError> = None;
        for request in requests {
            match self.submit(request, deadline) {
                Ok(pair) => submitted.push(pair),
                Err(error) => {
                    failure = Some(error);
                    break;
                }
            }
        }
        let mut responses = Vec::with_capacity(submitted.len());
        for (id, rx) in submitted {
            if failure.is_some() {
                self.cancel_local(id);
                continue;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(response) => responses.push(response),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    self.cancel_local(id);
                    failure = Some(timeout_error("multiplexed burst timed out"));
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => failure = Some(dead_mux_error()),
            }
        }
        match failure {
            None => Ok(responses),
            Some(error) => Err(error),
        }
    }

    /// Acquires a credit, registers the pending slot, encodes the frame
    /// into the outbound buffer, and wakes the reactor thread.  `deadline`
    /// is the *exchange's* deadline, shared with the caller's response
    /// wait — the credit wait must not get a fresh allowance of its own.
    fn submit(
        &self,
        request: &ShardRequest,
        deadline: Instant,
    ) -> Result<(u64, mpsc::Receiver<ShardResponse>), WireError> {
        let shared = &self.inner;
        let mut state = shared.state.lock().expect("mux state lock");
        while state.in_use >= shared.window {
            if shared.dead.load(Ordering::Acquire) {
                return Err(dead_mux_error());
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(timeout_error("no credit freed within the exchange budget"));
            }
            let (next, _) = shared
                .credits
                .wait_timeout(state, left)
                .expect("mux state lock");
            state = next;
        }
        if shared.dead.load(Ordering::Acquire) {
            return Err(dead_mux_error());
        }
        let id = state.next_id;
        state.next_id += 1;
        state.in_use += 1;
        shared.counters.note_inflight(state.in_use);
        let (tx, rx) = mpsc::channel();
        state.pending.insert(id, tx);
        let mut scratch = Vec::new();
        // Split the guard so the outbound buffer and the symbol table can
        // be borrowed together; encoding under the lock keeps table order
        // equal to wire order across concurrent submitters.
        let inner = &mut *state;
        match write_request_frame_dict(
            &mut inner.outbound,
            id,
            request,
            shared.encoding,
            &mut scratch,
            &mut inner.tx,
        ) {
            Ok(bytes) => {
                let (defines, hits) = inner.tx.take_counts();
                shared.counters.note_dict(defines, hits);
                shared
                    .counters
                    .bytes_sent
                    .fetch_add(bytes, Ordering::Relaxed);
            }
            Err(error) => {
                state.pending.remove(&id);
                state.in_use -= 1;
                shared.credits.notify_all();
                if shared.encoding == WireEncoding::BinaryDict {
                    // The failed encode may have advanced the symbol table
                    // past a frame the shard will never see; the stream is
                    // unrecoverable, so fail the connection (the pool
                    // falls back to a fresh one).
                    shared.dead.store(true, Ordering::Release);
                    shared.wake.wake();
                }
                return Err(error);
            }
        }
        drop(state);
        shared.wake.wake();
        Ok((id, rx))
    }

    /// Abandons a pending exchange: frees the credit now and tells the
    /// shard to suppress the stale response.
    fn cancel_local(&self, id: u64) {
        let shared = &self.inner;
        let mut state = shared.state.lock().expect("mux state lock");
        if state.pending.remove(&id).is_none() {
            return; // the response raced in; nothing to free
        }
        state.in_use -= 1;
        let cancel_id = state.next_id;
        state.next_id += 1;
        let mut scratch = Vec::new();
        // Cancel frames carry no labels (the dict encoder emits them as
        // plain frames), but routing them through the same writer keeps
        // one code path per connection.
        let inner = &mut *state;
        if let Ok(bytes) = write_request_frame_dict(
            &mut inner.outbound,
            cancel_id,
            &ShardRequest::Cancel { target: id },
            shared.encoding,
            &mut scratch,
            &mut inner.tx,
        ) {
            shared
                .counters
                .bytes_sent
                .fetch_add(bytes, Ordering::Relaxed);
        }
        shared.credits.notify_all();
        drop(state);
        shared.wake.wake();
    }
}

impl Drop for Multiplexer {
    fn drop(&mut self) {
        self.inner.dead.store(true, Ordering::Release);
        self.inner.wake.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Marks the connection dead and fails every waiter: pending senders drop
/// (their receivers disconnect) and credit waiters observe the flag.
fn fail_mux(shared: &MuxShared) {
    shared.dead.store(true, Ordering::Release);
    let mut state = shared.state.lock().expect("mux state lock");
    state.pending.clear();
    state.outbound.clear();
    shared.credits.notify_all();
}

/// The multiplexer's reactor thread: writes queued frames when the socket
/// accepts them, reads response frames in whatever order the shard
/// completes them, routes each to its submitter, and frees its credit.
fn mux_loop(mut stream: TcpStream, shared: &Arc<MuxShared>, io_timeout: Duration) {
    let mut run = || -> Result<(), ()> {
        let mut poller = Poller::new().map_err(|_| ())?;
        const TOKEN_SOCKET: u64 = 0;
        poller
            .register(stream.as_raw_fd(), TOKEN_SOCKET, INTEREST_READ)
            .map_err(|_| ())?;
        poller
            .register(shared.wake.read_fd(), TOKEN_WAKE, INTEREST_READ)
            .map_err(|_| ())?;
        let mut interest = INTEREST_READ;
        let mut frames = FrameBuffer::new();
        let mut wbuf: Vec<u8> = Vec::new();
        let mut wpos = 0usize;
        let mut payload = Vec::new();
        let mut events = Vec::new();
        let mut stalled_since: Option<Instant> = None;
        // Response-direction symbol table: only this thread decodes, so it
        // never needs the state lock.
        let mut rx_symbols = RxSymbols::new();
        loop {
            if shared.dead.load(Ordering::Acquire) {
                return Err(());
            }
            poller.wait(&mut events, 200).map_err(|_| ())?;
            if !events.is_empty() {
                shared
                    .counters
                    .reactor_wakeups
                    .fetch_add(1, Ordering::Relaxed);
            }
            let mut readable = false;
            for event in &events {
                if event.token == TOKEN_WAKE {
                    shared.wake.drain();
                } else if event.readable {
                    readable = true;
                }
            }
            // Pull frames submitters queued since the last pass.
            {
                let mut state = shared.state.lock().expect("mux state lock");
                if !state.outbound.is_empty() {
                    if wpos == wbuf.len() {
                        wbuf.clear();
                        wpos = 0;
                    }
                    wbuf.extend_from_slice(&state.outbound);
                    state.outbound.clear();
                }
            }
            // Write until the socket stops accepting bytes.
            if wpos < wbuf.len() {
                let mut progressed = false;
                loop {
                    match stream.write(&wbuf[wpos..]) {
                        Ok(0) => return Err(()),
                        Ok(n) => {
                            wpos += n;
                            progressed = true;
                            if wpos == wbuf.len() {
                                wbuf.clear();
                                wpos = 0;
                                break;
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => return Err(()),
                    }
                }
                if progressed {
                    stalled_since = None;
                }
            }
            if wpos < wbuf.len() {
                // A shard that accepts no bytes for a whole io_timeout is
                // hung; fail fast rather than wedging every submitter.
                let since = *stalled_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= io_timeout {
                    return Err(());
                }
            } else {
                stalled_since = None;
            }
            let want = if wpos < wbuf.len() {
                INTEREST_READ | INTEREST_WRITE
            } else {
                INTEREST_READ
            };
            if want != interest {
                poller
                    .modify(stream.as_raw_fd(), TOKEN_SOCKET, want)
                    .map_err(|_| ())?;
                interest = want;
            }
            // Read and route whatever responses arrived.
            if readable {
                match frames.fill(&mut stream) {
                    Ok(0) => return Err(()),
                    Ok(_) => {}
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return Err(()),
                }
                loop {
                    match frames.take_frame(&mut payload) {
                        Ok(true) => {
                            shared
                                .counters
                                .bytes_received
                                .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
                            let Ok((id, response)) =
                                decode_response_payload_dict(&payload, &mut rx_symbols)
                            else {
                                return Err(()); // desync: abandon the connection
                            };
                            let (defines, hits) = rx_symbols.take_counts();
                            shared.counters.note_dict(defines, hits);
                            let mut state = shared.state.lock().expect("mux state lock");
                            if let Some(tx) = state.pending.remove(&id) {
                                state.in_use -= 1;
                                shared.credits.notify_all();
                                drop(state);
                                let _ = tx.send(response);
                            }
                            // An unknown id is the stale answer to a
                            // cancelled request — dropped by design.
                        }
                        Ok(false) => break,
                        Err(_) => return Err(()),
                    }
                }
            }
        }
    };
    let _ = run();
    fail_mux(shared);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_wakes_and_drains() {
        let pipe = WakePipe::new().expect("pipe");
        // Draining an idle pipe must not block (both ends nonblocking).
        pipe.drain();
        pipe.wake();
        pipe.wake();
        let mut poller = Poller::new().expect("poller");
        poller
            .register(pipe.read_fd(), 7, INTEREST_READ)
            .expect("register");
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        pipe.drain();
        // Drained: an immediate poll reports nothing.
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty());
    }

    #[test]
    fn poller_tracks_interest_changes() {
        let pipe = WakePipe::new().expect("pipe");
        let mut poller = Poller::new().expect("poller");
        poller
            .register(pipe.read_fd(), 3, INTEREST_READ)
            .expect("register");
        pipe.wake();
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).expect("wait");
        assert_eq!(events.len(), 1);
        // Dropping read interest silences the pending byte.
        poller.modify(pipe.read_fd(), 3, 0).expect("modify");
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty());
        poller.deregister(pipe.read_fd());
    }

    #[test]
    fn fifo_hold_releases_in_request_order() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let fd = stream.as_raw_fd();
        let mut conn = Conn::new(stream, fd);
        assert!(conn.fifo());
        conn.order.push_back(10);
        conn.order.push_back(11);
        // Completion order 11 then 10: 11 must be held until 10 lands.
        queue_response(&mut conn, 11, vec![0xBB]);
        assert!(conn.out.is_empty());
        queue_response(&mut conn, 10, vec![0xAA]);
        assert_eq!(conn.out, vec![0xAA, 0xBB]);
        assert!(conn.order.is_empty() && conn.fifo_done.is_empty());
        // A protocol-5 peer skips the hold entirely.
        conn.peer_protocol = PROTOCOL_VERSION;
        queue_response(&mut conn, 12, vec![0xCC]);
        assert_eq!(conn.out, vec![0xAA, 0xBB, 0xCC]);
    }

    #[test]
    fn completed_response_pads_and_truncates() {
        let empty = EvalResponse {
            results: Vec::new(),
        };
        match completed_response(empty, 2, false) {
            ShardResponse::EvaluatedBatch(results) => {
                assert_eq!(results.len(), 2);
                assert!(results.iter().all(|r| r.is_err()));
            }
            other => panic!("unexpected response: {other:?}"),
        }
        let empty = EvalResponse {
            results: Vec::new(),
        };
        match completed_response(empty, 1, true) {
            ShardResponse::Evaluated(result) => assert!(result.is_err()),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    // -----------------------------------------------------------------
    // Multiplexer budget regression tests.
    //
    // Both pin the contract that `budget` bounds a *whole* exchange.
    // Before the shared-deadline fix, `submit`'s credit wait and the
    // response wait each got a full budget (2× worst case for
    // `exchange`, (n+1)× for an n-request `exchange_burst`), so these
    // tests fail against the pre-fix code and pass after.
    // -----------------------------------------------------------------

    use crate::wire::{read_request_frame, write_response_frame};
    use rsn_eval::WorkloadSpec;

    /// A hand-built shard for the budget tests: answers each non-cancel
    /// request after the scripted delay, in arrival order; `None`
    /// withholds that response forever (the credit never frees on the
    /// server side of the story).  Exits on EOF when the client hangs up.
    fn scripted_shard(delays: Vec<Option<Duration>>) -> (std::net::SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind scripted shard");
        let addr = listener.local_addr().expect("shard addr");
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = match listener.accept() {
                Ok(pair) => pair,
                Err(_) => return,
            };
            let mut scratch = Vec::new();
            let mut served = 0usize;
            loop {
                let (id, request, encoding, _) = match read_request_frame(&mut stream, &mut scratch)
                {
                    Ok(Some(frame)) => frame,
                    Ok(None) | Err(_) => return,
                };
                if matches!(request, ShardRequest::Cancel { .. }) {
                    continue; // cancels get no reply and consume no script slot
                }
                if matches!(request, ShardRequest::Hello { .. }) {
                    // The mux opens every connection with a hello; answer it
                    // out-of-script (the client drops the reply by id anyway).
                    let mut out = Vec::new();
                    let backends = ShardResponse::Backends {
                        names: Vec::new(),
                        protocol: PROTOCOL_VERSION,
                        ring: None,
                        window: Some(1),
                    };
                    if write_response_frame(&mut stream, id, &backends, encoding, &mut out).is_err()
                    {
                        return;
                    }
                    continue;
                }
                let delay = delays.get(served).copied().unwrap_or(Some(Duration::ZERO));
                served += 1;
                match delay {
                    None => continue, // withhold this response forever
                    Some(delay) => {
                        std::thread::sleep(delay);
                        let mut out = Vec::new();
                        if write_response_frame(
                            &mut stream,
                            id,
                            &ShardResponse::Supported(true),
                            encoding,
                            &mut out,
                        )
                        .is_err()
                        {
                            return;
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    fn probe_request(n: usize) -> ShardRequest {
        ShardRequest::Supports {
            backend: "shard".to_string(),
            spec: WorkloadSpec::SquareGemm { n },
        }
    }

    fn budget_mux(addr: std::net::SocketAddr, window: u64) -> Multiplexer {
        let stream = TcpStream::connect(addr).expect("connect scripted shard");
        // Plain binary keeps the scripted shard's stateless frame reader
        // valid; dictionary frames are exercised by the wire and loopback
        // suites.
        Multiplexer::start(
            stream,
            window,
            WireEncoding::Binary,
            Arc::new(PoolCounters::default()),
            Duration::from_secs(5),
        )
        .expect("mux starts")
    }

    #[test]
    fn exchange_budget_is_not_rearmed_by_a_late_credit() {
        let budget = Duration::from_millis(600);
        // First request answered at 0.75× budget (holding the only credit
        // until then); second request withheld forever.
        let (addr, shard) = scripted_shard(vec![Some(budget.mul_f64(0.75)), None]);
        let mux = Arc::new(budget_mux(addr, 1));
        let first = {
            let mux = Arc::clone(&mux);
            std::thread::spawn(move || mux.exchange(&probe_request(1), budget))
        };
        // Let the first exchange take the credit before contending for it.
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        let second = mux.exchange(&probe_request(2), budget);
        let elapsed = start.elapsed();
        assert!(second.is_err(), "withheld response must time out");
        assert!(
            elapsed <= budget.mul_f64(1.5),
            "exchange overran its budget: {elapsed:?} vs {budget:?} \
             (credit wait re-armed the response clock?)"
        );
        assert!(first.join().expect("first exchange thread").is_ok());
        drop(mux); // hang up so the shard thread sees EOF
        let _ = shard.join();
    }

    #[test]
    fn burst_budget_is_shared_across_submits() {
        let budget = Duration::from_millis(500);
        // Window 1, each response at 0.7× budget: the third submit cannot
        // get a credit before the shared deadline, so the burst must fail
        // at ~1× budget instead of grinding through at ~2×+.
        let delay = budget.mul_f64(0.7);
        let (addr, shard) = scripted_shard(vec![Some(delay); 3]);
        let mux = budget_mux(addr, 1);
        let requests: Vec<ShardRequest> = (0..3).map(probe_request).collect();
        let start = Instant::now();
        let result = mux.exchange_burst(&requests, budget);
        let elapsed = start.elapsed();
        assert!(result.is_err(), "credit-starved burst must time out");
        assert!(
            elapsed <= budget.mul_f64(1.5),
            "burst overran its budget: {elapsed:?} vs {budget:?} \
             (per-submit budgets or a post-submit response clock?)"
        );
        drop(mux);
        let _ = shard.join();
    }
}
